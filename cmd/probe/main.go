package main

import (
	"fmt"

	"pathquery"
)

func main() {
	g := pathquery.NewGraph(nil)
	flows := [][]string{
		{"wf1", "ProteinPurification", "MassSpectrometry"},
		{"wf2", "ProteinPurification", "ProteinSeparation", "MassSpectrometry"},
		{"wf3", "ProteinPurification", "ProteinSeparation", "ProteinSeparation", "MassSpectrometry"},
		{"wf4", "SampleCollection", "ProteinPurification"},
		{"wf5", "ProteinPurification", "ProteinSeparation", "GelImaging"},
		{"wf6", "RNAExtraction", "Sequencing", "MassSpectrometry"},
	}
	for _, wf := range flows {
		prev := wf[0]
		for i, m := range wf[1:] {
			next := fmt.Sprintf("%s_s%d", wf[0], i+1)
			g.AddEdgeByName(prev, m, next)
			prev = next
		}
	}
	node := func(n string) pathquery.NodeID { id, _ := g.NodeByName(n); return id }
	goal, _ := pathquery.ParseQuery(g.Alphabet(), "ProteinPurification·ProteinSeparation*·MassSpectrometry")
	s := pathquery.Sample{
		Pos: []pathquery.NodeID{node("wf1"), node("wf2"), node("wf3")},
		Neg: []pathquery.NodeID{node("wf4"), node("wf5"), node("wf6"), node("wf2_s1"), node("wf3_s2")},
	}
	q, err := pathquery.LearnDetailed(g, s, pathquery.Options{})
	fmt.Println("learned:", q.Query, err)
	fmt.Println("equivalentOn:", q.Query.EquivalentOn(g, goal))
}
