// Command pqserve runs the concurrent query-serving engine
// (internal/engine) as an HTTP server, in one of two modes.
//
// Multi-tenant durable mode (-data): a registry of named graphs, each
// one backed by a write-ahead log and checkpoints under <data>/<name>/
// (internal/store) and recovered on startup to its exact last published
// epoch:
//
//	pqserve -data /var/lib/pathquery -addr :8080
//
//	POST /v1/graphs/{name}/query   {"query": "a·b*", "semantics": ...}
//	POST /v1/graphs/{name}/batch   {"requests": [...]}
//	POST /v1/graphs/{name}/mutate  {"edges": [...]}  (creates the graph)
//	POST /v1/graphs/{name}/learn   {"pos": [...], "neg": [...]}
//	GET  /v1/graphs/{name}/stats   engine counters + durability stats
//	GET  /v1/graphs/{name}/plans
//	GET  /v1/graphs                registry listing
//	GET  /healthz                  liveness
//	GET  /readyz                   503 until all tenant recoveries finish
//
// Per-tenant admission control isolates tenants: -max-inflight and
// -queue-depth bound concurrent requests (overflow answers 503
// "overloaded" + Retry-After), -mutate-rate/-mutate-burst bound the
// mutation rate (429 "rate_limited" + Retry-After). See internal/server.
//
// Single-graph volatile mode (legacy): one engine over a graph loaded
// from TSV or generated synthetically, no durability:
//
//	pqserve -graph data.tsv -addr :8080
//	pqserve -synthetic 10000 -seed 1
//
// with the engine's endpoints at the root (POST /v1/query, /v1/batch,
// /mutate, /learn, GET /stats, /plans, /healthz — see
// internal/engine.NewHandler) plus /readyz, which is immediately ready.
//
// In both modes the server is a real http.Server: read/write timeouts
// bound slow clients, every request's context carries an -eval-timeout
// deadline (a disconnecting client or an exceeded deadline aborts the
// product traversal; the latter answers 504 deadline_exceeded), and
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/engine"
	"pathquery/internal/graph"
	"pathquery/internal/server"
	"pathquery/internal/telemetry"
)

var (
	addr      = flag.String("addr", ":8080", "listen address")
	dataDir   = flag.String("data", "", "multi-tenant durable mode: WAL + checkpoint root directory")
	graphPath = flag.String("graph", "", "single-graph mode: graph TSV file (see graph.ReadTSV format)")
	synthetic = flag.Int("synthetic", 0, "single-graph mode: serve a synthetic scale-free graph of this many nodes")
	seed      = flag.Int64("seed", 1, "synthetic generator seed")
	cacheCap  = flag.Int("result-cache", 4096, "result cache capacity (entries, per graph)")

	checkpointEvery = flag.Int("checkpoint-every", 256,
		"cut a checkpoint every n WAL records (-data mode; negative disables)")
	maxInFlight = flag.Int("max-inflight", 64, "per-tenant in-flight request cap (-data mode)")
	queueDepth  = flag.Int("queue-depth", 128,
		"per-tenant admission queue beyond the in-flight cap (-data mode; negative sheds immediately)")
	mutateRate  = flag.Float64("mutate-rate", 0, "per-tenant mutations per second (-data mode; 0 = unlimited)")
	mutateBurst = flag.Int("mutate-burst", 16, "per-tenant mutation burst (-data mode)")
	maxTenants  = flag.Int("max-tenants", 1024,
		"global cap on registered graphs (-data mode; negative = unlimited)")

	slowQuery = flag.Duration("slow-query", 0,
		"log every query at least this slow as one structured JSON line (0 = off)")
	opsAddr = flag.String("ops-addr", "",
		"optional ops listener serving /metrics, /debug/pprof/ and /debug/vars (e.g. localhost:6060)")

	readTimeout  = flag.Duration("read-timeout", 15*time.Second, "http.Server ReadTimeout")
	writeTimeout = flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	evalTimeout  = flag.Duration("eval-timeout", 30*time.Second,
		"per-request evaluation deadline (0 = none); exceeded evaluations abort and answer 504 deadline_exceeded")
	shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
)

// instrument records per-request metrics for the single-graph mode —
// the counterpart of the multi-tenant server's dispatch recording, with
// the fixed tenant "default" and the op derived from the route table
// (unknown paths collapse to "other" so label cardinality stays
// bounded).
func instrument(reg *telemetry.Registry, next http.Handler) http.Handler {
	ops := map[string]string{
		"/v1/query": "query", "/select": "query", "/selectPairs": "query",
		"/v1/batch": "batch", "/batch": "batch",
		"/mutate": "mutate", "/learn": "learn",
		"/stats": "stats", "/plans": "plans",
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		op, ok := ops[r.URL.Path]
		if !ok {
			op = "other"
		}
		rec := telemetry.NewStatusRecorder(w)
		start := time.Now()
		next.ServeHTTP(rec, r)
		ls := []telemetry.Label{{Key: "tenant", Value: "default"}, {Key: "op", Value: op}}
		reg.Histogram("pathquery_request_seconds",
			"End-to-end request latency at the server, admission included.",
			ls...).Observe(time.Since(start))
		reg.Counter("pathquery_requests_total",
			"Requests served, by tenant, operation and HTTP status.",
			append(ls, telemetry.Label{Key: "code", Value: strconv.Itoa(rec.Code)})...).Inc()
		server.ObserveWorkloadClass(reg, r, "default", time.Since(start))
	})
}

// withDeadline bounds every request context: http.Server's WriteTimeout
// only closes the connection, it never cancels r.Context(), so without
// this wrapper a well-connected client issuing a pathological query would
// hold a core until the traversal finished on its own.
func withDeadline(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqserve: ")
	flag.Parse()

	var handler http.Handler
	var closeFn func() error
	var reg *telemetry.Registry
	switch {
	case *dataDir != "" && (*graphPath != "" || *synthetic > 0):
		log.Fatal("-data is mutually exclusive with -graph/-synthetic")
	case *dataDir != "":
		srv, err := server.New(server.Options{
			DataDir:         *dataDir,
			CheckpointEvery: *checkpointEvery,
			ResultCacheCap:  *cacheCap,
			MaxInFlight:     *maxInFlight,
			QueueDepth:      *queueDepth,
			MutateRate:      *mutateRate,
			MutateBurst:     *mutateBurst,
			MaxTenants:      *maxTenants,
			SlowQuery:       *slowQuery,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Serve immediately; /readyz turns ready once every existing
		// tenant has replayed its WAL (requests racing recovery trigger
		// their own tenant's recovery lazily and just wait for it).
		go srv.RecoverAll()
		handler = srv.Handler()
		closeFn = srv.Close
		reg = srv.Registry()
		log.Printf("serving multi-tenant registry on %s from %s", *addr, *dataDir)
	case *graphPath != "" && *synthetic > 0:
		log.Fatal("-graph and -synthetic are mutually exclusive")
	case *graphPath != "" || *synthetic > 0:
		var g *graph.Graph
		if *graphPath != "" {
			f, err := os.Open(*graphPath)
			if err != nil {
				log.Fatal(err)
			}
			g, err = graph.ReadTSV(f, nil)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		} else {
			g = datasets.Synthetic(*synthetic, *seed)
		}
		e := engine.New(g, engine.Options{ResultCacheCap: *cacheCap})
		st := e.Stats()
		log.Printf("serving on %s: epoch %d, %d nodes, %d edges, %d labels",
			*addr, st.Epoch, st.Nodes, st.Edges, g.Alphabet().Size())
		reg = telemetry.NewRegistry()
		e.RegisterMetrics(reg, telemetry.Label{Key: "tenant", Value: "default"})
		mux := http.NewServeMux()
		mux.Handle("/", engine.NewHandlerWith(e, engine.HandlerOptions{
			Tenant:    "default",
			SlowQuery: *slowQuery,
			SlowLogf:  log.Printf,
		}))
		mux.Handle("GET /metrics", reg.Handler())
		// A volatile single-graph server is ready the moment it listens.
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		handler = telemetry.WithRequestID(instrument(reg, mux))
		closeFn = func() error { return nil }
	default:
		log.Fatal("need -data DIR, -graph FILE or -synthetic N")
	}

	if *opsAddr != "" {
		// The ops surface listens separately so profiling and scraping
		// need not share the serving listener (or be exposed with it).
		ops := http.NewServeMux()
		ops.Handle("GET /metrics", reg.Handler())
		ops.HandleFunc("/debug/pprof/", pprof.Index)
		ops.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		ops.HandleFunc("/debug/pprof/profile", pprof.Profile)
		ops.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		ops.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ops.Handle("GET /debug/vars", expvar.Handler())
		go func() {
			log.Printf("ops listener on %s (/metrics, /debug/pprof/, /debug/vars)", *opsAddr)
			if err := http.ListenAndServe(*opsAddr, ops); err != nil {
				log.Printf("ops listener: %v", err)
			}
		}()
	}

	if *evalTimeout > 0 {
		handler = withDeadline(handler, *evalTimeout)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("shutting down (waiting up to %v for in-flight requests)", *shutdownTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		if err := closeFn(); err != nil {
			log.Printf("closing stores: %v", err)
		}
		log.Printf("bye")
	}
}
