// Command pqserve runs the concurrent query-serving engine
// (internal/engine) as an HTTP server: monadic and binary selections,
// batched evaluation, live mutation with epoch publication, and online
// learning from node examples, over a graph loaded from TSV or generated
// synthetically.
//
//	pqserve -graph data.tsv -addr :8080
//	pqserve -synthetic 10000 -seed 1
//
// Endpoints (JSON bodies; see internal/engine.NewHandler):
//
//	POST /select      {"query": "a·b*", "limit": 10}
//	POST /selectPairs {"query": "...", "from": "N1"}
//	POST /batch       {"queries": ["...", ...]}
//	POST /mutate      {"edges": [{"from": "u", "label": "a", "to": "v"}]}
//	POST /learn       {"pos": ["u", ...], "neg": ["v", ...], "k": 0}
//	GET  /stats
//	GET  /healthz
//
// /learn runs the paper's Algorithm 1 on the served epoch — concurrent
// mutations keep publishing newer epochs unharmed — and installs the
// learned query as a serving plan, so the returned "query" string answers
// /select from the warmed caches immediately.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"pathquery/internal/datasets"
	"pathquery/internal/engine"
	"pathquery/internal/graph"
)

var (
	addr      = flag.String("addr", ":8080", "listen address")
	graphPath = flag.String("graph", "", "graph TSV file (see graph.ReadTSV format)")
	synthetic = flag.Int("synthetic", 0, "serve a synthetic scale-free graph of this many nodes instead")
	seed      = flag.Int64("seed", 1, "synthetic generator seed")
	cacheCap  = flag.Int("result-cache", 4096, "result cache capacity (entries)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqserve: ")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *graphPath != "" && *synthetic > 0:
		log.Fatal("-graph and -synthetic are mutually exclusive")
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.ReadTSV(f, nil)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *synthetic > 0:
		g = datasets.Synthetic(*synthetic, *seed)
	default:
		log.Fatal("need -graph FILE or -synthetic N")
	}

	e := engine.New(g, engine.Options{ResultCacheCap: *cacheCap})
	st := e.Stats()
	log.Printf("serving on %s: epoch %d, %d nodes, %d edges, %d labels",
		*addr, st.Epoch, st.Nodes, st.Edges, g.Alphabet().Size())
	log.Fatal(http.ListenAndServe(*addr, engine.NewHandler(e)))
}
