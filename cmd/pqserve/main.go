// Command pqserve runs the concurrent query-serving engine
// (internal/engine) as an HTTP server: unified evaluation under every
// semantics, batched evaluation, live mutation with epoch publication,
// and online learning from node examples, over a graph loaded from TSV
// or generated synthetically.
//
//	pqserve -graph data.tsv -addr :8080
//	pqserve -synthetic 10000 -seed 1
//
// Endpoints (JSON bodies; see internal/engine.NewHandler for the full
// wire format and the deprecated-endpoint migration table):
//
//	POST /v1/query {"query": "a·b*", "semantics": "nodes|pairsFrom|witness|count|shortest", ...}
//	POST /v1/batch {"requests": [{"query": "...", ...}, ...]}
//	POST /mutate   {"edges": [{"from": "u", "label": "a", "to": "v"}]}
//	POST /learn    {"pos": ["u", ...], "neg": ["v", ...], "k": 0}
//	GET  /stats
//	GET  /plans
//	GET  /healthz
//
// plus the deprecated pre-v1 shims /select, /selectPairs and /batch.
//
// The server is a real http.Server: read/write timeouts bound slow
// clients, every request's context reaches the evaluation engine with an
// -eval-timeout deadline (a disconnecting client or an exceeded deadline
// aborts the product traversal; the latter answers 504
// deadline_exceeded), and SIGINT/SIGTERM drain in-flight requests before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/engine"
	"pathquery/internal/graph"
)

var (
	addr         = flag.String("addr", ":8080", "listen address")
	graphPath    = flag.String("graph", "", "graph TSV file (see graph.ReadTSV format)")
	synthetic    = flag.Int("synthetic", 0, "serve a synthetic scale-free graph of this many nodes instead")
	seed         = flag.Int64("seed", 1, "synthetic generator seed")
	cacheCap     = flag.Int("result-cache", 4096, "result cache capacity (entries)")
	readTimeout  = flag.Duration("read-timeout", 15*time.Second, "http.Server ReadTimeout")
	writeTimeout = flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	evalTimeout  = flag.Duration("eval-timeout", 30*time.Second,
		"per-request evaluation deadline (0 = none); exceeded evaluations abort and answer 504 deadline_exceeded")
	shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on SIGINT/SIGTERM")
)

// withDeadline bounds every request context: http.Server's WriteTimeout
// only closes the connection, it never cancels r.Context(), so without
// this wrapper a well-connected client issuing a pathological query would
// hold a core until the traversal finished on its own.
func withDeadline(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqserve: ")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *graphPath != "" && *synthetic > 0:
		log.Fatal("-graph and -synthetic are mutually exclusive")
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err = graph.ReadTSV(f, nil)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *synthetic > 0:
		g = datasets.Synthetic(*synthetic, *seed)
	default:
		log.Fatal("need -graph FILE or -synthetic N")
	}

	e := engine.New(g, engine.Options{ResultCacheCap: *cacheCap})
	st := e.Stats()
	log.Printf("serving on %s: epoch %d, %d nodes, %d edges, %d labels",
		*addr, st.Epoch, st.Nodes, st.Edges, g.Alphabet().Size())

	handler := engine.NewHandler(e)
	if *evalTimeout > 0 {
		handler = withDeadline(handler, *evalTimeout)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("shutting down (waiting up to %v for in-flight requests)", *shutdownTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		log.Printf("bye")
	}
}
