package main

import (
	"fmt"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/interactive"
)

func main() {
	for _, n := range []int{10000} {
		g := datasets.Synthetic(n, int64(n))
		qs := datasets.SynQueries(g)
		for _, nq := range qs {
			for _, strat := range []interactive.Strategy{interactive.KR{}, interactive.KS{}} {
				start := time.Now()
				sess := interactive.NewSession(g, interactive.Options{
					Strategy: strat, Seed: 1, MaxInteractions: 600,
				})
				res, err := sess.Run(interactive.NewQueryOracle(g, nq.Query),
					interactive.ExactMatch(g, nq.Query))
				if err != nil {
					fmt.Println("ERR", err)
					continue
				}
				fmt.Printf("n=%d %s sel=%.3f strat=%s labels=%d (%.2f%%) halt=%v wall=%v meanT=%v\n",
					n, nq.Name, nq.Query.Selectivity(g), strat.Name(), res.Labels(),
					100*res.LabelFraction(g), res.Halted, time.Since(start).Round(time.Millisecond),
					res.MeanTimeBetweenInteractions().Round(time.Microsecond))
			}
		}
	}
}
