// Command pqgen generates the paper's evaluation datasets as TSV graphs.
//
//	pqgen -dataset alibaba                  # the 3k/8k AliBaba stand-in
//	pqgen -dataset scalefree -nodes 10000   # synthetic, |E| = 3·|V|
//
// With -queries it also prints the workload queries (bio1..bio6 or
// syn1..syn3) with their selectivities on the generated graph.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pathquery/internal/datasets"
	"pathquery/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqgen: ")
	dataset := flag.String("dataset", "alibaba", "alibaba | scalefree")
	nodes := flag.Int("nodes", 10000, "node count (scalefree)")
	edgesPerNode := flag.Int("edges-per-node", 3, "edge multiplier (scalefree)")
	labels := flag.Int("labels", 20, "label count (scalefree)")
	zipf := flag.Float64("zipf", 1.0, "label Zipf exponent (scalefree)")
	seed := flag.Int64("seed", 1, "generator seed (scalefree)")
	out := flag.String("o", "", "output file (default stdout)")
	withQueries := flag.Bool("queries", false, "print the workload queries to stderr")
	withStats := flag.Bool("stats", false, "print structural statistics to stderr")
	flag.Parse()

	var g *graph.Graph
	var queries []datasets.NamedQuery
	switch *dataset {
	case "alibaba":
		g = datasets.AliBaba()
		if *withQueries {
			queries = datasets.BioQueries(g)
		}
	case "scalefree":
		g = datasets.ScaleFree(datasets.ScaleFreeConfig{
			Nodes:  *nodes,
			Edges:  *edgesPerNode * *nodes,
			Labels: *labels,
			ZipfS:  *zipf,
			Seed:   *seed,
		})
		if *withQueries {
			queries = datasets.SynQueries(g)
		}
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteTSV(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)
	if *withStats {
		g.ComputeStats().Print(os.Stderr)
	}
	for _, nq := range queries {
		fmt.Fprintf(os.Stderr, "%s\tselectivity %.4f%%\t%s\n",
			nq.Name, 100*nq.Query.Selectivity(g), nq.Expr)
	}
}
