// Command pqinteractive runs the paper's interactive scenario (Section 4)
// on a graph: the session proposes nodes, a user labels them, and learning
// repeats until the learned query is satisfactory.
//
// With -goal the user is simulated by an oracle holding the goal query
// (how the paper runs its experiments); without it, labels are read from
// stdin: the tool shows each proposed node with its neighborhood and asks
// y/n.
//
//	pqinteractive -graph g.tsv -goal '(a+b)·c*' -strategy kS
//	pqinteractive -graph g.tsv               # interactive prompts
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pathquery"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
)

// stdinOracle asks the human at the terminal.
type stdinOracle struct {
	g  *graph.Graph
	in *bufio.Reader
	k  int
}

func (o *stdinOracle) Label(nu pathquery.NodeID) bool {
	fmt.Printf("\nnode %q — its neighborhood (radius %d):\n", o.g.NodeName(nu), o.k)
	for _, v := range o.g.Neighborhood(nu, o.k) {
		for _, e := range o.g.OutEdges(v) {
			fmt.Printf("  %s --%s--> %s\n",
				o.g.NodeName(v), o.g.Alphabet().Name(e.Sym), o.g.NodeName(e.To))
		}
	}
	for {
		fmt.Printf("select %q? [y/n] ", o.g.NodeName(nu))
		line, err := o.in.ReadString('\n')
		if err != nil {
			log.Fatal("stdin closed")
		}
		switch strings.ToLower(strings.TrimSpace(line)) {
		case "y", "yes", "+":
			return true
		case "n", "no", "-":
			return false
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqinteractive: ")
	graphPath := flag.String("graph", "", "graph TSV file (required)")
	goalSrc := flag.String("goal", "", "simulate the user with this goal query")
	strategyName := flag.String("strategy", "kS", "kR | kS")
	seed := flag.Int64("seed", 1, "session seed")
	maxLabels := flag.Int("max-labels", 0, "interaction budget (0 = |V|)")
	verbose := flag.Bool("v", false, "log every proposal/label/learned query")
	resumePath := flag.String("resume", "", "resume from a saved session sample")
	savePath := flag.String("save-session", "", "write the final sample here")
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ReadTSV(f, nil)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var strategy pathquery.Strategy
	switch *strategyName {
	case "kR":
		strategy = interactive.KR{}
	case "kS":
		strategy = interactive.KS{}
	default:
		log.Fatalf("unknown strategy %q", *strategyName)
	}

	opts := pathquery.SessionOptions{
		Strategy:        strategy,
		Seed:            *seed,
		MaxInteractions: *maxLabels,
	}
	if *verbose {
		opts.Observer = interactive.LogObserver{G: g, W: os.Stderr}
	}
	var sess *pathquery.Session
	if *resumePath != "" {
		rf, err := os.Open(*resumePath)
		if err != nil {
			log.Fatal(err)
		}
		saved, err := interactive.LoadSample(rf, g)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		sess, err = interactive.Resume(g, saved, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed with %d labels\n", saved.Size())
	} else {
		sess = pathquery.NewSession(g, opts)
	}

	var oracle pathquery.Oracle
	var halt pathquery.HaltCondition
	if *goalSrc != "" {
		goal, err := pathquery.ParseQuery(g.Alphabet(), *goalSrc)
		if err != nil {
			log.Fatal(err)
		}
		oracle = pathquery.NewQueryOracle(g, goal)
		halt = pathquery.ExactMatch(g, goal)
		fmt.Printf("simulating a user with goal %v (selects %d nodes)\n",
			goal, len(goal.SelectNodes(g)))
	} else {
		o := &stdinOracle{g: g, in: bufio.NewReader(os.Stdin), k: 2}
		oracle = o
		// Human sessions halt when the user is out of informative nodes or
		// interrupts; the learned query is printed after every label.
		halt = func(q *pathquery.Query) bool { return false }
	}

	res, err := sess.Run(oracle, halt)
	if err != nil {
		log.Fatal(err)
	}
	if *savePath != "" {
		sf, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := interactive.SaveSample(sf, g, sess.Sample()); err != nil {
			log.Fatal(err)
		}
		sf.Close()
		fmt.Println("session sample saved to", *savePath)
	}
	fmt.Printf("\nsession over (%v) after %d labels (%.2f%% of nodes)\n",
		res.Halted, res.Labels(), 100*res.LabelFraction(g))
	if res.Query != nil {
		fmt.Println("learned query:", res.Query)
		fmt.Println("selected nodes:")
		for _, v := range res.Query.SelectNodes(g) {
			fmt.Println("  ", g.NodeName(v))
		}
	} else {
		fmt.Println("no query learned (not enough consistent examples)")
	}
}
