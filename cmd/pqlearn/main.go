// Command pqlearn learns a path query from labeled node examples (the
// static protocol of the paper's Section 3).
//
//	pqlearn -graph g.tsv -pos N2,N6 -neg N5 [-k 3]
//	pqlearn -graph g.tsv -pos N2,N6 -neg N5 -serve :8080
//
// It prints the learned query, the smallest consistent paths it was built
// from, and the selected nodes. Exit status 1 with "abstain" means the
// examples were insufficient (the paper's null answer).
//
// With -serve ADDR the learned query is installed into a serving engine
// over the same graph and the pqserve HTTP API comes up on ADDR: the
// printed query answers /select from the warmed caches immediately, and
// /learn accepts further samples — learn→serve parity with cmd/pqserve in
// one process.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"pathquery"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqlearn: ")
	graphPath := flag.String("graph", "", "graph TSV file (required)")
	posList := flag.String("pos", "", "comma-separated positive node names (required)")
	negList := flag.String("neg", "", "comma-separated negative node names")
	k := flag.Int("k", 0, "SCP length bound; 0 = dynamic schedule (start 2)")
	maxK := flag.Int("maxk", 8, "dynamic schedule cap")
	noMerge := flag.Bool("no-generalization", false, "skip the merge phase (SCP disjunction only)")
	savePath := flag.String("save", "", "write the learned query to this file")
	serveAddr := flag.String("serve", "", "after learning, serve the graph and installed query on this address")
	flag.Parse()
	if *graphPath == "" || *posList == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadTSV(f, nil)
	if err != nil {
		log.Fatal(err)
	}

	nodes := func(list string) []pathquery.NodeID {
		if list == "" {
			return nil
		}
		var out []pathquery.NodeID
		for _, name := range strings.Split(list, ",") {
			id, ok := g.NodeByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("no node %q", name)
			}
			out = append(out, id)
		}
		return out
	}
	sample := pathquery.Sample{Pos: nodes(*posList), Neg: nodes(*negList)}

	res, err := pathquery.LearnDetailed(g, sample, pathquery.Options{
		K: *k, MaxK: *maxK, DisableGeneralization: *noMerge,
	})
	if errors.Is(err, pathquery.ErrAbstain) {
		fmt.Println("abstain: not enough examples to construct a consistent query")
		fmt.Println("hint: label more nodes, or raise -maxk")
		os.Exit(1)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned query: %v (size %d, k = %d)\n", res.Query, res.Query.Size(), res.K)
	for i, p := range res.SCPs {
		fmt.Printf("  SCP %d: %s\n", i+1, words.String(p, g.Alphabet()))
	}
	fmt.Println("selected nodes:")
	for _, v := range res.Query.SelectNodes(g) {
		fmt.Println("  ", g.NodeName(v))
	}
	if *savePath != "" {
		out, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := query.Save(out, res.Query); err != nil {
			log.Fatal(err)
		}
		fmt.Println("saved to", *savePath)
	}
	if *serveAddr != "" {
		// Learn→serve parity with cmd/pqserve: install the learned query
		// into a serving engine over the same graph (re-learned through the
		// engine so the plan and result caches are warmed on the served
		// epoch) and expose the full HTTP API, /learn included.
		eng := pathquery.NewEngine(g, pathquery.EngineOptions{})
		lr, err := eng.Learn(sample, pathquery.Options{
			K: *k, MaxK: *maxK, DisableGeneralization: *noMerge,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving on %s: epoch %d, learned query %q installed (selects %d nodes)",
			*serveAddr, lr.Epoch, lr.Source, lr.Selection.Count())
		log.Fatal(http.ListenAndServe(*serveAddr, pathquery.NewEngineHandler(eng)))
	}
}
