package main

import (
	"fmt"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/engine"
)

// Closed-loop serving benchmark: build a synthetic graph, stand up the
// engine in-process, and drive it with concurrent closed-loop clients
// mixing cached repeat selections with mutations that publish new epochs.
// Reports throughput and latency percentiles; BenchmarkEngineServe in
// bench_test.go runs the scaled-down version of the same driver so the
// numbers land in the BENCH_<date>.json snapshots.

func runServeBench() error {
	g := datasets.Synthetic(*serveSyn, *seed)
	qs := datasets.SynQueries(g)
	queries := make([]string, len(qs))
	for i, nq := range qs {
		queries[i] = nq.Expr
	}
	opt := engine.Options{}
	if *serveBaseline {
		opt.RegrowBudget = -1
	}
	e := engine.New(g, opt)

	mode := "incremental maintenance"
	if *serveBaseline {
		mode = "prune-everything baseline"
	}
	section(fmt.Sprintf("Serving benchmark — %d nodes, %d clients, %d writer lanes, %v, mutate every %d requests, rate %.2g (%s)",
		*serveSyn, *serveClients, *serveWriters, *serveDuration, *serveMutateEvery, *serveMutateRate, mode))
	for _, q := range queries {
		fmt.Printf("query: %s\n", q)
	}

	report, err := engine.RunLoad(e, engine.LoadConfig{
		Clients:     *serveClients,
		Duration:    *serveDuration,
		Queries:     queries,
		MutateEvery: *serveMutateEvery,
		MutateRate:  *serveMutateRate,
		BatchSize:   *serveBatch,
		Writers:     *serveWriters,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	if report.MutateLatency.Count() > 0 {
		fmt.Printf("mutate p90 %v  max %v   (select max %v)\n",
			report.MutateLatency.Quantile(0.90),
			time.Duration(report.MutateLatency.Max),
			time.Duration(report.SelectLatency.Max))
	}

	st := e.Stats()
	fmt.Printf("epochs published %d   plans %d (hits %d, misses %d)\n",
		st.Epoch, st.Plans, st.PlanHits, st.PlanMisses)
	fmt.Printf("result cache: hits %d, misses %d, single-flight shared %d, entries %d\n",
		st.ResultHits, st.ResultMisses, st.ResultShared, st.ResultEntries)
	if total := st.ResultHits + st.ResultMisses + st.ResultShared; total > 0 {
		fmt.Printf("cache hit ratio %.1f%% (product passes avoided: %d)\n",
			100*float64(st.ResultHits+st.ResultShared)/float64(total),
			st.ResultHits+st.ResultShared)
	}
	fmt.Printf("maintenance outcomes: retained %d, regrown %d, dropped %d\n",
		st.ResultRetained, st.ResultRegrown, st.ResultDropped)
	return nil
}
