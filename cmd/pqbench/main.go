// Command pqbench regenerates the paper's evaluation artifacts
// (Section 5): Table 1, Figures 11 and 12 (static F1 and learning time),
// Table 2 (interactive summary), and the ablations called out in the text.
//
//	pqbench -table1
//	pqbench -static-bio          # Figures 11(a) + 12(a)
//	pqbench -static-syn          # Figures 11(b,c,d) + 12(b,c,d)
//	pqbench -table2-bio -table2-syn
//	pqbench -ablation -theorem
//	pqbench -all -quick          # everything, scaled down
//	pqbench -snapshot            # go-bench snapshot into BENCH_<date>.json
//	pqbench -restart             # crash-recovery timings into BENCH_<date>.json
//
// -quick shrinks trial counts, fraction grids, synthetic sizes, and
// interaction budgets so the full suite finishes in minutes; without it
// the parameters match the paper's. -csv DIR additionally writes
// machine-readable series for plotting.
//
// -snapshot runs the repository's substrate go-benchmarks (via `go test
// -bench`, so it must be invoked inside the module) and records the
// parsed results as BENCH_<date>.json, tracking the perf trajectory
// PR-over-PR; -snapshot-bench overrides the benchmark pattern,
// -snapshot-out the file name, and -snapshot-note attaches free-form
// context (e.g. the baseline being compared against).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pathquery/internal/charsample"
	"pathquery/internal/datasets"
	"pathquery/internal/experiments"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/query"
	"pathquery/internal/sampling"
)

var (
	quick     = flag.Bool("quick", false, "scaled-down parameters")
	all       = flag.Bool("all", false, "run every experiment")
	table1    = flag.Bool("table1", false, "Table 1: bio query selectivities")
	staticBio = flag.Bool("static-bio", false, "Figures 11(a)/12(a): static F1 and time, bio queries")
	staticSyn = flag.Bool("static-syn", false, "Figures 11(b-d)/12(b-d): static F1 and time, syn queries")
	table2Bio = flag.Bool("table2-bio", false, "Table 2, biological rows")
	table2Syn = flag.Bool("table2-syn", false, "Table 2, synthetic rows")
	ablation  = flag.Bool("ablation", false, "generalization + dynamic-k ablations")
	sampled   = flag.Bool("sampling", false, "sampled-session comparison (§6 future work)")
	theorem   = flag.Bool("theorem", false, "Theorem 3.5 self-check on the workload queries")
	csvDir    = flag.String("csv", "", "also write CSV series into this directory")
	seed      = flag.Int64("seed", 1, "experiment seed")
	trials    = flag.Int("trials", 0, "static trials per point (0: 3, or 1 with -quick)")
	capFlag   = flag.Int("cap", 0, "interactive interaction budget override (0: default)")
	baseline  = flag.Bool("static-baseline", false, "compute Table 2's 'without interactions' column even with -quick")
	synSize   = flag.Int("syn-size", 0, "run synthetic experiments on this single size only")

	snapshot      = flag.Bool("snapshot", false, "run go-benchmarks and write BENCH_<date>.json")
	snapshotBench = flag.String("snapshot-bench", "BenchmarkSelectMonadic$|BenchmarkSCPSearch$|BenchmarkLearnerPaperExample$|BenchmarkEngineServe|BenchmarkEngineMaintain|BenchmarkReplayMixed$|BenchmarkLearn$|BenchmarkEngineLearn$|BenchmarkPlanCompile|BenchmarkSelectBinaryDirectional|BenchmarkEvaluateWitness$|BenchmarkEvaluateCount$|BenchmarkStoreRecovery|BenchmarkWALAppend$|BenchmarkWALGroupCommit$|BenchmarkPublishIncremental$|BenchmarkPublishFull$|BenchmarkPublishCompact$",
		"benchmark pattern for -snapshot")
	snapshotOut   = flag.String("snapshot-out", "", "snapshot file name (default BENCH_<date>.json)")
	snapshotNote  = flag.String("snapshot-note", "", "free-form note stored in the snapshot")
	snapshotCount = flag.Int("snapshot-count", 1, "benchmark repetitions for -snapshot")

	restart = flag.Bool("restart", false,
		"crash-recovery scenario: run BenchmarkStoreRecovery (checkpoint load + WAL replay µs per 1k records) and write the snapshot")

	serve            = flag.Bool("serve", false, "closed-loop serving benchmark against the in-process engine")
	serveSyn         = flag.Int("serve-syn", 10000, "synthetic graph size for -serve")
	serveClients     = flag.Int("serve-clients", 16, "closed-loop clients for -serve")
	serveDuration    = flag.Duration("serve-duration", 5*time.Second, "load duration for -serve")
	serveMutateEvery = flag.Int("serve-mutate-every", 50, "every n-th request per client mutates and publishes an epoch (0: read-only)")
	serveMutateRate  = flag.Float64("serve-mutate-rate", 0, "probability each request mutates (0..1) — the closed-loop mutation-rate axis; composes with -serve-mutate-every")
	serveBatch       = flag.Int("serve-batch", 0, "issue SelectBatch requests of this size instead of single selects")
	serveWriters     = flag.Int("serve-writers", 0, "dedicated free-running mutator lanes on top of the client mix (group-commit saturation)")
	serveBaseline    = flag.Bool("serve-baseline", false, "disable incremental result maintenance (prune-everything on each publish) for comparison")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqbench: ")
	flag.Parse()
	if *restart {
		// The restart scenario is a focused snapshot: just the recovery
		// benchmarks, recorded in the same BENCH_<date>.json format.
		*snapshotBench = "BenchmarkStoreRecovery"
		if *snapshotNote == "" {
			*snapshotNote = "pqbench -restart: crash-recovery (checkpoint load + WAL replay)"
		}
		if err := runSnapshot(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *snapshot {
		if err := runSnapshot(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serve {
		if err := runServeBench(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *replayFile != "" {
		if err := runReplay(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *all {
		*table1, *staticBio, *staticSyn, *table2Bio, *table2Syn, *ablation, *sampled, *theorem =
			true, true, true, true, true, true, true, true
	}
	if !(*table1 || *staticBio || *staticSyn || *table2Bio || *table2Syn || *ablation || *sampled || *theorem) {
		flag.Usage()
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	staticCfg := experiments.StaticConfig{Seed: *seed, Trials: *trials}
	if *quick {
		staticCfg.Fractions = []float64{0.01, 0.03, 0.07, 0.15}
		if staticCfg.Trials == 0 {
			staticCfg.Trials = 1
		}
	}

	synSizes := datasets.SyntheticSizes
	interactiveCap := 0 // |V|
	if *quick {
		synSizes = []int{10000}
		interactiveCap = 300
	}
	if *synSize > 0 {
		synSizes = []int{*synSize}
	}
	if *capFlag > 0 {
		interactiveCap = *capFlag
	}

	var bio *bioWorkload
	needBio := *table1 || *staticBio || *table2Bio || *ablation || *theorem
	if needBio {
		bio = loadBio()
	}

	if *table1 {
		section("Table 1 — biological queries and selectivities")
		rows := experiments.Table1(bio.g, bio.queries)
		experiments.PrintTable1(os.Stdout, rows)
	}

	if *staticBio {
		section("Figures 11(a) + 12(a) — static protocol, biological queries")
		start := time.Now()
		series := experiments.RunStaticAll(bio.g, bio.queries, staticCfg)
		experiments.PrintStaticSeries(os.Stdout, series)
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
		writeCSV("fig11_12_bio.csv", func(f *os.File) error {
			return experiments.WriteStaticCSV(f, series)
		})
	}

	if *staticSyn {
		for _, n := range synSizes {
			section(fmt.Sprintf("Figures 11/12 (syn) — %d nodes", n))
			g := datasets.Synthetic(n, int64(n))
			qs := datasets.SynQueries(g)
			start := time.Now()
			series := experiments.RunStaticAll(g, qs, staticCfg)
			experiments.PrintStaticSeries(os.Stdout, series)
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
			writeCSV(fmt.Sprintf("fig11_12_syn_%d.csv", n), func(f *os.File) error {
				return experiments.WriteStaticCSV(f, series)
			})
		}
	}

	var table2Rows []experiments.InteractiveRow
	if *table2Bio {
		section("Table 2 — biological queries, interactive protocol")
		cfg := experiments.InteractiveConfig{
			Seed:            *seed,
			MaxInteractions: interactiveCap,
			StaticBaseline:  !*quick || *baseline,
			Static:          staticCfg,
		}
		for _, nq := range bio.queries {
			rows := experiments.RunInteractive("alibaba", bio.g, nq, cfg)
			table2Rows = append(table2Rows, rows...)
			experiments.PrintTable2(os.Stdout, rows)
		}
	}

	if *table2Syn {
		for _, n := range synSizes {
			section(fmt.Sprintf("Table 2 — synthetic %d nodes, interactive protocol", n))
			g := datasets.Synthetic(n, int64(n))
			cfg := experiments.InteractiveConfig{
				Seed:            *seed,
				MaxInteractions: interactiveCap,
				StaticBaseline:  !*quick || *baseline,
				Static:          staticCfg,
			}
			if cfg.MaxInteractions == 0 && !*quick {
				// Full runs still need a sane bound on big graphs; the paper's
				// sessions stay well under 1% of nodes.
				cfg.MaxInteractions = g.NumNodes() / 10
			}
			for _, nq := range datasets.SynQueries(g) {
				rows := experiments.RunInteractive(fmt.Sprintf("syn-%d", n), g, nq, cfg)
				table2Rows = append(table2Rows, rows...)
				experiments.PrintTable2(os.Stdout, rows)
			}
		}
	}
	if len(table2Rows) > 0 {
		writeCSV("table2.csv", func(f *os.File) error {
			return experiments.WriteTable2CSV(f, table2Rows)
		})
	}

	if *ablation {
		section("Ablation — generalization phase contribution (§5.2)")
		fraction := 0.07
		rows := experiments.RunAblationGeneralization(bio.g, bio.queries, fraction, staticCfg)
		experiments.PrintAblation(os.Stdout, rows)

		section("Ablation — dynamic-k distribution (§5.1)")
		series := experiments.RunStaticAll(bio.g, bio.queries, staticCfg)
		dist := experiments.KDistribution(series)
		for k := 2; k <= 8; k++ {
			if dist[k] > 0 {
				fmt.Printf("k=%d: %d runs\n", k, dist[k])
			}
		}
	}

	if *sampled {
		section("Sampled interactive sessions (§6 future work) — kS vs sampled(kS)")
		n := 10000
		if *quick {
			n = 3000
		}
		if *synSize > 0 {
			n = *synSize
		}
		g := datasets.Synthetic(n, int64(n))
		goal := datasets.SynQueries(g)[2]
		sampleCfg := sampling.Config{TargetNodes: n / 10, Seed: *seed}
		strategies := []interactive.Strategy{
			interactive.KS{},
			sampling.Restrict{Base: interactive.KS{}, Sample: sampling.RandomWalk(g, sampleCfg)},
			sampling.Restrict{Base: interactive.KS{}, Sample: sampling.ForestFire(g, sampleCfg)},
		}
		cap := interactiveCap
		if cap == 0 {
			cap = 150
		}
		rows := experiments.RunInteractiveStrategies("syn-sampled", g, goal, strategies,
			experiments.InteractiveConfig{Seed: *seed, MaxInteractions: cap})
		experiments.PrintTable2(os.Stdout, rows)
	}

	if *theorem {
		section("Theorem 3.5 self-check — characteristic samples identify the workload queries")
		alpha := bio.g.Alphabet()
		for _, nq := range bio.queries {
			q := query.MustParse(alpha, nq.Expr)
			ok, err := charsample.Verify(q)
			status := "identified"
			if err != nil {
				status = "error: " + err.Error()
			} else if !ok {
				status = "NOT identified"
			}
			fmt.Printf("%s\t(canonical size %d, k=%d)\t%s\n",
				nq.Name, q.PrefixFree().Size(), charsample.KFor(q), status)
		}
	}
}

type bioWorkload struct {
	g       *graph.Graph
	queries []datasets.NamedQuery
}

func loadBio() *bioWorkload {
	g := datasets.AliBaba()
	return &bioWorkload{g: g, queries: datasets.BioQueries(g)}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func writeCSV(name string, write func(*os.File) error) {
	if *csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(*csvDir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
}
