package main

// Deterministic workload replay: drive a recorded pqworkload file
// against the in-process engine (default) or a live server
// (-replay-addr), reporting latency per abstract query class. The
// in-process path goes through engine.RunLoad's ReplaySpec axis; the
// HTTP path mirrors its closed loop client-for-client — same per-client
// seeding, same draw sequence — tagging every request with the
// X-Workload-Class header so the server's /metrics splits latency by
// class on its side too.

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/engine"
	"pathquery/internal/server"
	"pathquery/internal/telemetry"
	"pathquery/internal/workload"
)

var (
	replayFile = flag.String("replay", "", "replay this pqworkload file and report per-class latency")
	replayMix  = flag.String("replay-mix", "",
		"class-weight mix, e.g. AQ1=3,AQ7=1,AQ28=0 (unlisted classes weigh 1, 0 excludes)")
	replayAddr = flag.String("replay-addr", "",
		"replay over HTTP against this base URL (e.g. http://localhost:8080 or .../v1/graphs/g) instead of in-process")
	replayClients  = flag.Int("replay-clients", 8, "closed-loop replay clients")
	replayDuration = flag.Duration("replay-duration", 5*time.Second, "replay duration (time-bounded mode)")
	replayRequests = flag.Int("replay-requests", 0,
		"fixed requests per client — the deterministic mode; overrides -replay-duration")
	replayMutateRate = flag.Float64("replay-mutate-rate", 0, "probability each replay request mutates (0..1)")
	replayAnchored   = flag.String("replay-anchored", "any", "tier filter: any, only (anchored), none (unanchored)")
)

func runReplay() error {
	f, err := workload.ReadFile(*replayFile)
	if err != nil {
		return err
	}
	spec := &engine.ReplaySpec{}
	for _, e := range f.Entries {
		spec.Entries = append(spec.Entries, engine.ReplayEntry{
			Class: e.Class, Expr: e.Expr, Semantics: e.Semantics, From: e.From,
		})
	}
	if spec.ClassWeights, err = parseMix(*replayMix); err != nil {
		return err
	}
	switch *replayAnchored {
	case "", "any":
		spec.Anchored = engine.AnchoredAny
	case "only":
		spec.Anchored = engine.AnchoredOnly
	case "none":
		spec.Anchored = engine.AnchoredNone
	default:
		return fmt.Errorf("-replay-anchored %q: want any, only or none", *replayAnchored)
	}

	section(fmt.Sprintf("Replay — %s: %d entries, seed %d, graph %s (%d nodes)",
		*replayFile, len(f.Entries), f.Header.Seed, f.Header.Graph.Fingerprint, f.Header.Graph.Nodes))
	if *replayAddr != "" {
		return replayHTTP(f, spec)
	}
	return replayInProcess(f, spec)
}

// parseMix parses "AQ1=3,AQ7=0.5" into class weights.
func parseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-replay-mix entry %q: want CLASS=WEIGHT", part)
		}
		if !workload.ValidClass(k) {
			return nil, fmt.Errorf("-replay-mix: unknown class %q", k)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-replay-mix %s: bad weight %q", k, v)
		}
		mix[k] = w
	}
	return mix, nil
}

// replayInProcess rebuilds the file's graph (the synthetic generator is
// deterministic in -seed, matching pqworkload's default) and replays
// through engine.RunLoad.
func replayInProcess(f *workload.File, spec *engine.ReplaySpec) error {
	g := datasets.Synthetic(f.Header.Graph.Nodes, *seed)
	if fp := workload.Fingerprint(g.Snapshot()); fp != f.Header.Graph.Fingerprint {
		fmt.Printf("warning: rebuilt graph fingerprint %s != file's %s — pass the forge's -seed; anchored entries may not resolve\n",
			fp, f.Header.Graph.Fingerprint)
	}
	e := engine.New(g, engine.Options{})
	report, err := engine.RunLoad(e, engine.LoadConfig{
		Clients:           *replayClients,
		Duration:          *replayDuration,
		RequestsPerClient: *replayRequests,
		Replay:            spec,
		MutateRate:        *replayMutateRate,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	printClassTable(report.ClassLatency)
	return nil
}

// replayHTTP drives a live server with the same closed loop RunLoad
// runs in-process: per-client seeded RNGs, the same weighted draw, a
// mutation with -replay-mutate-rate probability; per-class latency is
// measured at the client and, via the X-Workload-Class header, split in
// the server's own /metrics.
func replayHTTP(f *workload.File, spec *engine.ReplaySpec) error {
	entries, chooser, err := spec.Flatten()
	if err != nil {
		return err
	}
	queryURL, mutateURL := *replayAddr+"/v1/query", *replayAddr+"/mutate"
	if strings.Contains(*replayAddr, "/v1/graphs/") {
		queryURL = *replayAddr + "/query"
	}
	hists := make(map[string]*telemetry.Histogram)
	for _, re := range entries {
		if hists[re.Class] == nil {
			hists[re.Class] = &telemetry.Histogram{}
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		requests uint64
		mutI     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	nextMutation := func() string {
		mu.Lock()
		i := mutI
		mutI++
		mu.Unlock()
		return fmt.Sprintf(`{"edges":[{"from":"replay-%d","label":"replay","to":"replay-%d"}]}`, i, i+1)
	}
	post := func(url, body, class string) error {
		req, err := http.NewRequest("POST", url, strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if class != "" {
			req.Header.Set(server.WorkloadClassHeader, class)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(buf.String()))
		}
		return nil
	}

	start := time.Now()
	deadline := start.Add(*replayDuration)
	for c := 0; c < *replayClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			var issued uint64
			defer func() {
				mu.Lock()
				requests += issued
				mu.Unlock()
			}()
			for n := 1; ; n++ {
				if *replayRequests > 0 {
					if n > *replayRequests {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if failed() {
					return
				}
				if *replayMutateRate > 0 && rng.Float64() < *replayMutateRate {
					if err := post(mutateURL, nextMutation(), ""); err != nil {
						fail(err)
						return
					}
					issued++
					continue
				}
				re := &entries[chooser.Choose(rng.Float64())]
				body := requestBody(re)
				t0 := time.Now()
				if err := post(queryURL, body, re.Class); err != nil {
					fail(err)
					return
				}
				hists[re.Class].Observe(time.Since(t0))
				issued++
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	wall := time.Since(start)
	fmt.Printf("replayed %d requests against %s in %v (%.0f req/s, %d clients)\n",
		requests, *replayAddr, wall.Round(time.Millisecond), float64(requests)/wall.Seconds(), *replayClients)
	snaps := make(map[string]telemetry.HistogramSnapshot, len(hists))
	for class, h := range hists {
		snaps[class] = h.Snapshot()
	}
	printClassTable(snaps)
	return nil
}

func requestBody(re *engine.ReplayEntry) string {
	b := &strings.Builder{}
	fmt.Fprintf(b, `{"query":%q`, re.Expr)
	if re.Semantics != "" {
		fmt.Fprintf(b, `,"semantics":%q`, re.Semantics)
	}
	if re.From != "" {
		fmt.Fprintf(b, `,"from":%q`, re.From)
	}
	b.WriteString("}")
	return b.String()
}

// printClassTable renders per-class latency in AQ order, every class in
// the mix on its own line (zero counts included, so a smoke run can
// assert that every class was actually exercised).
func printClassTable(classes map[string]telemetry.HistogramSnapshot) {
	if len(classes) == 0 {
		fmt.Println("no per-class latency recorded")
		return
	}
	names := make([]string, 0, len(classes))
	for class := range classes {
		names = append(names, class)
	}
	sort.Slice(names, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(names[i], "AQ"))
		nj, _ := strconv.Atoi(strings.TrimPrefix(names[j], "AQ"))
		if ni != nj {
			return ni < nj
		}
		return names[i] < names[j]
	})
	fmt.Println("per-class latency:")
	for _, class := range names {
		s := classes[class]
		fmt.Printf("class=%s count=%d p50=%v p99=%v max=%v\n",
			class, s.Count(), s.Quantile(0.50), s.Quantile(0.99), time.Duration(s.Max))
	}
}
