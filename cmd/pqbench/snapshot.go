package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark snapshots: run the repository's go-benchmarks and persist the
// parsed results as BENCH_<date>.json so the perf trajectory is tracked
// in-tree, PR over PR. The snapshot runs `go test -bench` as a subprocess
// (benchmarks live in the root package's test binary, plus the graph
// package's publish benchmarks), so it must be invoked from inside the
// module.

// Snapshot is the BENCH_<date>.json document.
type Snapshot struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	BenchFlags string           `json:"bench_flags"`
	Note       string           `json:"note,omitempty"`
	Benchmarks []BenchmarkEntry `json:"benchmarks"`
}

// BenchmarkEntry is one parsed benchmark result line. Metrics holds every
// "value unit" pair go test reported: ns/op always, B/op and allocs/op
// from -benchmem, plus any custom b.ReportMetric units.
type BenchmarkEntry struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func runSnapshot() error {
	args := []string{"test", "-run", "^$", "-bench", *snapshotBench,
		"-benchmem", "-count", strconv.Itoa(*snapshotCount),
		"pathquery", "pathquery/internal/graph"}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchFlags: strings.Join(args[1:], " "),
		Note:       *snapshotNote,
		Benchmarks: parseBenchOutput(string(out)),
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *snapshotBench)
	}
	name := *snapshotOut
	if name == "" {
		name = availableName("BENCH_" + snap.Date)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmark lines)\n", name, len(snap.Benchmarks))
	return nil
}

// availableName returns the first unused snapshot file name for the given
// base: base.json, then base-2.json, base-3.json, ... — earlier snapshots
// of the same day are history, never silently overwritten.
func availableName(base string) string {
	name := base + ".json"
	for n := 2; ; n++ {
		if _, err := os.Stat(name); os.IsNotExist(err) {
			return name
		}
		name = fmt.Sprintf("%s-%d.json", base, n)
	}
}

// parseBenchOutput extracts benchmark lines from go test output. Repeated
// -count runs of the same benchmark keep the fastest ns/op line, matching
// how benchstat-style comparisons read best-of runs.
func parseBenchOutput(out string) []BenchmarkEntry {
	best := map[string]BenchmarkEntry{}
	var order []string
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		entry := BenchmarkEntry{Name: m[1], Metrics: map[string]float64{}}
		entry.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				entry.Metrics[fields[i+1]] = v
			}
		}
		prev, seen := best[entry.Name]
		if !seen {
			order = append(order, entry.Name)
		}
		if !seen || entry.Metrics["ns/op"] < prev.Metrics["ns/op"] {
			best[entry.Name] = entry
		}
	}
	entries := make([]BenchmarkEntry, 0, len(order))
	for _, name := range order {
		entries = append(entries, best[name])
	}
	return entries
}
