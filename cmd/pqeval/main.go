// Command pqeval evaluates a path query on a graph database.
//
//	pqeval -graph g.tsv -query '(tram+bus)*·cinema' [-binary from]
//
// It prints the selected nodes (monadic semantics by default; with
// -binary, the nodes reachable from the given source under binary
// semantics) and the query's selectivity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pathquery"
	"pathquery/internal/graph"
	"pathquery/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqeval: ")
	graphPath := flag.String("graph", "", "graph TSV file (required)")
	querySrc := flag.String("query", "", "regular expression")
	queryFile := flag.String("query-file", "", "saved query file (pqlearn -save)")
	binaryFrom := flag.String("binary", "", "evaluate under binary semantics from this node")
	quiet := flag.Bool("quiet", false, "print only the selectivity")
	flag.Parse()
	if *graphPath == "" || (*querySrc == "" && *queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadTSV(f, nil)
	if err != nil {
		log.Fatal(err)
	}
	var q *pathquery.Query
	if *queryFile != "" {
		qf, err := os.Open(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := query.Load(qf)
		qf.Close()
		if err != nil {
			log.Fatal(err)
		}
		q = loaded.Rebase(g.Alphabet())
	} else {
		q, err = pathquery.ParseQuery(g.Alphabet(), *querySrc)
		if err != nil {
			log.Fatal(err)
		}
	}
	// Compile the evaluation plan once and pin one epoch snapshot; both
	// semantics below evaluate the compiled form against the same CSR.
	pl := q.Plan()
	snap := g.Snapshot()
	fmt.Printf("graph: %v\nquery: %v (size %d)\nplan: %d states, %s layout, compiled in %v\n",
		g, q, q.Size(), pl.NumStates, pl.Layout, pl.CompileTime)

	if *binaryFrom != "" {
		from, ok := g.NodeByName(*binaryFrom)
		if !ok {
			log.Fatalf("no node %q", *binaryFrom)
		}
		for _, v := range q.SelectPairsFromOn(snap, from) {
			fmt.Printf("(%s, %s)\n", *binaryFrom, snap.NodeName(v))
		}
		return
	}

	sel := q.EvaluateOn(snap)
	if !*quiet {
		for _, v := range sel.Nodes() {
			fmt.Println(snap.NodeName(v))
		}
	}
	fmt.Printf("selected %d of %d nodes (selectivity %.4f%%)\n",
		sel.Count(), snap.NumNodes(), 100*sel.Selectivity())
}
