// Command pqeval evaluates a path query on a graph database through the
// unified evaluation surface (query.EvaluateReq).
//
//	pqeval -graph g.tsv -query '(tram+bus)*·cinema' [-semantics witness] [-from N1]
//	pqeval -store /var/lib/pathquery/g1 -query 'a·b*'
//
// -store opens a durable graph directory written by pqserve -data
// (checkpoint + WAL, recovered exactly as the server would), so the
// serving state is queryable offline.
//
// -semantics picks the result shape: nodes (default, the paper's monadic
// semantics), pairsFrom (binary semantics from -from), witness (monadic
// selection with one reconstructed accepting path per node), count
// (distinct accepting path lengths per node up to -maxlen), or shortest
// (shortest witness per node, or per pair with -from). -timeout bounds
// the evaluation through context cancellation. The legacy -binary flag is
// shorthand for -semantics pairsFrom -from.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pathquery"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqeval: ")
	graphPath := flag.String("graph", "", "graph TSV file")
	storePath := flag.String("store", "", "durable graph directory (pqserve -data tenant) instead of -graph")
	querySrc := flag.String("query", "", "regular expression")
	queryFile := flag.String("query-file", "", "saved query file (pqlearn -save)")
	semantics := flag.String("semantics", "", "nodes|pairsFrom|witness|count|shortest (default nodes)")
	from := flag.String("from", "", "anchor node for pairsFrom/shortest semantics")
	limit := flag.Int("limit", 0, "bound the witness paths computed (0 = all)")
	maxLen := flag.Int("maxlen", 0, "count semantics: max path length (0 = 2·|Q|+1)")
	timeout := flag.Duration("timeout", 0, "evaluation deadline (0 = none)")
	binaryFrom := flag.String("binary", "", "deprecated: -semantics pairsFrom -from NODE")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	flag.Parse()
	if (*graphPath == "") == (*storePath == "") || (*querySrc == "" && *queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *binaryFrom != "" {
		*semantics, *from = "pairsFrom", *binaryFrom
	}

	var g *graph.Graph
	if *storePath != "" {
		st, err := store.Open(*storePath, store.Options{Logf: log.Printf})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		g = st.Graph()
		stats := st.Stats()
		fmt.Printf("store: epoch %d (checkpoint %d, %d WAL records replayed in %v)\n",
			stats.Epoch, stats.CheckpointEpoch, stats.RecoveryReplayed, stats.RecoveryReplay)
	} else {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if g, err = graph.ReadTSV(f, nil); err != nil {
			log.Fatal(err)
		}
	}
	var q *pathquery.Query
	if *queryFile != "" {
		qf, err := os.Open(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := query.Load(qf)
		qf.Close()
		if err != nil {
			log.Fatal(err)
		}
		q = loaded.Rebase(g.Alphabet())
	} else {
		parsed, err := pathquery.ParseQuery(g.Alphabet(), *querySrc)
		if err != nil {
			log.Fatal(err)
		}
		q = parsed
	}

	sem, err := query.ParseSemantics(*semantics)
	if err != nil {
		log.Fatal(err)
	}
	req := query.Req{Semantics: sem, Limit: *limit, MaxLen: *maxLen}
	// Compile the evaluation plan once and pin one epoch snapshot; the
	// whole evaluation runs the compiled form against the same CSR.
	pl := q.Plan()
	snap := g.Snapshot()
	if *from != "" {
		u, ok := g.NodeByName(*from)
		if !ok {
			log.Fatalf("no node %q", *from)
		}
		req.From, req.HasFrom = u, true
	}
	fmt.Printf("graph: %v\nquery: %v (size %d)\nplan: %d states, %s layout, compiled in %v\n",
		g, q, q.Size(), pl.NumStates, pl.Layout, pl.CompileTime)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	ans, err := q.EvaluateReq(ctx, snap, req)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !*quiet {
		switch {
		case len(ans.Paths) > 0:
			for _, pw := range ans.Paths {
				fmt.Printf("%s", snap.NodeName(pw.Nodes[0]))
				for i, sym := range pw.Word {
					fmt.Printf(" -%s-> %s", g.Alphabet().Name(sym), snap.NodeName(pw.Nodes[i+1]))
				}
				fmt.Println()
			}
		case len(ans.Counts) > 0:
			for _, nc := range ans.Counts {
				fmt.Printf("%s\t%d\n", snap.NodeName(nc.Node), nc.Count)
			}
		default:
			for _, v := range ans.Nodes {
				fmt.Println(snap.NodeName(v))
			}
		}
	}
	if sem == query.SemanticsNodes {
		fmt.Printf("selected %d of %d nodes (selectivity %.4f%%) in %v\n",
			ans.Count, snap.NumNodes(), 100*float64(ans.Count)/float64(max(snap.NumNodes(), 1)), elapsed)
	} else {
		fmt.Printf("%s: %d matches in %v\n", sem, ans.Count, elapsed)
	}
}
