// Command pqworkload generates a benchmark workload of regular-expression
// path queries for a graph — the paper's Section 6 future-work item
// ("develop a benchmark devoted to queries defined by regular
// expressions"). Queries are instantiated per shape family and calibrated
// into selectivity bands, and reported with the structural and
// learning-difficulty measures benchmark consumers need.
//
//	pqworkload -graph g.tsv
//	pqworkload -graph g.tsv -shapes chain,abstar-c -csv out.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pathquery/internal/graph"
	"pathquery/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqworkload: ")
	graphPath := flag.String("graph", "", "graph TSV file (required)")
	shapeList := flag.String("shapes", "", "comma-separated shapes (default: all)")
	csvPath := flag.String("csv", "", "also write CSV here")
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.ReadTSV(f, nil)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	shapes := workload.AllShapes
	if *shapeList != "" {
		shapes = nil
		for _, s := range strings.Split(*shapeList, ",") {
			shapes = append(shapes, workload.Shape(strings.TrimSpace(s)))
		}
	}
	suite := workload.Suite(g, shapes, workload.DefaultBands)
	fmt.Printf("workload for %v — %d queries\n", g, len(suite))
	workload.Print(os.Stdout, suite)

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := workload.WriteCSV(out, suite); err != nil {
			log.Fatal(err)
		}
	}
}
