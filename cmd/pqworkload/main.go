// Command pqworkload generates benchmark workloads of regular-expression
// path queries for a graph — the paper's Section 6 future-work item
// ("develop a benchmark devoted to queries defined by regular
// expressions").
//
// Suite mode (the original surface) instantiates the shape families and
// calibrates them into selectivity bands, reporting the structural and
// learning-difficulty measures benchmark consumers need:
//
//	pqworkload -graph g.tsv
//	pqworkload -graph g.tsv -shapes chain,abstar-c -csv out.csv
//
// Forge mode (-out) runs the PathForge three-tier generator — abstract
// classes AQ1–AQ28 → label-instantiated templates → node-anchored real
// queries — and records the result as a versioned workload file that
// `pqbench -replay` can drive deterministically:
//
//	pqworkload -out w.ndjson -seed 7
//	pqworkload -graph g.tsv -out w.ndjson -seed 7 -anchors 4
//	pqworkload -synthetic 300 -seed 7 -out w.ndjson -classes AQ1,AQ7,AQ27
//
// Forging is deterministic: the same graph, seed and parameters always
// produce a byte-identical file. Without -graph the workload is forged
// over the same synthetic scale-free graph `pqserve -synthetic N -seed S`
// serves, so a forged file replays against a matching live server.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pqworkload: ")
	graphPath := flag.String("graph", "", "graph TSV file (default: a synthetic scale-free graph)")
	synthetic := flag.Int("synthetic", 1000, "synthetic graph size when -graph is not given")
	shapeList := flag.String("shapes", "", "suite mode: comma-separated shapes (default: all)")
	csvPath := flag.String("csv", "", "suite mode: also write CSV here")
	outPath := flag.String("out", "", "forge mode: write a replayable workload file here")
	seed := flag.Int64("seed", 1, "forge + synthetic-graph seed")
	classList := flag.String("classes", "", "forge mode: comma-separated AQ classes (default: all 28)")
	templates := flag.Int("templates", 2, "forge mode: template instantiations per class")
	anchors := flag.Int("anchors", 2, "forge mode: anchored real queries per template (-1: none)")
	topDegree := flag.Int("topdegree", 64, "forge mode: anchor candidate pool size per first-symbol class")
	flag.Parse()

	var g *graph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		g, rerr = graph.ReadTSV(f, nil)
		f.Close()
		if rerr != nil {
			log.Fatal(rerr)
		}
	} else if *outPath != "" {
		g = datasets.Synthetic(*synthetic, *seed)
	} else {
		flag.Usage()
		os.Exit(2)
	}

	if *outPath != "" {
		forge(g, *outPath, *seed, *classList, *templates, *anchors, *topDegree)
		return
	}

	shapes := workload.AllShapes
	if *shapeList != "" {
		shapes = nil
		for _, s := range strings.Split(*shapeList, ",") {
			shapes = append(shapes, workload.Shape(strings.TrimSpace(s)))
		}
	}
	suite := workload.Suite(g, shapes, workload.DefaultBands)
	fmt.Printf("workload for %v — %d queries\n", g, len(suite))
	workload.Print(os.Stdout, suite)

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := workload.WriteCSV(out, suite); err != nil {
			log.Fatal(err)
		}
	}
}

func forge(g *graph.Graph, outPath string, seed int64, classList string, templates, anchors, topDegree int) {
	cfg := workload.ForgeConfig{
		Seed:               seed,
		TemplatesPerClass:  templates,
		AnchorsPerTemplate: anchors,
		TopDegree:          topDegree,
	}
	if anchors == 0 {
		cfg.AnchorsPerTemplate = -1 // flag 0 means "none"; config 0 means default
	}
	if classList != "" {
		for _, c := range strings.Split(classList, ",") {
			cfg.Classes = append(cfg.Classes, strings.TrimSpace(c))
		}
	}
	f, err := workload.ForgeGraph(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.WriteFile(outPath, f); err != nil {
		log.Fatal(err)
	}
	byTier := map[string]int{}
	classes := map[string]bool{}
	for _, e := range f.Entries {
		byTier[e.Tier]++
		classes[e.Class] = true
	}
	fmt.Printf("forged %d entries (%d template, %d real) across %d classes into %s\n",
		len(f.Entries), byTier[workload.TierTemplate], byTier[workload.TierReal], len(classes), outPath)
	fmt.Printf("graph %s (%d nodes, %d edges, %d labels)  seed %d\n",
		f.Header.Graph.Fingerprint, f.Header.Graph.Nodes, f.Header.Graph.Edges, f.Header.Graph.Labels, seed)
}
