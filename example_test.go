package pathquery_test

import (
	"fmt"

	"pathquery"
)

// The paper's Figure 1 scenario: learn "from which neighborhoods can I
// reach a cinema by public transportation" from three labeled nodes.
func Example() {
	g := pathquery.NewGraph(nil)
	for _, e := range [][3]string{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N4", "cinema", "C1"},
		{"N6", "cinema", "C2"},
		{"N5", "restaurant", "R1"},
	} {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	n2, _ := g.NodeByName("N2")
	n6, _ := g.NodeByName("N6")
	n5, _ := g.NodeByName("N5")

	q, err := pathquery.Learn(g, pathquery.Sample{
		Pos: []pathquery.NodeID{n2, n6},
		Neg: []pathquery.NodeID{n5},
	}, pathquery.Options{})
	if err != nil {
		fmt.Println("abstained:", err)
		return
	}
	for _, v := range q.SelectNodes(g) {
		fmt.Println(g.NodeName(v))
	}
	// The learned query (bus + cinema here — more labels would refine it
	// towards (tram+bus)*·cinema) selects the positives and N4.
	// Output:
	// N4
	// N2
	// N6
}

// Evaluating a hand-written query under monadic semantics.
func ExampleQuery_selectNodes() {
	g := pathquery.NewGraph(nil)
	g.AddEdgeByName("start", "a", "mid")
	g.AddEdgeByName("mid", "b", "end")

	q, _ := pathquery.ParseQuery(g.Alphabet(), "a·b")
	for _, v := range q.SelectNodes(g) {
		fmt.Println(g.NodeName(v))
	}
	// Output:
	// start
}

// The learner abstains when the examples are contradictory — here every
// path of the positive node is covered by the negative one.
func ExampleLearn_abstain() {
	g := pathquery.NewGraph(nil)
	g.AddEdgeByName("pos", "a", "pos")
	g.AddEdgeByName("neg", "a", "neg")
	pos, _ := g.NodeByName("pos")
	neg, _ := g.NodeByName("neg")

	_, err := pathquery.Learn(g, pathquery.Sample{
		Pos: []pathquery.NodeID{pos},
		Neg: []pathquery.NodeID{neg},
	}, pathquery.Options{})
	fmt.Println(err == pathquery.ErrAbstain)
	// Output:
	// true
}
