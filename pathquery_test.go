package pathquery_test

import (
	"errors"
	"testing"

	"pathquery"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
)

// The facade tests mirror the paper's running examples end to end through
// the public API only (plus paperfix for fixture graphs).

func TestFacadeQuickstartScenario(t *testing.T) {
	g := pathquery.NewGraph(nil)
	g.AddEdgeByName("N1", "tram", "N4")
	g.AddEdgeByName("N2", "bus", "N1")
	g.AddEdgeByName("N4", "cinema", "C1")
	g.AddEdgeByName("N5", "restaurant", "R1")
	n2, _ := g.NodeByName("N2")
	n5, _ := g.NodeByName("N5")

	q, err := pathquery.Learn(g, pathquery.Sample{
		Pos: []pathquery.NodeID{n2},
		Neg: []pathquery.NodeID{n5},
	}, pathquery.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	if !q.Selects(g, n2) {
		t.Fatal("positive not selected")
	}
	if q.Selects(g, n5) {
		t.Fatal("negative selected")
	}
}

func TestFacadeParseAndScore(t *testing.T) {
	g, _ := paperfix.G0()
	goal, err := pathquery.ParseQuery(g.Alphabet(), "(a·b)*·c")
	if err != nil {
		t.Fatal(err)
	}
	same := pathquery.Score(g, goal, goal)
	if !same.Exact() || same.F1() != 1 {
		t.Fatal("self-score should be exact")
	}
	other, _ := pathquery.ParseQuery(g.Alphabet(), "b")
	if pathquery.Score(g, goal, other).Exact() {
		t.Fatal("different selections scored exact")
	}
}

func TestFacadeLearnPaperExample(t *testing.T) {
	g, s := paperfix.G0()
	res, err := pathquery.LearnDetailed(g, s, pathquery.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	goal, _ := pathquery.ParseQuery(g.Alphabet(), "(a·b)*·c")
	if !res.Query.EquivalentTo(goal) {
		t.Fatalf("learned %v", res.Query)
	}
}

func TestFacadeAbstain(t *testing.T) {
	g, s := paperfix.Figure5()
	_, err := pathquery.Learn(g, s, pathquery.Options{})
	if !errors.Is(err, pathquery.ErrAbstain) {
		t.Fatalf("err = %v, want ErrAbstain", err)
	}
}

func TestFacadeConsistent(t *testing.T) {
	g, s := paperfix.G0()
	if !pathquery.Consistent(g, s) {
		t.Fatal("G0 sample is consistent")
	}
	g5, s5 := paperfix.Figure5()
	if pathquery.Consistent(g5, s5) {
		t.Fatal("Figure 5 sample is inconsistent")
	}
}

func TestFacadeInteractiveSession(t *testing.T) {
	g, _ := paperfix.G0()
	goal, _ := pathquery.ParseQuery(g.Alphabet(), "(a·b)*·c")
	sess := pathquery.NewSession(g, pathquery.SessionOptions{
		Strategy: interactive.KS{},
		Seed:     1,
	})
	res, err := sess.Run(
		pathquery.NewQueryOracle(g, goal),
		pathquery.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Query.EquivalentOn(g, goal) {
		t.Fatalf("interactive learned %v", res.Query)
	}
}

func TestFacadeCharacteristicSample(t *testing.T) {
	alpha := pathquery.NewAlphabet()
	goal, err := pathquery.ParseQuery(alpha, "(a·b)*·c")
	if err != nil {
		t.Fatal(err)
	}
	g, s, err := pathquery.CharacteristicSample(goal)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := pathquery.Learn(g, s, pathquery.Options{
		K: pathquery.CharacteristicK(goal),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !learned.EquivalentTo(goal) {
		t.Fatalf("learned %v from characteristic sample", learned)
	}
}

func TestFacadeBinaryAndNary(t *testing.T) {
	g := pathquery.NewGraph(nil)
	g.AddEdgeByName("a", "x", "b")
	g.AddEdgeByName("b", "y", "c")
	g.AddEdgeByName("d", "z", "e")
	na, _ := g.NodeByName("a")
	nb, _ := g.NodeByName("b")
	nc, _ := g.NodeByName("c")
	nd, _ := g.NodeByName("d")
	ne, _ := g.NodeByName("e")

	bq, err := pathquery.LearnBinary(g, pathquery.PairSample{
		Pos: []pathquery.Pair{{From: na, To: nb}},
		Neg: []pathquery.Pair{{From: nd, To: ne}},
	}, pathquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bq.SelectsPair(g, na, nb) {
		t.Fatal("binary positive missed")
	}

	nq, err := pathquery.LearnNary(g, pathquery.TupleSample{
		Pos: [][]pathquery.NodeID{{na, nb, nc}},
		Neg: [][]pathquery.NodeID{{nd, ne, na}},
	}, pathquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := nq.SelectsTuple(g, []pathquery.NodeID{na, nb, nc})
	if err != nil || !ok {
		t.Fatalf("n-ary positive missed: %v", err)
	}
}

func TestFacadeIsInformative(t *testing.T) {
	g, s, u := paperfix.Figure10()
	if pathquery.IsInformative(g, s, u) {
		t.Fatal("Figure 10's u is certain, not informative")
	}
}
