// Benchmarks regenerating the paper's tables and figures (see DESIGN.md's
// experiment index). Each table/figure has a bench whose measured quantity
// mirrors the paper's: selectivity evaluation for Table 1, learning runs
// for Figures 11/12, interactive sessions for Table 2, plus ablations and
// substrate micro-benchmarks. cmd/pqbench runs the full-parameter
// versions; the benches here are scaled to stay benchmarkable.
package pathquery_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathquery/internal/automata"
	"pathquery/internal/charsample"
	"pathquery/internal/core"
	"pathquery/internal/datasets"
	"pathquery/internal/engine"
	"pathquery/internal/experiments"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
	"pathquery/internal/plan"
	"pathquery/internal/query"
	"pathquery/internal/regex"
	"pathquery/internal/rpni"
	"pathquery/internal/scp"
	"pathquery/internal/store"
	"pathquery/internal/workload"
)

// Shared fixtures, built once.
var (
	aliOnce    sync.Once
	aliGraph   *graph.Graph
	aliQueries []datasets.NamedQuery

	synOnce    sync.Once
	synGraph   *graph.Graph
	synQueries []datasets.NamedQuery
)

func alibaba() (*graph.Graph, []datasets.NamedQuery) {
	aliOnce.Do(func() {
		aliGraph = datasets.AliBaba()
		aliQueries = datasets.BioQueries(aliGraph)
	})
	return aliGraph, aliQueries
}

func synthetic() (*graph.Graph, []datasets.NamedQuery) {
	synOnce.Do(func() {
		synGraph = datasets.Synthetic(10000, 10000)
		synQueries = datasets.SynQueries(synGraph)
	})
	return synGraph, synQueries
}

// BenchmarkTable1BioSelectivity regenerates Table 1: evaluate each bio
// query on the AliBaba stand-in and measure selectivity computation.
func BenchmarkTable1BioSelectivity(b *testing.B) {
	g, qs := alibaba()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(g, qs)
		if len(rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig11StaticF1Bio regenerates a Figure 11(a) sweep (scaled: one
// trial, a short fraction grid) and reports the mean F1 at the largest
// fraction as a custom metric.
func BenchmarkFig11StaticF1Bio(b *testing.B) {
	g, qs := alibaba()
	cfg := experiments.StaticConfig{
		Fractions: []float64{0.01, 0.07},
		Trials:    1,
		Seed:      1,
	}
	var lastF1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.RunStaticAll(g, qs, cfg)
		lastF1 = series[5].Points[len(series[5].Points)-1].F1 // bio6 at 7%
	}
	b.ReportMetric(lastF1, "F1@7%")
}

// BenchmarkFig11StaticF1Syn regenerates a Figure 11(b) sweep on the 10k
// synthetic graph (scaled).
func BenchmarkFig11StaticF1Syn(b *testing.B) {
	g, qs := synthetic()
	cfg := experiments.StaticConfig{
		Fractions: []float64{0.01, 0.05},
		Trials:    1,
		Seed:      1,
	}
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.RunStatic(g, qs[2], cfg) // syn3: fastest to converge
		f1 = series.Points[len(series.Points)-1].F1
	}
	b.ReportMetric(f1, "F1@5%")
}

// BenchmarkFig12LearnTimeBio measures what Figure 12 plots: one learner
// invocation on a fixed 7%-labeled sample, per query difficulty class
// (bio1 most selective, bio6 least).
func BenchmarkFig12LearnTimeBio(b *testing.B) {
	g, qs := alibaba()
	for _, nq := range []datasets.NamedQuery{qs[0], qs[2], qs[5]} {
		b.Run(nq.Name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			pos, neg := datasets.RandomSample(g, nq.Query, 0.07, rng)
			s := core.Sample{Pos: pos, Neg: neg}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LearnDetailed(g, s, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12LearnTimeSyn is the synthetic counterpart of Figure 12(b):
// one learner invocation at 1% labels on the 10k graph.
func BenchmarkFig12LearnTimeSyn(b *testing.B) {
	g, qs := synthetic()
	rng := rand.New(rand.NewSource(2))
	pos, neg := datasets.RandomSample(g, qs[1].Query, 0.01, rng)
	s := core.Sample{Pos: pos, Neg: neg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LearnDetailed(g, s, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Interactive runs one interactive session per strategy on
// the AliBaba stand-in with goal bio6 (the fastest-converging query) and
// reports labels used.
func BenchmarkTable2Interactive(b *testing.B) {
	g, qs := alibaba()
	goal := qs[5]
	for _, strat := range []interactive.Strategy{interactive.KR{}, interactive.KS{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			var labels int
			for i := 0; i < b.N; i++ {
				sess := interactive.NewSession(g, interactive.Options{
					Strategy:        strat,
					Seed:            int64(i),
					MaxInteractions: 200,
				})
				res, err := sess.Run(
					interactive.NewQueryOracle(g, goal.Query),
					interactive.ExactMatch(g, goal.Query))
				if err != nil {
					b.Fatal(err)
				}
				labels = res.Labels()
			}
			b.ReportMetric(float64(labels), "labels")
		})
	}
}

// BenchmarkAblationNoGeneralization measures the merge phase's cost and
// contribution (§5.2): learning with and without generalization.
func BenchmarkAblationNoGeneralization(b *testing.B) {
	g, qs := alibaba()
	rng := rand.New(rand.NewSource(3))
	pos, neg := datasets.RandomSample(g, qs[5].Query, 0.07, rng)
	s := core.Sample{Pos: pos, Neg: neg}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"full", false}, {"no-merge", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.LearnDetailed(g, s, core.Options{DisableGeneralization: mode.disable})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDynamicK compares the dynamic schedule against fixed
// k = 4 (§5.1: small k usually suffices; a fixed large k wastes SCP search).
func BenchmarkAblationDynamicK(b *testing.B) {
	g, qs := alibaba()
	rng := rand.New(rand.NewSource(4))
	pos, neg := datasets.RandomSample(g, qs[2].Query, 0.05, rng)
	s := core.Sample{Pos: pos, Neg: neg}
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"dynamic", core.Options{}},
		{"fixed-k4", core.Options{K: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LearnDetailed(g, s, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem35Verify measures the full learnability pipeline:
// characteristic sample construction plus exact identification.
func BenchmarkTheorem35Verify(b *testing.B) {
	g, _ := alibaba()
	q := query.MustParse(g.Alphabet(), "(l02+l03)·l04*·l05")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := charsample.Verify(q)
		if err != nil || !ok {
			b.Fatalf("not identified: %v", err)
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkSelectMonadic measures query evaluation (the product pass every
// F1 measurement relies on) on the 10k synthetic graph, through the
// compiled plan (the serving path: tables precompiled once per query).
func BenchmarkSelectMonadic(b *testing.B) {
	g, qs := synthetic()
	q := qs[1].Query
	snap := g.Snapshot()
	q.Plan() // compile outside the loop, as the plan cache does
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.SelectMonadicPlan(q.Plan())
	}
}

// BenchmarkPlanCompile measures the one-time cost a query pays at plan-
// cache intern time: parse → determinize → minimize → plan tables. The
// serving engine pays this once per distinct query language; every
// request after reads the precompiled tables.
func BenchmarkPlanCompile(b *testing.B) {
	g, qs := alibaba()
	b.Run("tables", func(b *testing.B) {
		// Table construction alone (plan.FromDFA), on the canonical DFA —
		// what Query.Plan adds on top of parsing.
		d := qs[2].Query.DFA()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.FromDFA(d)
		}
	})
	b.Run("full", func(b *testing.B) {
		// The whole pipeline from source text, uncached.
		src := qs[2].Expr
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := query.Parse(g.Alphabet(), src)
			if err != nil {
				b.Fatal(err)
			}
			q.Plan()
		}
	})
}

// directionalBench is the direction-optimizing adversarial shape
// (datasets.DirectionalSkew, shared with the graph-side correctness
// tests) under the query a*·b: forward evaluation from the chain head
// floods the whole core for one answer, while the backward co-accepting
// set is just the chain.
func directionalBench() (*graph.Graph, *query.Query, graph.NodeID) {
	g, head, _ := datasets.DirectionalSkew(3000, 12)
	return g, query.MustParse(g.Alphabet(), "a*·b"), head
}

// BenchmarkSelectBinaryDirectional compares forward-only binary
// evaluation against the direction-optimizing evaluator on the skewed
// bench graph — the acceptance criterion is directional beating forward.
func BenchmarkSelectBinaryDirectional(b *testing.B) {
	g, q, head := directionalBench()
	snap := g.Snapshot()
	p := q.Plan()
	want := snap.SelectBinaryFromForward(p, head)
	if got := snap.SelectBinaryFromPlan(p, head); len(got) != 1 || len(want) != 1 || got[0] != want[0] {
		b.Fatalf("directional %v and forward %v disagree or are empty", got, want)
	}
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap.SelectBinaryFromForward(p, head)
		}
	})
	b.Run("directional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap.SelectBinaryFromPlan(p, head)
		}
	})
}

// TestDirectionalBinaryFaster is the acceptance assertion behind
// BenchmarkSelectBinaryDirectional: on the skewed bench graph the
// direction-optimizing evaluation must beat forward-only by a wide margin
// (the measured gap is >10×; 2× keeps the test robust on loaded CI
// machines).
func TestDirectionalBinaryFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g, q, head := directionalBench()
	snap := g.Snapshot()
	p := q.Plan()
	snap.SelectBinaryFromPlan(p, head) // warm pools
	// Best-of-trials minimum per side: a descheduling spike on a loaded CI
	// machine inflates some trials but not the minimum.
	const rounds = 10
	timeSide := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			for i := 0; i < rounds; i++ {
				fn()
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	forward := timeSide(func() { snap.SelectBinaryFromForward(p, head) })
	directional := timeSide(func() { snap.SelectBinaryFromPlan(p, head) })
	if directional*2 > forward {
		t.Errorf("directional %v not ≥2× faster than forward %v", directional/rounds, forward/rounds)
	}
}

// BenchmarkEngineServe measures the query-serving layer on the 10k
// synthetic graph. "uncached" is the baseline library path: every request
// pays a full product pass through Query.Select. "cached" is the engine's
// repeat-query path (plan cache + result cache on a stable epoch) — the
// acceptance criterion is cached ≥ 10× faster than uncached. "closedloop"
// drives a concurrent closed-loop mix (16 clients, mutations publishing
// fresh epochs every 50 requests) and reports throughput and tail latency
// as custom metrics, so the serving numbers land in BENCH_<date>.json.
func BenchmarkEngineServe(b *testing.B) {
	g, qs := synthetic()
	src := qs[1].Expr
	q := qs[1].Query

	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Select(g)
		}
	})

	b.Run("cached", func(b *testing.B) {
		e := engine.New(g, engine.Options{})
		if _, err := e.Select(src); err != nil { // warm plan + result caches
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Select(src)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("repeat query missed the result cache")
			}
		}
	})

	b.Run("closedloop", func(b *testing.B) {
		// A fresh mutable graph per run: the shared fixture must stay
		// immutable for the other benchmarks.
		queries := make([]string, len(qs))
		for i, nq := range qs {
			queries[i] = nq.Expr
		}
		var report engine.LoadReport
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := engine.New(datasets.Synthetic(5000, 11), engine.Options{})
			b.StartTimer()
			var err error
			report, err = engine.RunLoad(e, engine.LoadConfig{
				Clients:     16,
				Duration:    300 * time.Millisecond,
				Queries:     queries,
				MutateEvery: 50,
				Seed:        1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(report.Throughput, "req/s")
		b.ReportMetric(float64(report.P50.Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(report.P99.Nanoseconds()), "p99-ns")
		// Per-class percentiles from the report's telemetry histograms:
		// selects and mutations live orders of magnitude apart, so the
		// merged percentiles above under-describe both.
		b.ReportMetric(float64(report.SelectLatency.Quantile(0.50).Nanoseconds()), "select-p50-ns")
		b.ReportMetric(float64(report.SelectLatency.Quantile(0.99).Nanoseconds()), "select-p99-ns")
		b.ReportMetric(float64(report.MutateLatency.Quantile(0.50).Nanoseconds()), "mutate-p50-ns")
		b.ReportMetric(float64(report.MutateLatency.Quantile(0.99).Nanoseconds()), "mutate-p99-ns")
	})
}

// BenchmarkReplayMixed is the workload-replay regression gate: forge a
// deterministic three-tier workload (one class per operator family —
// concatenation, union, optional, one-or-more, star, anchored tails)
// over the synthetic graph, replay it through the engine's ReplaySpec
// closed loop with a 2% mutation rate, and record per-AQ-class p50/p99
// as custom metrics so every BENCH_<date>.json snapshot carries a
// scenario-diverse latency profile, not just the hand-picked queries.
func BenchmarkReplayMixed(b *testing.B) {
	classes := []string{"AQ1", "AQ2", "AQ7", "AQ15", "AQ18", "AQ22", "AQ27", "AQ28"}
	file, err := workload.ForgeGraph(datasets.Synthetic(5000, 11), workload.ForgeConfig{
		Seed: 7, Classes: classes,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := &engine.ReplaySpec{}
	for _, e := range file.Entries {
		spec.Entries = append(spec.Entries, engine.ReplayEntry{
			Class: e.Class, Expr: e.Expr, Semantics: e.Semantics, From: e.From,
		})
	}
	var report engine.LoadReport
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh mutable graph per run: mutations must not accumulate
		// across iterations or leak into the forge fixture.
		e := engine.New(datasets.Synthetic(5000, 11), engine.Options{})
		b.StartTimer()
		report, err = engine.RunLoad(e, engine.LoadConfig{
			Clients:    16,
			Duration:   300 * time.Millisecond,
			Replay:     spec,
			MutateRate: 0.02,
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.Throughput, "req/s")
	for _, class := range classes {
		snap, ok := report.ClassLatency[class]
		if !ok || snap.Count() == 0 {
			b.Fatalf("class %s absent from the replay report", class)
		}
		b.ReportMetric(float64(snap.Quantile(0.50).Nanoseconds()), class+"-p50-ns")
		b.ReportMetric(float64(snap.Quantile(0.99).Nanoseconds()), class+"-p99-ns")
	}
}

// BenchmarkEngineMaintain measures publish-time result-cache maintenance
// (the delta-epoch pipeline). "retainedhit" verifies the tentpole's core
// promise: after a mutation whose label is disjoint from the cached
// query's alphabet, the cached entry is retained at the new epoch and the
// repeat-select latency stays on the ~150ns cached-hit path — no product
// traversal is re-run. "regrow" measures the full mutate→publish→regrow
// round trip when the mutated label overlaps the plan alphabet. The
// "closedloop" pair drives the same concurrent mixed workload (2% mutation
// rate) with incremental maintenance on and off (RegrowBudget: -1 is the
// old prune-everything behavior); the acceptance criterion is ≥5×
// sustained req/s for the incremental configuration.
func BenchmarkEngineMaintain(b *testing.B) {
	_, qs := synthetic()
	src := qs[1].Expr

	b.Run("retainedhit", func(b *testing.B) {
		// Fresh mutable graph: the shared fixture must stay immutable.
		e := engine.New(datasets.Synthetic(10000, 10000), engine.Options{})
		if _, err := e.Select(src); err != nil {
			b.Fatal(err)
		}
		// "zz" is a fresh label — a new alphabet symbol no plan mentions —
		// so the publish must retain the cached entry untouched.
		if _, err := e.Mutate([]engine.EdgeSpec{{From: "mx0", Label: "zz", To: "mx1"}}); err != nil {
			b.Fatal(err)
		}
		e.FlushMaintenance() // maintenance is async; wait for the retain
		res, err := e.Select(src)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("select after a disjoint mutation missed the retained entry")
		}
		if st := e.Stats(); st.ResultRetained == 0 {
			b.Fatalf("expected a retained entry, stats %+v", st)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Select(src)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("repeat query missed the result cache")
			}
		}
	})

	b.Run("regrow", func(b *testing.B) {
		g := datasets.Synthetic(10000, 10000)
		// l04 sits in the B-class of every calibrated A·B*·C query, so
		// each publish intersects the plan alphabet and forces a regrow.
		label := "l04"
		e := engine.New(g, engine.Options{})
		if _, err := e.Select(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Mutate([]engine.EdgeSpec{{
				From:  fmt.Sprintf("rg%d", i),
				Label: label,
				To:    fmt.Sprintf("rg%d", i+1),
			}}); err != nil {
				b.Fatal(err)
			}
			e.FlushMaintenance() // include the async regrow in the round trip
			res, err := e.Select(src)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("select after an overlapping mutation missed the regrown entry")
			}
		}
		b.StopTimer()
		st := e.Stats()
		b.ReportMetric(float64(st.ResultRegrown), "regrown")
		b.ReportMetric(float64(st.ResultDropped), "dropped")
	})

	closedloop := func(b *testing.B, budget int) engine.LoadReport {
		queries := make([]string, len(qs))
		for i, nq := range qs {
			queries[i] = nq.Expr
		}
		var report engine.LoadReport
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := engine.New(datasets.Synthetic(5000, 11), engine.Options{RegrowBudget: budget})
			b.StartTimer()
			var err error
			report, err = engine.RunLoad(e, engine.LoadConfig{
				Clients:    16,
				Duration:   300 * time.Millisecond,
				Queries:    queries,
				MutateRate: 0.02,
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(report.Throughput, "req/s")
		b.ReportMetric(float64(report.CachedLatency.Quantile(0.50).Nanoseconds()), "cached-p50-ns")
		b.ReportMetric(float64(report.UncachedLatency.Quantile(0.50).Nanoseconds()), "uncached-p50-ns")
		b.ReportMetric(float64(report.Retained), "retained")
		b.ReportMetric(float64(report.Regrown), "regrown")
		b.ReportMetric(float64(report.Dropped), "dropped")
		return report
	}

	b.Run("closedloop", func(b *testing.B) { closedloop(b, 0) })
	b.Run("closedloop-baseline", func(b *testing.B) { closedloop(b, -1) })

	// The mixed closed loop above is publish-serialization-bound: one
	// CSR rebuild costs ~ms, so at a 2% mutation share both
	// configurations converge on the write lane's capacity and the
	// maintenance win is invisible in req/s. "sustained" measures the
	// regime maintenance exists for — readers free-running over a
	// working set of queries while one writer publishes back-to-back —
	// where prune-everything keeps the whole working set cold (re-warm
	// cost exceeds the publish interval) and incremental maintenance
	// keeps every reader on the cached path. The acceptance criterion
	// is sustained ≥ 5× sustained-baseline select throughput.
	sustained := func(b *testing.B, budget int) {
		g := datasets.Synthetic(10000, 10000)
		// A working set wide enough that re-warming it from scratch
		// outlasts one publish interval even spread over all readers:
		// 512 three-symbol queries over the graph's top label ranks.
		var queries []string
		for a := 0; a < 8; a++ {
			for bb := 0; bb < 8; bb++ {
				for c := 0; c < 8; c++ {
					queries = append(queries, fmt.Sprintf("l%02d·l%02d*·l%02d", a, bb, c))
				}
			}
		}
		e := engine.New(g, engine.Options{RegrowBudget: budget})
		for _, src := range queries {
			if _, err := e.Select(src); err != nil {
				b.Fatal(err)
			}
		}
		var selects, cached int64
		for i := 0; i < b.N; i++ {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // write lane: one publish per millisecond
				defer wg.Done()
				// The lane is paced explicitly: before incremental
				// publishing the ~4ms from-scratch rebuild throttled it
				// implicitly, and an unthrottled µs-scale publisher would
				// turn this into a publish-saturation benchmark instead of
				// the readers-vs-periodic-publishes regime it measures.
				labels := []string{"zz", "l01"} // disjoint and overlapping publishes
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := e.Mutate([]engine.EdgeSpec{{
						From:  fmt.Sprintf("w%d", j),
						Label: labels[j%2],
						To:    fmt.Sprintf("w%d", j+1),
					}}); err != nil {
						panic(err)
					}
					time.Sleep(time.Millisecond)
				}
			}()
			const readers = 16
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					var mine, mineCached int64
					for {
						select {
						case <-stop:
							atomic.AddInt64(&selects, mine)
							atomic.AddInt64(&cached, mineCached)
							return
						default:
						}
						res, err := e.Select(queries[rng.Intn(len(queries))])
						if err != nil {
							panic(err)
						}
						mine++
						if res.Cached {
							mineCached++
						}
					}
				}(int64(r))
			}
			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()
		}
		wall := 300 * time.Millisecond * time.Duration(b.N)
		b.ReportMetric(float64(selects)/wall.Seconds(), "req/s")
		b.ReportMetric(100*float64(cached)/float64(selects), "cached-%")
		e.FlushMaintenance()
		st := e.Stats()
		b.ReportMetric(float64(st.ResultRetained), "retained")
		b.ReportMetric(float64(st.ResultRegrown), "regrown")
	}
	b.Run("sustained", func(b *testing.B) { sustained(b, 0) })
	b.Run("sustained-baseline", func(b *testing.B) { sustained(b, -1) })
}

// BenchmarkWALAppend measures the durable-mutation floor: each iteration
// appends one small edge batch through Engine.Mutate backed by a real
// on-disk WAL (write + fsync per mutation). The store's fsync histogram
// supplies the tail metric recorded into BENCH_<date>.json.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	e := engine.New(st.Graph(), engine.Options{Log: st})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mutate([]engine.EdgeSpec{{
			From:  fmt.Sprintf("n%d", i),
			Label: "w",
			To:    fmt.Sprintf("n%d", i+1),
		}}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fsync := st.FsyncLatency()
	b.ReportMetric(float64(fsync.Quantile(0.99).Nanoseconds()), "fsync-p99-ns")
	b.ReportMetric(float64(fsync.Mean().Nanoseconds()), "fsync-mean-ns")
}

// BenchmarkWALGroupCommit measures sustained durable mutation throughput
// with 8 concurrent writer lanes group-committing into one on-disk WAL.
// BenchmarkWALAppend above is the per-mutation-fsync baseline (one lane,
// one fsync each); the acceptance criterion is ≥5× its mutation rate —
// ns/op here is per mutation, so the ratio reads directly off the two
// benchmarks. muts-per-fsync reports the mean coalescing factor.
func BenchmarkWALGroupCommit(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	e := engine.New(st.Graph(), engine.Options{Log: st})
	defer e.Close()
	const writers = 8
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if _, err := e.Mutate([]engine.EdgeSpec{{
					From:  fmt.Sprintf("n%d", i),
					Label: "w",
					To:    fmt.Sprintf("n%d", i+1),
				}}); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	es := e.Stats()
	if es.WalBatches > 0 {
		b.ReportMetric(float64(es.WalBatchedMutations)/float64(es.WalBatches), "muts-per-fsync")
	}
	fsync := st.FsyncLatency()
	b.ReportMetric(float64(fsync.Quantile(0.99).Nanoseconds()), "fsync-p99-ns")
	build, _, _ := e.PublishLatency()
	b.ReportMetric(float64(build.Quantile(0.50).Nanoseconds()), "publish-build-p50-ns")
	b.ReportMetric(float64(build.Quantile(0.99).Nanoseconds()), "publish-build-p99-ns")
}

// BenchmarkEvaluateWitness measures the witness accumulator of the
// unified evaluation API on the 10k synthetic graph: one monadic pass
// plus 32 parent-chain path reconstructions per evaluation (the cache is
// bypassed by evaluating through the query layer directly, so every
// iteration pays the full traversal).
func BenchmarkEvaluateWitness(b *testing.B) {
	g, qs := synthetic()
	q := qs[1].Query
	snap := g.Snapshot()
	ctx := context.Background()
	req := query.Req{Semantics: query.SemanticsWitness, Limit: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := q.EvaluateReq(ctx, snap, req)
		if err != nil {
			b.Fatal(err)
		}
		if ans.Count > 0 && len(ans.Paths) == 0 {
			b.Fatal("no witnesses for a nonempty selection")
		}
	}
}

// BenchmarkEvaluateCount measures the count accumulator (16 level-exact
// backward relaxations over the product space) on the 10k synthetic
// graph.
func BenchmarkEvaluateCount(b *testing.B) {
	g, qs := synthetic()
	q := qs[1].Query
	snap := g.Snapshot()
	ctx := context.Background()
	req := query.Req{Semantics: query.SemanticsCount, MaxLen: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.EvaluateReq(ctx, snap, req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineCachedSpeedup is the acceptance assertion behind
// BenchmarkEngineServe: serving a repeat query from the result cache must
// be at least 10× faster than an uncached Query.Select of the same
// workload. The generous bound (the measured gap is orders of magnitude)
// keeps the test robust on loaded CI machines.
func TestEngineCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g, qs := synthetic()
	src, q := qs[1].Expr, qs[1].Query
	e := engine.New(g, engine.Options{})
	if _, err := e.Select(src); err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	q.Select(g) // warm pools
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		q.Select(g)
	}
	uncached := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := e.Select(src); err != nil {
			t.Fatal(err)
		}
	}
	cached := time.Since(t0)
	if cached*10 > uncached {
		t.Errorf("cached path %v not ≥10× faster than uncached %v", cached/rounds, uncached/rounds)
	}
}

// TestSelectAllocRegression pins the allocation behavior of the one-pass
// Query.Evaluate path (SelectNodes/Selectivity ride on it): with warm
// scratch pools, a full monadic evaluation plus node extraction on the
// 10k graph must stay within a small constant allocation budget —
// regression here means a pooled structure fell off the pool or a
// per-node allocation crept into the product engine.
func TestSelectAllocRegression(t *testing.T) {
	g, qs := synthetic()
	q := qs[1].Query
	g.Freeze()
	for i := 0; i < 3; i++ { // warm the scratch pools
		q.SelectNodes(g)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sel := q.Evaluate(g)
		sel.Nodes()
		sel.Selectivity()
	})
	// Budget: selection vector, nodes slice, parallel-shard goroutine
	// bookkeeping, pool slack. Measured ~30 on 8 cores; 64 is the alarm
	// threshold, far under the 10k+ of a per-node regression.
	if allocs > 64 {
		t.Errorf("Evaluate+Nodes+Selectivity allocated %.0f times per run, want ≤ 64", allocs)
	}
}

// BenchmarkGraphStep measures the CSR set-transition primitive. With
// -benchmem the only allocation per op is the result slice — dedup runs
// on a pooled bitset, with no per-call map and no per-call sort.
func BenchmarkGraphStep(b *testing.B) {
	g, _ := synthetic()
	rng := rand.New(rand.NewSource(8))
	set := make([]graph.NodeID, 64)
	for i := range set {
		set[i] = graph.NodeID(rng.Intn(g.NumNodes()))
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(set, 0)
	}
}

// BenchmarkSCPSearch measures smallest-consistent-path extraction with a
// shared coverage index (the learner's inner loop).
func BenchmarkSCPSearch(b *testing.B) {
	g, qs := alibaba()
	rng := rand.New(rand.NewSource(5))
	pos, neg := datasets.RandomSample(g, qs[3].Query, 0.05, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := scp.NewCoverage(g, neg)
		for _, nu := range pos {
			cov.Smallest(nu, 3)
		}
	}
}

// BenchmarkLearnerPaperExample measures the end-to-end Algorithm 1 run on
// the paper's own Figure 3 example.
func BenchmarkLearnerPaperExample(b *testing.B) {
	g, s := paperfix.G0()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Learn(g, s, core.Options{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearn measures one full Algorithm 1 run on a realistically
// sized sample over the pinned snapshot — the learner throughput the
// serving engine's Learn endpoint pays per request. The serial variant
// pins Workers=1 (the pre-fan-out path); parallel lets the per-positive
// SCP searches and the merger's negative-shard consistency checks spread
// over GOMAXPROCS, so the pair tracks the speedup of the worker-shard
// fan-out PR over PR.
func BenchmarkLearn(b *testing.B) {
	g, qs := alibaba()
	snap := g.Snapshot()
	rng := rand.New(rand.NewSource(9))
	pos, neg := datasets.RandomSample(g, qs[2].Query, 0.07, rng)
	s := core.Sample{Pos: pos, Neg: neg}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LearnDetailedOn(snap, s, core.Options{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineLearn measures the engine's learn→serve path: pin the
// served epoch, learn, install into the plan cache, warm the result
// cache.
func BenchmarkEngineLearn(b *testing.B) {
	g, qs := alibaba()
	rng := rand.New(rand.NewSource(9))
	pos, neg := datasets.RandomSample(g, qs[2].Query, 0.07, rng)
	s := core.Sample{Pos: pos, Neg: neg}
	e := engine.New(g, engine.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Learn(s, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeterminizeMinimize measures the automata substrate on random
// Thompson NFAs.
func BenchmarkDeterminizeMinimize(b *testing.B) {
	g, _ := alibaba()
	rng := rand.New(rand.NewSource(6))
	exprs := make([]*regex.Node, 32)
	for i := range exprs {
		exprs[i] = automata.RandomRegex(rng, g.Alphabet(), 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		automata.CompileRegex(exprs[i%len(exprs)], g.Alphabet().Size())
	}
}

// BenchmarkRPNIIdentification measures classic RPNI on characteristic word
// samples.
func BenchmarkRPNIIdentification(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	target := automata.RandomNonEmptyDFA(rng, 6, 2, 0.7)
	sample := rpni.CharacteristicSample(target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := rpni.Learn(2, sample)
		if err != nil || !got.Equal(target) {
			b.Fatal("identification failed")
		}
	}
}

// BenchmarkStoreRecovery measures crash recovery (the pqbench -restart
// scenario): opening a graph store whose state must be rebuilt from its
// checkpoint and WAL tail. ns/op is the whole Open; the custom metrics
// break it down as checkpoint-load µs and replay µs per 1000 WAL
// records, from the store's own recovery timings.
func BenchmarkStoreRecovery(b *testing.B) {
	cases := []struct {
		name            string
		mutations       int
		checkpointEvery int
	}{
		{"wal1k", 1000, -1},       // pure WAL replay
		{"wal4k", 4000, -1},       // replay scaling
		{"ckpt+tail", 4000, 3000}, // checkpoint load + 1k-record tail
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			st, err := store.Open(dir, store.Options{CheckpointEvery: tc.checkpointEvery})
			if err != nil {
				b.Fatal(err)
			}
			e := engine.New(st.Graph(), engine.Options{Log: st})
			for i := 0; i < tc.mutations; i++ {
				_, err := e.Mutate([]engine.EdgeSpec{{
					From:  fmt.Sprintf("n%d", i%512),
					Label: fmt.Sprintf("l%d", i%8),
					To:    fmt.Sprintf("n%d", (i+1)%512),
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			var last store.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := store.Open(dir, store.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = st.Stats()
				st.Close()
			}
			b.StopTimer()
			if last.RecoveryReplayed > 0 {
				perK := float64(last.RecoveryReplay.Microseconds()) /
					float64(last.RecoveryReplayed) * 1000
				b.ReportMetric(perK, "replay-us/krec")
			}
			b.ReportMetric(float64(last.RecoveryCheckpointLoad.Microseconds()), "ckpt-load-us")
		})
	}
}
