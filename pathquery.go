// Package pathquery learns path queries on graph databases from node
// examples, implementing Bonifati, Ciucanu & Lemay, "Learning Path Queries
// on Graph Databases" (EDBT 2015).
//
// A graph database is a directed, edge-labeled graph. A path query is a
// regular expression q evaluated under monadic semantics: q selects node ν
// iff some path starting at ν spells a word of L(q). Given nodes the user
// labeled positive ("I want this in the result") or negative, Learn
// returns a query consistent with the labels, generalizing from the
// smallest consistent path of each positive via RPNI-style state merging.
// When the examples are insufficient, Learn returns ErrAbstain — the
// paper's "learning with abstain" (consistency checking is
// PSPACE-complete, so no polynomial learner can decide it exactly).
//
// # Quick start
//
//	g := pathquery.NewGraph(nil)
//	g.AddEdgeByName("N1", "tram", "N4")
//	g.AddEdgeByName("N4", "cinema", "C1")
//	n1, _ := g.NodeByName("N1")
//	c1, _ := g.NodeByName("C1")
//	q, err := pathquery.Learn(g, pathquery.Sample{
//	    Pos: []pathquery.NodeID{n1},
//	    Neg: []pathquery.NodeID{c1},
//	}, pathquery.Options{})
//	// q selects exactly the nodes from which a tram·cinema path leaves.
//
// Interactive learning (Section 4 of the paper) starts with no examples
// and asks the user to label proposed nodes until the learned query
// matches their intent:
//
//	sess := pathquery.NewSession(g, pathquery.SessionOptions{})
//	res, err := sess.Run(oracle, halt)
//
// # Serving
//
// The serving engine evaluates through one unified surface:
// Engine.Evaluate(ctx, Request) answers every result shape — monadic
// nodes, binary pairs, witness paths, accepting-length counts, shortest
// witnesses — from one request/answer pair, with the context canceling
// the product traversal:
//
//	e := pathquery.NewEngine(g, pathquery.EngineOptions{})
//	ans, err := e.Evaluate(ctx, pathquery.Request{
//	    Query: "(tram+bus)*·cinema", Semantics: "witness",
//	})
//
// The same surface is the wire protocol: NewEngineHandler serves it as
// POST /v1/query (see internal/engine.NewHandler for the format and the
// deprecated-endpoint migration table).
//
// The subpackages under internal implement the substrates: automata
// (NFA/DFA/RPNI machinery), graph (storage and product constructions),
// scp (smallest-consistent-path search), charsample (the Theorem 3.5
// characteristic-sample construction), hardness (the Lemma 3.2/3.3
// reductions), datasets and experiments (the paper's evaluation).
package pathquery

import (
	"net/http"

	"pathquery/internal/alphabet"
	"pathquery/internal/certain"
	"pathquery/internal/charsample"
	"pathquery/internal/core"
	"pathquery/internal/engine"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/metrics"
	"pathquery/internal/query"
)

// Core types, re-exported for the public API.
type (
	// Graph is a directed edge-labeled graph database.
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// Alphabet interns edge labels.
	Alphabet = alphabet.Alphabet
	// Query is a path query (regular expression + canonical DFA).
	Query = query.Query
	// NaryQuery is an n-ary path query (Appendix B).
	NaryQuery = query.Nary
	// Sample is a set of positive/negative node examples.
	Sample = core.Sample
	// Pair is a binary-semantics example.
	Pair = core.Pair
	// PairSample is a set of pair examples.
	PairSample = core.PairSample
	// TupleSample is a set of n-ary examples.
	TupleSample = core.TupleSample
	// Options tunes the learner (SCP bound k, dynamic schedule, ablation).
	Options = core.Options
	// Result carries the learned query plus diagnostics.
	Result = core.Result
	// Session is an interactive learning session.
	Session = interactive.Session
	// SessionOptions tunes an interactive session.
	SessionOptions = interactive.Options
	// SessionResult summarizes a finished session.
	SessionResult = interactive.Result
	// Oracle answers "would you select this node?".
	Oracle = interactive.Oracle
	// HaltCondition decides when the user is satisfied.
	HaltCondition = interactive.HaltCondition
	// Strategy proposes nodes to label (KR, KS).
	Strategy = interactive.Strategy
	// Confusion scores a learned query against a goal.
	Confusion = metrics.Confusion
	// Snapshot is an immutable epoch view of a graph.
	Snapshot = graph.Snapshot
	// Engine is the concurrent query-serving layer: epoch snapshots, plan
	// and result caches with single-flight, and batched evaluation.
	Engine = engine.Engine
	// EngineOptions tunes an Engine.
	EngineOptions = engine.Options
	// EngineStats is a point-in-time counter snapshot of an Engine,
	// including the publish-time result-cache maintenance breakdown
	// (entries retained, incrementally regrown, and dropped).
	EngineStats = engine.Stats
	// EdgeSpec names one edge for Engine.Mutate.
	EdgeSpec = engine.EdgeSpec
	// EngineLearnResult is the outcome of Engine.Learn: the learned query
	// installed as a serving plan, plus its selection on the pinned epoch.
	EngineLearnResult = engine.LearnResult
	// Selection is the outcome of one monadic evaluation pass.
	Selection = query.Selection
	// Request is one evaluation request on the unified API: the query, the
	// semantics ("nodes", "pairsFrom", "witness", "count", "shortest") and
	// its arguments — the argument of Engine.Evaluate and the body of
	// POST /v1/query.
	Request = engine.Request
	// Answer is the unified evaluation result, pinned to its epoch.
	Answer = engine.Answer
	// APIError is a request error with a stable machine-readable code —
	// the "error.code" of the /v1/query wire protocol.
	APIError = engine.APIError
	// Semantics selects the result shape of one evaluation.
	Semantics = query.Semantics
	// PathWitness is one reconstructed accepting path: the nodes along it
	// and the word it spells.
	PathWitness = graph.PathWitness
)

// The evaluation semantics of the unified API (see Request.Semantics for
// the wire names).
const (
	SemanticsNodes     = query.SemanticsNodes
	SemanticsPairsFrom = query.SemanticsPairsFrom
	SemanticsWitness   = query.SemanticsWitness
	SemanticsCount     = query.SemanticsCount
	SemanticsShortest  = query.SemanticsShortest
)

// ErrAbstain is returned when no consistent query can be constructed from
// the given examples — the paper's null answer.
var ErrAbstain = core.ErrAbstain

// NewGraph returns an empty graph over alpha (nil for a fresh alphabet).
func NewGraph(alpha *Alphabet) *Graph { return graph.New(alpha) }

// NewEngine wraps g in a concurrent query-serving engine and publishes
// its first epoch. From then on, mutate through the engine and read from
// any number of goroutines: selections pin immutable epoch snapshots,
// repeated queries skip parse/determinize/minimize via the plan cache,
// and identical concurrent requests share one product pass. Engine.Learn
// runs Algorithm 1 against the served epoch — safely concurrent with
// mutations — and installs the learned query as a serving plan.
func NewEngine(g *Graph, opt EngineOptions) *Engine { return engine.New(g, opt) }

// NewEngineHandler exposes e as a JSON-over-HTTP API — the handler behind
// cmd/pqserve: the versioned unified protocol (POST /v1/query and
// /v1/batch serving every semantics with a structured error envelope),
// mutate, learn, stats, plans, plus the deprecated pre-v1 shims.
func NewEngineHandler(e *Engine) http.Handler { return engine.NewHandler(e) }

// NewAlphabet returns an empty label table.
func NewAlphabet() *Alphabet { return alphabet.New() }

// ParseQuery parses a regular expression (ε, labels, +, · or ., *) over
// alpha into a query, interning new labels.
func ParseQuery(alpha *Alphabet, src string) (*Query, error) {
	return query.Parse(alpha, src)
}

// Learn runs the paper's Algorithm 1 on a monadic sample.
func Learn(g *Graph, s Sample, opt Options) (*Query, error) {
	return core.Learn(g, s, opt)
}

// LearnOn runs Algorithm 1 against a pinned epoch snapshot: the learner
// observes exactly that epoch, so it is safe to run while a writer keeps
// mutating and publishing newer epochs (see also Engine.Learn, which adds
// plan-cache installation).
func LearnOn(s *Snapshot, sample Sample, opt Options) (*Query, error) {
	return core.LearnOn(s, sample, opt)
}

// LearnDetailed is Learn with diagnostics (selected SCPs, final k, merge
// count).
func LearnDetailed(g *Graph, s Sample, opt Options) (*Result, error) {
	return core.LearnDetailed(g, s, opt)
}

// LearnDetailedOn is LearnOn with diagnostics.
func LearnDetailedOn(s *Snapshot, sample Sample, opt Options) (*Result, error) {
	return core.LearnDetailedOn(s, sample, opt)
}

// LearnBinary runs Algorithm 2 on pair examples.
func LearnBinary(g *Graph, s PairSample, opt Options) (*Query, error) {
	return core.LearnBinary(g, s, opt)
}

// LearnNary runs Algorithm 3 on tuple examples.
func LearnNary(g *Graph, s TupleSample, opt Options) (*NaryQuery, error) {
	return core.LearnNary(g, s, opt)
}

// Consistent decides sample consistency exactly (Lemma 3.1). Exponential
// worst case — the problem is PSPACE-complete (Lemma 3.2); intended for
// small graphs and diagnostics.
func Consistent(g *Graph, s Sample) bool { return core.Consistent(g, s) }

// NewSession starts an interactive learning session with an empty sample.
func NewSession(g *Graph, opts SessionOptions) *Session {
	return interactive.NewSession(g, opts)
}

// NewQueryOracle simulates a user holding the given goal query.
func NewQueryOracle(g *Graph, goal *Query) Oracle {
	return interactive.NewQueryOracle(g, goal)
}

// ExactMatch halts a session when the learned query selects exactly the
// goal's nodes (F1 = 1).
func ExactMatch(g *Graph, goal *Query) HaltCondition {
	return interactive.ExactMatch(g, goal)
}

// Score rates a learned query against a goal query on g, viewing both as
// binary node classifiers.
func Score(g *Graph, goal, learned *Query) Confusion {
	return metrics.Score(goal.Select(g), learned.Select(g))
}

// CharacteristicSample builds a graph and sample from which Learn is
// guaranteed to identify q exactly (Theorem 3.5), with the SCP bound
// CharacteristicK(q).
func CharacteristicSample(q *Query) (*Graph, Sample, error) {
	return charsample.Build(q)
}

// CharacteristicK returns the SCP length bound 2·n+1 Theorem 3.5
// prescribes for q.
func CharacteristicK(q *Query) int { return charsample.KFor(q) }

// IsInformative decides exactly whether labeling ν would add information
// (Section 4.2). PSPACE-complete in general (Lemma 4.2); intended for
// small graphs.
func IsInformative(g *Graph, s Sample, nu NodeID) bool {
	return certain.IsInformative(g, s, nu)
}
