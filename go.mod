module pathquery

go 1.24
