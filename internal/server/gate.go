package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control is per tenant, so one tenant's load cannot starve
// another's: a semaphore caps the requests a tenant may have in flight,
// a bounded wait queue absorbs short bursts beyond the cap (overflow is
// shed immediately with 503 + Retry-After, never queued unboundedly),
// and a token bucket bounds the tenant's mutation rate (WAL appends are
// the one operation whose cost the server cannot shed onto a snapshot).

// errOverloaded sheds a request whose tenant has both every in-flight
// slot and every queue slot taken.
var errOverloaded = errors.New("server: tenant overloaded")

// gate is the per-tenant in-flight semaphore with a bounded wait queue.
type gate struct {
	slots  chan struct{}
	depth  int64 // queue capacity; < 0 sheds on a full semaphore at once
	queued atomic.Int64
}

func newGate(maxInFlight, queueDepth int) *gate {
	return &gate{slots: make(chan struct{}, maxInFlight), depth: int64(queueDepth)}
}

// acquire takes an in-flight slot, waiting in the bounded queue if the
// semaphore is full. It fails fast with errOverloaded when the queue is
// full too, and with ctx.Err() if the client gives up while queued.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queued.Add(1) > g.depth {
		g.queued.Add(-1)
		return errOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// inFlight is the number of occupied in-flight slots right now.
func (g *gate) inFlight() int { return len(g.slots) }

// waiting is the number of requests queued at the gate right now.
func (g *gate) waiting() int64 { return g.queued.Load() }

// bucket is a token-bucket rate limiter (tokens per second, burst cap).
// A zero rate means unlimited.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token if available; otherwise it reports how long
// the caller should wait before retrying (the Retry-After hint).
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}
