package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathquery/internal/engine"
)

func newServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.DataDir == "" {
		opt.DataDir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mutateBody(from, label, to string) string {
	return fmt.Sprintf(`{"edges":[{"from":%q,"label":%q,"to":%q}]}`, from, label, to)
}

func decodeInto(t *testing.T, rec *httptest.ResponseRecorder, into any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	decodeInto(t, rec, &env)
	return env.Error.Code
}

type statsResponse struct {
	Epoch uint64 `json:"epoch"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Store struct {
		Epoch           uint64 `json:"epoch"`
		CheckpointEpoch uint64 `json:"checkpoint_epoch"`
		WALRecords      int    `json:"wal_records"`
	} `json:"store"`
}

func TestTenantLifecycle(t *testing.T) {
	s := newServer(t, Options{})
	h := s.Handler()

	// A query on a graph nobody created is a 404, not a creation.
	if rec := do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("query on unknown graph: %d %s", rec.Code, rec.Body)
	} else if errCode(t, rec) != "unknown_graph" {
		t.Fatalf("query on unknown graph: code %q", errCode(t, rec))
	}

	// A mutate creates it; the tenant then serves queries.
	if rec := do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v")); rec.Code != http.StatusOK {
		t.Fatalf("creating mutate: %d %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var ans struct {
		Epoch uint64   `json:"epoch"`
		Nodes []string `json:"nodes"`
	}
	decodeInto(t, rec, &ans)
	if ans.Epoch != 2 || len(ans.Nodes) != 1 || ans.Nodes[0] != "u" {
		t.Fatalf("query answer: %+v", ans)
	}

	// Tenants are independent: g2 does not see g1's edges.
	do(t, h, "POST", "/v1/graphs/g2/mutate", mutateBody("a", "y", "b"))
	rec = do(t, h, "POST", "/v1/graphs/g2/query", `{"query":"x"}`)
	var ans2 struct {
		Nodes []string `json:"nodes"`
	}
	decodeInto(t, rec, &ans2)
	if len(ans2.Nodes) != 0 {
		t.Fatalf("tenant g2 sees g1 data: %+v", ans2)
	}

	// Bad names and unknown operations are structured errors.
	if rec := do(t, h, "POST", "/v1/graphs/..%2Fetc/query", `{"query":"x"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad name: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/graphs/g1/frobnicate", `{}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown op: %d %s", rec.Code, rec.Body)
	}
}

func TestStatsIncludesStore(t *testing.T) {
	s := newServer(t, Options{CheckpointEvery: 2})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		from, to := fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)
		if rec := do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody(from, "x", to)); rec.Code != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	rec := do(t, h, "GET", "/v1/graphs/g1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var st statsResponse
	decodeInto(t, rec, &st)
	if st.Epoch != 4 || st.Store.Epoch != 4 {
		t.Fatalf("stats epochs: %+v", st)
	}
	if st.Store.CheckpointEpoch == 0 {
		t.Fatalf("no checkpoint in stats: %+v", st)
	}
}

func TestRestartRecoversTenants(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Options{DataDir: dir})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		from, to := fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)
		do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody(from, "x", to))
	}
	do(t, h, "POST", "/v1/graphs/g2/mutate", mutateBody("a", "y", "b"))
	before := do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x·x"}`).Body.String()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, Options{DataDir: dir})
	h2 := s2.Handler()
	if rec := do(t, h2, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery: %d", rec.Code)
	}
	s2.RecoverAll()
	if rec := do(t, h2, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d %s", rec.Code, rec.Body)
	}
	var st statsResponse
	decodeInto(t, do(t, h2, "GET", "/v1/graphs/g1/stats", ""), &st)
	if st.Epoch != 4 {
		t.Fatalf("recovered epoch %d, want 4", st.Epoch)
	}
	after := do(t, h2, "POST", "/v1/graphs/g1/query", `{"query":"x·x"}`).Body.String()
	// The recovered answer must match the pre-restart one except for the
	// cached flag (a fresh server has a cold result cache).
	normalize := func(s string) string { return strings.ReplaceAll(s, `"cached":true`, `"cached":false`) }
	if normalize(after) != normalize(before) {
		t.Fatalf("answers diverged across restart:\n before %s\n after  %s", before, after)
	}

	var list struct {
		Graphs []struct {
			Name  string `json:"name"`
			Epoch uint64 `json:"epoch"`
		} `json:"graphs"`
	}
	decodeInto(t, do(t, h2, "GET", "/v1/graphs", ""), &list)
	names := make([]string, len(list.Graphs))
	for i, g := range list.Graphs {
		names[i] = g.Name
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "g1" || names[1] != "g2" {
		t.Fatalf("graph list: %+v", list)
	}
}

// TestLazyRecoveryBeforeReady exercises the cold-tenant path: a request
// arriving before RecoverAll recovers just its tenant and serves.
func TestLazyRecoveryBeforeReady(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Options{DataDir: dir})
	do(t, s.Handler(), "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v"))
	s.Close()

	s2 := newServer(t, Options{DataDir: dir})
	h2 := s2.Handler()
	if s2.Ready() {
		t.Fatal("server ready before RecoverAll")
	}
	rec := do(t, h2, "POST", "/v1/graphs/g1/query", `{"query":"x"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("lazy query: %d %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"u"`) {
		t.Fatalf("lazy query lost data: %s", rec.Body)
	}
}

// TestInvalidMutateDoesNotCreateTenant: a mutate aimed at an unknown
// graph must not mint a directory or registry entry unless its body is
// a syntactically valid, non-empty mutation — otherwise any client can
// mass-create durable tenants with garbage requests.
func TestInvalidMutateDoesNotCreateTenant(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Options{DataDir: dir})
	h := s.Handler()
	cases := []struct {
		body   string
		status int
		code   string
	}{
		{"", http.StatusBadRequest, "bad_body"},
		{"{", http.StatusBadRequest, "bad_body"},
		{`{"nope":1}`, http.StatusBadRequest, "bad_body"},
		{`{"edges":[]}`, http.StatusBadRequest, "empty_mutation"},
		{`{"edges":[{"from":"u","to":"v"}]}`, http.StatusBadRequest, "bad_edge"},
	}
	for _, c := range cases {
		rec := do(t, h, "POST", "/v1/graphs/ghost/mutate", c.body)
		if rec.Code != c.status || errCode(t, rec) != c.code {
			t.Fatalf("body %q: got %d %q, want %d %q (%s)",
				c.body, rec.Code, errCode(t, rec), c.status, c.code, rec.Body)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost")); !os.IsNotExist(err) {
		t.Fatal("invalid mutate created a tenant directory")
	}
	if s.exists("ghost") {
		t.Fatal("invalid mutate registered a tenant")
	}
	// A well-formed mutate then creates the graph as before; once it
	// exists, an empty mutation is back to being an engine-level no-op.
	if rec := do(t, h, "POST", "/v1/graphs/ghost/mutate", mutateBody("u", "x", "v")); rec.Code != http.StatusOK {
		t.Fatalf("valid creating mutate: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "POST", "/v1/graphs/ghost/mutate", `{"edges":[]}`); rec.Code != http.StatusOK {
		t.Fatalf("empty mutate on existing graph: %d %s", rec.Code, rec.Body)
	}
}

func TestTenantLimit(t *testing.T) {
	s := newServer(t, Options{MaxTenants: 2})
	h := s.Handler()
	for _, g := range []string{"g1", "g2"} {
		if rec := do(t, h, "POST", "/v1/graphs/"+g+"/mutate", mutateBody("u", "x", "v")); rec.Code != http.StatusOK {
			t.Fatalf("creating %s: %d %s", g, rec.Code, rec.Body)
		}
	}
	rec := do(t, h, "POST", "/v1/graphs/g3/mutate", mutateBody("u", "x", "v"))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "tenant_limit" {
		t.Fatalf("mutate past tenant limit: %d %q %s", rec.Code, errCode(t, rec), rec.Body)
	}
	// Existing tenants are unaffected by the cap.
	if rec := do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("v", "x", "w")); rec.Code != http.StatusOK {
		t.Fatalf("mutate on existing tenant under cap: %d %s", rec.Code, rec.Body)
	}
}

// TestOversizedBodyRejected covers the request-size limit on both
// paths: the creation gate (unknown graph) and the engine handler
// (existing graph) each answer 413 without durable side effects.
func TestOversizedBodyRejected(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Options{DataDir: dir})
	h := s.Handler()
	big := fmt.Sprintf(`{"edges":[{"from":%q,"label":"x","to":"v"}]}`,
		strings.Repeat("a", engine.MaxBodyBytes))
	rec := do(t, h, "POST", "/v1/graphs/ghost/mutate", big)
	if rec.Code != http.StatusRequestEntityTooLarge || errCode(t, rec) != "body_too_large" {
		t.Fatalf("oversized creating mutate: %d %q", rec.Code, errCode(t, rec))
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost")); !os.IsNotExist(err) {
		t.Fatal("oversized mutate created a tenant directory")
	}
	do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v"))
	rec = do(t, h, "POST", "/v1/graphs/g1/mutate", big)
	if rec.Code != http.StatusRequestEntityTooLarge || errCode(t, rec) != "body_too_large" {
		t.Fatalf("oversized mutate on existing graph: %d %q", rec.Code, errCode(t, rec))
	}
}

func TestMutationRateLimit(t *testing.T) {
	s := newServer(t, Options{MutateRate: 0.5, MutateBurst: 1})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v")); rec.Code != http.StatusOK {
		t.Fatalf("first mutate: %d %s", rec.Code, rec.Body)
	}
	rec := do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("v", "x", "w"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second mutate: %d %s", rec.Code, rec.Body)
	}
	if errCode(t, rec) != "rate_limited" {
		t.Fatalf("second mutate code: %q", errCode(t, rec))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Reads are not rate limited.
	if rec := do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x"}`); rec.Code != http.StatusOK {
		t.Fatalf("query under mutation limit: %d %s", rec.Code, rec.Body)
	}
}

func TestOverloadSheds(t *testing.T) {
	s := newServer(t, Options{MaxInFlight: 1, QueueDepth: -1})
	h := s.Handler()
	do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v"))

	// Occupy the tenant's only in-flight slot from the outside.
	tn := s.tenantFor("g1")
	tn.gate.slots <- struct{}{}
	defer func() { <-tn.gate.slots }()

	rec := do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated tenant: %d %s", rec.Code, rec.Body)
	}
	if errCode(t, rec) != "overloaded" {
		t.Fatalf("saturated tenant code: %q", errCode(t, rec))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestTenantIsolationUnderSaturation is the acceptance scenario: tenant
// A saturates its mutation rate limit (a stream of 429s) while tenant B
// serves cached queries; B's p99 must stay within 2× its solo baseline
// (plus a small absolute floor against scheduler noise on tiny numbers).
func TestTenantIsolationUnderSaturation(t *testing.T) {
	s := newServer(t, Options{MutateRate: 200, MutateBurst: 1})
	h := s.Handler()
	do(t, h, "POST", "/v1/graphs/a/mutate", mutateBody("u", "x", "v"))
	do(t, h, "POST", "/v1/graphs/b/mutate", mutateBody("p", "y", "q"))

	const samples = 300
	measure := func() time.Duration {
		lat := make([]time.Duration, 0, samples)
		for i := 0; i < samples; i++ {
			t0 := time.Now()
			rec := do(t, h, "POST", "/v1/graphs/b/query", `{"query":"y"}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("tenant b query: %d %s", rec.Code, rec.Body)
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[samples*99/100]
	}

	do(t, h, "POST", "/v1/graphs/b/query", `{"query":"y"}`) // warm b's caches
	solo := measure()

	stop := make(chan struct{})
	var hammered, limited atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := mutateBody(fmt.Sprintf("w%d-%d", w, i), "x", fmt.Sprintf("w%d-%d", w, i+1))
				req := httptest.NewRequest("POST", "/v1/graphs/a/mutate", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				hammered.Add(1)
				if rec.Code == http.StatusTooManyRequests {
					limited.Add(1)
				}
			}
		}(w)
	}
	// Only measure once tenant a's limiter is demonstrably saturating —
	// the whole point is overlap between b's reads and a's 429 storm.
	for deadline := time.Now().Add(5 * time.Second); limited.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("tenant a was never rate limited — the saturation premise failed")
		}
		time.Sleep(time.Millisecond)
	}
	under := measure()
	close(stop)
	wg.Wait()
	// 2× the solo baseline, with an absolute floor so microsecond-scale
	// baselines don't turn scheduler jitter into flakes.
	allowed := 2 * solo
	if floor := 2 * time.Millisecond; allowed < floor {
		allowed = floor
	}
	if under > allowed {
		t.Fatalf("tenant b p99 %v under tenant a saturation, solo %v (allowed %v)", under, solo, allowed)
	}
	t.Logf("tenant b p99: solo %v, under saturation %v (tenant a: %d requests, %d rate-limited)",
		solo, under, hammered.Load(), limited.Load())
}

func TestQueuedRequestRunsWhenSlotFrees(t *testing.T) {
	s := newServer(t, Options{MaxInFlight: 1, QueueDepth: 8})
	h := s.Handler()
	do(t, h, "POST", "/v1/graphs/g1/mutate", mutateBody("u", "x", "v"))

	tn := s.tenantFor("g1")
	tn.gate.slots <- struct{}{} // hold the slot; the request below must queue
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- do(t, h, "POST", "/v1/graphs/g1/query", `{"query":"x"}`)
	}()
	select {
	case <-done:
		t.Fatal("request served while the tenant's slot was held")
	case <-time.After(50 * time.Millisecond):
	}
	<-tn.gate.slots // free the slot: the queued request proceeds
	select {
	case rec := <-done:
		if rec.Code != http.StatusOK {
			t.Fatalf("queued request: %d %s", rec.Code, rec.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never ran after the slot freed")
	}
}
