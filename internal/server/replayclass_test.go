package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// A replayed request tagged with a valid workload class must surface a
// per-class latency series in /metrics; an arbitrary client string must
// not mint one.
func TestDispatchRecordsWorkloadClass(t *testing.T) {
	s := newServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}

	query := func(class string) {
		req := httptest.NewRequest("POST", "/v1/graphs/g/query", strings.NewReader(`{"query":"x"}`))
		if class != "" {
			req.Header.Set(WorkloadClassHeader, class)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
		}
	}
	query("AQ7")
	query("AQ7")
	query("AQ28")
	query("pwn{evil=\"1\"}") // invalid: must not become a label
	query("")                // untagged: must not be recorded

	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`pathquery_replay_class_seconds_count{class="AQ7",tenant="g"} 2`,
		`pathquery_replay_class_seconds_count{class="AQ28",tenant="g"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "pwn") || strings.Contains(body, "evil") {
		t.Error("client-chosen class string leaked into /metrics")
	}
}
