package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newRequest(t *testing.T, method, path, body string) *http.Request {
	t.Helper()
	return httptest.NewRequest(method, path, strings.NewReader(body))
}

func serve(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// chanLogger collects log lines written through Options.Logf.
type chanLogger struct {
	mu    sync.Mutex
	lines []string
}

func (l *chanLogger) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

// take returns the first recorded slow-query line.
func (l *chanLogger) take(t *testing.T) string {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, "slow-query") {
			return line
		}
	}
	t.Fatalf("no slow-query line among %q", l.lines)
	return ""
}

// traceEnvelope is the subset of the query answer envelope the trace
// tests care about.
type traceEnvelope struct {
	Epoch uint64 `json:"epoch"`
	Trace *struct {
		TotalNs int64 `json:"total_ns"`
		Spans   []struct {
			Name string `json:"name"`
			Ns   int64  `json:"ns"`
		} `json:"spans"`
	} `json:"trace"`
}

func TestQueryTraceSpans(t *testing.T) {
	s := newServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}

	rec := do(t, h, "POST", "/v1/graphs/g/query?trace=1", `{"query":"x"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	var env traceEnvelope
	decodeInto(t, rec, &env)
	if env.Trace == nil {
		t.Fatal("?trace=1 answer has no trace object")
	}
	if env.Trace.TotalNs <= 0 {
		t.Fatalf("trace total %d, want > 0", env.Trace.TotalNs)
	}
	var sum int64
	names := map[string]bool{}
	for _, sp := range env.Trace.Spans {
		if sp.Ns < 0 {
			t.Fatalf("span %s has negative duration %d", sp.Name, sp.Ns)
		}
		sum += sp.Ns
		names[sp.Name] = true
	}
	if sum > env.Trace.TotalNs {
		t.Fatalf("span sum %d exceeds total %d", sum, env.Trace.TotalNs)
	}
	for _, want := range []string{"admission", "compile", "cache_lookup"} {
		if !names[want] {
			t.Fatalf("trace %v missing span %q", names, want)
		}
	}

	// Without ?trace=1 (and no slow-query threshold) the envelope must
	// not carry a trace.
	rec = do(t, h, "POST", "/v1/graphs/g/query", `{"query":"x"}`)
	var plain traceEnvelope
	decodeInto(t, rec, &plain)
	if plain.Trace != nil {
		t.Fatal("untraced query answer carries a trace object")
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	s := newServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}

	// Client-supplied id is echoed on success.
	req := newRequest(t, "POST", "/v1/graphs/g/query", `{"query":"x"}`)
	req.Header.Set("X-Request-ID", "client-id-42")
	rec := serve(h, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("X-Request-ID = %q, want client-id-42", got)
	}

	// Client-supplied id is echoed on errors, and lands inside the error
	// envelope so logs correlate with responses.
	req = newRequest(t, "POST", "/v1/graphs/nope/query", `{"query":"x"}`)
	req.Header.Set("X-Request-ID", "client-id-43")
	rec = serve(h, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("query on missing graph: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-ID"); got != "client-id-43" {
		t.Fatalf("error X-Request-ID = %q, want client-id-43", got)
	}
	var env struct {
		Error struct {
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	decodeInto(t, rec, &env)
	if env.Error.RequestID != "client-id-43" {
		t.Fatalf("error envelope request_id = %q, want client-id-43", env.Error.RequestID)
	}

	// Absent a client id the server mints one.
	rec = do(t, h, "GET", "/v1/graphs", "")
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("server did not mint an X-Request-ID")
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "POST", "/v1/graphs/g/query", `{"query":"x"}`); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	// A probe against a nonexistent graph must be counted under the
	// collapsed tenant label, not under the probed name.
	do(t, h, "POST", "/v1/graphs/noexist/query", `{"query":"x"}`)

	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`pathquery_requests_total{code="200",op="query",tenant="g"} 1`,
		`pathquery_requests_total{code="404",op="query",tenant="_unknown"} 1`,
		`pathquery_eval_seconds_count{semantics="nodes",tenant="g"} 1`,
		`pathquery_wal_fsync_seconds_count{tenant="g"} 1`,
		`pathquery_result_cache_misses_total{tenant="g"} 1`,
		`pathquery_epoch{tenant="g"} 2`,
		`# TYPE pathquery_request_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The probed graph name must not appear as a label value anywhere.
	if strings.Contains(body, `"noexist"`) {
		t.Fatal("/metrics leaked an unregistered graph name as a label")
	}
}

func TestListCarriesAdmissionCounters(t *testing.T) {
	s := newServer(t, Options{MutateRate: 0.0001, MutateBurst: 1})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}
	// Burst exhausted and refill is ~1/10000s: the second mutation must
	// be rate limited.
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("b", "x", "c")); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second mutate: %d, want 429", rec.Code)
	}

	rec := do(t, h, "GET", "/v1/graphs", "")
	var listing struct {
		Graphs []struct {
			Name        string `json:"name"`
			Epoch       uint64 `json:"epoch"`
			Recovered   bool   `json:"recovered"`
			Overloaded  uint64 `json:"overloaded"`
			RateLimited uint64 `json:"rate_limited"`
		} `json:"graphs"`
	}
	decodeInto(t, rec, &listing)
	if len(listing.Graphs) != 1 {
		t.Fatalf("listing has %d graphs, want 1", len(listing.Graphs))
	}
	g := listing.Graphs[0]
	if g.Name != "g" || !g.Recovered || g.Epoch != 2 {
		t.Fatalf("listing row %+v, want recovered g at epoch 2", g)
	}
	if g.RateLimited != 1 || g.Overloaded != 0 {
		t.Fatalf("rejection counters %+v, want rate_limited=1 overloaded=0", g)
	}

	// The same counters surface in per-tenant /stats.
	rec = do(t, h, "GET", "/v1/graphs/g/stats", "")
	var stats struct {
		Admission struct {
			InFlight    int    `json:"in_flight"`
			Queued      int64  `json:"queued"`
			RateLimited uint64 `json:"rate_limited"`
		} `json:"admission"`
	}
	decodeInto(t, rec, &stats)
	if stats.Admission.RateLimited != 1 {
		t.Fatalf("stats admission %+v, want rate_limited=1", stats.Admission)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var mu chanLogger
	s := newServer(t, Options{SlowQuery: time.Nanosecond, Logf: mu.logf})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/graphs/g/mutate", mutateBody("a", "x", "b")); rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "POST", "/v1/graphs/g/query", `{"query":"x"}`); rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	line := mu.take(t)
	for _, want := range []string{`"tenant":"g"`, `"query":"x"`, `"semantics":"nodes"`, `"request_id":"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow-query line missing %s: %s", want, line)
		}
	}
}
