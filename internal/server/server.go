// Package server is the multi-tenant serving layer over the engine: a
// registry of named graphs, each one a durable engine (internal/store
// WAL + checkpoints under <data>/<name>/), exposed as
//
//	POST /v1/graphs/{name}/query   — engine /v1/query for that graph
//	POST /v1/graphs/{name}/batch   — engine /v1/batch
//	POST /v1/graphs/{name}/mutate  — durable mutation (creates the graph)
//	POST /v1/graphs/{name}/learn   — online learning
//	GET  /v1/graphs/{name}/stats   — engine counters + store durability stats
//	GET  /v1/graphs/{name}/plans   — cached compiled plans
//	GET  /v1/graphs                — registry listing (fleet health)
//	GET  /metrics                  — Prometheus text exposition
//	GET  /healthz                  — liveness (always ok while serving)
//	GET  /readyz                   — readiness (503 until recovery finishes)
//
// Tenants are created lazily: a syntactically valid, non-empty mutate
// to an unknown name opens a fresh store directory (a malformed or
// empty body is rejected before any durable state is minted, and a
// global Options.MaxTenants cap bounds creation); any other verb on an
// unknown name answers 404. On
// startup RecoverAll replays every existing tenant directory (checkpoint
// load + WAL tail) before /readyz reports ready; a request for a specific
// tenant that arrives earlier triggers that tenant's recovery on the
// spot and waits only for it.
//
// Per-tenant admission control isolates tenants from each other (see
// gate.go): an in-flight cap with a bounded wait queue (overflow answers
// 503 "overloaded" with Retry-After), and a mutation token bucket
// (exhaustion answers 429 "rate_limited" with Retry-After). Errors use
// the engine's structured envelope {"error": {"code", "message"}}.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/engine"
	"pathquery/internal/store"
	"pathquery/internal/telemetry"
)

// Options tunes a Server.
type Options struct {
	// DataDir is the root directory; each tenant lives in DataDir/<name>.
	DataDir string
	// CheckpointEvery is handed to each tenant's store (store.Options).
	CheckpointEvery int
	// ResultCacheCap is handed to each tenant's engine.
	ResultCacheCap int
	// MaxInFlight caps each tenant's concurrently served requests
	// (default 64).
	MaxInFlight int
	// QueueDepth bounds each tenant's admission wait queue beyond
	// MaxInFlight (default 128; negative sheds immediately on a full
	// semaphore).
	QueueDepth int
	// MutateRate bounds each tenant's mutations per second via a token
	// bucket of MutateBurst (0 = unlimited).
	MutateRate  float64
	MutateBurst int
	// MaxTenants caps the number of registered graphs; a mutation that
	// would create one past the cap answers 503 tenant_limit (default
	// 1024; negative = unlimited). Tenants already on disk always recover
	// regardless of the cap.
	MaxTenants int
	// SlowQuery, when positive, logs every query whose total time
	// reaches it as one structured JSON line through Logf.
	SlowQuery time.Duration
	// Logf receives recovery warnings and per-tenant lifecycle messages;
	// nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 64
	}
	if out.QueueDepth == 0 {
		out.QueueDepth = 128
	}
	if out.MaxTenants == 0 {
		out.MaxTenants = 1024
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the multi-tenant registry and its HTTP surface.
type Server struct {
	opt  Options
	logf func(format string, args ...any)

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool

	ready atomic.Bool

	// reg is the server's metric registry (GET /metrics); recoveryHist
	// observes each tenant's recovery (store open + engine build).
	reg          *telemetry.Registry
	recoveryHist telemetry.Histogram
}

// tenant is one named graph: its durable store, its engine, and its
// admission state. Recovery runs inside once, so concurrent first
// requests (or RecoverAll racing a lazy request) open the store exactly
// once.
type tenant struct {
	name string
	srv  *Server

	once    sync.Once
	err     error
	store   *store.GraphStore
	eng     *engine.Engine
	handler http.Handler

	gate   *gate
	mutate *bucket

	// Admission telemetry, created with the registry entry: time queued
	// at the gate, and rejections by reason.
	queueWait   *telemetry.Histogram
	overloaded  *telemetry.Counter
	rateLimited *telemetry.Counter
}

// New creates a server rooted at opt.DataDir (created if absent). The
// server is not ready until RecoverAll finishes — run it in the
// background and serve immediately; /readyz gates traffic that cares.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	if opt.DataDir == "" {
		return nil, errors.New("server: Options.DataDir is required")
	}
	if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{opt: opt, logf: opt.Logf, tenants: make(map[string]*tenant), reg: telemetry.NewRegistry()}
	s.reg.RegisterHistogram("pathquery_recovery_seconds",
		"Per-tenant recovery latency: store open (checkpoint load + WAL replay) plus engine build.",
		&s.recoveryHist)
	return s, nil
}

// Registry returns the server's metric registry — the backing of
// GET /metrics, also mountable on a separate ops listener.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// RecoverAll recovers every tenant directory under DataDir, then marks
// the server ready. Tenants whose recovery fails stay registered with
// their error (requests to them answer 503) — one corrupt tenant must
// not keep every other graph down.
func (s *Server) RecoverAll() {
	entries, err := os.ReadDir(s.opt.DataDir)
	if err != nil {
		s.logf("server: reading %s: %v", s.opt.DataDir, err)
	}
	for _, ent := range entries {
		if !ent.IsDir() || !validName(ent.Name()) {
			continue
		}
		t := s.tenantFor(ent.Name())
		if t == nil {
			continue // closed underneath us
		}
		if err := t.recover(); err != nil {
			s.logf("server: tenant %s: recovery failed: %v", ent.Name(), err)
		} else {
			s.logf("server: tenant %s: recovered epoch %d", ent.Name(), t.store.Epoch())
		}
	}
	s.ready.Store(true)
}

// Ready reports whether startup recovery has finished.
func (s *Server) Ready() bool { return s.ready.Load() }

// Close stops every tenant's engine maintainer (draining its queue) and
// closes every tenant's store. In-flight mutations already inside the
// engine finish against ErrClosed (a 503 to their clients).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	var first error
	for _, t := range tenants {
		t.once.Do(func() { t.err = errors.New("server: closed before recovery") })
		if t.eng != nil {
			t.eng.Close()
		}
		if t.store != nil {
			if err := t.store.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// tenantFor returns the registered tenant, creating the registry entry
// if needed (recovery happens later, inside tenant.recover). Returns nil
// on a closed server.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{
			name:   name,
			srv:    s,
			gate:   newGate(s.opt.MaxInFlight, s.opt.QueueDepth),
			mutate: newBucket(s.opt.MutateRate, s.opt.MutateBurst),
		}
		// Registered here — not per request — so label cardinality is
		// bounded by the tenants that actually exist.
		tl := telemetry.Label{Key: "tenant", Value: name}
		t.queueWait = s.reg.Histogram("pathquery_queue_wait_seconds",
			"Time spent queued at the tenant's admission gate.", tl)
		t.overloaded = s.reg.Counter("pathquery_admission_rejected_total",
			"Requests rejected by admission control, by reason.",
			tl, telemetry.Label{Key: "reason", Value: "overloaded"})
		t.rateLimited = s.reg.Counter("pathquery_admission_rejected_total",
			"Requests rejected by admission control, by reason.",
			tl, telemetry.Label{Key: "reason", Value: "rate_limited"})
		s.tenants[name] = t
	}
	return t
}

// exists reports whether the tenant is registered or has a directory on
// disk — the test for "may a non-mutate verb touch it". The in-memory
// table is consulted first so the Stat syscall is only paid for names
// this process has not served yet.
func (s *Server) exists(name string) bool {
	if s.registered(name) {
		return true
	}
	info, err := os.Stat(filepath.Join(s.opt.DataDir, name))
	return err == nil && info.IsDir()
}

// registered reports whether the tenant is in the in-memory table —
// the syscall-free existence check for hot paths that can tolerate a
// miss on tenants this process has never touched.
func (s *Server) registered(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tenants[name]
	return ok
}

// recover opens the tenant's store and builds its engine, exactly once;
// on success the tenant's engine and store metrics join the server's
// registry under its tenant label.
func (t *tenant) recover() error {
	t.once.Do(func() {
		start := time.Now()
		dir := filepath.Join(t.srv.opt.DataDir, t.name)
		st, err := store.Open(dir, store.Options{
			CheckpointEvery: t.srv.opt.CheckpointEvery,
			Logf:            t.srv.logf,
		})
		if err != nil {
			t.err = err
			return
		}
		t.store = st
		t.eng = engine.New(st.Graph(), engine.Options{
			ResultCacheCap: t.srv.opt.ResultCacheCap,
			Log:            st,
		})
		t.handler = engine.NewHandlerWith(t.eng, engine.HandlerOptions{
			Tenant:    t.name,
			SlowQuery: t.srv.opt.SlowQuery,
			SlowLogf:  t.srv.logf,
		})
		tl := telemetry.Label{Key: "tenant", Value: t.name}
		t.eng.RegisterMetrics(t.srv.reg, tl)
		st.RegisterMetrics(t.srv.reg, tl)
		t.srv.recoveryHist.Observe(time.Since(start))
	})
	return t.err
}

// validName accepts tenant names that are safe as directory names: no
// separators, no dot-files, a sane length.
func validName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// enginePath maps a tenant operation to the engine handler's route.
var enginePath = map[string]string{
	"query":  "/v1/query",
	"batch":  "/v1/batch",
	"mutate": "/mutate",
	"learn":  "/learn",
	"plans":  "/plans",
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			writeErr(w, http.StatusServiceUnavailable, "not_ready",
				"tenant recovery in progress", 1*time.Second)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/graphs", s.handleList)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("/v1/graphs/{name}/{op}", s.dispatch)
	// Every request — success or error — carries an X-Request-ID,
	// accepted from the client or minted here, echoed on the response
	// and in error envelopes.
	return telemetry.WithRequestID(mux)
}

// handleList answers the registry listing: every recovered tenant with
// its served epoch and size.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	type row struct {
		Name  string `json:"name"`
		Epoch uint64 `json:"epoch"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
		// Recovered is false for a tenant whose recovery failed; Error
		// carries its message, so the listing doubles as a fleet-health
		// view instead of silently hiding broken graphs.
		Recovered bool   `json:"recovered"`
		Error     string `json:"error,omitempty"`
		// Admission rejection counters, by reason.
		Overloaded  uint64 `json:"overloaded"`
		RateLimited uint64 `json:"rate_limited"`
		// Result-cache maintenance outcomes across publishes: entries
		// retained untouched, incrementally regrown, and dropped.
		ResultRetained uint64 `json:"result_retained"`
		ResultRegrown  uint64 `json:"result_regrown"`
		ResultDropped  uint64 `json:"result_dropped"`
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		t := s.tenantFor(name)
		if t == nil {
			continue
		}
		rw := row{
			Name:        name,
			Overloaded:  t.overloaded.Load(),
			RateLimited: t.rateLimited.Load(),
		}
		if err := t.recover(); err != nil {
			rw.Error = err.Error()
		} else {
			rw.Recovered = true
			st := t.eng.Stats()
			rw.Epoch, rw.Nodes, rw.Edges = st.Epoch, st.Nodes, st.Edges
			rw.ResultRetained, rw.ResultRegrown, rw.ResultDropped =
				st.ResultRetained, st.ResultRegrown, st.ResultDropped
		}
		rows = append(rows, rw)
	}
	writeJSON(w, struct {
		Graphs []row `json:"graphs"`
	}{rows})
}

// dispatch routes /v1/graphs/{name}/{op} to the tenant's engine through
// its admission gate, recording per-tenant request metrics on the way
// out.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	name, op := r.PathValue("name"), r.PathValue("op")
	if !validName(name) {
		// Not recorded: both label values would be attacker-chosen.
		writeErr(w, http.StatusBadRequest, "bad_graph_name",
			fmt.Sprintf("invalid graph name %q", name), 0)
		return
	}
	rec := telemetry.NewStatusRecorder(w)
	w = rec
	opLabel := op
	if _, ok := enginePath[op]; !ok && op != "stats" {
		opLabel = "_unknown" // unbounded client-supplied op values collapse
	}
	start := time.Now()
	defer func() {
		// The tenant label is resolved after serving against the
		// in-memory table only — never the disk: any request that
		// actually reached a tenant registered it via tenantFor by now
		// (a creating mutation included), so a map miss means a 404 or
		// an unknown-op probe, which collapses to "_unknown" rather
		// than minting a label (or paying a Stat syscall) per probed
		// name.
		tenantLabel := name
		if !s.registered(name) {
			tenantLabel = "_unknown"
		}
		ls := []telemetry.Label{
			{Key: "tenant", Value: tenantLabel},
			{Key: "op", Value: opLabel},
		}
		s.reg.Histogram("pathquery_request_seconds",
			"End-to-end request latency at the server, admission included.",
			ls...).Observe(time.Since(start))
		s.reg.Counter("pathquery_requests_total",
			"Requests served, by tenant, operation and HTTP status.",
			append(ls, telemetry.Label{Key: "code", Value: strconv.Itoa(rec.Code)})...).Inc()
		ObserveWorkloadClass(s.reg, r, tenantLabel, time.Since(start))
	}()

	if op == "query" && (r.URL.Query().Get("trace") == "1" || s.opt.SlowQuery > 0) {
		// The trace starts here — above admission — so the admission span
		// and the engine's spans share one total and sum to at most it.
		r = r.WithContext(telemetry.WithTrace(r.Context(), telemetry.NewTrace()))
	}

	if op == "stats" {
		s.handleStats(w, r, name)
		return
	}
	path, ok := enginePath[op]
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such operation %q", op), 0)
		return
	}
	// Only a mutation creates a tenant; everything else must find one.
	if !s.exists(name) {
		if op != "mutate" {
			writeErr(w, http.StatusNotFound, "unknown_graph",
				fmt.Sprintf("no graph %q (a mutate creates it)", name), 0)
			return
		}
		// Creation gate: only a syntactically valid, non-empty mutation
		// may mint durable state (a directory, a registry entry) — a
		// malformed or empty body must not let an unauthenticated client
		// create unbounded tenants. The validated body is replayed into
		// the engine handler below.
		body, ok := s.admitCreatingMutation(w, r, name)
		if !ok {
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	t := s.tenantFor(name)
	if t == nil {
		writeErr(w, http.StatusServiceUnavailable, "shutting_down", "server is closing", 0)
		return
	}

	// Admission before recovery: a stampede on a cold tenant queues at
	// its gate rather than stacking up inside store recovery.
	waitStart := time.Now()
	err := t.gate.acquire(r.Context())
	wait := time.Since(waitStart)
	t.queueWait.Observe(wait)
	telemetry.TraceFrom(r.Context()).Observe("admission", wait)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			t.overloaded.Inc()
			writeErr(w, http.StatusServiceUnavailable, "overloaded",
				fmt.Sprintf("graph %q has no in-flight or queue capacity left", name),
				1*time.Second)
			return
		}
		writeErr(w, 499, "canceled", "client gave up while queued", 0)
		return
	}
	defer t.gate.release()

	if op == "mutate" {
		if ok, wait := t.mutate.take(); !ok {
			t.rateLimited.Inc()
			writeErr(w, http.StatusTooManyRequests, "rate_limited",
				fmt.Sprintf("graph %q mutation rate limit exceeded", name), wait)
			return
		}
	}
	if err := t.recover(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "recovery_failed",
			fmt.Sprintf("graph %q failed recovery: %v", name, err), 0)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = path
	t.handler.ServeHTTP(w, r2)
}

// admitCreatingMutation decodes and validates a mutation aimed at a
// graph that does not exist yet, enforcing the global tenant cap. It
// mirrors the engine handler's own decoding (same field rules, same
// error codes) so a request rejected here would have been rejected
// there too — just before any durable state exists instead of after.
// It returns the consumed body for replay and whether to proceed.
func (s *Server) admitCreatingMutation(w http.ResponseWriter, r *http.Request, name string) ([]byte, bool) {
	if s.opt.MaxTenants > 0 {
		s.mu.Lock()
		n := len(s.tenants)
		s.mu.Unlock()
		if n >= s.opt.MaxTenants {
			writeErr(w, http.StatusServiceUnavailable, "tenant_limit",
				fmt.Sprintf("tenant limit %d reached; graph %q not created", s.opt.MaxTenants, name), 0)
			return nil, false
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, engine.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit), 0)
		} else {
			writeErr(w, http.StatusBadRequest, "bad_body",
				fmt.Sprintf("reading request body: %v", err), 0)
		}
		return nil, false
	}
	var req struct {
		Edges []engine.EdgeSpec `json:"edges"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_body",
			fmt.Sprintf("bad request body: %v", err), 0)
		return nil, false
	}
	if len(req.Edges) == 0 {
		writeErr(w, http.StatusBadRequest, "empty_mutation",
			fmt.Sprintf("an empty mutation does not create graph %q", name), 0)
		return nil, false
	}
	for i, ed := range req.Edges {
		if ed.From == "" || ed.Label == "" || ed.To == "" {
			writeErr(w, http.StatusBadRequest, "bad_edge",
				fmt.Sprintf("edge %d: from, label and to are all required", i), 0)
			return nil, false
		}
	}
	return body, true
}

// handleStats answers the tenant's engine counters plus its store's
// durability stats (epoch, checkpoint epoch, WAL size, recovery cost).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, name string) {
	if !s.exists(name) {
		writeErr(w, http.StatusNotFound, "unknown_graph",
			fmt.Sprintf("no graph %q", name), 0)
		return
	}
	t := s.tenantFor(name)
	if t == nil {
		writeErr(w, http.StatusServiceUnavailable, "shutting_down", "server is closing", 0)
		return
	}
	if err := t.recover(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "recovery_failed",
			fmt.Sprintf("graph %q failed recovery: %v", name, err), 0)
		return
	}
	writeJSON(w, struct {
		engine.Stats
		Store     store.Stats    `json:"store"`
		Admission admissionStats `json:"admission"`
	}{t.eng.Stats(), t.store.Stats(), admissionStats{
		InFlight:    t.gate.inFlight(),
		Queued:      t.gate.waiting(),
		Overloaded:  t.overloaded.Load(),
		RateLimited: t.rateLimited.Load(),
	}})
}

// admissionStats is the admission-control block of GET stats: the
// gate's instantaneous occupancy and the cumulative rejections.
type admissionStats struct {
	InFlight    int    `json:"in_flight"`
	Queued      int64  `json:"queued"`
	Overloaded  uint64 `json:"overloaded"`
	RateLimited uint64 `json:"rate_limited"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr answers the engine's structured error envelope, with a
// Retry-After hint (rounded up to whole seconds) when the client should
// back off and try again.
func writeErr(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id,omitempty"`
		} `json:"error"`
	}
	env.Error.Code, env.Error.Message = code, message
	env.Error.RequestID = telemetry.RequestID(w)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}
