package server

import (
	"net/http"
	"time"

	"pathquery/internal/telemetry"
	"pathquery/internal/workload"
)

// WorkloadClassHeader is the request header a replay driver sets to tag
// each request with its abstract workload class ("AQ1".."AQ28"), so a
// live server can split request latency per class in /metrics.
const WorkloadClassHeader = "X-Workload-Class"

// ObserveWorkloadClass records one request latency into the per-class
// replay histogram when r carries a valid workload-class header. The
// class value is validated against the fixed AQ1–AQ28 table before it
// becomes a label — a client-chosen string must never mint a metric
// series. Shared by the multi-tenant dispatch path and pqserve's
// single-graph middleware.
func ObserveWorkloadClass(reg *telemetry.Registry, r *http.Request, tenant string, d time.Duration) {
	class := r.Header.Get(WorkloadClassHeader)
	if class == "" || !workload.ValidClass(class) {
		return
	}
	reg.Histogram("pathquery_replay_class_seconds",
		"Replayed request latency by abstract workload class (X-Workload-Class).",
		telemetry.Label{Key: "tenant", Value: tenant},
		telemetry.Label{Key: "class", Value: class}).Observe(d)
}
