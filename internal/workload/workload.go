// Package workload implements the paper's second future-work direction
// (Section 6): a benchmark for queries defined by regular expressions on
// graphs — "motivated by the absence of benchmarks devoted to queries
// defined by regular expressions, we want to develop such a benchmark".
//
// A workload is generated from shape templates (the structural families
// the paper's evaluation uses: chains, Kleene tails, class chains,
// A·B*·C), instantiated over a concrete graph's label-frequency ranking
// and calibrated to selectivity bands. Each generated query carries the
// structural measures benchmark consumers need: canonical DFA size, star
// height, disjunction width, selectivity, and the learning-difficulty
// proxies (characteristic-sample size and the Theorem 3.5 k bound).
package workload

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"pathquery/internal/charsample"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/regex"
)

// Shape is a structural query family.
type Shape string

// The benchmark's shape families. Chain and KleeneTail mirror bio-style
// queries; ClassChain and ABStarC mirror the paper's synthetic shapes;
// Disjunction exercises union-heavy queries.
const (
	Chain       Shape = "chain"       // a1·a2·…·an
	KleeneTail  Shape = "kleene-tail" // a1·…·an·A·A*
	ClassChain  Shape = "class-chain" // A1·A2·…·An
	ABStarC     Shape = "abstar-c"    // A·B*·C
	Disjunction Shape = "disjunction" // w1 + w2 + … + wm (short chains)
)

// AllShapes lists every family.
var AllShapes = []Shape{Chain, KleeneTail, ClassChain, ABStarC, Disjunction}

// Params parametrizes instantiation of one shape.
type Params struct {
	Shape Shape
	// Length is the chain length / number of classes / number of branches.
	Length int
	// ClassWidth is the disjunction width of each class (1 = single label).
	ClassWidth int
	// RankOffset shifts which frequency ranks the classes draw from:
	// 0 starts at the most frequent label; higher offsets yield more
	// selective queries.
	RankOffset int
}

// Entry is one benchmark query with its measures.
type Entry struct {
	Params      Params
	Expr        string
	Query       *query.Query
	Selectivity float64
	// Size is the canonical DFA state count (the paper's size measure).
	Size int
	// StarHeight is the nesting depth of Kleene stars in the expression.
	StarHeight int
	// CharSampleNodes is |CS| of the Theorem 3.5 construction — a
	// learning-difficulty proxy. -1 when the query selects nothing.
	CharSampleNodes int
	// K is the Theorem 3.5 SCP bound 2·n+1.
	K int
}

// Generate instantiates the given params on g and measures the result.
// It is the read-your-writes delegate of GenerateOn: it freezes g's
// current state into a snapshot and generates against that.
func Generate(g *graph.Graph, p Params) (Entry, error) {
	return GenerateOn(g.Snapshot(), p)
}

// GenerateOn instantiates the given params against a pinned epoch
// snapshot and measures the result. Pinning lets generation run against
// a live engine's served epoch while mutations publish future epochs
// underneath (the same port the PR 3 learner received).
func GenerateOn(s *graph.Snapshot, p Params) (Entry, error) {
	expr, err := render(s, p)
	if err != nil {
		return Entry{}, err
	}
	q, err := query.Parse(s.Alphabet(), expr)
	if err != nil {
		return Entry{}, fmt.Errorf("workload: rendering %v produced invalid expr %q: %w", p, expr, err)
	}
	e := Entry{
		Params:      p,
		Expr:        expr,
		Query:       q,
		Selectivity: q.EvaluateOn(s).Selectivity(),
		Size:        q.PrefixFree().Size(),
		StarHeight:  starHeight(q.Regex()),
		K:           charsample.KFor(q),
	}
	e.CharSampleNodes = -1
	if !q.IsEmpty() {
		if _, cs, err := charsample.Build(q); err == nil {
			e.CharSampleNodes = cs.Size()
		}
	}
	return e, nil
}

// render materializes a shape over the snapshot's frequency-ranked labels.
func render(s *graph.Snapshot, p Params) (string, error) {
	if p.Length < 1 {
		return "", fmt.Errorf("workload: length must be ≥ 1")
	}
	if p.ClassWidth < 1 {
		p.ClassWidth = 1
	}
	labels := rankedLabels(s)
	pick := func(i int) (string, error) {
		lo := p.RankOffset + i*p.ClassWidth
		hi := lo + p.ClassWidth
		if hi > len(labels) {
			return "", fmt.Errorf("workload: ranks [%d,%d) exceed %d labels", lo, hi, len(labels))
		}
		if p.ClassWidth == 1 {
			return labels[lo], nil
		}
		return "(" + strings.Join(labels[lo:hi], "+") + ")", nil
	}
	switch p.Shape {
	case Chain, ClassChain:
		parts := make([]string, p.Length)
		for i := range parts {
			c, err := pick(i)
			if err != nil {
				return "", err
			}
			parts[i] = c
		}
		return strings.Join(parts, "·"), nil
	case KleeneTail:
		head := make([]string, p.Length)
		for i := range head {
			c, err := pick(i)
			if err != nil {
				return "", err
			}
			head[i] = c
		}
		tail, err := pick(p.Length - 1)
		if err != nil {
			return "", err
		}
		return strings.Join(head, "·") + "·" + tail + "*", nil
	case ABStarC:
		a, err := pick(0)
		if err != nil {
			return "", err
		}
		b, err := pick(1)
		if err != nil {
			return "", err
		}
		c, err := pick(2)
		if err != nil {
			return "", err
		}
		return a + "·" + b + "*·" + c, nil
	case Disjunction:
		branches := make([]string, p.Length)
		for i := range branches {
			x, err := pick(i)
			if err != nil {
				return "", err
			}
			y, err := pick(i + 1)
			if err != nil {
				return "", err
			}
			branches[i] = x + "·" + y
		}
		return strings.Join(branches, "+"), nil
	default:
		return "", fmt.Errorf("workload: unknown shape %q", p.Shape)
	}
}

// rankedLabels returns the snapshot's labels ordered by descending edge
// frequency (ties broken by name, so the ranking is deterministic).
func rankedLabels(s *graph.Snapshot) []string {
	counts := make(map[string]int)
	for v := 0; v < s.NumNodes(); v++ {
		for _, e := range s.OutEdges(graph.NodeID(v)) {
			counts[s.Alphabet().Name(e.Sym)]++
		}
	}
	labels := s.Alphabet().Names()
	sort.SliceStable(labels, func(i, j int) bool {
		if counts[labels[i]] != counts[labels[j]] {
			return counts[labels[i]] > counts[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}

// starHeight computes the star nesting depth of an expression.
func starHeight(n *regex.Node) int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case regex.Star:
		return 1 + starHeight(n.Left)
	case regex.Union, regex.Concat:
		l, r := starHeight(n.Left), starHeight(n.Right)
		if l > r {
			return l
		}
		return r
	default:
		return 0
	}
}

// Band is a selectivity target range.
type Band struct {
	Name   string
	Lo, Hi float64
}

// DefaultBands mirror the paper's workload spread: needle (bio1-like),
// narrow (bio2/bio3-like), medium (bio4/syn2-like), broad (bio6/syn3-like).
var DefaultBands = []Band{
	{"needle", 0.00001, 0.005},
	{"narrow", 0.005, 0.05},
	{"medium", 0.05, 0.20},
	{"broad", 0.20, 0.60},
}

// Suite generates, per shape and band, the instantiation whose selectivity
// falls in (or nearest to) the band. It is the read-your-writes delegate
// of SuiteOn over g's current state.
func Suite(g *graph.Graph, shapes []Shape, bands []Band) []Entry {
	return SuiteOn(g.Snapshot(), shapes, bands)
}

// SuiteOn generates, per shape and band, the instantiation whose
// selectivity falls in (or nearest to) the band, sweeping lengths, widths
// and rank offsets against one pinned epoch snapshot. Entries that select
// nothing are dropped — the paper retains only queries selecting at least
// one node.
func SuiteOn(s *graph.Snapshot, shapes []Shape, bands []Band) []Entry {
	labels := s.Alphabet().Size()
	var out []Entry
	for _, shape := range shapes {
		for _, band := range bands {
			var best Entry
			bestGap := math.Inf(1)
			found := false
			for _, length := range []int{1, 2, 3} {
				for _, width := range []int{1, 2, 4, 8} {
					for offset := 0; offset < labels-width*3-1; offset += 2 {
						e, err := GenerateOn(s, Params{
							Shape: shape, Length: length, ClassWidth: width, RankOffset: offset,
						})
						if err != nil {
							continue
						}
						if e.Selectivity == 0 {
							continue
						}
						gap := bandGap(band, e.Selectivity)
						if gap < bestGap {
							bestGap = gap
							best = e
							found = true
						}
						if gap == 0 {
							break
						}
					}
				}
			}
			if found && bandGap(band, best.Selectivity) < band.Lo+0.5 {
				out = append(out, best)
			}
		}
	}
	return out
}

// bandGap is 0 inside the band, distance to the nearest edge outside.
func bandGap(b Band, sel float64) float64 {
	switch {
	case sel < b.Lo:
		return b.Lo - sel
	case sel > b.Hi:
		return sel - b.Hi
	}
	return 0
}

// Print renders a suite as an aligned table.
func Print(w io.Writer, entries []Entry) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shape\tlen\twidth\toffset\tselectivity\tsize\tstar\t|CS|\tk\texpr")
	for _, e := range entries {
		expr := e.Expr
		if len(expr) > 48 {
			expr = expr[:45] + "..."
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.4f%%\t%d\t%d\t%d\t%d\t%s\n",
			e.Params.Shape, e.Params.Length, e.Params.ClassWidth, e.Params.RankOffset,
			100*e.Selectivity, e.Size, e.StarHeight, e.CharSampleNodes, e.K, expr)
	}
	tw.Flush()
}

// WriteCSV emits the suite in machine-readable form.
func WriteCSV(w io.Writer, entries []Entry) error {
	if _, err := fmt.Fprintln(w, "shape,length,width,offset,selectivity,size,star_height,cs_nodes,k,expr"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.6f,%d,%d,%d,%d,%q\n",
			e.Params.Shape, e.Params.Length, e.Params.ClassWidth, e.Params.RankOffset,
			e.Selectivity, e.Size, e.StarHeight, e.CharSampleNodes, e.K, e.Expr); err != nil {
			return err
		}
	}
	return nil
}
