package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/workload"
)

func benchGraph() *graph.Graph {
	return datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 1500, Edges: 4500, Labels: 12, ZipfS: 1.1, Seed: 101,
	})
}

func TestGenerateShapes(t *testing.T) {
	g := benchGraph()
	for _, shape := range workload.AllShapes {
		e, err := workload.Generate(g, workload.Params{
			Shape: shape, Length: 2, ClassWidth: 2, RankOffset: 0,
		})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if e.Expr == "" || e.Query == nil {
			t.Fatalf("%s: empty entry", shape)
		}
		if e.Size < 1 {
			t.Fatalf("%s: size %d", shape, e.Size)
		}
		if e.Selectivity < 0 || e.Selectivity > 1 {
			t.Fatalf("%s: selectivity %v", shape, e.Selectivity)
		}
	}
}

func TestGenerateStarHeight(t *testing.T) {
	g := benchGraph()
	chain, err := workload.Generate(g, workload.Params{Shape: workload.Chain, Length: 3})
	if err != nil {
		t.Fatal(err)
	}
	if chain.StarHeight != 0 {
		t.Fatalf("chain star height = %d", chain.StarHeight)
	}
	tail, err := workload.Generate(g, workload.Params{Shape: workload.KleeneTail, Length: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tail.StarHeight != 1 {
		t.Fatalf("kleene-tail star height = %d", tail.StarHeight)
	}
}

func TestGenerateRankOffsetMonotoneSelectivity(t *testing.T) {
	// Higher rank offsets draw rarer labels: selectivity should not grow
	// (weakly, comparing extremes).
	g := benchGraph()
	lo, err := workload.Generate(g, workload.Params{Shape: workload.Chain, Length: 1, RankOffset: 0})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := workload.Generate(g, workload.Params{Shape: workload.Chain, Length: 1, RankOffset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Selectivity > lo.Selectivity {
		t.Fatalf("offset 10 (%v) more selective than offset 0 (%v)?", hi.Selectivity, lo.Selectivity)
	}
}

func TestGenerateErrors(t *testing.T) {
	g := benchGraph()
	if _, err := workload.Generate(g, workload.Params{Shape: workload.Chain, Length: 0}); err == nil {
		t.Fatal("length 0 accepted")
	}
	if _, err := workload.Generate(g, workload.Params{Shape: "nope", Length: 1}); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if _, err := workload.Generate(g, workload.Params{
		Shape: workload.Chain, Length: 50, ClassWidth: 4,
	}); err == nil {
		t.Fatal("rank overflow accepted")
	}
}

func TestSuiteCoversBands(t *testing.T) {
	g := benchGraph()
	suite := workload.Suite(g, []workload.Shape{workload.Chain, workload.ABStarC}, workload.DefaultBands)
	if len(suite) < 4 {
		t.Fatalf("suite has only %d entries", len(suite))
	}
	for _, e := range suite {
		if e.Selectivity <= 0 {
			t.Fatalf("suite entry %s selects nothing", e.Expr)
		}
	}
}

func TestPrintAndCSV(t *testing.T) {
	g := benchGraph()
	e, err := workload.Generate(g, workload.Params{Shape: workload.ABStarC, Length: 1, ClassWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	workload.Print(&buf, []workload.Entry{e})
	if !strings.Contains(buf.String(), "abstar-c") {
		t.Fatalf("print output:\n%s", buf.String())
	}
	buf.Reset()
	if err := workload.WriteCSV(&buf, []workload.Entry{e}); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("CSV lines = %d", lines)
	}
}
