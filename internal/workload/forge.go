package workload

// The workload forge: tiers 2 and 3 of the PathForge methodology.
//
// Tier 2 (templates) instantiates each abstract AQ pattern over the
// snapshot's label-frequency ranking: slot labels are drawn by a seeded
// RNG over the ranked labels, each candidate is evaluated on the pinned
// snapshot, and the first instantiation selecting at least one node is
// kept (the paper likewise retains only queries selecting at least one
// node), stamped with its measured selectivity and the selectivity band
// it fell in. Tier 3 (real queries) anchors each template at concrete
// nodes chosen by connectivity ranking: candidates are ranked by their
// CSR out-degree restricted to the query's first-symbol class (the
// symbols that can start an accepted word), and the RNG picks anchors
// from the top of that ranking — nodes where the query demonstrably has
// somewhere to go.
//
// Everything is driven by one seeded RNG over deterministic inputs (the
// ranked labels and the degree ranking are both stably ordered), so a
// (snapshot, config) pair always forges the identical workload — the
// reproducibility the three-tier methodology exists for.

import (
	"fmt"
	"math/rand"
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/regex"
)

// ForgeConfig parametrizes three-tier workload generation.
type ForgeConfig struct {
	// Seed drives every random choice the forge makes.
	Seed int64
	// Classes are the abstract classes to instantiate (nil: all 28).
	Classes []string
	// TemplatesPerClass is the number of tier-2 instantiations per class
	// (default 2).
	TemplatesPerClass int
	// AnchorsPerTemplate is the number of tier-3 anchored queries derived
	// from each template (default 2; negative disables the real tier).
	AnchorsPerTemplate int
	// TopDegree is the anchor candidate pool: anchors are drawn from the
	// this-many top nodes of the first-symbol degree ranking (default 64).
	TopDegree int
	// MaxAttempts bounds the redraws per template while hunting a
	// non-empty selection (default 16).
	MaxAttempts int
	// Bands are the selectivity bands entries are stamped with
	// (nil: DefaultBands).
	Bands []Band
}

func (cfg *ForgeConfig) defaults() error {
	if cfg.TemplatesPerClass == 0 {
		cfg.TemplatesPerClass = 2
	}
	if cfg.AnchorsPerTemplate == 0 {
		cfg.AnchorsPerTemplate = 2
	}
	if cfg.AnchorsPerTemplate < 0 {
		cfg.AnchorsPerTemplate = 0
	}
	if cfg.TopDegree <= 0 {
		cfg.TopDegree = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	if len(cfg.Bands) == 0 {
		cfg.Bands = DefaultBands
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = make([]string, len(AbstractQueries))
		for i, aq := range AbstractQueries {
			cfg.Classes[i] = aq.ID
		}
	}
	for _, id := range cfg.Classes {
		if !ValidClass(id) {
			return fmt.Errorf("workload: unknown abstract class %q", id)
		}
	}
	return nil
}

// ForgeGraph is Forge over g's current state — the read-your-writes
// delegate.
func ForgeGraph(g *graph.Graph, cfg ForgeConfig) (*File, error) {
	return Forge(g.Snapshot(), cfg)
}

// Forge generates a three-tier workload against a pinned epoch snapshot
// and returns it as a writable workload file. Generation is
// deterministic in (snapshot, cfg).
func Forge(s *graph.Snapshot, cfg ForgeConfig) (*File, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	ranked := rankedLabels(s)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("workload: cannot forge over an empty alphabet")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &File{Header: Header{
		Format: FormatVersion,
		Seed:   cfg.Seed,
		Graph: GraphInfo{
			Fingerprint: Fingerprint(s),
			Nodes:       s.NumNodes(),
			Edges:       s.NumEdges(),
			Labels:      s.Alphabet().Size(),
		},
		Params: ParamsInfo{
			Classes:            cfg.Classes,
			TemplatesPerClass:  cfg.TemplatesPerClass,
			AnchorsPerTemplate: cfg.AnchorsPerTemplate,
			TopDegree:          cfg.TopDegree,
		},
	}}
	for _, id := range cfg.Classes {
		aq, _ := AbstractByID(id)
		for t := 0; t < cfg.TemplatesPerClass; t++ {
			expr, q, sel, ok := instantiate(s, aq, ranked, rng, cfg.MaxAttempts)
			if !ok {
				continue // no non-empty instantiation found for this class
			}
			f.Entries = append(f.Entries, FileEntry{
				Class:       aq.ID,
				Tier:        TierTemplate,
				Expr:        expr,
				Semantics:   query.SemanticsNodes.String(),
				Band:        bandName(cfg.Bands, sel),
				Selectivity: sel,
			})
			if cfg.AnchorsPerTemplate == 0 {
				continue
			}
			for _, v := range pickAnchors(s, q, rng, cfg.TopDegree, cfg.AnchorsPerTemplate) {
				f.Entries = append(f.Entries, FileEntry{
					Class:       aq.ID,
					Tier:        TierReal,
					Expr:        expr,
					Semantics:   query.SemanticsPairsFrom.String(),
					From:        s.NodeName(v),
					Band:        bandName(cfg.Bands, sel),
					Selectivity: sel,
				})
			}
		}
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("workload: forge produced no entries (every instantiation selected nothing)")
	}
	return f, nil
}

// instantiate draws slot labels from the frequency ranking until the
// rendered query selects at least one node. Draws are biased toward the
// frequent end of the ranking (squared-uniform rank), mirroring how the
// existing Suite machinery starts at rank offset 0: frequent labels make
// the structural differences between the AQ classes — not shared label
// scarcity — the dominant selectivity factor.
func instantiate(s *graph.Snapshot, aq AbstractQuery, ranked []string, rng *rand.Rand, attempts int) (string, *query.Query, float64, bool) {
	for i := 0; i < attempts; i++ {
		pick := func() string {
			u := rng.Float64()
			return ranked[int(u*u*float64(len(ranked)))]
		}
		expr, err := aq.Render(pick(), pick(), pick())
		if err != nil {
			return "", nil, 0, false
		}
		q, err := query.Parse(s.Alphabet(), expr)
		if err != nil {
			// An AQ template over existing labels always parses; a failure
			// is a bug in the table, caught by tests, not a redraw.
			return "", nil, 0, false
		}
		sel := q.EvaluateOn(s).Selectivity()
		if sel > 0 {
			return expr, q, sel, true
		}
	}
	return "", nil, 0, false
}

// bandName stamps a selectivity with its containing band, or the nearest
// band when it falls outside every range (an ε-accepting query selects
// every node, past the broad band's ceiling).
func bandName(bands []Band, sel float64) string {
	best, bestGap := "", 0.0
	for i, b := range bands {
		gap := bandGap(b, sel)
		if gap == 0 {
			return b.Name
		}
		if i == 0 || gap < bestGap {
			best, bestGap = b.Name, gap
		}
	}
	return best
}

// pickAnchors returns up to n distinct anchor nodes for q, drawn by the
// RNG from the topDegree best candidates of the connectivity ranking:
// nodes ordered by out-degree restricted to q's first-symbol class
// (descending, ties by id so the ranking is deterministic). Nodes with
// no first-symbol out-edge are never anchors — an anchored replay
// request should exercise a traversal, not a guaranteed miss.
func pickAnchors(s *graph.Snapshot, q *query.Query, rng *rand.Rand, topDegree, n int) []graph.NodeID {
	firsts := firstSymbols(q.Regex())
	if len(firsts) == 0 {
		return nil
	}
	type scored struct {
		v     graph.NodeID
		score int
	}
	var candidates []scored
	for v := 0; v < s.NumNodes(); v++ {
		score := 0
		for _, e := range s.OutEdges(graph.NodeID(v)) {
			if firsts[e.Sym] {
				score++
			}
		}
		if score > 0 {
			candidates = append(candidates, scored{graph.NodeID(v), score})
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].score != candidates[j].score {
			return candidates[i].score > candidates[j].score
		}
		return candidates[i].v < candidates[j].v
	})
	if len(candidates) > topDegree {
		candidates = candidates[:topDegree]
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	picked := rng.Perm(len(candidates))[:n]
	sort.Ints(picked) // stable file order: by rank, not by draw order
	out := make([]graph.NodeID, n)
	for i, idx := range picked {
		out[i] = candidates[idx].v
	}
	return out
}

// firstSymbols returns the set of symbols that can start a word of L(n).
func firstSymbols(n *regex.Node) map[alphabet.Symbol]bool {
	out := make(map[alphabet.Symbol]bool)
	var walk func(*regex.Node)
	walk = func(m *regex.Node) {
		if m == nil {
			return
		}
		switch m.Kind {
		case regex.Literal:
			out[m.Sym] = true
		case regex.Union:
			walk(m.Left)
			walk(m.Right)
		case regex.Concat:
			walk(m.Left)
			if nullable(m.Left) {
				walk(m.Right)
			}
		case regex.Star:
			walk(m.Left)
		}
	}
	walk(n)
	return out
}

// nullable reports whether ε ∈ L(n).
func nullable(n *regex.Node) bool {
	if n == nil {
		return false
	}
	switch n.Kind {
	case regex.Epsilon, regex.Star:
		return true
	case regex.Union:
		return nullable(n.Left) || nullable(n.Right)
	case regex.Concat:
		return nullable(n.Left) && nullable(n.Right)
	default:
		return false
	}
}
