package workload_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/query"
	"pathquery/internal/workload"
)

func TestAbstractTableComplete(t *testing.T) {
	if len(workload.AbstractQueries) != 28 {
		t.Fatalf("table has %d classes, want 28", len(workload.AbstractQueries))
	}
	seen := map[string]bool{}
	for _, aq := range workload.AbstractQueries {
		if seen[aq.ID] {
			t.Fatalf("duplicate class %s", aq.ID)
		}
		seen[aq.ID] = true
		if aq.Slots < 1 || aq.Slots > 3 {
			t.Fatalf("%s: slots %d", aq.ID, aq.Slots)
		}
		if !workload.ValidClass(aq.ID) {
			t.Fatalf("%s not valid by ValidClass", aq.ID)
		}
	}
	if workload.ValidClass("AQ29") || workload.ValidClass("pwned") {
		t.Fatal("ValidClass accepted an unknown class")
	}
}

// Every desugared template must parse in the repo grammar once concrete
// labels are substituted for the slots.
func TestAbstractTemplatesParse(t *testing.T) {
	al := alphabet.NewSorted("author", "book", "cites")
	for _, aq := range workload.AbstractQueries {
		expr, err := aq.Render("author", "book", "cites")
		if err != nil {
			t.Fatalf("%s: render: %v", aq.ID, err)
		}
		if _, err := query.Parse(al, expr); err != nil {
			t.Fatalf("%s: template %q rendered to unparseable %q: %v", aq.ID, aq.Template, expr, err)
		}
	}
}

// Slot labels containing the slot letters themselves must substitute in a
// single pass — "author" must not have its 'a' re-replaced.
func TestRenderSinglePass(t *testing.T) {
	aq, _ := workload.AbstractByID("AQ2") // a·b·c
	got, err := aq.Render("cab", "abc", "bca")
	if err != nil {
		t.Fatal(err)
	}
	if got != "cab·abc·bca" {
		t.Fatalf("render = %q, want cab·abc·bca", got)
	}
}

func TestForgeDeterministic(t *testing.T) {
	g := benchGraph()
	cfg := workload.ForgeConfig{Seed: 7}
	f1, err := workload.ForgeGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := workload.ForgeGraph(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := f1.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := f2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same graph + same seed forged different files")
	}
	// A different seed must actually change something.
	f3, err := workload.ForgeGraph(g, workload.ForgeConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := f3.Write(&b3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("different seeds forged byte-identical files")
	}
}

func TestForgeEntries(t *testing.T) {
	g := benchGraph()
	s := g.Snapshot()
	f, err := workload.Forge(s, workload.ForgeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.Header.Format != workload.FormatVersion {
		t.Fatalf("header format %q", f.Header.Format)
	}
	if f.Header.Graph.Fingerprint != workload.Fingerprint(s) {
		t.Fatal("header fingerprint does not match the snapshot")
	}
	classes := map[string]bool{}
	anchored := 0
	for _, e := range f.Entries {
		if !workload.ValidClass(e.Class) {
			t.Fatalf("entry with unknown class %q", e.Class)
		}
		classes[e.Class] = true
		q, err := query.Parse(s.Alphabet(), e.Expr)
		if err != nil {
			t.Fatalf("%s: forged unparseable expr %q: %v", e.Class, e.Expr, err)
		}
		if e.Selectivity <= 0 || e.Selectivity > 1 {
			t.Fatalf("%s: selectivity %v", e.Class, e.Selectivity)
		}
		if e.Band == "" {
			t.Fatalf("%s: entry without band", e.Class)
		}
		switch e.Tier {
		case workload.TierTemplate:
			if e.From != "" {
				t.Fatalf("%s: template entry carries anchor %q", e.Class, e.From)
			}
		case workload.TierReal:
			anchored++
			if e.From == "" {
				t.Fatalf("%s: real entry without anchor", e.Class)
			}
			v, ok := g.NodeByName(e.From)
			if !ok {
				t.Fatalf("%s: anchor %q not in graph", e.Class, e.From)
			}
			// The anchor must have at least one out-edge the query can
			// start with — that is what connectivity ranking promises.
			if ans := q.EvaluateOn(s); ans.Selectivity() > 0 && len(s.OutEdges(v)) == 0 {
				t.Fatalf("%s: anchor %q has no out-edges", e.Class, e.From)
			}
		default:
			t.Fatalf("%s: unknown tier %q", e.Class, e.Tier)
		}
	}
	// A scale-free graph with 12 frequent-ish labels should instantiate the
	// vast majority of the 28 classes; require at least 20 to catch a
	// broken instantiation loop without being flaky about the tail.
	if len(classes) < 20 {
		t.Fatalf("only %d classes instantiated", len(classes))
	}
	if anchored == 0 {
		t.Fatal("no tier-3 anchored entries forged")
	}
}

func TestFileRoundTripFixedPoint(t *testing.T) {
	g := benchGraph()
	f, err := workload.ForgeGraph(g, workload.ForgeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := f.Write(&first); err != nil {
		t.Fatal(err)
	}
	parsed, err := workload.Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := parsed.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Write→Read→Write is not a fixed point")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := workload.Read(strings.NewReader("")); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := workload.Read(strings.NewReader(`{"format":"pathquery-workload/99"}` + "\n")); err == nil {
		t.Fatal("unknown format version accepted")
	}
	hdr := `{"format":"pathquery-workload/1","seed":1,"graph":{"fingerprint":"x","nodes":1,"edges":1,"labels":1},"params":{"classes":["AQ1"],"templates_per_class":1,"anchors_per_template":0,"top_degree":1}}`
	bad := hdr + "\n" + `{"class":"EVIL","tier":"template","expr":"a","semantics":"nodes","band":"broad","selectivity":0.5}` + "\n"
	if _, err := workload.Read(strings.NewReader(bad)); err == nil {
		t.Fatal("entry with unknown class accepted")
	}
}

func TestForgeClassSubset(t *testing.T) {
	g := benchGraph()
	f, err := workload.ForgeGraph(g, workload.ForgeConfig{Seed: 3, Classes: []string{"AQ1", "AQ28"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range f.Entries {
		if e.Class != "AQ1" && e.Class != "AQ28" {
			t.Fatalf("class %q outside requested subset", e.Class)
		}
	}
	if _, err := workload.ForgeGraph(g, workload.ForgeConfig{Seed: 3, Classes: []string{"AQ0"}}); err == nil {
		t.Fatal("unknown class accepted")
	}
}
