package workload

// The workload file format: a versioned, deterministic, line-oriented
// record of one forged workload. The first line is a JSON header naming
// the format version, the forge seed, the graph the workload was
// generated against (by fingerprint, so a replay against a different
// graph is detectable), and the generation parameters; every following
// line is one NDJSON entry. Writing is deterministic — field order is
// fixed by the struct layout and no timestamps are recorded — so the
// same snapshot and config always produce byte-identical files, and
// Write∘Read is the identity on anything Write produced (the fixed-point
// property the determinism tests pin).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"pathquery/internal/graph"
)

// FormatVersion identifies the workload file format. Readers reject
// files claiming any other version.
const FormatVersion = "pathquery-workload/1"

// Tier names recorded on file entries.
const (
	// TierTemplate marks a schema-instantiated template query (tier 2):
	// concrete labels, no anchor.
	TierTemplate = "template"
	// TierReal marks a node-anchored real query (tier 3).
	TierReal = "real"
)

// GraphInfo identifies the graph a workload was forged against.
type GraphInfo struct {
	Fingerprint string `json:"fingerprint"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Labels      int    `json:"labels"`
}

// ParamsInfo records the generation parameters in the header.
type ParamsInfo struct {
	Classes            []string `json:"classes"`
	TemplatesPerClass  int      `json:"templates_per_class"`
	AnchorsPerTemplate int      `json:"anchors_per_template"`
	TopDegree          int      `json:"top_degree"`
}

// Header is the first line of a workload file.
type Header struct {
	Format string     `json:"format"`
	Seed   int64      `json:"seed"`
	Graph  GraphInfo  `json:"graph"`
	Params ParamsInfo `json:"params"`
}

// FileEntry is one recorded query — one NDJSON line.
type FileEntry struct {
	// Class is the abstract query class, "AQ1".."AQ28".
	Class string `json:"class"`
	// Tier is TierTemplate or TierReal.
	Tier string `json:"tier"`
	// Expr is the concrete query expression.
	Expr string `json:"expr"`
	// Semantics is the evaluation semantics the entry replays under
	// ("nodes" for unanchored, "pairsFrom" for anchored).
	Semantics string `json:"semantics"`
	// From is the anchor node name (TierReal only).
	From string `json:"from,omitempty"`
	// Band is the expected-selectivity band the entry fell in at forge
	// time (a DefaultBands name, by nearest containing band).
	Band string `json:"band"`
	// Selectivity is the measured monadic selectivity at forge time.
	Selectivity float64 `json:"selectivity"`
}

// File is a parsed (or forged) workload file.
type File struct {
	Header  Header
	Entries []FileEntry
}

// Write emits f in the versioned line format. Output is byte-identical
// across calls for equal receivers.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(f.Header)
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for i := range f.Entries {
		line, err := json.Marshal(&f.Entries[i])
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses a workload file, rejecting unknown format versions.
func Read(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty file (missing header)")
	}
	var f File
	if err := json.Unmarshal(sc.Bytes(), &f.Header); err != nil {
		return nil, fmt.Errorf("workload: bad header: %w", err)
	}
	if f.Header.Format != FormatVersion {
		return nil, fmt.Errorf("workload: unsupported format %q (want %q)", f.Header.Format, FormatVersion)
	}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue // tolerate a trailing blank line
		}
		var e FileEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if !ValidClass(e.Class) {
			return nil, fmt.Errorf("workload: line %d: unknown class %q", line, e.Class)
		}
		f.Entries = append(f.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteFile writes f to path.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFile reads the workload file at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Read(in)
}

// Fingerprint digests a snapshot's structure — node and edge counts, the
// alphabet, and every adjacency row — into a short stable hex string, so
// a workload file records exactly which graph it was forged against.
func Fingerprint(s *graph.Snapshot) string {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeInt(uint64(s.NumNodes()))
	writeInt(uint64(s.NumEdges()))
	for _, name := range s.Alphabet().Names() {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	for v := 0; v < s.NumNodes(); v++ {
		for _, e := range s.OutEdges(graph.NodeID(v)) {
			writeInt(uint64(v))
			writeInt(uint64(e.Sym))
			writeInt(uint64(e.To))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
