package workload

// Tier 1 of the PathForge methodology: the abstract query patterns.
// AQ1–AQ28 cover the regular-expression operator space systematically —
// concatenations, disjunctions, optionals, and the four Kleene flavors
// (a*, a+, tails and heads of chains) — so a workload instantiated from
// the full table exercises every operator combination the plan compiler
// and product engine distinguish, instead of whichever handful of
// queries a benchmark author happened to like.
//
// The patterns are recorded in PathForge's own notation ('|' union,
// '.' concatenation, '?' optional, postfix '+' one-or-more, '*' star)
// and carried alongside a template desugared into this repo's grammar
// (q1 + q2 | q1 · q2 | q*, with x? → (x+ε) and x+ → x·x*), with the
// slot letters a, b, c as placeholders for concrete labels.

import (
	"fmt"
	"strings"
)

// AbstractQuery is one abstract pattern of the AQ1–AQ28 table.
type AbstractQuery struct {
	// ID is the PathForge identifier, "AQ1" through "AQ28".
	ID string
	// Pattern is the pattern in PathForge notation over the slots a, b, c.
	Pattern string
	// Template is the same pattern desugared into the repo grammar, with
	// the slots still abstract: substituting concrete label expressions
	// for a, b, c yields a parseable query.
	Template string
	// Slots is the number of distinct slots the pattern uses (1–3).
	Slots int
}

// AbstractQueries is the full AQ1–AQ28 table, in ID order.
var AbstractQueries = []AbstractQuery{
	{"AQ1", "a.b", "a·b", 2},
	{"AQ2", "a.b.c", "a·b·c", 3},
	{"AQ3", "(a.b)?", "(a·b+ε)", 2},
	{"AQ4", "a.(b|c)", "a·(b+c)", 3},
	{"AQ5", "c.(a?)", "c·(a+ε)", 2},
	{"AQ6", "(c?).a", "(c+ε)·a", 2},
	{"AQ7", "a|b", "a+b", 2},
	{"AQ8", "(a.b)|c", "a·b+c", 3},
	{"AQ9", "(a|b)|c", "a+b+c", 3},
	{"AQ10", "a+|b", "a·a*+b", 2},
	{"AQ11", "a*|b", "a*+b", 2},
	{"AQ12", "a|c", "a+c", 2},
	{"AQ13", "(a?)|b", "(a+ε)+b", 2},
	{"AQ14", "c|(a?)", "c+(a+ε)", 2},
	{"AQ15", "a?", "(a+ε)", 1},
	{"AQ16", "a??", "((a+ε)+ε)", 1},
	{"AQ17", "c|(a|b)", "c+(a+b)", 3},
	{"AQ18", "(a|b)+", "(a+b)·(a+b)*", 2},
	{"AQ19", "(a|b)?", "(a+b+ε)", 2},
	{"AQ20", "(a|b)*", "(a+b)*", 2},
	{"AQ21", "c|(a.b)", "c+a·b", 3},
	{"AQ22", "a+.b", "a·a*·b", 2},
	{"AQ23", "a*.b", "a*·b", 2},
	{"AQ24", "a.b+", "a·b·b*", 2},
	{"AQ25", "a.b*", "a·b*", 2},
	{"AQ26", "a|(a+)", "a+a·a*", 1},
	{"AQ27", "a+", "a·a*", 1},
	{"AQ28", "a*", "a*", 1},
}

// AbstractByID returns the abstract query with the given ID.
func AbstractByID(id string) (AbstractQuery, bool) {
	for _, aq := range AbstractQueries {
		if aq.ID == id {
			return aq, true
		}
	}
	return AbstractQuery{}, false
}

// ValidClass reports whether id names one of the AQ1–AQ28 classes — the
// bounded label set the replay metrics use, so arbitrary client strings
// can never mint metric series.
func ValidClass(id string) bool {
	_, ok := AbstractByID(id)
	return ok
}

// Render substitutes concrete label expressions for the slots a, b, c.
// The replacement is a single left-to-right pass, so label names that
// themselves contain the letters a, b or c are never re-substituted.
func (aq AbstractQuery) Render(la, lb, lc string) (string, error) {
	if la == "" || lb == "" || lc == "" {
		return "", fmt.Errorf("workload: %s needs three slot labels", aq.ID)
	}
	return strings.NewReplacer("a", la, "b", lb, "c", lc).Replace(aq.Template), nil
}
