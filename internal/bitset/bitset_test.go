package bitset_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"pathquery/internal/bitset"
)

func TestBasicOps(t *testing.T) {
	b := bitset.Make(200)
	if len(b) != bitset.WordsFor(200) {
		t.Fatalf("Make(200) has %d words", len(b))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		if !b.TrySet(i) {
			t.Fatalf("TrySet(%d) on unset bit returned false", i)
		}
		if b.TrySet(i) {
			t.Fatalf("TrySet(%d) on set bit returned true", i)
		}
		if !b.Get(i) {
			t.Fatalf("bit %d unset after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatal("bits remain after ClearAll")
	}
}

func TestGrowPreservesOrReplaces(t *testing.T) {
	b := bitset.Make(64)
	b.Set(3)
	same := b.Grow(64)
	if !same.Get(3) {
		t.Fatal("Grow to same size must keep contents")
	}
	bigger := b.Grow(1000)
	if len(bigger) != bitset.WordsFor(1000) {
		t.Fatalf("Grow(1000) has %d words", len(bigger))
	}
	if bigger.Count() != 0 {
		t.Fatal("grown bitset must be zeroed")
	}
}

func TestForEachAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := bitset.Make(500)
	want := map[int]bool{}
	for k := 0; k < 100; k++ {
		i := rng.Intn(500)
		b.Set(i)
		want[i] = true
	}
	prev := -1
	n := 0
	b.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("ForEach out of order: %d after %d", i, prev)
		}
		if !want[i] {
			t.Fatalf("ForEach visited unset bit %d", i)
		}
		prev = i
		n++
	})
	if n != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", n, len(want))
	}
}

func TestTrySetAtomicExactlyOnce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const nBits = 1 << 12
	b := bitset.Make(nBits)
	var wins [8][]int
	var wg sync.WaitGroup
	for w := 0; w < len(wins); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < nBits; i++ {
				if b.TrySetAtomic(i) {
					wins[w] = append(wins[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ws := range wins {
		total += len(ws)
	}
	if total != nBits {
		t.Fatalf("%d wins across workers, want exactly %d", total, nBits)
	}
	if b.Count() != nBits {
		t.Fatalf("Count = %d, want %d", b.Count(), nBits)
	}
}
