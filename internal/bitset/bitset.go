// Package bitset provides dense []uint64 bitsets for the product
// constructions in internal/graph: visited sets over the |V|·|Q| product
// space, per-call successor dedup in Step, and the frontier marking of the
// parallel backward propagation in SelectMonadic. The representation is a
// plain word slice so callers can pool and resize scratch without
// indirection; the atomic variant supports concurrent marking from worker
// shards with exactly-once enqueue semantics.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

// Bits is a fixed-capacity bitset over indices 0..64*len(b)-1.
type Bits []uint64

// WordsFor returns the number of words needed for n bits.
func WordsFor(n int) int { return (n + 63) >> 6 }

// Make returns a zeroed bitset with capacity for n bits.
func Make(n int) Bits { return make(Bits, WordsFor(n)) }

// Grow returns b if it already holds n bits, else a fresh zeroed bitset.
// The returned bitset is all-zero only if b was (pool discipline: clear
// before reuse).
func (b Bits) Grow(n int) Bits {
	if w := WordsFor(n); w > len(b) {
		return make(Bits, w)
	}
	return b
}

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// TrySet sets bit i and reports whether it was previously unset.
func (b Bits) TrySet(i int) bool {
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	if b[w]&mask != 0 {
		return false
	}
	b[w] |= mask
	return true
}

// TrySetAtomic is TrySet with an atomic read-modify-write, safe for
// concurrent marking from multiple goroutines. Exactly one caller observes
// true per bit.
func (b Bits) TrySetAtomic(i int) bool {
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	return atomic.OrUint64(&b[w], mask)&mask == 0
}

// ClearAll zeroes every word.
func (b Bits) ClearAll() { clear(b) }

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (b Bits) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Marker wraps a pooled bitset for the mark-then-drain dedup idiom of the
// graph substrate: TrySet tracks the touched word range and count, Drain
// emits the marked indices in ascending order while clearing them — so
// draining scans only the words actually used and the underlying bitset
// returns to its pool all-zero.
type Marker struct {
	bits   Bits
	lo, hi int
	n      int
}

// NewMarker returns a Marker over b, which must be all-zero.
func NewMarker(b Bits) Marker { return Marker{bits: b, lo: len(b), hi: -1} }

// TrySet marks index i and reports whether it was previously unmarked.
func (m *Marker) TrySet(i int) bool {
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	if m.bits[w]&mask != 0 {
		return false
	}
	m.bits[w] |= mask
	if w < m.lo {
		m.lo = w
	}
	if w > m.hi {
		m.hi = w
	}
	m.n++
	return true
}

// Count returns the number of marked indices.
func (m *Marker) Count() int { return m.n }

// Drain calls fn for every marked index in ascending order and clears the
// marks, restoring the underlying bitset's all-zero pool invariant.
func (m *Marker) Drain(fn func(i int)) {
	for w := m.lo; w <= m.hi; w++ {
		word := m.bits[w]
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
		m.bits[w] = 0
	}
	m.lo, m.hi, m.n = len(m.bits), -1, 0
}
