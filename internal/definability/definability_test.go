package definability_test

import (
	"errors"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/definability"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

func nodesOf(t *testing.T, g *graph.Graph, names ...string) []graph.NodeID {
	t.Helper()
	out := make([]graph.NodeID, len(names))
	for i, n := range names {
		id, ok := g.NodeByName(n)
		if !ok {
			t.Fatalf("missing node %q", n)
		}
		out[i] = id
	}
	return out
}

func TestDefineExactSet(t *testing.T) {
	// On G0, {ν1, ν3} is definable — (a·b)*·c selects exactly it.
	g, _ := paperfix.G0()
	x := nodesOf(t, g, "v1", "v3")
	q, err := definability.Define(g, x, core.Options{})
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	sel := q.SelectNodes(g)
	if len(sel) != 2 || sel[0] != x[0] || sel[1] != x[1] {
		t.Fatalf("defined query selects %v, want %v", sel, x)
	}
	if !definability.IsDefinableExact(g, x) {
		t.Fatal("exact check disagrees")
	}
}

func TestUndefinableSet(t *testing.T) {
	// On Figure 5, the positive node's paths are all shared with the other
	// nodes, so {pos} alone is not definable.
	g, s := paperfix.Figure5()
	x := s.Pos
	if definability.IsDefinableExact(g, x) {
		t.Fatal("Figure 5 positive set should not be definable")
	}
	if _, err := definability.Define(g, x, core.Options{}); !errors.Is(err, definability.ErrNotDefinable) {
		t.Fatalf("err = %v, want ErrNotDefinable", err)
	}
}

func TestDefineEmptySet(t *testing.T) {
	g, _ := paperfix.G0()
	q, err := definability.Define(g, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.SelectNodes(g)) != 0 {
		t.Fatal("empty set's defining query selects nodes")
	}
	if !definability.IsDefinableExact(g, nil) {
		t.Fatal("empty set is always definable")
	}
}

func TestDefineWholeGraph(t *testing.T) {
	// The whole node set is defined by ε.
	g, _ := paperfix.G0()
	q, err := definability.Define(g, g.Nodes(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.SelectNodes(g)); got != g.NumNodes() {
		t.Fatalf("whole-graph query selects %d of %d", got, g.NumNodes())
	}
}

func TestLearningVsDefinability(t *testing.T) {
	// The paper's related-work distinction: a sample can be consistent
	// (learnable) while its positive set is not definable. On Figure 1,
	// {N2} with negative {N5} is consistent, but selecting *exactly* {N2}
	// requires no other node to be selected — N6 shares N2's bus-shaped
	// paths? Construct the contrast explicitly: {N2, N6} as positives is
	// learnable with N5 negative, while exactness additionally forces N1
	// and N4 (which share the cinema reachability) to be excluded.
	g, _ := paperfix.Figure1()
	x := nodesOf(t, g, "N2", "N6")
	s := core.Sample{Pos: x, Neg: nodesOf(t, g, "N5")}
	if !core.Consistent(g, s) {
		t.Fatal("sample should be consistent")
	}
	// Definability of {N2, N6}: the bus query selects exactly those two
	// (only N2 and N6 have bus edges), so this set IS definable — and the
	// defining query must not select N1 or N4.
	q, err := definability.Define(g, x, core.Options{})
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	sel := q.Select(g)
	n1 := nodesOf(t, g, "N1")[0]
	if sel[n1] {
		t.Fatal("defining query must exclude N1")
	}
	goal := query.MustParse(g.Alphabet(), "bus")
	if !q.EquivalentOn(g, goal) {
		t.Fatalf("defined %v; bus defines this set", q)
	}
}

func TestIsDefinableBoundedAgreesOnSmallGraphs(t *testing.T) {
	// Bounded and exact deciders agree on the fixtures (SCPs are short).
	g, _ := paperfix.G0()
	cases := [][]string{
		{"v1", "v3"},
		{"v5"},
		{"v1"},
		{"v2", "v7"},
	}
	for _, names := range cases {
		x := nodesOf(t, g, names...)
		exact := definability.IsDefinableExact(g, x)
		bounded := definability.IsDefinable(g, x, core.Options{})
		if bounded && !exact {
			t.Fatalf("%v: bounded says definable, exact disagrees", names)
		}
		// bounded may under-approximate; exact=true with bounded=false is
		// allowed but does not occur on G0 with the default schedule.
		if exact && !bounded {
			t.Logf("%v: exact definable but bounded abstained (acceptable)", names)
		}
	}
}
