// Package definability implements the problem the paper positions its
// learning task against (Related work, citing Antonopoulos, Neven &
// Servais, ICDT 2013): given a graph and a node set X, is there a path
// query selecting *exactly* X? Learning differs by leaving unlabeled nodes
// unconstrained; definability treats every node outside X as implicitly
// negative.
//
// The decision procedure reduces to learning: X is definable iff the
// sample (X positive, V∖X negative) is consistent, and a defining query —
// when one exists that the learner can construct from bounded SCPs — is
// whatever Learn returns on that total sample, post-checked to select
// exactly X. Exact consistency is PSPACE-hard (the paper adapts
// definability's own lower-bound technique, Lemma 3.2), so Define may
// abstain like the learner does.
package definability

import (
	"errors"

	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// ErrNotDefinable reports that no path query selects exactly the given set
// within the learner's SCP bound.
var ErrNotDefinable = errors.New("definability: no path query selects exactly this node set (within the SCP bound)")

// totalSample labels X positive and every other node negative.
func totalSample(g *graph.Graph, x []graph.NodeID) core.Sample {
	inX := make(map[graph.NodeID]bool, len(x))
	for _, v := range x {
		inX[v] = true
	}
	s := core.Sample{Pos: append([]graph.NodeID(nil), x...)}
	for v := 0; v < g.NumNodes(); v++ {
		if !inX[graph.NodeID(v)] {
			s.Neg = append(s.Neg, graph.NodeID(v))
		}
	}
	return s
}

// Define returns a query selecting exactly x on g, or ErrNotDefinable /
// the learner's abstain error. The empty set is defined by any empty
// query; Define returns one.
func Define(g *graph.Graph, x []graph.NodeID, opt core.Options) (*query.Query, error) {
	if len(x) == 0 {
		// b·b·c·c-style queries select nothing; the canonical empty query
		// is the ∅-language query, representable directly as a DFA.
		return emptyQuery(g), nil
	}
	s := totalSample(g, x)
	q, err := core.Learn(g, s, opt)
	if errors.Is(err, core.ErrAbstain) {
		return nil, ErrNotDefinable
	}
	if err != nil {
		return nil, err
	}
	// The learner guarantees consistency (⊇ X selected, negatives not);
	// with a total sample that is exactly X.
	return q, nil
}

// IsDefinable reports whether some query selects exactly x, within the
// learner's bounded search. False negatives are possible for sets whose
// defining query needs SCPs longer than the bound — the same abstain
// semantics as learning (the exact problem is intractable).
func IsDefinable(g *graph.Graph, x []graph.NodeID, opt core.Options) bool {
	_, err := Define(g, x, opt)
	return err == nil
}

// IsDefinableExact decides consistency of the total sample exactly
// (Lemma 3.1's criterion), with no SCP bound: X is definable iff every
// node of X has a path not covered by V∖X. Exponential worst case
// (PSPACE-complete in general) — for small graphs and tests.
func IsDefinableExact(g *graph.Graph, x []graph.NodeID) bool {
	if len(x) == 0 {
		return true
	}
	return core.Consistent(g, totalSample(g, x))
}

func emptyQuery(g *graph.Graph) *query.Query {
	return query.FromDFA(g.Alphabet(), automata.NewDFA(1, g.Alphabet().Size()))
}
