// Package certain implements the informativeness analysis of Section 4.2.
// Given a consistent sample S over G, an unlabeled node is *certain* when
// labeling it adds no information: every consistent query selects it
// (Cert+) or none does (Cert−). Lemma 4.1 characterizes both via path-
// language inclusions:
//
//	ν ∈ Cert+(G,S) iff ∃ν' ∈ S+ with paths(ν') ⊆ paths(S−) ∪ paths(ν),
//	ν ∈ Cert−(G,S) iff paths(ν) ⊆ paths(S−).
//
// A node is informative iff it is unlabeled and not certain. Deciding this
// exactly is PSPACE-complete (Lemma 4.2); the exact deciders here run the
// subset-construction inclusion test (exponential worst case, fine on the
// paper-scale graphs), and the interactive strategies use the k-bounded
// approximation from package scp instead.
package certain

import (
	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/scp"
)

// Label classifies a node relative to a sample.
type Label int

const (
	// Informative nodes contribute to the learning process when labeled.
	Informative Label = iota
	// CertainPositive nodes are selected by every consistent query.
	CertainPositive
	// CertainNegative nodes are selected by no consistent query.
	CertainNegative
	// AlreadyLabeled nodes are in the sample.
	AlreadyLabeled
)

func (l Label) String() string {
	switch l {
	case Informative:
		return "informative"
	case CertainPositive:
		return "certain+"
	case CertainNegative:
		return "certain-"
	case AlreadyLabeled:
		return "labeled"
	}
	return "unknown"
}

// IsCertainPositive decides ν ∈ Cert+(G,S) exactly (Lemma 4.1, case 1).
func IsCertainPositive(g *graph.Graph, s core.Sample, nu graph.NodeID) bool {
	right := append(append([]graph.NodeID{}, s.Neg...), nu)
	for _, p := range s.Pos {
		if g.PathsIncluded([]graph.NodeID{p}, right) {
			return true
		}
	}
	return false
}

// IsCertainNegative decides ν ∈ Cert−(G,S) exactly (Lemma 4.1, case 2).
func IsCertainNegative(g *graph.Graph, s core.Sample, nu graph.NodeID) bool {
	return g.PathsIncluded([]graph.NodeID{nu}, s.Neg)
}

// Classify returns the exact label of ν relative to S.
func Classify(g *graph.Graph, s core.Sample, nu graph.NodeID) Label {
	if _, ok := s.Labeled(nu); ok {
		return AlreadyLabeled
	}
	if IsCertainNegative(g, s, nu) {
		return CertainNegative
	}
	if IsCertainPositive(g, s, nu) {
		return CertainPositive
	}
	return Informative
}

// IsInformative decides informativeness exactly. This is the
// PSPACE-complete problem of Lemma 4.2; use only on small graphs.
func IsInformative(g *graph.Graph, s core.Sample, nu graph.NodeID) bool {
	return Classify(g, s, nu) == Informative
}

// IsKInformative is the practical approximation of Section 4.2: ν has a
// path of length ≤ k not covered by a negative example. k-informative
// implies informative; the converse may fail for the given k.
func IsKInformative(g *graph.Graph, s core.Sample, nu graph.NodeID, k int) bool {
	if _, ok := s.Labeled(nu); ok {
		return false
	}
	return scp.IsKInformative(g, nu, s.Neg, k)
}

// Propagate computes the exact certain labels of every unlabeled node —
// the "propagate label for ν" step of the interactive scenario (Figure 9),
// which prunes nodes that became uninformative after a new label. Returns
// the classified label per node id.
func Propagate(g *graph.Graph, s core.Sample) []Label {
	out := make([]Label, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out[v] = Classify(g, s, graph.NodeID(v))
	}
	return out
}
