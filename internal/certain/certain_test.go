package certain_test

import (
	"testing"

	"pathquery/internal/certain"
	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
)

func TestCertainFigure10(t *testing.T) {
	// The paper's Figure 10: the unlabeled node belongs to Cert+ — every
	// consistent query must accept b, and the node covers b.
	g, s, u := paperfix.Figure10()
	if !certain.IsCertainPositive(g, s, u) {
		t.Fatal("u should be certain-positive")
	}
	if certain.IsCertainNegative(g, s, u) {
		t.Fatal("u is not certain-negative")
	}
	if got := certain.Classify(g, s, u); got != certain.CertainPositive {
		t.Fatalf("Classify(u) = %v", got)
	}
	if certain.IsInformative(g, s, u) {
		t.Fatal("u should not be informative")
	}
	// "labeling it otherwise (i.e., with a –) leads to an inconsistent
	// sample": adding u to S− breaks consistency.
	bad := core.Sample{Pos: s.Pos, Neg: append(append([]graph.NodeID{}, s.Neg...), u)}
	if core.Consistent(g, bad) {
		t.Fatal("labeling u negative should make the sample inconsistent")
	}
}

func TestCertainNegativeDeadEnd(t *testing.T) {
	// A node whose entire (finite) path language is covered by a negative
	// example is certain-negative.
	g := graph.New(nil)
	g.AddEdgeByName("neg", "a", "x")
	g.AddEdgeByName("u", "a", "y")
	g.AddEdgeByName("pos", "b", "z")
	pos, _ := g.NodeByName("pos")
	neg, _ := g.NodeByName("neg")
	u, _ := g.NodeByName("u")
	s := core.Sample{Pos: []graph.NodeID{pos}, Neg: []graph.NodeID{neg}}
	// paths(u) = {ε, a} ⊆ paths(neg) = {ε, a}.
	if !certain.IsCertainNegative(g, s, u) {
		t.Fatal("u should be certain-negative")
	}
	if certain.IsInformative(g, s, u) {
		t.Fatal("u should not be informative")
	}
}

func TestInformativeNode(t *testing.T) {
	// A node with a fresh escaping path is informative: some consistent
	// query selects it, some doesn't.
	g := graph.New(nil)
	g.AddEdgeByName("pos", "a", "x")
	g.AddEdgeByName("neg", "b", "y")
	g.AddEdgeByName("u", "c", "z")
	pos, _ := g.NodeByName("pos")
	neg, _ := g.NodeByName("neg")
	u, _ := g.NodeByName("u")
	s := core.Sample{Pos: []graph.NodeID{pos}, Neg: []graph.NodeID{neg}}
	if !certain.IsInformative(g, s, u) {
		t.Fatal("u should be informative")
	}
	if got := certain.Classify(g, s, u); got != certain.Informative {
		t.Fatalf("Classify(u) = %v", got)
	}
}

func TestClassifyLabeled(t *testing.T) {
	g, s := paperfix.G0()
	if got := certain.Classify(g, s, s.Pos[0]); got != certain.AlreadyLabeled {
		t.Fatalf("Classify(labeled) = %v", got)
	}
}

func TestKInformativeImpliesInformative(t *testing.T) {
	// On G0 with the paper's sample, every k-informative node must be
	// informative (Section 4.2: "if a node is k-informative, then it is
	// also informative").
	g, s := paperfix.G0()
	for _, k := range []int{1, 2, 3} {
		for v := 0; v < g.NumNodes(); v++ {
			nu := graph.NodeID(v)
			if certain.IsKInformative(g, s, nu, k) && !certain.IsInformative(g, s, nu) {
				t.Fatalf("k=%d: node %s is k-informative but not informative", k, g.NodeName(nu))
			}
		}
	}
}

func TestPropagateMatchesClassify(t *testing.T) {
	g, s := paperfix.G0()
	labels := certain.Propagate(g, s)
	for v := 0; v < g.NumNodes(); v++ {
		if got := certain.Classify(g, s, graph.NodeID(v)); got != labels[v] {
			t.Fatalf("Propagate[%d] = %v, Classify = %v", v, labels[v], got)
		}
	}
}

func TestLabelString(t *testing.T) {
	for l, want := range map[certain.Label]string{
		certain.Informative:     "informative",
		certain.CertainPositive: "certain+",
		certain.CertainNegative: "certain-",
		certain.AlreadyLabeled:  "labeled",
	} {
		if l.String() != want {
			t.Errorf("Label(%d).String() = %q", l, l.String())
		}
	}
}
