package telemetry

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exposition format byte-for-byte for
// counters and gauges: family ordering (sorted by name), child ordering
// (sorted by label signature), label escaping, and value rendering.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pq_zeta_total", "Registered first, rendered last.").Add(3)
	reg.Counter("pq_requests_total", "Requests served.",
		Label{"tenant", "g1"}, Label{"code", "200"}).Add(7)
	reg.Counter("pq_requests_total", "Requests served.",
		Label{"tenant", "g1"}, Label{"code", "404"}).Inc()
	reg.Counter("pq_requests_total", "Requests served.",
		Label{"tenant", `we"ird\name` + "\n"}, Label{"code", "200"}).Add(2)
	reg.Gauge("pq_epoch", "Served epoch.", Label{"tenant", "g1"}).Set(42)
	reg.GaugeFunc("pq_ratio", "A computed gauge.", func() float64 { return 0.5 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP pq_epoch Served epoch.
# TYPE pq_epoch gauge
pq_epoch{tenant="g1"} 42
# HELP pq_ratio A computed gauge.
# TYPE pq_ratio gauge
pq_ratio 0.5
# HELP pq_requests_total Requests served.
# TYPE pq_requests_total counter
pq_requests_total{code="200",tenant="g1"} 7
pq_requests_total{code="200",tenant="we\"ird\\name\n"} 2
pq_requests_total{code="404",tenant="g1"} 1
# HELP pq_zeta_total Registered first, rendered last.
# TYPE pq_zeta_total counter
pq_zeta_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A second render is byte-identical: ordering is stable, not map-order.
	var b2 strings.Builder
	reg.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Error("two renders of the same registry differ")
	}
}

// TestExpositionHistogram checks the histogram rendering structurally:
// cumulative buckets ending in +Inf, a _sum and a _count line, and the
// count matching the observations.
func TestExpositionHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pq_eval_seconds", "Evaluation latency.", Label{"semantics", "nodes"})
	h.Observe(300 * time.Nanosecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(5 * time.Second) // overflow bucket

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var buckets int
	var lastCum string
	for _, l := range lines {
		if strings.HasPrefix(l, "pq_eval_seconds_bucket{") {
			buckets++
			lastCum = l
		}
	}
	if buckets != NumBuckets+1 {
		t.Errorf("got %d bucket lines, want %d", buckets, NumBuckets+1)
	}
	if !strings.Contains(lastCum, `le="+Inf"`) || !strings.HasSuffix(lastCum, " 3") {
		t.Errorf("last bucket line %q: want le=\"+Inf\" with cumulative 3", lastCum)
	}
	if !strings.Contains(out, `pq_eval_seconds_count{semantics="nodes"} 3`) {
		t.Errorf("missing _count line in:\n%s", out)
	}
	if !strings.Contains(out, `pq_eval_seconds_sum{semantics="nodes"}`) {
		t.Errorf("missing _sum line in:\n%s", out)
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pq_up", "Up.").Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "pq_up 1") {
		t.Errorf("body %q", rr.Body.String())
	}
}

// TestRegistryConcurrentGetOrCreate races many goroutines through the
// first lookup of the same series while /metrics renders concurrently.
// If get-or-create ever mints two collectors for one series, half the
// increments vanish and the final count comes up short; the concurrent
// WritePrometheus is the -race assertion that exposition does not read
// child fields being assigned by registration.
func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				reg.WritePrometheus(&b)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Per-iteration lookups, as the server's dispatch does, and a
				// fresh series per i%8 so creation keeps racing, not just the
				// first iteration.
				l := Label{"tenant", string(rune('a' + i%8))}
				reg.Counter("pq_race_total", "Racy counter.", l).Inc()
				reg.Histogram("pq_race_seconds", "Racy histogram.", l).Observe(time.Microsecond)
				if i == 0 {
					reg.GaugeFunc("pq_race_ratio", "Racy gauge fn.",
						func() float64 { return 1 }, l, Label{"w", string(rune('0' + w))})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	var total uint64
	for i := 0; i < 8; i++ {
		l := Label{"tenant", string(rune('a' + i))}
		total += reg.Counter("pq_race_total", "Racy counter.", l).Load()
		total += reg.Histogram("pq_race_seconds", "Racy histogram.", l).Snapshot().Count()
	}
	if want := uint64(2 * workers * perW); total != want {
		t.Fatalf("lost observations to a duplicated collector: total %d, want %d", total, want)
	}
}

// TestRegistryMismatchPanics pins the loud-failure contract: reusing a
// family name with a different type or a different help string panics
// instead of silently keeping the first registration.
func TestRegistryMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("pq_thing_total", "The canonical help.")
	mustPanic("type mismatch", func() {
		reg.Gauge("pq_thing_total", "The canonical help.")
	})
	mustPanic("help mismatch", func() {
		reg.Counter("pq_thing_total", "A typo'd help.")
	})
	// Matching re-registration stays idempotent.
	reg.Counter("pq_thing_total", "The canonical help.").Inc()
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while snapshots are taken concurrently — the -race assertion that
// Observe and Snapshot need no locks — and checks no observation is
// lost once the writers finish.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 10000
	)
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent snapshot reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if h.Snapshot().Count() > writers*perW {
					t.Error("snapshot count exceeds total observations")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	s := h.Snapshot()
	if got := s.Count(); got != writers*perW {
		t.Fatalf("lost observations: count %d, want %d", got, writers*perW)
	}
	if s.Quantile(0.5) <= 0 || s.Quantile(0.99) < s.Quantile(0.5) || time.Duration(s.Max) < s.Quantile(0.99) {
		t.Fatalf("incoherent quantiles: p50 %v p99 %v max %v", s.Quantile(0.5), s.Quantile(0.99), time.Duration(s.Max))
	}
}

// TestQuantileWithinOneBucket is the histogram half of the RunLoad
// percentile regression: estimates must land within one √2 bucket of
// the exact sorted-slice percentiles the old code computed.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform over 100ns..100ms — the serving latency range.
		d := time.Duration(100 * math.Pow(10, rng.Float64()*6))
		h.Observe(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.50, 0.90, 0.99} {
		want := exact[int(q*float64(len(exact)-1))]
		got := s.Quantile(q)
		if db, eb := BucketOf(got), BucketOf(want); db < eb-1 || db > eb+1 {
			t.Errorf("q=%.2f: estimate %v (bucket %d) vs exact %v (bucket %d): more than one bucket apart",
				q, got, db, want, eb)
		}
	}
	if got, want := time.Duration(s.Max), exact[len(exact)-1]; got != want {
		t.Errorf("max %v, want %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count() != 3 {
		t.Fatalf("merged count %d", sa.Count())
	}
	if sa.Max != int64(time.Second) {
		t.Fatalf("merged max %v", time.Duration(sa.Max))
	}
	if sa.Sum != int64(time.Microsecond+time.Millisecond+time.Second) {
		t.Fatalf("merged sum %v", time.Duration(sa.Sum))
	}
}

func TestTrace(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Observe("x", time.Second) // must not panic
	nilTrace.StartSpan("y")()
	if nilTrace.Total() != 0 || nilTrace.Spans() != nil {
		t.Fatal("nil trace not inert")
	}

	tr := NewTrace()
	tr.Observe("compile", 5*time.Millisecond)
	end := tr.StartSpan("traverse")
	time.Sleep(time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "compile" || spans[1].Name != "traverse" {
		t.Fatalf("spans %+v", spans)
	}
	if spans[1].Duration <= 0 || tr.Total() < spans[1].Duration {
		t.Fatalf("span %v total %v", spans[1].Duration, tr.Total())
	}

	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not round-tripped through context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("trace from empty context")
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("request ids %q %q", a, b)
	}
}

func TestBucketOf(t *testing.T) {
	if BucketOf(0) != 0 || BucketOf(-time.Second) != 0 {
		t.Fatal("non-positive durations must land in bucket 0")
	}
	if BucketOf(250*time.Nanosecond) != 0 || BucketOf(251*time.Nanosecond) != 1 {
		t.Fatal("bucket 0 upper bound must be inclusive at 250ns")
	}
	if BucketOf(time.Hour) != NumBuckets {
		t.Fatal("huge durations must land in the overflow bucket")
	}
	bounds := UpperBounds()
	for i := 1; i < len(bounds); i++ {
		ratio := float64(bounds[i]) / float64(bounds[i-1])
		if ratio < 1.40 || ratio > 1.42 {
			t.Fatalf("bucket ratio %d: %f, want ~√2", i, ratio)
		}
	}
}
