// Package telemetry is the serving system's measurement substrate:
// dependency-free, race-clean primitives — atomic counters and gauges,
// log-bucketed latency histograms with lock-free Observe and mergeable
// snapshots — plus a registry that renders the Prometheus text
// exposition format (the GET /metrics wire), per-request trace spans
// for the ?trace=1 breakdown, and X-Request-ID plumbing.
//
// Everything here measures *system* behavior (where a request's time
// goes, how a tenant degrades); the similarly named internal/metrics
// package is unrelated — it computes the paper's classifier-quality
// scores (precision/recall/F1) for the learning experiments.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Label is one metric label pair. Values are escaped at exposition
// time; keys must be valid Prometheus label names.
type Label struct {
	Key, Value string
}

// NewRequestID mints a 16-hex-character request id for requests that
// arrive without an X-Request-ID header.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we serve from, but a
		// request id is diagnostics, not security: fall back to a counter.
		return "fallback-" + hex.EncodeToString(fallbackID(b[:]))
	}
	return hex.EncodeToString(b[:])
}

var fallbackCounter atomic.Uint64

func fallbackID(b []byte) []byte {
	n := fallbackCounter.Add(1)
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	return b
}
