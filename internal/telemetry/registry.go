package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a set of named metric families rendered in the
// Prometheus text exposition format. A family is one metric name with
// one type and help string; its children are the label combinations
// observed. Getter methods are get-or-create and idempotent: asking
// for the same name and labels twice returns the same collector, so
// callers on the request path may look metrics up per request without
// registration ceremony. All methods are safe for concurrent use.
// Every registration of a family must use the same type and the same
// help string; a mismatch on either panics, so a typo'd duplicate
// registration fails loudly instead of silently keeping the first
// help text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
	typeValueHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name     string
	help     string
	typ      metricType
	children map[string]*child // keyed by rendered label string
}

type child struct {
	labels    string // rendered `key="value",...` (escaped, key-sorted), "" when unlabeled
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
	vhist     *ValueHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name and labels,
// creating it if needed. Reusing a name with a different metric type
// or help string panics — that is a programming error, not a runtime
// condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.childLocked(name, help, typeCounter, key)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters that already live
// elsewhere as atomics (cache hit counts, engine totals).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.childLocked(name, help, typeCounter, key).counterFn = fn
}

// Gauge returns the gauge registered under name and labels, creating
// it if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.childLocked(name, help, typeGauge, key)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.childLocked(name, help, typeGauge, key).gaugeFn = fn
}

// Histogram returns the histogram registered under name and labels,
// creating it if needed.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.childLocked(name, help, typeHistogram, key)
	if c.hist == nil {
		c.hist = &Histogram{}
	}
	return c.hist
}

// RegisterHistogram exposes an externally owned histogram (one
// embedded in an engine or store, observed without going through the
// registry) under name and labels.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.childLocked(name, help, typeHistogram, key).hist = h
}

// RegisterValueHistogram exposes an externally owned value histogram
// (unitless integer observations, e.g. records per WAL batch) under
// name and labels. Rendered as a histogram family with power-of-two
// integer bucket bounds.
func (r *Registry) RegisterValueHistogram(name, help string, h *ValueHistogram, labels ...Label) {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.childLocked(name, help, typeValueHistogram, key).vhist = h
}

// childLocked is the get-or-create core shared by every getter. It —
// and the caller's subsequent collector/fn assignment — runs under
// r.mu, so two concurrent first lookups of the same series cannot
// each mint a collector and lose one side's observations.
func (r *Registry) childLocked(name, help string, typ metricType, key string) *child {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
		}
		if f.help != help {
			panic(fmt.Sprintf("telemetry: metric %q registered with help %q, requested with %q", name, f.help, help))
		}
	}
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: key}
		f.children[key] = c
	}
	return c
}

// renderLabels renders labels as the exposition-format label body,
// sorted by key, with values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range []byte(v) {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// famSnapshot is a point-in-time copy of one family taken under the
// registry lock: the children are value copies, so rendering reads no
// field concurrently written by a registration.
type famSnapshot struct {
	name, help string
	typ        metricType
	children   []child
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and children by label signature, so the
// output is byte-stable for a stable set of metrics. The family and
// child structures are snapshotted under the lock in one pass, then
// rendered outside it — the collector pointers and exposition-time
// fn fields are only ever written under r.mu, while the collectors
// themselves are atomics and safe to read lock-free. Keeping the fn
// calls and histogram snapshots outside the critical section means a
// slow callback cannot stall registrations on the request path.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for name, f := range r.families {
		fs := famSnapshot{name: name, help: f.help, typ: f.typ}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs.children = make([]child, len(keys))
		for i, k := range keys {
			fs.children[i] = *f.children[k]
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for i := range f.children {
			writeChild(&b, &f, &f.children[i])
		}
		io.WriteString(w, b.String())
	}
}

func writeChild(b *strings.Builder, f *famSnapshot, c *child) {
	switch f.typ {
	case typeCounter:
		var v uint64
		if c.counterFn != nil {
			v = c.counterFn()
		} else if c.counter != nil {
			v = c.counter.Load()
		}
		fmt.Fprintf(b, "%s%s %d\n", f.name, braced(c.labels), v)
	case typeGauge:
		if c.gaugeFn != nil {
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(c.labels),
				strconv.FormatFloat(c.gaugeFn(), 'g', -1, 64))
		} else {
			var v int64
			if c.gauge != nil {
				v = c.gauge.Load()
			}
			fmt.Fprintf(b, "%s%s %d\n", f.name, braced(c.labels), v)
		}
	case typeHistogram:
		var s HistogramSnapshot
		if c.hist != nil {
			s = c.hist.Snapshot()
		}
		var cum uint64
		for i, count := range s.Buckets {
			cum += count
			le := "+Inf"
			if i < NumBuckets {
				le = strconv.FormatFloat(float64(bucketBounds[i])/1e9, 'g', -1, 64)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bracedWith(c.labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, braced(c.labels),
			strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, braced(c.labels), cum)
	case typeValueHistogram:
		var s ValueHistogramSnapshot
		if c.vhist != nil {
			s = c.vhist.Snapshot()
		}
		var cum uint64
		for i, count := range s.Buckets {
			cum += count
			le := "+Inf"
			if i < NumValueBuckets {
				le = strconv.FormatUint(1<<uint(i), 10)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bracedWith(c.labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %d\n", f.name, braced(c.labels), s.Sum)
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, braced(c.labels), cum)
	}
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bracedWith(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// Handler serves WritePrometheus — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
