package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Latency histogram with fixed log-spaced buckets: NumBuckets upper
// bounds growing by a factor of √2 per bucket, starting at bucketBase
// nanoseconds, plus one overflow bucket. The √2 ratio means any
// reported quantile is within one bucket — a factor of √2 — of the
// exact value, across the whole range: bucket 0 catches the ~150ns
// cached-hit path, the top finite bound (bucketBase·2^((NumBuckets-1)/2)
// ≈ 3s) covers WAL fsyncs, checkpoints and slow traversals, and
// anything beyond lands in the overflow bucket whose quantiles are
// reported as the tracked maximum.

// NumBuckets is the number of finite histogram buckets.
const NumBuckets = 48

// bucketBase is the upper bound of bucket 0, in nanoseconds.
const bucketBase = 250

// bucketBounds[i] is the inclusive upper bound, in nanoseconds, of
// bucket i: round(bucketBase · √2^i).
var bucketBounds = func() [NumBuckets]int64 {
	var b [NumBuckets]int64
	for i := range b {
		b[i] = int64(math.Round(bucketBase * math.Pow(math.Sqrt2, float64(i))))
	}
	return b
}()

// BucketOf returns the index of the bucket an observation of d falls
// into (NumBuckets for the overflow bucket) — the unit tests' "within
// one bucket" assertions are written against it.
func BucketOf(d time.Duration) int {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	lo, hi := 0, NumBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] >= ns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// UpperBounds returns the finite bucket upper bounds.
func UpperBounds() []time.Duration {
	out := make([]time.Duration, NumBuckets)
	for i, b := range bucketBounds {
		out[i] = time.Duration(b)
	}
	return out
}

// Histogram is a lock-free latency histogram. The zero value is ready
// to use; Observe and Snapshot are safe for concurrent use from any
// number of goroutines.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds
	max     atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[BucketOf(d)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. Buckets are read one atomic
// load at a time, so a snapshot taken concurrently with Observe may be
// off by in-flight observations — each bucket is exact, the total is
// momentarily fuzzy — which is the documented (and race-clean) trade
// for a lock-free hot path.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is a mergeable point-in-time histogram view.
type HistogramSnapshot struct {
	// Buckets[i] counts observations in bucket i; the last entry is the
	// overflow bucket.
	Buckets [NumBuckets + 1]uint64
	// Sum is the total observed nanoseconds.
	Sum int64
	// Max is the largest single observation in nanoseconds.
	Max int64
}

// Count returns the total number of observations (the sum of the
// buckets — the internally consistent total Quantile works from).
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Merge adds o's observations into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear
// interpolation inside the bucket holding its rank. The estimate is
// within one √2 bucket of the exact value; quantiles falling in the
// overflow bucket report the tracked maximum.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum < rank {
			continue
		}
		var lower int64
		if i > 0 {
			lower = bucketBounds[i-1]
		}
		upper := s.Max
		if i < NumBuckets {
			upper = bucketBounds[i]
		}
		if upper < lower {
			upper = lower
		}
		pos := float64(rank-(cum-c)) / float64(c)
		est := float64(lower) + pos*float64(upper-lower)
		if s.Max > 0 && est > float64(s.Max) {
			est = float64(s.Max)
		}
		return time.Duration(est)
	}
	return time.Duration(s.Max)
}

// Mean returns the average observation.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(n))
}

// Value histogram: the same lock-free discipline as Histogram for
// unitless integer observations (records per WAL batch, queue depths).
// Buckets are powers of two — bound i is 2^i — so small counts get
// exact-ish resolution and the range covers anything a batch could
// plausibly hold.

// NumValueBuckets is the number of finite value-histogram buckets; the
// largest finite upper bound is 2^(NumValueBuckets-1).
const NumValueBuckets = 20

// ValueHistogram is a lock-free histogram over non-negative integer
// values. The zero value is ready to use; Observe and Snapshot are safe
// for concurrent use.
type ValueHistogram struct {
	buckets [NumValueBuckets + 1]atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// valueBucketOf returns the bucket index for v: the smallest i with
// v ≤ 2^i, or the overflow bucket.
func valueBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	for i := 0; i < NumValueBuckets; i++ {
		if v <= 1<<uint(i) {
			return i
		}
	}
	return NumValueBuckets
}

// Observe records one value. Negative values clamp to zero.
func (h *ValueHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[valueBucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy, with the same per-bucket
// consistency trade as Histogram.Snapshot.
func (h *ValueHistogram) Snapshot() ValueHistogramSnapshot {
	var s ValueHistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// ValueHistogramSnapshot is a point-in-time value-histogram view.
type ValueHistogramSnapshot struct {
	// Buckets[i] counts observations v with v ≤ 2^i (and > the previous
	// bound); the last entry is the overflow bucket.
	Buckets [NumValueBuckets + 1]uint64
	// Sum is the total of all observed values.
	Sum int64
	// Max is the largest single observation.
	Max int64
}

// Count returns the total number of observations.
func (s ValueHistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Mean returns the average observed value.
func (s ValueHistogramSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}
