package telemetry

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Trace collects the per-stage span breakdown of one request — the
// ?trace=1 answer and the slow-query log's stage timings. A trace is
// created by the HTTP layer (the server's dispatch, or the engine
// handler) and carried down through the request context; each layer
// records the spans it owns. All methods are nil-receiver-safe, so
// instrumented code paths need no "is tracing on" branches: recording
// into an absent trace is a no-op.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one recorded stage.
type Span struct {
	// Name identifies the stage: "admission", "compile", "cache_lookup",
	// "traverse", ...
	Name string
	// Duration is the stage's elapsed time.
	Duration time.Duration
}

// NewTrace starts a trace; Total measures from here.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Observe records one completed span.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Duration: d})
	t.mu.Unlock()
}

var noopEnd = func() {}

// StartSpan starts a span and returns the function that ends it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func() { t.Observe(name, time.Since(t0)) }
}

// Spans returns a copy of the recorded spans, in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Total is the elapsed time since the trace started. Spans are
// sequential stages within that interval, so their sum never exceeds
// a Total taken after the last span ends.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

type traceCtxKey struct{}

// WithTrace attaches t to ctx for the layers below to record into.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// RequestIDHeader is the request-id wire header, accepted from the
// client or minted by WithRequestID, and echoed on every response.
const RequestIDHeader = "X-Request-ID"

// WithRequestID accepts the client's X-Request-ID (or mints one) and
// sets it on the response header before the wrapped handler runs, so
// every success and error path — and every log line reading it back
// via RequestID — carries the id.
func WithRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 128 {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// RequestID reads the request id WithRequestID stamped on the
// response; "" when the middleware is not installed.
func RequestID(w http.ResponseWriter) string {
	return w.Header().Get(RequestIDHeader)
}

// StatusRecorder wraps a ResponseWriter to capture the status code for
// the requests_total{code} counter. A handler that never calls
// WriteHeader implicitly answered 200.
type StatusRecorder struct {
	http.ResponseWriter
	Code int
}

// NewStatusRecorder wraps w, defaulting the code to 200.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader records the code and forwards.
func (r *StatusRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}
