package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScoreCounts(t *testing.T) {
	goal := []bool{true, true, false, false, true}
	pred := []bool{true, false, true, false, true}
	c := Score(goal, pred)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestPerfectPrediction(t *testing.T) {
	goal := []bool{true, false, true}
	c := Score(goal, goal)
	if !almost(c.F1(), 1) || !c.Exact() {
		t.Fatalf("perfect prediction: F1=%v exact=%v", c.F1(), c.Exact())
	}
}

func TestKnownF1(t *testing.T) {
	// P = 2/3, R = 2/4 → F1 = 2·(2/3)·(1/2) / (2/3 + 1/2) = 4/7.
	goal := []bool{true, true, true, true, false, false}
	pred := []bool{true, true, false, false, true, false}
	c := Score(goal, pred)
	if !almost(c.Precision(), 2.0/3) {
		t.Fatalf("precision = %v", c.Precision())
	}
	if !almost(c.Recall(), 0.5) {
		t.Fatalf("recall = %v", c.Recall())
	}
	if !almost(c.F1(), 4.0/7) {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestEmptyPredictionConventions(t *testing.T) {
	// Nothing predicted: precision 1 by convention, recall 0 (goal has
	// positives) → F1 0.
	goal := []bool{true, false}
	pred := []bool{false, false}
	c := Score(goal, pred)
	if !almost(c.Precision(), 1) || !almost(c.Recall(), 0) || !almost(c.F1(), 0) {
		t.Fatalf("conventions broken: %+v p=%v r=%v f=%v", c, c.Precision(), c.Recall(), c.F1())
	}
	// Goal empty too: everything vacuously perfect.
	c = Score([]bool{false, false}, []bool{false, false})
	if !almost(c.F1(), 1) || !c.Exact() {
		t.Fatalf("empty-vs-empty should be perfect")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Score([]bool{true}, []bool{true, false})
}

func TestF1BoundsProperty(t *testing.T) {
	f := func(goal, pred []bool) bool {
		n := len(goal)
		if len(pred) < n {
			n = len(pred)
		}
		c := Score(goal[:n], pred[:n])
		f1 := c.F1()
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExactIffF1One(t *testing.T) {
	f := func(goal, pred []bool) bool {
		n := len(goal)
		if len(pred) < n {
			n = len(pred)
		}
		c := Score(goal[:n], pred[:n])
		if c.Exact() {
			return almost(c.F1(), 1)
		}
		// Non-exact with a positive somewhere: F1 < 1. (All-negative goal
		// with false positives also gives F1 < 1 since precision < 1... but
		// TP=0 → F1=0 unless both empty.)
		return !almost(c.F1(), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestF1Wrapper(t *testing.T) {
	goal := []bool{true, false}
	if !almost(F1(goal, goal), 1) {
		t.Fatal("wrapper broken")
	}
}
