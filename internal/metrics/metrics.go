// Package metrics computes the classifier-quality measures of the paper's
// experimental study (Section 5.2): the learned query is viewed as a binary
// classifier over the graph's nodes and scored against the goal query with
// precision, recall and F1.
//
// Not to be confused with internal/telemetry, which provides the serving
// system's operational metrics (counters, latency histograms, /metrics
// exposition). This package measures learning quality; telemetry measures
// the server.
package metrics

// Confusion tallies a binary classifier against the truth.
type Confusion struct {
	TP, FP, TN, FN int
}

// Score compares a predicted selection vector against the goal's. The two
// vectors must have equal length (one entry per graph node).
func Score(goal, predicted []bool) Confusion {
	if len(goal) != len(predicted) {
		panic("metrics: selection vectors of different lengths")
	}
	var c Confusion
	for i := range goal {
		switch {
		case goal[i] && predicted[i]:
			c.TP++
		case !goal[i] && predicted[i]:
			c.FP++
		case goal[i] && !predicted[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP / (TP + FP); 1 when nothing was predicted positive
// (the learned query selecting nothing is vacuously precise).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN); 1 when the goal selects nothing.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall; by convention 1
// when both goal and prediction select nothing, 0 when precision and
// recall are both 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Exact reports whether prediction and goal agree on every node (F1 = 1
// and TN consistent) — the halt condition of the interactive experiments.
func (c Confusion) Exact() bool {
	return c.FP == 0 && c.FN == 0
}

// F1 is a convenience wrapper: F1 of predicted against goal.
func F1(goal, predicted []bool) float64 {
	return Score(goal, predicted).F1()
}
