package paperfix_test

import (
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

func TestG0ShapeMatchesFigure3(t *testing.T) {
	g, s := paperfix.G0()
	if g.NumNodes() != 7 {
		t.Fatalf("G0 has %d nodes, want 7", g.NumNodes())
	}
	if g.NumEdges() != 15 {
		t.Fatalf("G0 has %d edges, want 15", g.NumEdges())
	}
	if len(s.Pos) != 2 || len(s.Neg) != 2 {
		t.Fatalf("sample %d+/%d-", len(s.Pos), len(s.Neg))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestG0SampleLabelsMatchGoal(t *testing.T) {
	// The running example's sample is consistent with (a·b)*·c: positives
	// selected, negatives not.
	g, s := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sel := goal.Select(g)
	for _, p := range s.Pos {
		if !sel[p] {
			t.Errorf("positive %s not selected by the goal", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Errorf("negative %s selected by the goal", g.NodeName(n))
		}
	}
}

func TestFigure1SampleConsistent(t *testing.T) {
	g, s := paperfix.Figure1()
	if !core.Consistent(g, s) {
		t.Fatal("Figure 1 sample should be consistent")
	}
}

func TestFigure5SampleInconsistent(t *testing.T) {
	g, s := paperfix.Figure5()
	if core.Consistent(g, s) {
		t.Fatal("Figure 5 sample should be inconsistent")
	}
	// The positive's path language is infinite (self loops).
	if !g.HasCycleFrom(s.Pos[0]) {
		t.Fatal("Figure 5 positive should have infinite paths")
	}
}

func TestFigure8SampleMatchesGoal(t *testing.T) {
	g, s := paperfix.Figure8()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sel := goal.Select(g)
	for _, p := range s.Pos {
		if !sel[p] {
			t.Errorf("positive %s not selected", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Errorf("negative %s selected", g.NodeName(n))
		}
	}
	// The indistinguishability claim: a selects the same set.
	a := query.MustParse(g.Alphabet(), "a")
	if !a.EquivalentOn(g, goal) {
		t.Fatal("a and (a·b)*·c must select the same nodes on Figure 8")
	}
}

func TestFigure10Unlabeled(t *testing.T) {
	g, s, u := paperfix.Figure10()
	if _, labeled := s.Labeled(u); labeled {
		t.Fatal("u must be unlabeled")
	}
	if !core.Consistent(g, s) {
		t.Fatal("Figure 10 sample should be consistent")
	}
}
