// Package paperfix builds the example graphs of the paper's figures, used
// by tests, examples and documentation. The paper prints the figures but
// not full edge lists, so each graph here is reconstructed to satisfy every
// claim the text makes about it; where the text's claims about a figure
// conflict (see G0's ν5 below), the query-semantics claims win and the
// deviation is documented.
package paperfix

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/core"
	"pathquery/internal/graph"
)

// Sample is the paper's S = S+ ∪ S−, shared with the learner package.
type Sample = core.Sample

// Figure1 returns the geographic graph of Figure 1 (neighborhoods N1..N6,
// cinemas C1, C2, restaurants R1, R2) on which the query
// (tram+bus)*·cinema selects exactly {N1, N2, N4, N6}. The paper's example
// labels N2 and N6 positive and N5 negative.
func Figure1() (*graph.Graph, Sample) {
	g := graph.New(alphabet.NewSorted("tram", "bus", "cinema", "restaurant"))
	for _, n := range []string{"N1", "N2", "N3", "N4", "N5", "N6", "C1", "C2", "R1", "R2"} {
		g.AddNode(n)
	}
	edges := [][3]string{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N2", "bus", "N3"},
		{"N4", "cinema", "C1"},
		{"N4", "tram", "N1"},
		{"N6", "cinema", "C2"},
		{"N6", "bus", "N5"},
		{"N5", "restaurant", "R1"},
		{"N5", "tram", "N3"},
		{"N3", "restaurant", "R2"},
	}
	for _, e := range edges {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	n2, _ := g.NodeByName("N2")
	n6, _ := g.NodeByName("N6")
	n5, _ := g.NodeByName("N5")
	return g, Sample{Pos: []graph.NodeID{n2, n6}, Neg: []graph.NodeID{n5}}
}

// G0 returns the graph of Figure 3 (7 nodes ν1..ν7, 15 edges over {a,b,c})
// together with the running-example sample S+ = {ν1, ν3}, S− = {ν2, ν7}.
//
// The reconstruction satisfies every claim the paper's text makes:
//
//   - aba matches ν1ν2ν3ν4 and ν3ν2ν3ν4 but not ν1ν2ν7ν2;
//   - paths(ν1) is infinite (the cycle ν2 →b ν3 →a ν2 is reachable);
//   - the query a selects every node except ν4;
//   - the query b·b·c·c selects no node;
//   - the query (a·b)*·c selects exactly {ν1, ν3};
//   - with S+ = {ν1, ν3}, S− = {ν2, ν7} the SCPs are abc (for ν1) and c
//     (for ν3); merging ε with a would accept bc which ν2 covers, merging
//     ε with c would accept ε which both negatives cover, and merging ε
//     with ab is consistent, so the learner returns (a·b)*·c.
//
// One deviation: the text states paths(ν5) = {ε, a, b, c}, but a bare
// c-path from ν5 would make (a·b)*·c select ν5, contradicting the claim
// that it selects exactly {ν1, ν3}. Here paths(ν5) = {ε, a, b}.
func G0() (*graph.Graph, Sample) {
	g := graph.New(alphabet.NewSorted("a", "b", "c"))
	for _, n := range []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7"} {
		g.AddNode(n)
	}
	edges := [][3]string{
		{"v1", "a", "v2"},
		{"v1", "b", "v6"},
		{"v2", "a", "v5"},
		{"v2", "b", "v3"},
		{"v2", "b", "v7"},
		{"v3", "a", "v2"},
		{"v3", "a", "v4"},
		{"v3", "c", "v5"},
		{"v5", "a", "v4"},
		{"v5", "b", "v4"},
		{"v6", "a", "v5"},
		{"v6", "b", "v7"},
		{"v7", "a", "v6"},
		{"v7", "b", "v2"},
		{"v7", "b", "v4"},
	}
	for _, e := range edges {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	return g, Sample{
		Pos: nodeIDs(g, "v1", "v3"),
		Neg: nodeIDs(g, "v2", "v7"),
	}
}

// Figure5 returns a graph with an inconsistent sample: the positive node
// has infinitely many paths, all covered by the two negative nodes
// (paths(neg1) ∪ paths(neg2) ⊇ paths(pos) since together they cover ε,
// a·Σ* and b·Σ*). A naive SCP enumeration would never halt on it, which is
// why Algorithm 1 bounds path length by k.
func Figure5() (*graph.Graph, Sample) {
	g := graph.New(alphabet.NewSorted("a", "b"))
	for _, n := range []string{"pos", "neg1", "neg2", "u1", "u2"} {
		g.AddNode(n)
	}
	edges := [][3]string{
		{"pos", "a", "pos"},
		{"pos", "b", "pos"},
		{"neg1", "a", "u1"},
		{"u1", "a", "u1"},
		{"u1", "b", "u1"},
		{"neg2", "b", "u2"},
		{"u2", "a", "u2"},
		{"u2", "b", "u2"},
	}
	for _, e := range edges {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	return g, Sample{
		Pos: nodeIDs(g, "pos"),
		Neg: nodeIDs(g, "neg1", "neg2"),
	}
}

// Figure8 returns a graph on which the goal query (a·b)*·c is
// indistinguishable from the query a: a user labeling consistently with
// (a·b)*·c yields a sample from which the learner returns a, and the two
// queries select exactly the same nodes {p1, p2}.
func Figure8() (*graph.Graph, Sample) {
	g := graph.New(alphabet.NewSorted("a", "b", "c"))
	for _, n := range []string{"m1", "p1", "p2", "m2"} {
		g.AddNode(n)
	}
	edges := [][3]string{
		{"m1", "b", "p1"},
		{"p1", "a", "p2"},
		{"p1", "c", "p2"},
		{"p2", "a", "p1"},
		{"p2", "c", "p1"},
		{"m2", "b", "p2"},
	}
	for _, e := range edges {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	return g, Sample{
		Pos: nodeIDs(g, "p1", "p2"),
		Neg: nodeIDs(g, "m1", "m2"),
	}
}

// Figure10 returns a graph with one positive, one negative and one
// unlabeled node u that is certain-positive: every query consistent with
// the sample must accept the word b (the only path of the positive node
// not covered by the negative), and u covers b, so labeling u positive
// adds no information (and labeling it negative would make the sample
// inconsistent).
func Figure10() (*graph.Graph, Sample, graph.NodeID) {
	g := graph.New(alphabet.NewSorted("a", "b"))
	for _, n := range []string{"pos", "neg", "u", "sink"} {
		g.AddNode(n)
	}
	edges := [][3]string{
		{"pos", "a", "sink"},
		{"pos", "b", "sink"},
		{"neg", "a", "sink"},
		{"u", "b", "sink"},
	}
	for _, e := range edges {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	u, _ := g.NodeByName("u")
	return g, Sample{
		Pos: nodeIDs(g, "pos"),
		Neg: nodeIDs(g, "neg"),
	}, u
}

func nodeIDs(g *graph.Graph, names ...string) []graph.NodeID {
	out := make([]graph.NodeID, len(names))
	for i, n := range names {
		id, ok := g.NodeByName(n)
		if !ok {
			panic("paperfix: unknown node " + n)
		}
		out[i] = id
	}
	return out
}
