package automata

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

func wordsOf(a *alphabet.Alphabet, ss ...string) []words.Word {
	out := make([]words.Word, len(ss))
	for i, s := range ss {
		out[i] = wordOf(a, s)
	}
	return out
}

func TestBuildPTAStatesInCanonicalOrder(t *testing.T) {
	a := abc()
	p := BuildPTA(a.Size(), wordsOf(a, "abc", "c"), nil)
	// States are prefixes of {abc, c} in canonical order:
	// ε, a, c, ab, abc.
	want := []string{"ε", "a", "c", "a·b", "a·b·c"}
	if p.NumStates() != len(want) {
		t.Fatalf("PTA has %d states, want %d", p.NumStates(), len(want))
	}
	for i, w := range want {
		if got := words.String(p.Access[i], a); got != w {
			t.Fatalf("state %d access = %q, want %q", i, got, w)
		}
	}
}

func TestPTAAcceptsExactlyPositives(t *testing.T) {
	a := abc()
	pos := wordsOf(a, "abc", "c", "ab")
	p := BuildPTA(a.Size(), pos, nil)
	d := p.DFA()
	for _, w := range pos {
		if !d.Accepts(w) {
			t.Fatalf("PTA rejects positive %v", words.String(w, a))
		}
	}
	for _, w := range allWords(a.Size(), 4) {
		inPos := false
		for _, p := range pos {
			if words.Equal(p, w) {
				inPos = true
			}
		}
		if d.Accepts(w) != inPos {
			t.Fatalf("PTA acceptance of %v = %v", words.String(w, a), !inPos)
		}
	}
}

func TestPTANegativeMarks(t *testing.T) {
	a := abc()
	p := BuildPTA(a.Size(), wordsOf(a, "ab"), wordsOf(a, "a"))
	var accepting, rejecting int
	for _, m := range p.Marks {
		switch m {
		case Accepting:
			accepting++
		case Rejecting:
			rejecting++
		}
	}
	if accepting != 1 || rejecting != 1 {
		t.Fatalf("marks: %d accepting, %d rejecting", accepting, rejecting)
	}
}

func TestPTAPanicsOnContradiction(t *testing.T) {
	a := abc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for word both + and -")
		}
	}()
	BuildPTA(a.Size(), wordsOf(a, "ab"), wordsOf(a, "ab"))
}

func TestMergerFoldConflict(t *testing.T) {
	a := abc()
	// PTA with ε rejecting and "a" accepting: merging them must fail.
	p := BuildPTA(a.Size(), wordsOf(a, "a"), []words.Word{words.Epsilon})
	m := NewMerger(p)
	if m.Clone().Merge(0, 1) {
		t.Fatal("merging accepting into rejecting should conflict")
	}
}

func TestMergerSelfLoopFold(t *testing.T) {
	// Merging a state with its own successor creates a self loop and the
	// fold must terminate.
	a := abc()
	p := BuildPTA(a.Size(), wordsOf(a, "aaa"), nil)
	m := NewMerger(p)
	if !m.Merge(0, 1) {
		t.Fatal("merge failed")
	}
	d := m.DFA()
	// Language after merging ε-state with a-state: a* closure of aaa's
	// acceptance — at minimum the original word must survive.
	if !d.Accepts(wordOf(a, "aaa")) {
		t.Fatal("merge lost the positive word")
	}
	if d.NumStates() >= p.NumStates() {
		t.Fatal("merge did not shrink the automaton")
	}
}

func TestGeneralizeLearnsAStarBFromCharacteristicWords(t *testing.T) {
	// Classic RPNI sanity check: target a*b over {a,b}. The sample is the
	// characteristic set of the *complete* canonical DFA (q0, q1, sink):
	// P+ covers the kernel completions, P− distinguishes every kernel word
	// from every shortest-prefix with a different residual — including the
	// sink class, whose merges with q0/q1 must be blocked.
	a := alphabet.NewSorted("a", "b")
	pos := wordsOf(a, "b", "ab")
	neg := append([]words.Word{words.Epsilon},
		wordsOf(a, "a", "ba", "bb", "baa", "bab", "bbb", "baab", "babb")...)
	p := BuildPTA(a.Size(), pos, neg)
	m := NewMerger(p)
	m.Generalize(nil)
	got := Minimize(m.DFA())
	want := compile(t, a, "a*·b")
	if !got.Equal(want) {
		t.Fatalf("RPNI learned %v, want a*·b (%v)", got, want)
	}
}

func TestGeneralizeConsistencyCallbackBlocksMerges(t *testing.T) {
	a := abc()
	pos := wordsOf(a, "abc", "c")
	p := BuildPTA(a.Size(), pos, nil)
	m := NewMerger(p)
	// Callback rejects everything: no merges happen, language unchanged.
	m.Generalize(func(d *DFA) bool { return false })
	d := Minimize(m.DFA())
	if !Equivalent(d, Minimize(p.DFA())) {
		t.Fatal("blocked generalization still changed the language")
	}
}

func TestGeneralizeConsistentWithSampleProperty(t *testing.T) {
	// Property: for random samples, RPNI's output accepts every positive
	// and rejects every negative.
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		// Draw a random target and sample words labeled by it.
		target := RandomNonEmptyDFA(rng, 5, 2, 0.8)
		var pos, neg []words.Word
		for _, w := range allWords(2, 5) {
			if rng.Intn(3) != 0 {
				continue
			}
			if target.Accepts(w) {
				pos = append(pos, w)
			} else {
				neg = append(neg, w)
			}
		}
		if len(pos) == 0 {
			continue
		}
		p := BuildPTA(2, pos, neg)
		m := NewMerger(p)
		m.Generalize(nil)
		d := m.DFA()
		for _, w := range pos {
			if !d.Accepts(w) {
				t.Fatalf("iter %d: positive %v rejected", iter, w)
			}
		}
		for _, w := range neg {
			if d.Accepts(w) {
				t.Fatalf("iter %d: negative %v accepted", iter, w)
			}
		}
	}
}

func TestMergerRepresentatives(t *testing.T) {
	a := abc()
	p := BuildPTA(a.Size(), wordsOf(a, "ab", "c"), nil)
	m := NewMerger(p)
	if got := len(m.Representatives()); got != p.NumStates() {
		t.Fatalf("fresh merger has %d representatives, want %d", got, p.NumStates())
	}
	m.Merge(0, 1)
	if got := len(m.Representatives()); got >= p.NumStates() {
		t.Fatalf("after merge: %d representatives", got)
	}
}

func TestMergerCloneIsolation(t *testing.T) {
	a := abc()
	p := BuildPTA(a.Size(), wordsOf(a, "ab"), nil)
	m := NewMerger(p)
	c := m.Clone()
	c.Merge(0, 1)
	if len(m.Representatives()) != p.NumStates() {
		t.Fatal("clone merge affected original")
	}
}
