package automata

import (
	"pathquery/internal/words"
)

// Mark is the classification a prefix-tree state carries in the RPNI
// red-blue merging framework.
type Mark int8

const (
	// Neutral states are prefixes that are neither accepting nor rejecting.
	Neutral Mark = 0
	// Accepting states end a positive word.
	Accepting Mark = 1
	// Rejecting states end a negative word (used only by word-sample RPNI;
	// the graph learner expresses negatives through the graph instead).
	Rejecting Mark = -1
)

// PTA is a prefix tree acceptor (a tree-shaped DFA accepting exactly the
// positive words, cf. Section 3.2) augmented with Rejecting marks for
// negative words, as used by classic RPNI. States are numbered in the
// canonical order of their access words, which is the merge order RPNI and
// the paper's learner use.
type PTA struct {
	NumSyms int
	Marks   []Mark
	Delta   [][]int32 // [state][sym] successor or None
	Access  []words.Word
}

// BuildPTA constructs the PTA of the given positive and negative words.
// It panics if a word occurs both positively and negatively (callers check
// sample consistency first).
func BuildPTA(numSyms int, pos, neg []words.Word) *PTA {
	// Collect every prefix of every word, in canonical order, so state ids
	// follow the canonical order of access words.
	var all []words.Word
	for _, w := range append(append([]words.Word{}, pos...), neg...) {
		all = append(all, words.Prefixes(w)...)
	}
	all = words.Dedup(all)

	p := &PTA{NumSyms: numSyms}
	ids := make(map[string]int32, len(all))
	for _, w := range all {
		id := int32(len(p.Marks))
		ids[words.Key(w)] = id
		p.Marks = append(p.Marks, Neutral)
		row := make([]int32, numSyms)
		for j := range row {
			row[j] = None
		}
		p.Delta = append(p.Delta, row)
		p.Access = append(p.Access, words.Clone(w))
		if len(w) > 0 {
			parent := ids[words.Key(w[:len(w)-1])]
			p.Delta[parent][w[len(w)-1]] = id
		}
	}
	for _, w := range pos {
		p.Marks[ids[words.Key(w)]] = Accepting
	}
	for _, w := range neg {
		id := ids[words.Key(w)]
		if p.Marks[id] == Accepting {
			panic("automata: word is both positive and negative in PTA")
		}
		p.Marks[id] = Rejecting
	}
	return p
}

// NumStates returns the number of PTA states.
func (p *PTA) NumStates() int { return len(p.Marks) }

// DFA returns the PTA as a partial DFA accepting exactly the positive words.
func (p *PTA) DFA() *DFA {
	d := NewDFA(p.NumStates(), p.NumSyms)
	d.Start = 0
	for s := range p.Marks {
		d.Final[s] = p.Marks[s] == Accepting
		copy(d.Delta[s], p.Delta[s])
	}
	return d
}
