// Package automata implements the word-automata substrate of the paper
// (Section 2 and the appendix): NFAs, DFAs, Thompson construction, subset
// construction, Hopcroft minimization with canonical numbering, products,
// emptiness, inclusion and equivalence tests, prefix tree acceptors, the
// RPNI-style deterministic merge-fold, the prefix-free transform, and
// DFA→regex extraction.
//
// Queries are represented by their canonical DFA (the unique smallest DFA,
// with states numbered in canonical BFS order), so the size of a query is
// the number of canonical-DFA states and "the learner returns q" is testable
// as structural equality.
package automata

import (
	"fmt"
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// NFA is a nondeterministic finite word automaton with ε-transitions
// (appendix A of the paper). States are dense ints 0..NumStates-1.
type NFA struct {
	NumSyms int
	Starts  []int32
	Final   []bool
	// Delta[s] maps a symbol to the successor states of s on that symbol.
	Delta []map[alphabet.Symbol][]int32
	// Eps[s] lists the ε-successors of s.
	Eps [][]int32
}

// NewNFA returns an NFA with n states and no transitions.
func NewNFA(n, numSyms int) *NFA {
	return &NFA{
		NumSyms: numSyms,
		Final:   make([]bool, n),
		Delta:   make([]map[alphabet.Symbol][]int32, n),
		Eps:     make([][]int32, n),
	}
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.Final) }

// AddState appends a fresh state and returns its id.
func (n *NFA) AddState() int32 {
	n.Final = append(n.Final, false)
	n.Delta = append(n.Delta, nil)
	n.Eps = append(n.Eps, nil)
	return int32(len(n.Final) - 1)
}

// AddTransition adds from --sym--> to.
func (n *NFA) AddTransition(from int32, sym alphabet.Symbol, to int32) {
	if n.Delta[from] == nil {
		n.Delta[from] = make(map[alphabet.Symbol][]int32)
	}
	n.Delta[from][sym] = append(n.Delta[from][sym], to)
}

// AddEps adds from --ε--> to.
func (n *NFA) AddEps(from, to int32) {
	n.Eps[from] = append(n.Eps[from], to)
}

// closure expands set (a sorted or unsorted slice of states) with all states
// reachable via ε-transitions. The result is sorted and deduplicated.
func (n *NFA) closure(set []int32) []int32 {
	seen := make(map[int32]bool, len(set))
	stack := make([]int32, 0, len(set))
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// step returns the sorted ε-closed successor set of set on sym.
func (n *NFA) step(set []int32, sym alphabet.Symbol) []int32 {
	var next []int32
	for _, s := range set {
		next = append(next, n.Delta[s][sym]...)
	}
	if len(next) == 0 {
		return nil
	}
	return n.closure(next)
}

// Accepts reports whether the NFA accepts w.
func (n *NFA) Accepts(w words.Word) bool {
	cur := n.closure(n.Starts)
	for _, sym := range w {
		cur = n.step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if n.Final[s] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether L(n) = ∅, by forward reachability.
func (n *NFA) IsEmpty() bool {
	seen := make([]bool, n.NumStates())
	stack := append([]int32(nil), n.Starts...)
	for _, s := range stack {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Final[s] {
			return false
		}
		push := func(t int32) {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
		for _, t := range n.Eps[s] {
			push(t)
		}
		for _, ts := range n.Delta[s] {
			for _, t := range ts {
				push(t)
			}
		}
	}
	return true
}

// IntersectionEmpty reports whether L(a) ∩ L(b) = ∅ for ε-free views of the
// two NFAs (ε-transitions are handled via closures). It runs a BFS over the
// product of ε-closed state sets; worst case exponential only through the
// closure sizes, linear in the product of state counts in practice.
func IntersectionEmpty(a, b *NFA) bool {
	type pair struct{ x, y int32 }
	// Work on ε-eliminated products: track pairs of individual states with
	// closures expanded up front.
	startA := a.closure(a.Starts)
	startB := b.closure(b.Starts)
	seen := make(map[pair]bool)
	var queue []pair
	push := func(x, y int32) {
		p := pair{x, y}
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for _, x := range startA {
		for _, y := range startB {
			push(x, y)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if a.Final[p.x] && b.Final[p.y] {
			return false
		}
		for sym, xs := range a.Delta[p.x] {
			ys := b.Delta[p.y][sym]
			if len(ys) == 0 {
				continue
			}
			for _, nx := range a.closure(xs) {
				for _, ny := range b.closure(ys) {
					push(nx, ny)
				}
			}
		}
	}
	return true
}

// Reverse returns the NFA for the reversed language.
func (n *NFA) Reverse() *NFA {
	r := NewNFA(n.NumStates(), n.NumSyms)
	for s := int32(0); int(s) < n.NumStates(); s++ {
		if n.Final[s] {
			r.Starts = append(r.Starts, s)
		}
		for sym, ts := range n.Delta[s] {
			for _, t := range ts {
				r.AddTransition(t, sym, s)
			}
		}
		for _, t := range n.Eps[s] {
			r.AddEps(t, s)
		}
	}
	for _, s := range n.Starts {
		r.Final[s] = true
	}
	return r
}

// String renders a compact debug form.
func (n *NFA) String() string {
	return fmt.Sprintf("NFA{states: %d, starts: %v}", n.NumStates(), n.Starts)
}
