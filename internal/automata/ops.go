package automata

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// Intersect returns a (trimmed) DFA for L(a) ∩ L(b) via the product
// construction, exploring only reachable pairs.
func Intersect(a, b *DFA) *DFA {
	type pair struct{ x, y int32 }
	ids := make(map[pair]int32)
	var pairs []pair
	out := NewDFA(0, a.NumSyms)
	intern := func(p pair) int32 {
		if id, ok := ids[p]; ok {
			return id
		}
		id := out.AddState()
		ids[p] = id
		pairs = append(pairs, p)
		out.Final[id] = a.Final[p.x] && b.Final[p.y]
		return id
	}
	out.Start = intern(pair{a.Start, b.Start})
	for q := int32(0); int(q) < len(pairs); q++ {
		p := pairs[q]
		for sym := 0; sym < a.NumSyms; sym++ {
			nx := a.Delta[p.x][sym]
			if nx == None {
				continue
			}
			ny := b.Delta[p.y][sym]
			if ny == None {
				continue
			}
			out.Delta[q][sym] = intern(pair{nx, ny})
		}
	}
	return out.Trim()
}

// Included reports whether L(a) ⊆ L(b): a word accepted by a and rejected by
// b is searched over the product of a with the completed b.
func Included(a, b *DFA) bool {
	bc := b.Complete()
	type pair struct{ x, y int32 }
	seen := make(map[pair]bool)
	stack := []pair{{a.Start, bc.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Final[p.x] && !bc.Final[p.y] {
			return false
		}
		for sym := 0; sym < a.NumSyms; sym++ {
			nx := a.Delta[p.x][sym]
			if nx == None {
				continue
			}
			np := pair{nx, bc.Delta[p.y][sym]}
			if !seen[np] {
				seen[np] = true
				stack = append(stack, np)
			}
		}
	}
	return true
}

// Equivalent reports whether L(a) = L(b).
func Equivalent(a, b *DFA) bool {
	return Included(a, b) && Included(b, a)
}

// DisjointFrom reports whether L(a) ∩ L(b) = ∅ without materializing the
// product DFA.
func DisjointFrom(a, b *DFA) bool {
	type pair struct{ x, y int32 }
	seen := make(map[pair]bool)
	stack := []pair{{a.Start, b.Start}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Final[p.x] && b.Final[p.y] {
			return false
		}
		for sym := 0; sym < a.NumSyms; sym++ {
			nx := a.Delta[p.x][sym]
			if nx == None {
				continue
			}
			ny := b.Delta[p.y][sym]
			if ny == None {
				continue
			}
			np := pair{nx, ny}
			if !seen[np] {
				seen[np] = true
				stack = append(stack, np)
			}
		}
	}
	return true
}

// UnionUniversal reports whether L(d1) ∪ ... ∪ L(dn) = Σ*. This is the
// PSPACE-complete problem the paper reduces from in Lemma 3.2; here it is
// decided by an (exponential worst case) subset-product search for a word
// rejected by every DFA. Returns the witness word when not universal.
func UnionUniversal(ds []*DFA) (bool, words.Word) {
	if len(ds) == 0 {
		return false, words.Epsilon
	}
	numSyms := ds[0].NumSyms
	completed := make([]*DFA, len(ds))
	for i, d := range ds {
		completed[i] = d.Complete()
	}
	type node struct {
		states []int32
		word   words.Word
	}
	keyOf := func(states []int32) string { return subsetKey(states) }
	start := make([]int32, len(completed))
	for i, d := range completed {
		start[i] = d.Start
	}
	anyFinal := func(states []int32) bool {
		for i, s := range states {
			if completed[i].Final[s] {
				return true
			}
		}
		return false
	}
	seen := map[string]bool{keyOf(start): true}
	queue := []node{{start, words.Epsilon}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !anyFinal(cur.states) {
			return false, cur.word
		}
		for sym := 0; sym < numSyms; sym++ {
			next := make([]int32, len(cur.states))
			for i, s := range cur.states {
				next[i] = completed[i].Delta[s][alphabet.Symbol(sym)]
			}
			k := keyOf(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, node{next, words.Append(cur.word, alphabet.Symbol(sym))})
			}
		}
	}
	return true, nil
}

// Union returns a DFA for L(a) ∪ L(b) (determinized product of completions).
func Union(a, b *DFA) *DFA {
	ac, bc := a.Complete(), b.Complete()
	type pair struct{ x, y int32 }
	ids := make(map[pair]int32)
	var pairs []pair
	out := NewDFA(0, a.NumSyms)
	intern := func(p pair) int32 {
		if id, ok := ids[p]; ok {
			return id
		}
		id := out.AddState()
		ids[p] = id
		pairs = append(pairs, p)
		out.Final[id] = ac.Final[p.x] || bc.Final[p.y]
		return id
	}
	out.Start = intern(pair{ac.Start, bc.Start})
	for q := int32(0); int(q) < len(pairs); q++ {
		p := pairs[q]
		for sym := 0; sym < a.NumSyms; sym++ {
			out.Delta[q][sym] = intern(pair{ac.Delta[p.x][sym], bc.Delta[p.y][sym]})
		}
	}
	return out.Trim()
}

// Complement returns a DFA for Σ* \ L(d).
func Complement(d *DFA) *DFA {
	c := d.Complete().Clone()
	for s := range c.Final {
		c.Final[s] = !c.Final[s]
	}
	return c.Trim()
}
