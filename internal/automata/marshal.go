package automata

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Serialization of DFAs as a plain text format, used to persist learned
// queries:
//
//	dfa <numStates> <numSyms> <start>
//	final <s1> <s2> ...
//	<from> <sym> <to>
//	...
//
// The format is line-oriented, deterministic (transitions in state/symbol
// order), and independent of label names — callers store the alphabet
// separately (see the query package's Save/Load).

// WriteTo serializes d. It never writes partial output on error paths
// other than the underlying writer failing.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...interface{}) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("dfa %d %d %d\n", d.NumStates(), d.NumSyms, d.Start); err != nil {
		return total, err
	}
	finals := make([]string, 0, d.NumStates())
	for s, f := range d.Final {
		if f {
			finals = append(finals, fmt.Sprint(s))
		}
	}
	if err := emit("final %s\n", strings.Join(finals, " ")); err != nil {
		return total, err
	}
	for s := range d.Delta {
		for sym, t := range d.Delta[s] {
			if t == None {
				continue
			}
			if err := emit("%d %d %d\n", s, sym, t); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// ReadDFA parses the WriteTo format.
func ReadDFA(r io.Reader) (*DFA, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("automata: empty DFA input")
	}
	var numStates, numSyms int
	var start int32
	if _, err := fmt.Sscanf(sc.Text(), "dfa %d %d %d", &numStates, &numSyms, &start); err != nil {
		return nil, fmt.Errorf("automata: bad header %q: %w", sc.Text(), err)
	}
	if numStates < 1 || numSyms < 0 || start < 0 || int(start) >= numStates {
		return nil, fmt.Errorf("automata: invalid header values in %q", sc.Text())
	}
	d := NewDFA(numStates, numSyms)
	d.Start = start
	if !sc.Scan() {
		return nil, fmt.Errorf("automata: missing final line")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) == 0 || fields[0] != "final" {
		return nil, fmt.Errorf("automata: bad final line %q", sc.Text())
	}
	for _, f := range fields[1:] {
		var s int
		if _, err := fmt.Sscan(f, &s); err != nil || s < 0 || s >= numStates {
			return nil, fmt.Errorf("automata: bad final state %q", f)
		}
		d.Final[s] = true
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var from, sym, to int
		if _, err := fmt.Sscanf(line, "%d %d %d", &from, &sym, &to); err != nil {
			return nil, fmt.Errorf("automata: bad transition %q: %w", line, err)
		}
		if from < 0 || from >= numStates || to < 0 || to >= numStates || sym < 0 || sym >= numSyms {
			return nil, fmt.Errorf("automata: transition %q out of range", line)
		}
		d.Delta[from][sym] = int32(to)
	}
	return d, sc.Err()
}
