package automata

// Merger is the mutable quotient automaton used during RPNI-style
// generalization (lines 4-5 of Algorithm 1: A := A_{s'→s} while consistent).
// It starts as a PTA and merges states under a union-find, folding
// recursively to restore determinism after each merge, exactly as in
// classic RPNI (Oncina & García).
type Merger struct {
	NumSyms int
	parent  []int32
	marks   []Mark
	delta   [][]int32
}

// NewMerger initializes a merger from a PTA.
func NewMerger(p *PTA) *Merger {
	m := &Merger{NumSyms: p.NumSyms}
	n := p.NumStates()
	m.parent = make([]int32, n)
	m.marks = make([]Mark, n)
	m.delta = make([][]int32, n)
	for s := 0; s < n; s++ {
		m.parent[s] = int32(s)
		m.marks[s] = p.Marks[s]
		m.delta[s] = append([]int32(nil), p.Delta[s]...)
	}
	return m
}

// Clone deep-copies the merger, so speculative merges can be discarded.
func (m *Merger) Clone() *Merger {
	c := &Merger{NumSyms: m.NumSyms}
	c.parent = append([]int32(nil), m.parent...)
	c.marks = append([]Mark(nil), m.marks...)
	c.delta = make([][]int32, len(m.delta))
	for i, row := range m.delta {
		c.delta[i] = append([]int32(nil), row...)
	}
	return c
}

// Find returns the representative of s.
func (m *Merger) Find(s int32) int32 {
	for m.parent[s] != s {
		m.parent[s] = m.parent[m.parent[s]] // path halving
		s = m.parent[s]
	}
	return s
}

// Merge merges state b into state a and folds recursively to restore
// determinism. It reports false when folding would merge an Accepting state
// with a Rejecting one (the classic RPNI conflict); in that case the merger
// is left in an undefined state and must be discarded (use Clone first).
func (m *Merger) Merge(a, b int32) bool {
	a, b = m.Find(a), m.Find(b)
	if a == b {
		return true
	}
	// Union marks: Accepting + Rejecting conflict.
	switch {
	case m.marks[a] == Neutral:
		m.marks[a] = m.marks[b]
	case m.marks[b] == Neutral || m.marks[a] == m.marks[b]:
		// keep m.marks[a]
	default:
		return false
	}
	m.parent[b] = a
	// Fold successors: b's transitions move onto a's current representative;
	// collisions merge recursively. a itself may be absorbed by a recursive
	// merge (e.g. when b's successor is a), so the representative is
	// re-resolved on every iteration. b's row is never written again after
	// absorption, so reading it across iterations is safe.
	for sym := 0; sym < m.NumSyms; sym++ {
		tb := m.delta[b][sym]
		if tb == None {
			continue
		}
		ra := m.Find(a)
		ta := m.delta[ra][sym]
		if ta == None {
			m.delta[ra][sym] = tb
			continue
		}
		if !m.Merge(ta, tb) {
			return false
		}
	}
	return true
}

// DFA materializes the current quotient as a partial DFA with canonical
// reachable-state numbering. Rejecting marks are dropped (they only guard
// folding); Accepting representatives become final states.
func (m *Merger) DFA() *DFA {
	root := m.Find(0)
	number := make(map[int32]int32)
	var order []int32
	number[root] = 0
	order = append(order, root)
	d := NewDFA(0, m.NumSyms)
	d.AddState()
	d.Start = 0
	for i := 0; i < len(order); i++ {
		s := order[i]
		d.Final[i] = m.marks[s] == Accepting
		for sym := 0; sym < m.NumSyms; sym++ {
			t := m.delta[s][sym]
			if t == None {
				continue
			}
			t = m.Find(t)
			id, ok := number[t]
			if !ok {
				id = d.AddState()
				number[t] = id
				order = append(order, t)
			}
			d.Delta[i][sym] = id
		}
	}
	return d
}

// Representatives returns the live representative states in increasing
// original-id order, which is the canonical access-word order for PTAs.
func (m *Merger) Representatives() []int32 {
	var out []int32
	for s := int32(0); int(s) < len(m.parent); s++ {
		if m.Find(s) == s {
			out = append(out, s)
		}
	}
	return out
}

// Generalize runs the RPNI red-blue merging loop: states are considered in
// canonical order (of PTA access words); each "blue" state is merged into
// the smallest compatible "red" state, where compatibility means the fold
// succeeds and consistent(candidate DFA) returns true. If no red state is
// compatible the blue state is promoted to red. The consistent callback
// receives the quotient as a DFA; pass nil to rely on fold conflicts alone
// (classic RPNI with word negatives).
//
// This implements both RPNI's generalization (with negatives in the PTA) and
// lines 4-5 of the paper's Algorithm 1 (with consistency checked against the
// graph's negative path languages).
func (m *Merger) Generalize(consistent func(*DFA) bool) {
	red := []int32{m.Find(0)}
	inRed := map[int32]bool{m.Find(0): true}

	for {
		blue := m.smallestBlue(red, inRed)
		if blue == None {
			return
		}
		merged := false
		for _, r := range red {
			cand := m.Clone()
			if !cand.Merge(r, blue) {
				continue
			}
			if consistent != nil && !consistent(cand.DFA()) {
				continue
			}
			// Commit the candidate.
			*m = *cand
			// Representatives of red may have moved: refresh.
			for i := range red {
				red[i] = m.Find(red[i])
			}
			merged = true
			break
		}
		if !merged {
			red = append(red, blue)
			inRed[blue] = true
		}
		// Deduplicate red after refreshes.
		inRed = make(map[int32]bool, len(red))
		var fresh []int32
		for _, r := range red {
			r = m.Find(r)
			if !inRed[r] {
				inRed[r] = true
				fresh = append(fresh, r)
			}
		}
		red = fresh
	}
}

// smallestBlue returns the smallest-id representative reachable in one step
// from a red state that is not itself red, or None.
func (m *Merger) smallestBlue(red []int32, inRed map[int32]bool) int32 {
	best := None
	for _, r := range red {
		r = m.Find(r)
		for sym := 0; sym < m.NumSyms; sym++ {
			t := m.delta[r][sym]
			if t == None {
				continue
			}
			t = m.Find(t)
			if inRed[t] {
				continue
			}
			if best == None || t < best {
				best = t
			}
		}
	}
	return best
}
