package automata

import (
	"math/rand"

	"pathquery/internal/alphabet"
	"pathquery/internal/regex"
)

// RandomDFA generates a random trimmed, minimized DFA with at most maxStates
// states over numSyms symbols, using rng. Density controls the fraction of
// transitions present (0..1). Useful for property-based tests; the result
// may have fewer states than requested after minimization, and may denote
// the empty language.
func RandomDFA(rng *rand.Rand, maxStates, numSyms int, density float64) *DFA {
	n := 1 + rng.Intn(maxStates)
	d := NewDFA(n, numSyms)
	d.Start = 0
	for s := 0; s < n; s++ {
		d.Final[s] = rng.Intn(3) == 0
		for sym := 0; sym < numSyms; sym++ {
			if rng.Float64() < density {
				d.Delta[s][sym] = int32(rng.Intn(n))
			}
		}
	}
	if rng.Intn(4) != 0 {
		// Bias towards non-empty languages: force one final state.
		d.Final[rng.Intn(n)] = true
	}
	return Minimize(d)
}

// RandomNonEmptyDFA is RandomDFA retried until the language is non-empty.
func RandomNonEmptyDFA(rng *rand.Rand, maxStates, numSyms int, density float64) *DFA {
	for {
		d := RandomDFA(rng, maxStates, numSyms, density)
		if !d.IsEmpty() {
			return d
		}
	}
}

// RandomPrefixFreeDFA generates a random non-empty prefix-free canonical
// DFA (the paper's query representation, cf. Section 2).
func RandomPrefixFreeDFA(rng *rand.Rand, maxStates, numSyms int, density float64) *DFA {
	for {
		d := RandomNonEmptyDFA(rng, maxStates, numSyms, density).PrefixFree()
		if !d.IsEmpty() {
			return d
		}
	}
}

// RandomRegex generates a random regular expression of the given AST depth
// over the symbols of a. Stars are made rarer than unions/concatenations to
// keep languages from collapsing to Σ*-like behemoths.
func RandomRegex(rng *rand.Rand, a *alphabet.Alphabet, depth int) *regex.Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return regex.NewEpsilon()
		}
		return regex.NewLiteral(alphabet.Symbol(rng.Intn(a.Size())))
	}
	switch rng.Intn(5) {
	case 0:
		return regex.NewStar(RandomRegex(rng, a, depth-1))
	case 1, 2:
		return regex.NewUnion(RandomRegex(rng, a, depth-1), RandomRegex(rng, a, depth-1))
	default:
		return regex.NewConcat(RandomRegex(rng, a, depth-1), RandomRegex(rng, a, depth-1))
	}
}
