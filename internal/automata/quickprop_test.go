package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// quick-generated word over 2 symbols, length ≤ 8.
type qword []byte

func (qword) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(9)
	w := make(qword, n)
	for i := range w {
		w[i] = byte(rng.Intn(2))
	}
	return reflect.ValueOf(w)
}

func (w qword) word() words.Word {
	out := make(words.Word, len(w))
	for i, b := range w {
		out[i] = alphabet.Symbol(b)
	}
	return out
}

// quick-generated DFA seed.
type qseed int64

func (qseed) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(qseed(rng.Int63()))
}

func (s qseed) dfa() *DFA {
	return RandomDFA(rand.New(rand.NewSource(int64(s))), 6, 2, 0.7)
}

func TestQuickUnionAcceptance(t *testing.T) {
	f := func(s1, s2 qseed, w qword) bool {
		a, b := s1.dfa(), s2.dfa()
		u := Union(a, b)
		word := w.word()
		return u.Accepts(word) == (a.Accepts(word) || b.Accepts(word))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectAcceptance(t *testing.T) {
	f := func(s1, s2 qseed, w qword) bool {
		a, b := s1.dfa(), s2.dfa()
		i := Intersect(a, b)
		word := w.word()
		return i.Accepts(word) == (a.Accepts(word) && b.Accepts(word))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComplementAcceptance(t *testing.T) {
	f := func(s qseed, w qword) bool {
		a := s.dfa()
		c := Complement(a)
		word := w.word()
		return c.Accepts(word) == !a.Accepts(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinimizePreservesAcceptance(t *testing.T) {
	f := func(s qseed, w qword) bool {
		a := s.dfa()
		return Minimize(a).Accepts(w.word()) == a.Accepts(w.word())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// ¬(A ∪ B) = ¬A ∩ ¬B as languages.
	f := func(s1, s2 qseed) bool {
		a, b := s1.dfa(), s2.dfa()
		left := Complement(Union(a, b))
		right := Intersect(Complement(a), Complement(b))
		return Equivalent(left, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInclusionAntisymmetry(t *testing.T) {
	// Included(a,b) ∧ Included(b,a) ⇔ canonical equality.
	f := func(s1, s2 qseed) bool {
		a, b := s1.dfa(), s2.dfa()
		both := Included(a, b) && Included(b, a)
		return both == a.Equal(b) // RandomDFA returns canonical DFAs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixFreeSubset(t *testing.T) {
	// The prefix-free representative accepts a subset of the original
	// language consisting exactly of the words with no accepted proper
	// prefix.
	f := func(s qseed, w qword) bool {
		a := s.dfa()
		pf := a.PrefixFree()
		word := w.word()
		if !pf.Accepts(word) {
			return true
		}
		if !a.Accepts(word) {
			return false // pf accepted something outside L(a)
		}
		for i := 0; i < len(word); i++ {
			if a.Accepts(word[:i]) {
				return false // an accepted proper prefix survived
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDisjointIffIntersectEmpty(t *testing.T) {
	f := func(s1, s2 qseed) bool {
		a, b := s1.dfa(), s2.dfa()
		return DisjointFrom(a, b) == Intersect(a, b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseReverse(t *testing.T) {
	// Reversing an NFA twice preserves acceptance.
	f := func(s qseed, w qword) bool {
		a := s.dfa().NFA()
		rr := a.Reverse().Reverse()
		return rr.Accepts(w.word()) == a.Accepts(w.word())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
