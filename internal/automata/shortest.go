package automata

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// ShortestAccepted returns the canonical-order (length-lexicographic)
// minimal word of L(d), and false if the language is empty. The BFS expands
// symbols in increasing order so the first final state reached carries the
// canonical-minimal word.
func ShortestAccepted(d *DFA) (words.Word, bool) {
	type node struct {
		state int32
		word  words.Word
	}
	seen := make([]bool, d.NumStates())
	queue := []node{{d.Start, words.Epsilon}}
	seen[d.Start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if d.Final[cur.state] {
			return cur.word, true
		}
		for sym := 0; sym < d.NumSyms; sym++ {
			t := d.Delta[cur.state][alphabet.Symbol(sym)]
			if t != None && !seen[t] {
				seen[t] = true
				queue = append(queue, node{t, words.Append(cur.word, alphabet.Symbol(sym))})
			}
		}
	}
	return nil, false
}

// AccessWords returns, for every state reachable from Start, the
// canonical-order minimal word reaching it (the "shortest prefixes" SP(A)
// of the RPNI characteristic-sample construction). Unreachable states map
// to nil with ok=false in the second return.
func AccessWords(d *DFA) ([]words.Word, []bool) {
	access := make([]words.Word, d.NumStates())
	have := make([]bool, d.NumStates())
	type node struct {
		state int32
		word  words.Word
	}
	queue := []node{{d.Start, words.Epsilon}}
	have[d.Start] = true
	access[d.Start] = words.Epsilon
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for sym := 0; sym < d.NumSyms; sym++ {
			t := d.Delta[cur.state][alphabet.Symbol(sym)]
			if t != None && !have[t] {
				have[t] = true
				access[t] = words.Append(cur.word, alphabet.Symbol(sym))
				queue = append(queue, node{t, access[t]})
			}
		}
	}
	return access, have
}

// CompletionWords returns, for every state, the canonical-order minimal
// word leading from it to a final state ("shortest completion"), with
// have[s] = false when no final state is reachable from s. Computed by a
// reverse BFS in canonical order: a layered relaxation that processes
// candidate extensions smallest-symbol-first.
func CompletionWords(d *DFA) ([]words.Word, []bool) {
	n := d.NumStates()
	comp := make([]words.Word, n)
	have := make([]bool, n)
	// Layered fixpoint: length-0 completions are finals (ε), then repeatedly
	// relax: comp[s] = min over sym of sym·comp[δ(s,sym)]. Processing in
	// rounds guarantees length-lexicographic minimality: round l fixes all
	// states whose minimal completion has length l.
	for s := 0; s < n; s++ {
		if d.Final[s] {
			have[s] = true
			comp[s] = words.Epsilon
		}
	}
	for changed := true; changed; {
		changed = false
		// Candidates per state this round: pick the best extension.
		best := make([]words.Word, n)
		for s := 0; s < n; s++ {
			if have[s] {
				continue
			}
			for sym := 0; sym < d.NumSyms; sym++ {
				t := d.Delta[s][alphabet.Symbol(sym)]
				if t == None || !have[t] {
					continue
				}
				cand := append(words.Word{alphabet.Symbol(sym)}, comp[t]...)
				if best[s] == nil || words.Less(cand, best[s]) {
					best[s] = cand
				}
			}
		}
		for s := 0; s < n; s++ {
			if best[s] != nil {
				have[s] = true
				comp[s] = best[s]
				changed = true
			}
		}
	}
	return comp, have
}

// WordsUpTo enumerates L(d) ∩ Σ^{≤maxLen} in canonical order, stopping after
// limit words (limit ≤ 0 means no limit). Used by tests and by the
// characteristic-sample machinery.
func WordsUpTo(d *DFA, maxLen, limit int) []words.Word {
	var out []words.Word
	type node struct {
		state int32
		word  words.Word
	}
	level := []node{{d.Start, words.Epsilon}}
	for l := 0; l <= maxLen; l++ {
		var next []node
		for _, cur := range level {
			if d.Final[cur.state] {
				out = append(out, cur.word)
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
			if l < maxLen {
				for sym := 0; sym < d.NumSyms; sym++ {
					t := d.Delta[cur.state][alphabet.Symbol(sym)]
					if t != None {
						next = append(next, node{t, words.Append(cur.word, alphabet.Symbol(sym))})
					}
				}
			}
		}
		level = next
	}
	return out
}
