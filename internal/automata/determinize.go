package automata

import (
	"sort"

	"pathquery/internal/alphabet"
)

// Determinize applies the subset construction to n, returning a partial DFA
// over the same alphabet. Only reachable subset states are materialized;
// the empty subset is represented implicitly by absent transitions.
func Determinize(n *NFA) *DFA {
	start := n.closure(n.Starts)
	d := NewDFA(0, n.NumSyms)
	ids := make(map[string]int32)
	var sets [][]int32

	intern := func(set []int32) int32 {
		key := subsetKey(set)
		if id, ok := ids[key]; ok {
			return id
		}
		id := d.AddState()
		ids[key] = id
		sets = append(sets, set)
		for _, s := range set {
			if n.Final[s] {
				d.Final[id] = true
				break
			}
		}
		return id
	}

	if len(start) == 0 {
		// Empty start set: single dead state.
		d.AddState()
		d.Start = 0
		return d
	}
	d.Start = intern(start)
	for q := int32(0); int(q) < len(sets); q++ {
		set := sets[q]
		// Collect the symbols with any outgoing transition from the set.
		symSet := make(map[alphabet.Symbol]bool)
		for _, s := range set {
			for sym := range n.Delta[s] {
				symSet[sym] = true
			}
		}
		syms := make([]alphabet.Symbol, 0, len(symSet))
		for sym := range symSet {
			syms = append(syms, sym)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, sym := range syms {
			next := n.step(set, sym)
			if len(next) == 0 {
				continue
			}
			d.Delta[q][sym] = intern(next)
		}
	}
	return d
}

// subsetKey encodes a sorted state set as a map key.
func subsetKey(set []int32) string {
	b := make([]byte, 0, len(set)*4)
	for _, s := range set {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}
