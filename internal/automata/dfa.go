package automata

import (
	"fmt"
	"sort"
	"strings"

	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// None marks an absent transition in a partial DFA.
const None int32 = -1

// DFA is a deterministic finite word automaton, possibly partial (absent
// transitions are None and reject). State 0..NumStates-1; Start is the
// initial state.
type DFA struct {
	NumSyms int
	Start   int32
	Final   []bool
	// Delta[s][sym] is the successor of s on sym, or None.
	Delta [][]int32
}

// NewDFA returns a DFA with n states, all transitions absent.
func NewDFA(n, numSyms int) *DFA {
	d := &DFA{NumSyms: numSyms, Final: make([]bool, n), Delta: make([][]int32, n)}
	for i := range d.Delta {
		row := make([]int32, numSyms)
		for j := range row {
			row[j] = None
		}
		d.Delta[i] = row
	}
	return d
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Final) }

// AddState appends a fresh state and returns its id.
func (d *DFA) AddState() int32 {
	row := make([]int32, d.NumSyms)
	for j := range row {
		row[j] = None
	}
	d.Delta = append(d.Delta, row)
	d.Final = append(d.Final, false)
	return int32(len(d.Final) - 1)
}

// Clone returns a deep copy.
func (d *DFA) Clone() *DFA {
	c := &DFA{NumSyms: d.NumSyms, Start: d.Start, Final: append([]bool(nil), d.Final...)}
	c.Delta = make([][]int32, len(d.Delta))
	for i, row := range d.Delta {
		c.Delta[i] = append([]int32(nil), row...)
	}
	return c
}

// Step returns δ(s, sym), or None.
func (d *DFA) Step(s int32, sym alphabet.Symbol) int32 {
	if s == None {
		return None
	}
	return d.Delta[s][sym]
}

// Run returns the state reached from Start on w, or None if the run dies.
func (d *DFA) Run(w words.Word) int32 {
	s := d.Start
	for _, sym := range w {
		s = d.Step(s, sym)
		if s == None {
			return None
		}
	}
	return s
}

// Accepts reports whether d accepts w.
func (d *DFA) Accepts(w words.Word) bool {
	s := d.Run(w)
	return s != None && d.Final[s]
}

// IsEmpty reports whether L(d) = ∅.
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates())
	stack := []int32{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Final[s] {
			return false
		}
		for _, t := range d.Delta[s] {
			if t != None && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// NFA converts d to an equivalent NFA (no ε-transitions).
func (d *DFA) NFA() *NFA {
	n := NewNFA(d.NumStates(), d.NumSyms)
	n.Starts = []int32{d.Start}
	copy(n.Final, d.Final)
	for s := range d.Delta {
		for sym, t := range d.Delta[s] {
			if t != None {
				n.AddTransition(int32(s), alphabet.Symbol(sym), t)
			}
		}
	}
	return n
}

// Complete returns a total DFA accepting the same language: if d is already
// total it is returned unchanged, otherwise a copy with a non-final sink is
// returned (the sink is the last state).
func (d *DFA) Complete() *DFA {
	total := true
	for _, row := range d.Delta {
		for _, t := range row {
			if t == None {
				total = false
				break
			}
		}
	}
	if total {
		return d
	}
	c := d.Clone()
	sink := c.AddState()
	for s := range c.Delta {
		for j, t := range c.Delta[s] {
			if t == None {
				c.Delta[s][j] = sink
			}
		}
	}
	return c
}

// Trim removes states that are unreachable from Start or cannot reach a
// final state, except that the start state is always kept (the canonical
// DFA of ∅ is a single non-final state). Transitions into removed states
// become None. States are renumbered in canonical order: BFS from Start
// taking symbols in increasing order, which makes structural equality of
// trimmed minimal DFAs coincide with language equality.
func (d *DFA) Trim() *DFA {
	n := d.NumStates()
	reach := make([]bool, n)
	stack := []int32{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Delta[s] {
			if t != None && !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// Co-reachability via reverse edges.
	rev := make([][]int32, n)
	for s := 0; s < n; s++ {
		for _, t := range d.Delta[s] {
			if t != None {
				rev[t] = append(rev[t], int32(s))
			}
		}
	}
	co := make([]bool, n)
	stack = stack[:0]
	for s := 0; s < n; s++ {
		if d.Final[s] {
			co[s] = true
			stack = append(stack, int32(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !co[p] {
				co[p] = true
				stack = append(stack, p)
			}
		}
	}
	keep := func(s int32) bool {
		return s == d.Start || (reach[s] && co[s])
	}
	// Canonical BFS numbering over kept states.
	number := make([]int32, n)
	for i := range number {
		number[i] = None
	}
	order := []int32{d.Start}
	number[d.Start] = 0
	for i := 0; i < len(order); i++ {
		s := order[i]
		for sym := 0; sym < d.NumSyms; sym++ {
			t := d.Delta[s][sym]
			if t != None && keep(t) && number[t] == None {
				number[t] = int32(len(order))
				order = append(order, t)
			}
		}
	}
	out := NewDFA(len(order), d.NumSyms)
	out.Start = 0
	for i, s := range order {
		out.Final[i] = d.Final[s]
		for sym := 0; sym < d.NumSyms; sym++ {
			t := d.Delta[s][sym]
			if t != None && keep(t) && number[t] != None {
				out.Delta[i][sym] = number[t]
			}
		}
	}
	return out
}

// Equal reports structural equality (same canonical form). Use on outputs
// of Minimize, which are canonically numbered.
func (d *DFA) Equal(o *DFA) bool {
	if d.NumSyms != o.NumSyms || d.NumStates() != o.NumStates() || d.Start != o.Start {
		return false
	}
	for s := range d.Final {
		if d.Final[s] != o.Final[s] {
			return false
		}
		for sym := 0; sym < d.NumSyms; sym++ {
			if d.Delta[s][sym] != o.Delta[s][sym] {
				return false
			}
		}
	}
	return true
}

// PrefixFree returns the canonical DFA of the unique prefix-free query
// equivalent to d (Section 2 of the paper): remove all outgoing transitions
// of every final state, then minimize.
func (d *DFA) PrefixFree() *DFA {
	c := d.Clone()
	for s := range c.Delta {
		if c.Final[s] {
			for j := range c.Delta[s] {
				c.Delta[s][j] = None
			}
		}
	}
	return Minimize(c)
}

// IsPrefixFree reports whether L(d) is prefix-free: no word of the language
// is a proper prefix of another. On a trimmed minimal DFA this is exactly
// "no final state has an outgoing transition", since in a trimmed automaton
// every transition leads to a co-reachable state.
func (d *DFA) IsPrefixFree() bool {
	m := Minimize(d)
	for s := range m.Delta {
		if !m.Final[s] {
			continue
		}
		for _, t := range m.Delta[s] {
			if t != None {
				return false
			}
		}
	}
	return true
}

// SortedSymbols returns 0..NumSyms-1 as symbols; helper for iteration.
func (d *DFA) SortedSymbols() []alphabet.Symbol {
	out := make([]alphabet.Symbol, d.NumSyms)
	for i := range out {
		out[i] = alphabet.Symbol(i)
	}
	return out
}

// String renders a debug form listing transitions.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA{start: %d; ", d.Start)
	for s := range d.Delta {
		if d.Final[s] {
			fmt.Fprintf(&b, "(%d) ", s)
		} else {
			fmt.Fprintf(&b, "%d ", s)
		}
		for sym, t := range d.Delta[s] {
			if t != None {
				fmt.Fprintf(&b, "-%d->%d ", sym, t)
			}
		}
	}
	b.WriteString("}")
	return b.String()
}

// states sorted helper used in several constructions.
func sortedStates(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
