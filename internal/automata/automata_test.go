package automata

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/regex"
	"pathquery/internal/words"
)

// abc returns an alphabet with a=0, b=1, c=2 as in the paper's Figure 3.
func abc() *alphabet.Alphabet {
	return alphabet.NewSorted("a", "b", "c")
}

func compile(t *testing.T, a *alphabet.Alphabet, src string) *DFA {
	t.Helper()
	n, err := regex.Parse(a, src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return CompileRegex(n, a.Size())
}

// allWords enumerates every word over numSyms symbols up to maxLen.
func allWords(numSyms, maxLen int) []words.Word {
	syms := make([]alphabet.Symbol, numSyms)
	for i := range syms {
		syms[i] = alphabet.Symbol(i)
	}
	total := 0
	for l, p := 0, 1; l <= maxLen; l++ {
		total += p
		p *= numSyms
	}
	return words.Enumerate(syms, total)
}

func TestThompsonAcceptsKnownLanguage(t *testing.T) {
	a := abc()
	n, err := regex.Parse(a, "(a·b)*·c")
	if err != nil {
		t.Fatal(err)
	}
	nfa := Thompson(n, a.Size())
	accepted := []string{"c", "abc", "ababc"}
	rejected := []string{"", "a", "ab", "ac", "bc", "abab", "cc", "abcc"}
	for _, s := range accepted {
		if !nfa.Accepts(wordOf(a, s)) {
			t.Errorf("NFA should accept %q", s)
		}
	}
	for _, s := range rejected {
		if nfa.Accepts(wordOf(a, s)) {
			t.Errorf("NFA should reject %q", s)
		}
	}
}

// wordOf turns a string of single-letter labels into a word.
func wordOf(a *alphabet.Alphabet, s string) words.Word {
	w := make(words.Word, 0, len(s))
	for _, r := range s {
		sym, ok := a.Lookup(string(r))
		if !ok {
			panic("unknown label " + string(r))
		}
		w = append(w, sym)
	}
	return w
}

func TestDeterminizeMatchesNFA(t *testing.T) {
	a := abc()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := RandomRegex(rng, a, 4)
		nfa := Thompson(n, a.Size())
		dfa := Determinize(nfa)
		for _, w := range allWords(a.Size(), 5) {
			if nfa.Accepts(w) != dfa.Accepts(w) {
				t.Fatalf("iter %d: regex %s disagrees on %v (nfa=%v)",
					i, n.String(a), w, nfa.Accepts(w))
			}
		}
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		d := func() *DFA {
			n := 1 + rng.Intn(8)
			d := NewDFA(n, 2)
			d.Start = 0
			for s := 0; s < n; s++ {
				d.Final[s] = rng.Intn(3) == 0
				for sym := 0; sym < 2; sym++ {
					if rng.Intn(3) > 0 {
						d.Delta[s][sym] = int32(rng.Intn(n))
					}
				}
			}
			return d
		}()
		m := Minimize(d)
		for _, w := range allWords(2, 7) {
			if d.Accepts(w) != m.Accepts(w) {
				t.Fatalf("iter %d: minimize changed language on %v", i, w)
			}
		}
	}
}

func TestMinimizeIsCanonical(t *testing.T) {
	a := abc()
	// Two different expressions for the same language must minimize to
	// structurally equal DFAs.
	d1 := compile(t, a, "(a·b)*·c")
	d2 := compile(t, a, "c+a·b·(a·b)*·c")
	if !d1.Equal(d2) {
		t.Fatalf("canonical DFAs differ:\n%v\n%v", d1, d2)
	}
}

func TestPaperFigure4CanonicalDFASize(t *testing.T) {
	// "the size of the query (a·b)*·c is 3 (cf. Figure 4)".
	a := abc()
	d := compile(t, a, "(a·b)*·c")
	if d.NumStates() != 3 {
		t.Fatalf("canonical DFA of (a·b)*·c has %d states, want 3", d.NumStates())
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		d := RandomDFA(rng, 10, 3, 0.6)
		again := Minimize(d)
		if !d.Equal(again) {
			t.Fatalf("iter %d: Minimize not idempotent", i)
		}
	}
}

func TestEquivalenceKnownPairs(t *testing.T) {
	a := abc()
	cases := []struct {
		x, y string
		want bool
	}{
		{"a", "a·b*", false}, // equivalent as *queries* but not as languages
		{"a·(b+c)", "a·b+a·c", true},
		{"(a·b)*·c", "c+a·b·(a·b)*·c", true},
		{"a*", "ε+a·a*", true},
		{"a", "b", false},
	}
	for _, c := range cases {
		dx, dy := compile(t, a, c.x), compile(t, a, c.y)
		if got := Equivalent(dx, dy); got != c.want {
			t.Errorf("Equivalent(%s, %s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestIncludedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := RandomDFA(rng, 5, 2, 0.7)
		y := RandomDFA(rng, 5, 2, 0.7)
		// A counterexample to inclusion, if any, exists with length below
		// the product of the state counts (plus sink). Words up to 8 cover
		// our sizes comfortably... enumerate to product bound.
		bound := x.NumStates() * (y.NumStates() + 1)
		if bound > 10 {
			bound = 10
		}
		brute := true
		for _, w := range allWords(2, bound) {
			if x.Accepts(w) && !y.Accepts(w) {
				brute = false
				break
			}
		}
		if got := Included(x, y); got != brute {
			t.Fatalf("iter %d: Included = %v, brute force = %v", i, got, brute)
		}
	}
}

func TestDisjointFromAndIntersect(t *testing.T) {
	a := abc()
	x := compile(t, a, "a·b*")
	y := compile(t, a, "a·b·b")
	if DisjointFrom(x, y) {
		t.Fatal("a·b* and a·b·b share abb")
	}
	z := compile(t, a, "c·a")
	if !DisjointFrom(x, z) {
		t.Fatal("a·b* and c·a are disjoint")
	}
	inter := Intersect(x, y)
	if !Equivalent(inter, y) {
		t.Fatal("a·b* ∩ a·b·b should be a·b·b")
	}
}

func TestUnionAndComplement(t *testing.T) {
	a := abc()
	x := compile(t, a, "a")
	y := compile(t, a, "b")
	u := Union(x, y)
	if !Equivalent(u, compile(t, a, "a+b")) {
		t.Fatal("union wrong")
	}
	comp := Complement(u)
	for _, w := range allWords(a.Size(), 3) {
		if u.Accepts(w) == comp.Accepts(w) {
			t.Fatalf("complement agrees with original on %v", w)
		}
	}
}

func TestUnionUniversal(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	all := compile(t, a, "(a+b)*")
	if ok, _ := UnionUniversal([]*DFA{all}); !ok {
		t.Fatal("(a+b)* should be universal")
	}
	x := compile(t, a, "a·(a+b)*+ε")
	y := compile(t, a, "b·(a+b)*")
	if ok, _ := UnionUniversal([]*DFA{x, y}); !ok {
		t.Fatal("union covers all words")
	}
	z := compile(t, a, "a*")
	ok, witness := UnionUniversal([]*DFA{z})
	if ok {
		t.Fatal("a* is not universal over {a,b}")
	}
	if z.Accepts(witness) {
		t.Fatalf("witness %v is accepted", witness)
	}
}

func TestPrefixFreeTransform(t *testing.T) {
	a := abc()
	// The paper's example: a and a·b* are equivalent queries; the unique
	// prefix-free representative is a.
	d := compile(t, a, "a·b*")
	pf := d.PrefixFree()
	if !Equivalent(pf, compile(t, a, "a")) {
		t.Fatal("prefix-free of a·b* should be a")
	}
	if !pf.IsPrefixFree() {
		t.Fatal("result not prefix-free")
	}
	if d.IsPrefixFree() {
		t.Fatal("a·b* is not prefix-free")
	}
	if !compile(t, a, "(a·b)*·c").IsPrefixFree() {
		t.Fatal("(a·b)*·c is prefix-free")
	}
}

func TestPrefixFreeIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		d := RandomNonEmptyDFA(rng, 8, 2, 0.7)
		pf := d.PrefixFree()
		if !pf.Equal(pf.PrefixFree()) {
			t.Fatalf("iter %d: PrefixFree not idempotent", i)
		}
		if !pf.IsPrefixFree() {
			t.Fatalf("iter %d: PrefixFree output not prefix-free", i)
		}
		// Every minimal word of the original language survives.
		if w, ok := ShortestAccepted(d); ok {
			if !pf.Accepts(w) {
				t.Fatalf("iter %d: shortest word %v lost by PrefixFree", i, w)
			}
		}
	}
}

func TestShortestAccepted(t *testing.T) {
	a := abc()
	d := compile(t, a, "(a·b)*·c")
	w, ok := ShortestAccepted(d)
	if !ok || words.String(w, a) != "c" {
		t.Fatalf("shortest of (a·b)*·c = %v", w)
	}
	empty := compile(t, a, "a")
	empty.Final[0] = false
	empty.Final[1] = false
	if _, ok := ShortestAccepted(empty); ok {
		t.Fatal("empty language has no shortest word")
	}
	// Canonical tie-break: among same-length words pick lexicographic min.
	d2 := compile(t, a, "b+a")
	w2, _ := ShortestAccepted(d2)
	if words.String(w2, a) != "a" {
		t.Fatalf("shortest of b+a = %v, want a", words.String(w2, a))
	}
}

func TestAccessWords(t *testing.T) {
	a := abc()
	d := compile(t, a, "(a·b)*·c")
	access, have := AccessWords(d)
	for s := 0; s < d.NumStates(); s++ {
		if !have[s] {
			t.Fatalf("state %d unreachable in trimmed DFA", s)
		}
		if got := d.Run(access[s]); got != int32(s) {
			t.Fatalf("access word of %d runs to %d", s, got)
		}
	}
	// SP((a·b)*·c) = {ε, a, c} per the paper's Theorem 3.5 example.
	var names []string
	for s := range access {
		names = append(names, words.String(access[s], a))
	}
	want := map[string]bool{"ε": true, "a": true, "c": true}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected access word %q (all: %v)", n, names)
		}
	}
}

func TestCompletionWords(t *testing.T) {
	a := abc()
	d := compile(t, a, "(a·b)*·c")
	comp, have := CompletionWords(d)
	for s := 0; s < d.NumStates(); s++ {
		if !have[s] {
			t.Fatalf("state %d has no completion in trimmed DFA", s)
		}
		// Running the completion from s must end in a final state.
		cur := int32(s)
		for _, sym := range comp[s] {
			cur = d.Step(cur, sym)
		}
		if cur == None || !d.Final[cur] {
			t.Fatalf("completion of %d does not reach final", s)
		}
	}
}

func TestWordsUpToCanonicalOrder(t *testing.T) {
	a := abc()
	d := compile(t, a, "(a·b)*·c")
	got := WordsUpTo(d, 5, 0)
	wantFirst := []string{"c", "a·b·c", "a·b·a·b·c"}
	if len(got) != 3 {
		t.Fatalf("WordsUpTo = %d words", len(got))
	}
	for i, w := range got {
		if words.String(w, a) != wantFirst[i] {
			t.Fatalf("WordsUpTo[%d] = %v", i, words.String(w, a))
		}
	}
	limited := WordsUpTo(d, 5, 2)
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %d", len(limited))
	}
}

func TestToRegexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 60; i++ {
		d := RandomNonEmptyDFA(rng, 6, 2, 0.7)
		r := ToRegex(d)
		back := CompileRegex(r, 2)
		if !d.Equal(back) {
			t.Fatalf("iter %d: ToRegex round trip failed", i)
		}
	}
}

func TestToRegexEmptyLanguage(t *testing.T) {
	d := NewDFA(1, 2)
	r := ToRegex(d)
	if r.Kind != regex.Empty {
		t.Fatalf("regex of empty DFA = %v", r.Kind)
	}
}

func TestReverseNFA(t *testing.T) {
	a := abc()
	n, _ := regex.Parse(a, "a·b·c")
	nfa := Thompson(n, a.Size())
	rev := nfa.Reverse()
	if !rev.Accepts(wordOf(a, "cba")) {
		t.Fatal("reverse should accept cba")
	}
	if rev.Accepts(wordOf(a, "abc")) {
		t.Fatal("reverse should reject abc")
	}
}

func TestNFAIntersectionEmpty(t *testing.T) {
	a := abc()
	x := Thompson(regex.MustParse(a, "a·b*"), a.Size())
	y := Thompson(regex.MustParse(a, "a·b·b"), a.Size())
	if IntersectionEmpty(x, y) {
		t.Fatal("should intersect at abb")
	}
	z := Thompson(regex.MustParse(a, "c"), a.Size())
	if !IntersectionEmpty(x, z) {
		t.Fatal("a·b* and c are disjoint")
	}
}

func TestNFAIsEmpty(t *testing.T) {
	a := abc()
	if Thompson(regex.NewEmpty(), a.Size()).IsEmpty() != true {
		t.Fatal("∅ should be empty")
	}
	if Thompson(regex.MustParse(a, "a"), a.Size()).IsEmpty() {
		t.Fatal("a is not empty")
	}
}

func TestDFACompleteAndTrim(t *testing.T) {
	a := abc()
	d := compile(t, a, "a·b")
	c := d.Complete()
	for s := range c.Delta {
		for _, tgt := range c.Delta[s] {
			if tgt == None {
				t.Fatal("Complete left a hole")
			}
		}
	}
	if !Equivalent(d, c.Trim()) {
		t.Fatal("Trim(Complete(d)) changed the language")
	}
}

func TestSizeMeasure(t *testing.T) {
	a := abc()
	if got := Size(compile(t, a, "(a·b)*·c")); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}
}
