package automata

import (
	"strconv"
	"strings"
)

// CanonicalKey returns a compact string determined by the automaton's
// shape: state count, start state, final set, and present transitions.
// Absent (None) transitions and the NumSyms padding are excluded, so the
// key is stable as the shared alphabet grows: a query compiled before new
// labels were interned keys identically to the same query compiled after.
//
// On canonical DFAs (as produced by Minimize, whose Trim renumbers states
// by BFS from the start in symbol order), two automata have equal keys iff
// their languages are equal — which makes the key usable as a
// language-level plan-cache key (see Query.CacheKey).
func (d *DFA) CanonicalKey() string {
	var b strings.Builder
	b.Grow(16 * d.NumStates())
	b.WriteString(strconv.Itoa(d.NumStates()))
	b.WriteByte('s')
	b.WriteString(strconv.Itoa(int(d.Start)))
	b.WriteByte('f')
	for s, f := range d.Final {
		if f {
			b.WriteString(strconv.Itoa(s))
			b.WriteByte(',')
		}
	}
	b.WriteByte('t')
	for s := range d.Delta {
		for sym, t := range d.Delta[s] {
			if t == None {
				continue
			}
			b.WriteString(strconv.Itoa(s))
			b.WriteByte('.')
			b.WriteString(strconv.Itoa(sym))
			b.WriteByte('.')
			b.WriteString(strconv.Itoa(int(t)))
			b.WriteByte(';')
		}
	}
	return b.String()
}
