package automata

// Minimize returns the canonical DFA of L(d): complete, minimize by
// Moore-style partition refinement, trim (drop the sink and unreachable
// classes) and renumber canonically. Two minimal DFAs produced by Minimize
// are structurally Equal iff their languages are equal, which is how the
// paper's "learner returns q" claims are tested.
//
// Moore refinement is O(n²·|Σ|) worst case; the automata minimized here
// (queries and prefix tree acceptors) have at most a few hundred states, so
// the simplicity is worth more than Hopcroft's asymptotics.
func Minimize(d *DFA) *DFA {
	// Restrict to reachable states first so unreachable garbage cannot
	// influence the partition.
	c := d.Trim().Complete()
	n := c.NumStates()
	if n == 0 {
		return NewDFA(1, d.NumSyms)
	}

	class := make([]int32, n)
	numClasses := int32(1)
	// Initial partition: final vs non-final (if both present).
	hasFinal, hasNonFinal := false, false
	for s := 0; s < n; s++ {
		if c.Final[s] {
			hasFinal = true
		} else {
			hasNonFinal = true
		}
	}
	if hasFinal && hasNonFinal {
		numClasses = 2
		for s := 0; s < n; s++ {
			if c.Final[s] {
				class[s] = 1
			}
		}
	}

	// Refine until stable: states are split by the signature
	// (own class, class of each successor).
	sig := make([]int64, n) // packed signature hashing is avoided: exact map
	_ = sig
	for {
		type key struct {
			own  int32
			succ string
		}
		ids := make(map[key]int32, n)
		next := make([]int32, n)
		var nextCount int32
		for s := 0; s < n; s++ {
			succ := make([]byte, 0, c.NumSyms*4)
			for sym := 0; sym < c.NumSyms; sym++ {
				t := class[c.Delta[s][sym]]
				succ = append(succ, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
			}
			k := key{class[s], string(succ)}
			id, ok := ids[k]
			if !ok {
				id = nextCount
				nextCount++
				ids[k] = id
			}
			next[s] = id
		}
		if nextCount == numClasses {
			break
		}
		class = next
		numClasses = nextCount
	}

	// Build the quotient DFA.
	q := NewDFA(int(numClasses), c.NumSyms)
	q.Start = class[c.Start]
	seen := make([]bool, numClasses)
	for s := 0; s < n; s++ {
		cl := class[s]
		if seen[cl] {
			continue
		}
		seen[cl] = true
		q.Final[cl] = c.Final[s]
		for sym := 0; sym < c.NumSyms; sym++ {
			q.Delta[cl][sym] = class[c.Delta[s][sym]]
		}
	}
	return q.Trim()
}

// Size returns the paper's size measure for the language of d: the number
// of states of its canonical DFA.
func Size(d *DFA) int {
	return Minimize(d).NumStates()
}
