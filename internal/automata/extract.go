package automata

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/regex"
)

// ToRegex extracts a regular expression for L(d) by state elimination
// (Brzozowski–McCluskey). The result is correct but not necessarily the
// most compact; queries constructed from a regex keep their original source
// for display, so extraction is only used for learned queries.
func ToRegex(d *DFA) *regex.Node {
	t := d.Trim()
	n := t.NumStates()
	// GNFA with fresh start (index n) and accept (index n+1) states.
	// expr[i][j] is the regex labeling edge i→j, nil meaning ∅.
	size := n + 2
	start, accept := n, n+1
	expr := make([][]*regex.Node, size)
	for i := range expr {
		expr[i] = make([]*regex.Node, size)
	}
	union := func(i, j int, e *regex.Node) {
		if expr[i][j] == nil {
			expr[i][j] = e
		} else {
			expr[i][j] = regex.NewUnion(expr[i][j], e)
		}
	}
	union(start, int(t.Start), regex.NewEpsilon())
	for s := 0; s < n; s++ {
		if t.Final[s] {
			union(s, accept, regex.NewEpsilon())
		}
		for sym, to := range t.Delta[s] {
			if to != None {
				union(s, int(to), regex.NewLiteral(alphabet.Symbol(sym)))
			}
		}
	}
	// Eliminate states 0..n-1.
	alive := make([]bool, size)
	for i := range alive {
		alive[i] = true
	}
	for k := 0; k < n; k++ {
		alive[k] = false
		loop := regex.NewEpsilon()
		if expr[k][k] != nil {
			loop = regex.NewStar(expr[k][k])
		}
		for i := 0; i < size; i++ {
			if !alive[i] || expr[i][k] == nil {
				continue
			}
			for j := 0; j < size; j++ {
				if !alive[j] || expr[k][j] == nil {
					continue
				}
				union(i, j, regex.ConcatAll(expr[i][k], loop, expr[k][j]))
			}
		}
		for i := 0; i < size; i++ {
			expr[i][k] = nil
			expr[k][i] = nil
		}
	}
	if expr[start][accept] == nil {
		return regex.NewEmpty()
	}
	return expr[start][accept]
}
