package automata

import (
	"pathquery/internal/regex"
)

// Thompson builds an NFA with ε-transitions for the regular expression n
// over an alphabet of numSyms symbols, by the classic Thompson construction.
// The resulting NFA has a single start and a single final state.
func Thompson(n *regex.Node, numSyms int) *NFA {
	a := NewNFA(0, numSyms)
	start, end := thompson(a, n)
	a.Starts = []int32{start}
	a.Final[end] = true
	return a
}

// thompson adds the fragment for n to a and returns its (start, end) states.
func thompson(a *NFA, n *regex.Node) (int32, int32) {
	switch n.Kind {
	case regex.Empty:
		s, e := a.AddState(), a.AddState()
		return s, e // no connection: accepts nothing
	case regex.Epsilon:
		s := a.AddState()
		return s, s
	case regex.Literal:
		s, e := a.AddState(), a.AddState()
		a.AddTransition(s, n.Sym, e)
		return s, e
	case regex.Union:
		ls, le := thompson(a, n.Left)
		rs, re := thompson(a, n.Right)
		s, e := a.AddState(), a.AddState()
		a.AddEps(s, ls)
		a.AddEps(s, rs)
		a.AddEps(le, e)
		a.AddEps(re, e)
		return s, e
	case regex.Concat:
		ls, le := thompson(a, n.Left)
		rs, re := thompson(a, n.Right)
		a.AddEps(le, rs)
		return ls, re
	case regex.Star:
		is, ie := thompson(a, n.Left)
		s := a.AddState()
		a.AddEps(s, is)
		a.AddEps(ie, s)
		return s, s
	default:
		panic("automata: unknown regex node kind")
	}
}

// CompileRegex parses nothing: it converts an already-parsed regular
// expression to its canonical (trimmed, minimal, canonically numbered) DFA.
func CompileRegex(n *regex.Node, numSyms int) *DFA {
	return Minimize(Determinize(Thompson(n, numSyms)))
}
