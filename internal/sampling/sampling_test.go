package sampling_test

import (
	"testing"

	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
	"pathquery/internal/sampling"
)

func testGraph() *graph.Graph {
	return datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 1000, Edges: 3000, Labels: 8, ZipfS: 1, Seed: 71,
	})
}

func TestRandomWalkSampleSize(t *testing.T) {
	g := testGraph()
	s := sampling.RandomWalk(g, sampling.Config{TargetNodes: 200, Seed: 1})
	if len(s) == 0 || len(s) > 220 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := make(map[graph.NodeID]bool)
	for i, v := range s {
		if seen[v] {
			t.Fatal("duplicate node in sample")
		}
		seen[v] = true
		if i > 0 && s[i-1] >= v {
			t.Fatal("sample not sorted")
		}
	}
}

func TestForestFireSampleSize(t *testing.T) {
	g := testGraph()
	s := sampling.ForestFire(g, sampling.Config{TargetNodes: 200, Seed: 2})
	if len(s) < 150 || len(s) > 220 {
		t.Fatalf("sample size %d", len(s))
	}
}

func TestSamplersCoverWholeTinyGraph(t *testing.T) {
	g, _ := paperfix.G0()
	for _, s := range [][]graph.NodeID{
		sampling.RandomWalk(g, sampling.Config{TargetNodes: 100, Seed: 3}),
		sampling.ForestFire(g, sampling.Config{TargetNodes: 100, Seed: 3}),
	} {
		if len(s) != g.NumNodes() {
			t.Fatalf("tiny graph not fully sampled: %d of %d", len(s), g.NumNodes())
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	g := testGraph()
	a := sampling.RandomWalk(g, sampling.Config{TargetNodes: 150, Seed: 5})
	b := sampling.RandomWalk(g, sampling.Config{TargetNodes: 150, Seed: 5})
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

// TestForestFireDeterministic is the regression test for the re-seeding
// bug: a random seed landing on an already-visited node used to be
// re-enqueued and re-burned, skewing the geometric burn schedule. The fix
// skips visited seeds, so a fixed seed must reproduce the exact sample and
// exact target size, through the snapshot path and the Graph delegate
// alike.
func TestForestFireDeterministic(t *testing.T) {
	g := testGraph()
	// Small burn probability makes the fire die often, exercising the
	// reseed path heavily.
	cfg := sampling.Config{TargetNodes: 300, Seed: 41, BurnForward: 0.2}
	a := sampling.ForestFireOn(g.Snapshot(), cfg)
	b := sampling.ForestFire(g, cfg)
	if len(a) != cfg.TargetNodes {
		t.Fatalf("sample size %d, want exactly %d", len(a), cfg.TargetNodes)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different forest-fire samples")
		}
	}
	seen := make(map[graph.NodeID]bool)
	for i, v := range a {
		if seen[v] {
			t.Fatal("duplicate node in sample")
		}
		seen[v] = true
		if i > 0 && a[i-1] >= v {
			t.Fatal("sample not sorted")
		}
	}
}

func TestRestrictProposesFromSample(t *testing.T) {
	g := testGraph()
	sample := sampling.RandomWalk(g, sampling.Config{TargetNodes: 100, Seed: 7})
	inSample := make(map[graph.NodeID]bool)
	for _, v := range sample {
		inSample[v] = true
	}
	goal := query.MustParse(g.Alphabet(), "l00·l01")
	sess := sampling.Session(g, "rw", sampling.Config{TargetNodes: 100, Seed: 7},
		interactive.Options{Strategy: interactive.KR{}, Seed: 9, MaxInteractions: 30})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal),
		func(q *query.Query) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	// All early proposals come from the sample (fallback to the full graph
	// only once the sample is exhausted, which 30 labels cannot do here
	// if the sample retains informative nodes — verify at least the first).
	if len(res.Interactions) == 0 {
		t.Fatal("no interactions")
	}
	if !inSample[res.Interactions[0].Node] {
		t.Fatal("first proposal left the sample")
	}
}

func TestSampledSessionStillLearns(t *testing.T) {
	// The sampled session must still converge on a small graph (fallback
	// guarantees completeness).
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sess := sampling.Session(g, "ff", sampling.Config{TargetNodes: 3, Seed: 11},
		interactive.Options{Strategy: interactive.KS{}, Seed: 13})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltSatisfied {
		t.Fatalf("halted %v", res.Halted)
	}
	if !res.Query.EquivalentOn(g, goal) {
		t.Fatalf("learned %v", res.Query)
	}
}

func TestRestrictName(t *testing.T) {
	r := sampling.Restrict{Base: interactive.KS{}}
	if r.Name() != "sampled(kS)" {
		t.Fatalf("name = %q", r.Name())
	}
}

func TestCoverageOfSample(t *testing.T) {
	g := testGraph()
	goal := query.MustParse(g.Alphabet(), "l00")
	sel := goal.Select(g)
	full := sampling.CoverageOfSample(g, g.Nodes(), sel)
	if full != 1 {
		t.Fatalf("full sample coverage = %v", full)
	}
	empty := sampling.CoverageOfSample(g, nil, sel)
	if empty != 0 {
		t.Fatalf("empty sample coverage = %v", empty)
	}
	// A decent random-walk sample of half the graph should cover a
	// nontrivial share of the selected nodes.
	half := sampling.RandomWalk(g, sampling.Config{TargetNodes: 500, Seed: 17})
	c := sampling.CoverageOfSample(g, half, sel)
	if c <= 0.1 {
		t.Fatalf("half sample coverage suspiciously low: %v", c)
	}
}
