// Package sampling implements the paper's first future-work direction
// (Section 6): "to sample a graph and find informative nodes on
// representative samples, in the spirit of [31]" — Leskovec & Faloutsos,
// "Sampling from large graphs" (KDD 2006).
//
// Two of that paper's best-performing samplers are provided — random walk
// with flying back and forest fire — plus SampledSession, which runs the
// interactive scenario's node proposal on the sampled subgraph while
// labels, learning and the halt condition still apply to the full graph.
// Proposals become cheap on graphs where scanning all nodes per
// interaction is too slow; the price is that nodes outside the sample are
// only reached after the sample is exhausted.
package sampling

import (
	"math/rand"
	"sort"

	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/scp"
)

// Config tunes a sampler.
type Config struct {
	// TargetNodes is the desired sample size.
	TargetNodes int
	// Seed makes sampling deterministic.
	Seed int64
	// FlyBack is the random-walk restart probability (Leskovec &
	// Faloutsos use 0.15); 0 selects 0.15.
	FlyBack float64
	// BurnForward is the forest-fire forward-burning probability
	// (their recommended 0.7); 0 selects 0.7.
	BurnForward float64
}

func (c Config) withDefaults() Config {
	if c.FlyBack == 0 {
		c.FlyBack = 0.15
	}
	if c.BurnForward == 0 {
		c.BurnForward = 0.7
	}
	return c
}

// RandomWalk samples nodes by a random walk with flying back, on g's
// read-your-writes snapshot.
func RandomWalk(g *graph.Graph, cfg Config) []graph.NodeID {
	return RandomWalkOn(g.Snapshot(), cfg)
}

// RandomWalkOn samples nodes by a random walk with flying back: walk the
// graph (both edge directions, so weakly-connected regions are covered),
// restarting at the origin with probability FlyBack, and restarting at a
// fresh origin when stuck. Returns the sampled node set in increasing id
// order. The walk runs entirely on the pinned epoch snapshot.
func RandomWalkOn(s *graph.Snapshot, cfg Config) []graph.NodeID {
	cfg = cfg.withDefaults()
	n := s.NumNodes()
	if cfg.TargetNodes >= n {
		return allNodes(n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	visited := make(map[graph.NodeID]bool, cfg.TargetNodes)
	origin := graph.NodeID(rng.Intn(n))
	cur := origin
	visited[origin] = true
	// Cap total steps to avoid spinning on pathological graphs.
	for steps := 0; len(visited) < cfg.TargetNodes && steps < 100*cfg.TargetNodes; steps++ {
		if rng.Float64() < cfg.FlyBack {
			cur = origin
			continue
		}
		nbrs := neighbors(s, cur)
		if len(nbrs) == 0 {
			origin = graph.NodeID(rng.Intn(n))
			cur = origin
			visited[origin] = true
			continue
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		if !visited[cur] {
			visited[cur] = true
		}
		// Periodically jump to a fresh origin so disconnected components
		// are represented (the "flying back" sampler alone can get stuck
		// in one component).
		if steps%max(1, 10*cfg.TargetNodes/(1+len(visited))) == 0 && rng.Float64() < 0.05 {
			origin = graph.NodeID(rng.Intn(n))
			cur = origin
			visited[origin] = true
		}
	}
	return sortedKeys(visited)
}

// ForestFire samples nodes by forest-fire burning, on g's
// read-your-writes snapshot.
func ForestFire(g *graph.Graph, cfg Config) []graph.NodeID {
	return ForestFireOn(g.Snapshot(), cfg)
}

// ForestFireOn samples nodes by forest-fire burning: pick a random seed,
// burn a geometrically-distributed number of its unvisited neighbors,
// recurse from them; reseed when the fire dies out. The burn runs entirely
// on the pinned epoch snapshot.
func ForestFireOn(s *graph.Snapshot, cfg Config) []graph.NodeID {
	cfg = cfg.withDefaults()
	n := s.NumNodes()
	if cfg.TargetNodes >= n {
		return allNodes(n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	visited := make(map[graph.NodeID]bool, cfg.TargetNodes)
	var queue []graph.NodeID
	for len(visited) < cfg.TargetNodes {
		if len(queue) == 0 {
			// Reseed on an unvisited node only: re-burning from a visited
			// seed would draw another geometric burn from it, skewing the
			// fire's burn schedule toward already-burned regions. An
			// unvisited node always exists here (len(visited) < target < n).
			seed := graph.NodeID(rng.Intn(n))
			if visited[seed] {
				continue
			}
			visited[seed] = true
			queue = append(queue, seed)
		}
		cur := queue[0]
		queue = queue[1:]
		// Geometric number of links to burn: mean p/(1-p).
		burn := 0
		for rng.Float64() < cfg.BurnForward {
			burn++
		}
		nbrs := neighbors(s, cur)
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, nb := range nbrs {
			if burn == 0 || len(visited) >= cfg.TargetNodes {
				break
			}
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
				burn--
			}
		}
	}
	return sortedKeys(visited)
}

// neighbors returns the distinct out- and in-neighbors of v.
func neighbors(s *graph.Snapshot, v graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	for _, e := range s.OutEdges(v) {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	for _, e := range s.InEdges(v) {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	return out
}

// allNodes returns 0..n-1 (the whole-snapshot sample).
func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func sortedKeys(set map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Restrict wraps a strategy so it proposes only nodes from the sample;
// when the sample holds no k-informative node it falls back to the full
// graph, preserving the session's completeness.
type Restrict struct {
	// Base is the underlying strategy (kR or kS).
	Base interactive.Strategy
	// Sample is the representative node set proposals are drawn from.
	Sample []graph.NodeID
}

// Name returns "sampled(<base>)".
func (r Restrict) Name() string { return "sampled(" + r.Base.Name() + ")" }

// Next scans the sample for the best candidate per the base strategy's
// rule, falling back to the base strategy on the full graph when the
// sample is exhausted.
func (r Restrict) Next(ctx *interactive.Context) (graph.NodeID, bool) {
	switch r.Base.(type) {
	case interactive.KS:
		if nu, ok := r.nextKS(ctx); ok {
			return nu, true
		}
	default:
		if nu, ok := r.nextKR(ctx); ok {
			return nu, true
		}
	}
	return r.Base.Next(ctx)
}

func (r Restrict) unlabeled(ctx *interactive.Context) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range r.Sample {
		if _, labeled := ctx.Sample.Labeled(v); !labeled {
			out = append(out, v)
		}
	}
	return out
}

func (r Restrict) nextKR(ctx *interactive.Context) (graph.NodeID, bool) {
	candidates := r.unlabeled(ctx)
	ctx.Rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, nu := range candidates {
		if ctx.Coverage.IsKInformative(nu, ctx.K) {
			return nu, true
		}
	}
	return 0, false
}

func (r Restrict) nextKS(ctx *interactive.Context) (graph.NodeID, bool) {
	best := graph.NodeID(0)
	bestCount := -1
	cov := ctx.Coverage
	for _, nu := range r.unlabeled(ctx) {
		n := scpCount(cov, nu, ctx.K)
		if n == 0 {
			continue
		}
		if bestCount == -1 || n < bestCount || (n == bestCount && nu < best) {
			best, bestCount = nu, n
		}
	}
	return best, bestCount != -1
}

func scpCount(cov *scp.Coverage, nu graph.NodeID, k int) int {
	return cov.CountNonCovered(nu, k)
}

// Session builds an interactive session whose proposals are restricted to
// a sample drawn by the given sampler ("rw" or "ff"). The sampler and the
// session share one pinned snapshot of g.
func Session(g *graph.Graph, sampler string, cfg Config, opts interactive.Options) *interactive.Session {
	return SessionOn(g.Snapshot(), sampler, cfg, opts)
}

// SessionOn is Session over an explicitly pinned epoch snapshot: the
// sample is drawn from it and the session's proposals and re-learning
// rounds observe it exclusively.
func SessionOn(snap *graph.Snapshot, sampler string, cfg Config, opts interactive.Options) *interactive.Session {
	var sample []graph.NodeID
	switch sampler {
	case "ff":
		sample = ForestFireOn(snap, cfg)
	default:
		sample = RandomWalkOn(snap, cfg)
	}
	base := opts.Strategy
	if base == nil {
		base = interactive.KS{}
	}
	opts.Strategy = Restrict{Base: base, Sample: sample}
	return interactive.NewSessionOn(snap, opts)
}

// CoverageOfSample reports what fraction of the goal-selected nodes the
// sample contains — a representativeness diagnostic for experiments.
func CoverageOfSample(g *graph.Graph, sample []graph.NodeID, selected []bool) float64 {
	total, hit := 0, 0
	inSample := make(map[graph.NodeID]bool, len(sample))
	for _, v := range sample {
		inSample[v] = true
	}
	for v, s := range selected {
		if s {
			total++
			if inSample[graph.NodeID(v)] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
