package store

import (
	"errors"
	"testing"

	"pathquery/internal/engine"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	labels := []string{"a", "b", "c"}
	for i := range recs {
		recs[i] = Record{
			Epoch: uint64(2 + i),
			Edges: []engine.EdgeSpec{{
				From:  nodeName(i),
				Label: labels[i%len(labels)],
				To:    nodeName(i + 1),
			}},
		}
	}
	return recs
}

func encodeRecords(recs []Record) (data []byte, bounds []int) {
	bounds = []int{0}
	for _, rec := range recs {
		data = appendRecord(data, rec)
		bounds = append(bounds, len(data))
	}
	return data, bounds
}

func TestWALRoundTrip(t *testing.T) {
	recs := testRecords(5)
	data, _ := encodeRecords(recs)
	var got []Record
	validLen, torn, err := replayWAL(data, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if validLen != int64(len(data)) {
		t.Fatalf("validLen %d != %d", validLen, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Epoch != recs[i].Epoch || len(got[i].Edges) != len(recs[i].Edges) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
		for j := range recs[i].Edges {
			if got[i].Edges[j] != recs[i].Edges[j] {
				t.Fatalf("record %d edge %d: got %+v want %+v", i, j, got[i].Edges[j], recs[i].Edges[j])
			}
		}
	}
}

// TestWALTruncatedAtEveryOffset cuts the log at every byte offset: the
// replay must recover exactly the records whose frames fit, flag the
// torn remainder, and never error or panic.
func TestWALTruncatedAtEveryOffset(t *testing.T) {
	recs := testRecords(6)
	data, bounds := encodeRecords(recs)
	for off := 0; off <= len(data); off++ {
		wantComplete := 0
		for wantComplete+1 < len(bounds) && bounds[wantComplete+1] <= off {
			wantComplete++
		}
		n := 0
		validLen, torn, err := replayWAL(data[:off], func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
		if n != wantComplete {
			t.Fatalf("offset %d: replayed %d records, want %d", off, n, wantComplete)
		}
		if validLen != int64(bounds[wantComplete]) {
			t.Fatalf("offset %d: validLen %d, want %d", off, validLen, bounds[wantComplete])
		}
		if wantTorn := off != bounds[wantComplete]; torn != wantTorn {
			t.Fatalf("offset %d: torn=%v, want %v", off, torn, wantTorn)
		}
	}
}

// TestWALBitFlips flips each byte of the log in turn. A flip strictly
// inside the final frame must read as a torn tail (valid prefix, no
// error); a flip in an earlier frame must be refused as ErrCorrupt —
// except flips in a length prefix, which can legitimately reclassify
// the tail boundary; those must still yield error-or-valid-prefix.
func TestWALBitFlips(t *testing.T) {
	recs := testRecords(4)
	data, bounds := encodeRecords(recs)
	lastFrame := bounds[len(bounds)-2]
	for off := 0; off < len(data); off++ {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x40
		n := 0
		validLen, torn, err := replayWAL(flipped, func(Record) error { n++; return nil })
		if validLen > int64(len(flipped)) || n > len(recs) {
			t.Fatalf("offset %d: implausible replay validLen=%d n=%d", off, validLen, n)
		}
		inLenPrefix := false
		for _, b := range bounds[:len(bounds)-1] {
			if off >= b && off < b+4 {
				inLenPrefix = true
			}
		}
		switch {
		case inLenPrefix:
			// A corrupted length can masquerade as a longer torn frame or as
			// mid-log damage; both are acceptable, silence is not.
			if err == nil && !torn && n == len(recs) {
				t.Fatalf("offset %d (length prefix): flip went unnoticed", off)
			}
		case off >= lastFrame:
			if err != nil {
				t.Fatalf("offset %d (final frame): want torn tail, got error %v", off, err)
			}
			if !torn || n != len(recs)-1 {
				t.Fatalf("offset %d (final frame): torn=%v n=%d, want torn prefix of %d", off, torn, n, len(recs)-1)
			}
		default:
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("offset %d (mid-log): want ErrCorrupt, got torn=%v err=%v", off, torn, err)
			}
		}
	}
}

func TestWALRecordTooLong(t *testing.T) {
	// A frame that claims an absurd payload inside a larger file is
	// corruption; at the tail it is torn.
	big := make([]byte, 64)
	big[0], big[1], big[2] = 0xFF, 0xFF, 0xFF // length ~16M, frame extends past EOF
	if _, torn, err := replayWAL(big, func(Record) error { return nil }); err != nil || !torn {
		t.Fatalf("oversize frame at tail: torn=%v err=%v, want torn", torn, err)
	}
}
