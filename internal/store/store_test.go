package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pathquery/internal/engine"
	"pathquery/internal/graph"
)

// The recovery tests share one scripted mutation stream: mutation i
// appends one edge of a labeled chain. Applying the prefix of length j
// to a fresh engine is the never-crashed reference for "j mutations
// acked"; its epoch is 1+j (engine.New publishes the empty graph as
// epoch 1, each mutation publishes the next).

func nodeName(i int) string { return fmt.Sprintf("n%03d", i) }

func scriptMutation(i int) []engine.EdgeSpec {
	labels := []string{"a", "b", "c"}
	return []engine.EdgeSpec{{From: nodeName(i), Label: labels[i%len(labels)], To: nodeName(i + 1)}}
}

var scriptQueries = []string{"a", "a·b", "(a+b)*·c"}

// answers evaluates the script queries and renders node names — the
// byte-comparable signature of an engine state.
func answers(t *testing.T, e *engine.Engine) map[string][]string {
	t.Helper()
	out := make(map[string][]string, len(scriptQueries))
	for _, q := range scriptQueries {
		res, err := e.Select(q)
		if err != nil {
			t.Fatalf("select %q: %v", q, err)
		}
		out[q] = res.Names()
	}
	return out
}

// reference builds the never-crashed engine after j scripted mutations.
func reference(t *testing.T, j int) *engine.Engine {
	t.Helper()
	e := engine.New(graph.New(nil), engine.Options{})
	for i := 0; i < j; i++ {
		if _, err := e.Mutate(scriptMutation(i)); err != nil {
			t.Fatalf("reference mutation %d: %v", i, err)
		}
	}
	return e
}

// requireState asserts that the engine recovered from st serves exactly
// the reference state after j mutations: same epoch, same answers.
func requireState(t *testing.T, st *GraphStore, j int) {
	t.Helper()
	e := engine.New(st.Graph(), engine.Options{Log: st})
	ref := reference(t, j)
	if got, want := e.Epoch(), ref.Epoch(); got != want {
		t.Fatalf("recovered epoch %d, want %d (j=%d)", got, want, j)
	}
	got, want := answers(t, e), answers(t, ref)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered answers %v, want %v (j=%d)", got, want, j)
	}
}

func openStore(t *testing.T, dir string, opt Options) *GraphStore {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

// runScript drives j scripted mutations through a durable engine backed
// by st; it returns the number acked (an append fault stops the run).
func runScript(t *testing.T, st *GraphStore, j int) int {
	t.Helper()
	e := engine.New(st.Graph(), engine.Options{Log: st})
	for i := 0; i < j; i++ {
		if _, err := e.Mutate(scriptMutation(i)); err != nil {
			return i
		}
	}
	return j
}

func TestFreshStoreServesEpochOne(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	requireState(t, st, 0)
}

func TestReopenRecoversExactState(t *testing.T) {
	for _, every := range []int{-1, 3, 1} { // no checkpoints, periodic, every mutation
		t.Run(fmt.Sprintf("checkpointEvery=%d", every), func(t *testing.T) {
			dir := t.TempDir()
			st := openStore(t, dir, Options{CheckpointEvery: every})
			if acked := runScript(t, st, 10); acked != 10 {
				t.Fatalf("acked %d mutations, want 10", acked)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2 := openStore(t, dir, Options{CheckpointEvery: every})
			defer st2.Close()
			requireState(t, st2, 10)
		})
	}
}

func TestReopenAndContinueMutating(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: 4})
	e := engine.New(st.Graph(), engine.Options{Log: st})
	for i := 0; i < 6; i++ {
		if _, err := e.Mutate(scriptMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st = openStore(t, dir, Options{CheckpointEvery: 4})
	e = engine.New(st.Graph(), engine.Options{Log: st})
	for i := 6; i < 12; i++ {
		if _, err := e.Mutate(scriptMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st = openStore(t, dir, Options{CheckpointEvery: 4})
	defer st.Close()
	requireState(t, st, 12)
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: 4})
	runScript(t, st, 8)
	stats := st.Stats()
	if stats.CheckpointEpoch == 0 {
		t.Fatalf("no checkpoint cut after 8 mutations at CheckpointEvery=4: %+v", stats)
	}
	if stats.WALRecords >= 8 {
		t.Fatalf("WAL not truncated at checkpoint: %+v", stats)
	}
	st.Close()
	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	requireState(t, st2, 8)
}

// TestCrashBetweenCheckpointAndTruncate injects a truncate failure so
// the checkpoint installs but the WAL keeps every record; recovery must
// skip the pre-checkpoint prefix instead of double-applying it.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	st := openStore(t, dir, Options{FS: ffs, CheckpointEvery: 4})
	e := engine.New(st.Graph(), engine.Options{Log: st})
	acked := 0
	for i := 0; i < 8; i++ {
		if i == 2 {
			// Mutation 2 publishes epoch 4, which is CheckpointEvery past the
			// base: its commit hook cuts the checkpoint and then fails the
			// WAL truncation (and kills the FS, as a crash would).
			ffs.FailTruncate()
		}
		if _, err := e.Mutate(scriptMutation(i)); err != nil {
			break
		}
		acked++
	}
	// Mutation 2 still acks — its WAL record was durable before the
	// checkpoint ran, and checkpoint trouble is not a mutation failure.
	// Mutation 3 then fails against the dead filesystem.
	if acked != 3 {
		t.Fatalf("acked %d mutations, want 3 (crash in post-publish checkpoint)", acked)
	}
	st.Close()
	// Disk state: checkpoint installed at epoch 4, WAL still holding
	// records for epochs 2..4. Recovery must skip the covered prefix.
	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	if stats := st2.Stats(); stats.CheckpointEpoch != 4 {
		t.Fatalf("checkpoint epoch %d, want 4: %+v", stats.CheckpointEpoch, stats)
	}
	requireState(t, st2, 3)
}

// TestKillAtEveryWriteOffset is the exhaustive kill-and-restart sweep:
// a crash is injected after every possible written byte across the whole
// scripted run (WAL appends and checkpoint writes alike). Whatever the
// crash point, reopening must recover a state identical to a reference
// engine that acked the same mutations — allowing exactly one logged-
// but-unacked trailing mutation (its record was durable; the ack was
// lost with the process), the standard redo contract.
func TestKillAtEveryWriteOffset(t *testing.T) {
	const n = 8
	for budget := int64(0); ; budget++ {
		ffs := NewFaultFS(nil)
		ffs.CrashAfterBytes(budget)
		dir := t.TempDir()
		st := openStore(t, dir, Options{FS: ffs, CheckpointEvery: 3})
		acked := runScript(t, st, n)
		crashed := ffs.Crashed()
		st.Close()

		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		j := int(st2.Epoch()) - 1
		if j < acked || j > acked+1 {
			t.Fatalf("budget %d: recovered %d mutations with %d acked", budget, j, acked)
		}
		requireState(t, st2, j)
		st2.Close()
		if !crashed {
			if acked != n {
				t.Fatalf("budget %d: no crash but only %d/%d acked", budget, acked, n)
			}
			return // the budget outlived the whole run: sweep complete
		}
	}
}

// TestBatchKillAtEveryWriteOffset is the group-commit analogue of
// TestKillAtEveryWriteOffset: every mutation carries a 3-edge batch —
// one WAL record, exactly what the engine's group commit writes for
// three coalesced Mutate calls. Whatever byte the crash lands on,
// recovery must land on a prefix of whole batches; a torn tail record
// must drop its entire batch, never apply it partially.
func TestBatchKillAtEveryWriteOffset(t *testing.T) {
	const n = 6
	batch := func(i int) []engine.EdgeSpec {
		out := make([]engine.EdgeSpec, 0, 3)
		for k := 0; k < 3; k++ {
			out = append(out, scriptMutation(3*i+k)...)
		}
		return out
	}
	refBatches := func(j int) *engine.Engine {
		e := engine.New(graph.New(nil), engine.Options{})
		for i := 0; i < j; i++ {
			if _, err := e.Mutate(batch(i)); err != nil {
				t.Fatalf("reference batch %d: %v", i, err)
			}
		}
		return e
	}
	for budget := int64(0); ; budget++ {
		ffs := NewFaultFS(nil)
		ffs.CrashAfterBytes(budget)
		dir := t.TempDir()
		st := openStore(t, dir, Options{FS: ffs, CheckpointEvery: 3})
		e := engine.New(st.Graph(), engine.Options{Log: st})
		acked := 0
		for i := 0; i < n; i++ {
			if _, err := e.Mutate(batch(i)); err != nil {
				break
			}
			acked++
		}
		crashed := ffs.Crashed()
		st.Close()

		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		j := int(st2.Epoch()) - 1
		if j < acked || j > acked+1 {
			t.Fatalf("budget %d: recovered %d batches with %d acked", budget, j, acked)
		}
		// The whole-batch prefix rule, asserted directly: a recovered
		// state always holds an edge count that is a multiple of the
		// batch size.
		if ne := st2.Graph().Current().NumEdges(); ne != 3*j {
			t.Fatalf("budget %d: recovered %d edges — not %d whole 3-edge batches", budget, ne, j)
		}
		e2 := engine.New(st2.Graph(), engine.Options{Log: st2})
		ref := refBatches(j)
		if got, want := e2.Epoch(), ref.Epoch(); got != want {
			t.Fatalf("budget %d: recovered epoch %d, want %d (j=%d)", budget, got, want, j)
		}
		if got, want := answers(t, e2), answers(t, ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("budget %d: recovered answers %v, want %v (j=%d)", budget, got, want, j)
		}
		st2.Close()
		if !crashed {
			if acked != n {
				t.Fatalf("budget %d: no crash but only %d/%d batches acked", budget, acked, n)
			}
			return // the budget outlived the whole run: sweep complete
		}
	}
}

// TestSyncFailureAbortsMutation injects fsync failures at each sync
// point of the run; the failing mutation must be reported to the
// caller, and recovery must land on the acked prefix (plus at most the
// one record whose bytes reached the disk without its fsync ack).
func TestSyncFailureAbortsMutation(t *testing.T) {
	// k reaches 8 so the sweep still covers mutation-time syncs now that
	// a fresh Open spends the first two sync points on directory fsyncs.
	for k := 1; k <= 8; k++ {
		ffs := NewFaultFS(nil)
		ffs.FailSync(k)
		dir := t.TempDir()
		st, err := Open(dir, Options{FS: ffs, CheckpointEvery: 3})
		if err != nil {
			continue // sync fault fired during open bookkeeping: nothing persisted
		}
		acked := runScript(t, st, 6)
		st.Close()
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("sync fault %d: recovery failed: %v", k, err)
		}
		j := int(st2.Epoch()) - 1
		if j < acked || j > acked+1 {
			t.Fatalf("sync fault %d: recovered %d mutations with %d acked", k, j, acked)
		}
		requireState(t, st2, j)
		st2.Close()
	}
}

// TestTornWALTailTruncatedAtEveryOffset truncates the on-disk WAL at
// every offset after a clean run: every prefix must open warning-only
// (never an error) and serve exactly the mutations whose records
// survived whole.
func TestTornWALTailTruncatedAtEveryOffset(t *testing.T) {
	const n = 6
	src := t.TempDir()
	st := openStore(t, src, Options{CheckpointEvery: -1})
	if acked := runScript(t, st, n); acked != n {
		t.Fatal("clean run did not ack all mutations")
	}
	st.Close()
	wal, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, recomputed from the script.
	bounds := []int{0}
	var buf []byte
	for i := 0; i < n; i++ {
		buf = appendRecord(buf, Record{Epoch: uint64(2 + i), Edges: scriptMutation(i)})
		bounds = append(bounds, len(buf))
	}
	if len(wal) != bounds[n] {
		t.Fatalf("WAL is %d bytes, script encodes to %d", len(wal), bounds[n])
	}
	for off := 0; off < len(wal); off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		var warned bool
		st, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
		if err != nil {
			t.Fatalf("offset %d: open failed: %v", off, err)
		}
		complete := 0
		for complete+1 < len(bounds) && bounds[complete+1] <= off {
			complete++
		}
		if torn := off != bounds[complete]; torn != warned {
			t.Fatalf("offset %d: torn=%v but warned=%v", off, torn, warned)
		}
		requireState(t, st, complete)
		st.Close()
	}
}

// TestCorruptMidLogRefused flips a byte inside the payload of the first
// record (with records after it): Open must fail with ErrCorrupt and
// name the offset — never panic, never silently truncate valid records.
func TestCorruptMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: -1})
	runScript(t, st, 4)
	st.Close()
	path := filepath.Join(dir, walFile)
	wal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wal[12] ^= 0x01 // inside the first record's payload (epoch field)
	if err := os.WriteFile(path, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt mid-log open: got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "offset 0") {
		t.Fatalf("error %q does not name the offset", err)
	}
}

// TestBitFlipInTailRecordIsTorn flips a byte in the final record's
// payload: indistinguishable from a torn write, so recovery truncates
// to the prefix with a warning.
func TestBitFlipInTailRecordIsTorn(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: -1})
	runScript(t, st, 4)
	st.Close()
	path := filepath.Join(dir, walFile)
	wal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wal[len(wal)-1] ^= 0x80
	if err := os.WriteFile(path, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	st2, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatalf("open after tail flip: %v", err)
	}
	defer st2.Close()
	if !warned {
		t.Fatal("tail flip recovered without a warning")
	}
	requireState(t, st2, 3)
}

// TestCorruptCheckpointRefused damages the checkpoint body: Open must
// fail with a checksum error rather than serve a half-valid graph.
func TestCorruptCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: 2})
	runScript(t, st, 4)
	st.Close()
	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt checkpoint open: got %v, want checksum error", err)
	}
}

// TestStaleCheckpointTmpIgnored plants a garbage checkpoint.tmp (a
// crash artifact of an interrupted checkpoint write): Open removes it
// and recovers from the WAL as if it never existed.
func TestStaleCheckpointTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{CheckpointEvery: -1})
	runScript(t, st, 3)
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, checkpointFile+".tmp"), []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	requireState(t, st2, 3)
	if _, err := os.Stat(filepath.Join(dir, checkpointFile+".tmp")); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint.tmp not removed")
	}
}

// TestOversizedAppendRejected is the write-side MaxRecordLen guard: a
// mutation whose encoded payload exceeds the cap must fail before any
// byte reaches the WAL — were it acked, the next Open would refuse the
// fully-present record as corrupt and the store would be down for good.
func TestOversizedAppendRejected(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	engine.New(st.Graph(), engine.Options{Log: st}) // publishes epoch 1
	big := strings.Repeat("x", MaxRecordLen)
	if err := st.Append(2, []engine.EdgeSpec{{From: big, Label: "a", To: "b"}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
	// The WAL is untouched: the same epoch still appends normally, and a
	// reopen recovers exactly that state.
	if err := st.Append(2, scriptMutation(0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	requireState(t, st2, 1)
}

// TestFailedRollbackPoisonsStore injects a transient torn write whose
// rollback truncate also fails (disk trouble, not a crash — the
// filesystem stays alive): the store must refuse every later append
// with ErrFailed rather than ack records stacked behind the torn frame,
// which recovery would then reject as mid-log corruption. A reopen
// applies the torn-tail rule and recovers the acked prefix.
func TestFailedRollbackPoisonsStore(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	st := openStore(t, dir, Options{FS: ffs, CheckpointEvery: -1})
	e := engine.New(st.Graph(), engine.Options{Log: st})
	if _, err := e.Mutate(scriptMutation(0)); err != nil {
		t.Fatal(err)
	}
	ffs.FailWriteShort(3)
	ffs.FailTruncateOnce()
	if _, err := e.Mutate(scriptMutation(1)); err == nil {
		t.Fatal("torn append acked")
	}
	if _, err := e.Mutate(scriptMutation(1)); err == nil {
		t.Fatal("append behind an unrolled torn frame acked")
	}
	if err := st.Append(3, scriptMutation(1)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append on poisoned store: %v, want ErrFailed", err)
	}
	st.Close()
	st2 := openStore(t, dir, Options{})
	defer st2.Close()
	requireState(t, st2, 1)
}

// syncDirRecorder records which directories get fsynced.
type syncDirRecorder struct {
	FS
	mu   sync.Mutex
	dirs []string
}

func (r *syncDirRecorder) SyncDir(name string) error {
	r.mu.Lock()
	r.dirs = append(r.dirs, name)
	r.mu.Unlock()
	return r.FS.SyncDir(name)
}

// TestCreateSyncsDirectories asserts the power-loss half of durability:
// creating a store must fsync the parent directory (the new dir entry)
// and the directory itself (the new WAL file entry) — otherwise a power
// cut can drop the whole tenant with every acked record in it.
func TestCreateSyncsDirectories(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "tenant")
	rec := &syncDirRecorder{FS: OS}
	st := openStore(t, dir, Options{FS: rec})
	st.Close()
	synced := map[string]bool{}
	for _, d := range rec.dirs {
		synced[d] = true
	}
	if !synced[parent] {
		t.Errorf("new store dir: parent %s never fsynced (got %v)", parent, rec.dirs)
	}
	if !synced[dir] {
		t.Errorf("new WAL file: dir %s never fsynced (got %v)", dir, rec.dirs)
	}
	// Reopening an existing store creates nothing, so it syncs nothing.
	rec.dirs = nil
	st2 := openStore(t, dir, Options{FS: rec})
	st2.Close()
	if len(rec.dirs) != 0 {
		t.Errorf("reopen fsynced %v, want none", rec.dirs)
	}
}

func TestAppendEpochGapRejected(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	engine.New(st.Graph(), engine.Options{Log: st}) // publishes epoch 1
	if err := st.Append(2, scriptMutation(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(4, scriptMutation(1)); err == nil {
		t.Fatal("epoch gap accepted")
	}
	if err := st.Append(2, scriptMutation(1)); err == nil {
		t.Fatal("epoch replay accepted")
	}
}

func TestClosedStoreRefusesAppend(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	st.Close()
	if err := st.Append(2, scriptMutation(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store: %v, want ErrClosed", err)
	}
}
