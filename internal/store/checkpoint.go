package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pathquery/internal/graph"
)

// Checkpoint layout. A checkpoint freezes one published epoch:
//
//	magic "PQCKPT1\n" | u64 epoch | graph binary (graph.WriteBinary) | u32 crc32
//
// where the trailing CRC covers every preceding byte. Checkpoints are
// written to <name>.tmp, fsynced, renamed over <name>, and the
// directory is fsynced — so the named checkpoint file is either absent
// or complete and checksum-valid; a crash mid-write only ever leaves a
// stale .tmp behind, which Open removes. After a checkpoint at epoch E
// the WAL records with epoch ≤ E are redundant; recovery skips them,
// which is what makes a crash between checkpoint install and WAL
// truncation harmless.

var checkpointMagic = []byte("PQCKPT1\n")

const (
	checkpointFile = "checkpoint"
	walFile        = "wal"
)

// encodeCheckpoint serializes snap into the checkpoint image.
func encodeCheckpoint(snap *graph.Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(checkpointMagic)
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], snap.Epoch())
	buf.Write(e[:])
	if err := snap.WriteBinary(&buf); err != nil {
		return nil, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// writeCheckpoint atomically installs the checkpoint image in dir.
func writeCheckpoint(fs FS, dir string, image []byte) error {
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if _, err := f.Write(image); err != nil {
		f.Close()
		return fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: checkpoint close: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		return fmt.Errorf("store: checkpoint install: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("store: checkpoint dir sync: %w", err)
	}
	return nil
}

// readCheckpoint loads and validates the checkpoint in dir. A missing
// checkpoint returns (nil, 0, nil); an invalid one is an error — the
// atomic install makes a torn named checkpoint impossible, so damage
// here is real corruption, not a crash artifact.
func readCheckpoint(fs FS, dir string) (*graph.Graph, uint64, error) {
	path := filepath.Join(dir, checkpointFile)
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: open checkpoint: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("store: read checkpoint: %w", err)
	}
	minLen := len(checkpointMagic) + 8 + 4
	if len(data) < minLen {
		return nil, 0, fmt.Errorf("store: checkpoint: %d bytes, want at least %d", len(data), minLen)
	}
	if !bytes.Equal(data[:len(checkpointMagic)], checkpointMagic) {
		return nil, 0, fmt.Errorf("store: checkpoint: bad magic %q", data[:len(checkpointMagic)])
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, 0, fmt.Errorf("store: checkpoint: checksum mismatch (got %08x, want %08x)", got, want)
	}
	epoch := binary.LittleEndian.Uint64(body[len(checkpointMagic):])
	g, err := graph.ReadBinary(bytes.NewReader(body[len(checkpointMagic)+8:]))
	if err != nil {
		return nil, 0, fmt.Errorf("store: checkpoint: %w", err)
	}
	return g, epoch, nil
}
