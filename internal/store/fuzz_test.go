package store

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL replayer and checks
// its safety contract: never panic, never read past the image, and —
// the round-trip invariant — re-encoding the records it accepted
// reproduces the valid prefix byte-for-byte, so replay-after-recovery
// is idempotent.
func FuzzWALReplay(f *testing.F) {
	data, bounds := encodeRecords(testRecords(3))
	f.Add(data)
	f.Add(data[:bounds[2]])
	f.Add(data[:bounds[2]+5]) // torn tail
	corrupt := append([]byte(nil), data...)
	corrupt[bounds[1]+9] ^= 0xFF // mid-log payload damage
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Record
		validLen, torn, err := replayWAL(data, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		if err != nil && torn {
			t.Fatalf("replay reported both corruption (%v) and a torn tail", err)
		}
		if err == nil && !torn && validLen != int64(len(data)) {
			t.Fatalf("clean replay stopped at %d of %d bytes", validLen, len(data))
		}
		var reenc []byte
		for _, r := range got {
			reenc = appendRecord(reenc, r)
		}
		if !bytes.Equal(reenc, data[:validLen]) {
			t.Fatalf("re-encoding %d replayed records does not reproduce the %d-byte valid prefix",
				len(got), validLen)
		}
	})
}
