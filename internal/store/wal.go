package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pathquery/internal/engine"
)

// WAL record format. Every mutation is one record, framed as
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// with the payload
//
//	u64 epoch | u32 nEdges | nEdges × (str from, str label, str to)
//
// where str is a u32-length-prefixed UTF-8 string and all integers are
// little-endian (IEEE CRC32). The epoch is the epoch this mutation
// publishes; records in a WAL are contiguous, ascending by exactly one.
//
// Torn-tail rule (the crash-tolerance contract): a record whose frame
// extends past the end of the file, or whose checksum fails on the very
// last frame, is a torn final write — replay stops before it and the
// opener truncates it away with a warning. A checksum or structural
// failure with intact data after it cannot be a torn write; it is real
// corruption, reported as ErrCorrupt, and the store refuses to open
// rather than guess. (A flipped byte inside the final frame is
// indistinguishable from a torn write and is treated as torn — the
// paid price for never refusing a legitimately torn tail.)

// MaxRecordLen caps one record payload (16 MiB): a corrupt length
// prefix must never drive a giant allocation or swallow the log.
const MaxRecordLen = 16 << 20

// ErrCorrupt reports a WAL record that fails its checksum or structure
// with intact data following it — real mid-log corruption, not a torn
// tail. Opens fail with it (wrapped) rather than replay past damage.
var ErrCorrupt = errors.New("store: corrupt WAL record")

// ErrTooLarge reports a mutation whose encoded payload exceeds
// MaxRecordLen. Append rejects it before a single byte reaches the WAL:
// a record that replay would refuse must never be written (let alone
// acked), or an accepted durable write would make the next Open fail.
var ErrTooLarge = errors.New("store: mutation record exceeds MaxRecordLen")

// Record is one logged mutation.
type Record struct {
	// Epoch is the epoch this mutation published.
	Epoch uint64
	// Edges are the logical edge additions, exactly as the engine
	// received them (replaying them through the same code path
	// reproduces identical node and symbol ids).
	Edges []engine.EdgeSpec
}

// appendRecord appends the framed record to buf.
func appendRecord(buf []byte, rec Record) []byte {
	frameAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Edges)))
	for _, e := range rec.Edges {
		buf = appendWALString(buf, e.From)
		buf = appendWALString(buf, e.Label)
		buf = appendWALString(buf, e.To)
	}
	payload := buf[payloadAt:]
	binary.LittleEndian.PutUint32(buf[frameAt:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[frameAt+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func appendWALString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// decodePayload decodes a checksum-verified record payload. A structural
// failure here means corruption (or a writer bug), never a torn write —
// torn writes cannot carry a valid checksum.
func decodePayload(p []byte) (Record, error) {
	var rec Record
	if len(p) < 12 {
		return rec, fmt.Errorf("payload of %d bytes, want at least 12", len(p))
	}
	rec.Epoch = binary.LittleEndian.Uint64(p)
	n := binary.LittleEndian.Uint32(p[8:])
	p = p[12:]
	// Each edge needs at least its three length prefixes.
	if uint64(n)*12 > uint64(len(p)) {
		return rec, fmt.Errorf("edge count %d exceeds payload", n)
	}
	rec.Edges = make([]engine.EdgeSpec, 0, n)
	for i := uint32(0); i < n; i++ {
		var e engine.EdgeSpec
		var err error
		if e.From, p, err = cutWALString(p); err != nil {
			return rec, fmt.Errorf("edge %d from: %w", i, err)
		}
		if e.Label, p, err = cutWALString(p); err != nil {
			return rec, fmt.Errorf("edge %d label: %w", i, err)
		}
		if e.To, p, err = cutWALString(p); err != nil {
			return rec, fmt.Errorf("edge %d to: %w", i, err)
		}
		rec.Edges = append(rec.Edges, e)
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("%d trailing bytes after %d edges", len(p), n)
	}
	return rec, nil
}

func cutWALString(p []byte) (string, []byte, error) {
	if len(p) < 4 {
		return "", p, fmt.Errorf("truncated length prefix")
	}
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(n) > uint64(len(p)) {
		return "", p, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(p))
	}
	return string(p[:n]), p[n:], nil
}

// replayWAL scans a WAL image, invoking fn for every valid record in
// order. It returns the byte length of the valid prefix and whether a
// torn final record follows it (the caller truncates). Mid-log
// corruption aborts with an ErrCorrupt-wrapped error naming the offset;
// an error from fn aborts with that error. replayWAL never panics on
// any input — the FuzzWALReplay contract.
func replayWAL(data []byte, fn func(Record) error) (validLen int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < 8 {
			return int64(off), true, nil // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > rest-8 {
			// The frame extends past EOF: a torn final write (possibly with
			// a garbage length from a half-written header).
			return int64(off), true, nil
		}
		if n > MaxRecordLen {
			return int64(off), false, fmt.Errorf(
				"%w: record at offset %d: length %d exceeds max %d", ErrCorrupt, off, n, MaxRecordLen)
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if off+8+n == len(data) {
				return int64(off), true, nil // torn (or flipped) final record
			}
			return int64(off), false, fmt.Errorf(
				"%w: record at offset %d: checksum mismatch", ErrCorrupt, off)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return int64(off), false, fmt.Errorf(
				"%w: record at offset %d: %v", ErrCorrupt, off, derr)
		}
		if err := fn(rec); err != nil {
			return int64(off), false, err
		}
		off += 8 + n
	}
	return int64(off), false, nil
}
