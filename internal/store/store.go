// Package store is the durability layer under the serving engine: a
// per-graph write-ahead log plus checkpointed snapshots, recovered on
// startup to the exact last published epoch.
//
// Protocol (see DESIGN.md "Durability & multi-tenancy"):
//
//   - Every mutation is appended to the WAL — length-prefixed,
//     CRC32-checksummed, carrying the epoch it publishes — and fsynced
//     before the engine applies it (engine.MutationLog wires this into
//     Engine.Mutate, which logs under its write lock, before touching
//     the build side).
//   - Periodically (Options.CheckpointEvery records) the freshly
//     published snapshot is cut as a checkpoint: serialized CSR + name
//     table + alphabet at epoch E, written atomically (tmp + fsync +
//     rename + dir fsync). Once installed, the WAL is truncated —
//     unless newer records were appended meanwhile, in which case
//     truncation simply waits for a quieter checkpoint.
//   - Open loads the latest valid checkpoint and replays the WAL tail:
//     records with epoch ≤ the checkpoint's are skipped (a crash
//     between checkpoint install and WAL truncation leaves them
//     behind, harmlessly), the rest re-apply in order, and the graph's
//     epoch counter is re-anchored so the next publication carries the
//     recovered epoch number. A torn final record is truncated with a
//     warning — never a crash; a corrupt mid-log record refuses the
//     open with ErrCorrupt.
//
// All filesystem access goes through the FS interface; FaultFS injects
// short writes, fsync failures and crash-at-offset faults so the
// recovery protocol is tested at every failure point.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/engine"
	"pathquery/internal/graph"
	"pathquery/internal/telemetry"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrFailed reports an append to a store poisoned by an earlier torn
// append whose rollback also failed: the WAL ends in a torn frame that
// could not be truncated, so stacking further records behind it would
// ack writes that the next recovery refuses as mid-log corruption.
// Reopen the store — Open applies the torn-tail rule and continues.
var ErrFailed = errors.New("store: WAL has an unrolled torn frame; reopen to recover")

// Options tunes a GraphStore.
type Options struct {
	// FS is the filesystem (nil = the real one); tests inject faults here.
	FS FS
	// CheckpointEvery cuts a checkpoint once this many WAL records have
	// accumulated past the last one (default 256; negative disables
	// automatic checkpoints).
	CheckpointEvery int
	// Logf receives recovery warnings (torn-tail truncation) and
	// checkpoint failures; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.FS == nil {
		out.FS = OS
	}
	if out.CheckpointEvery == 0 {
		out.CheckpointEvery = 256
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Stats is a point-in-time view of one graph store.
type Stats struct {
	// Epoch is the last durable epoch: the epoch an engine recovered from
	// this store serves before new mutations.
	Epoch uint64 `json:"epoch"`
	// CheckpointEpoch is the epoch of the installed checkpoint (0: none).
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
	// WALRecords and WALBytes measure the current log tail.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Recovery timings of the Open that produced this store.
	RecoveryCheckpointLoad time.Duration `json:"recovery_checkpoint_load_ns"`
	RecoveryReplay         time.Duration `json:"recovery_replay_ns"`
	RecoveryReplayed       int           `json:"recovery_replayed_records"`
}

// GraphStore is the durable backing of one graph: its WAL, its
// checkpoint, and the recovered graph. It implements engine.MutationLog,
// so an engine constructed with Options{Log: store} writes ahead
// automatically. A store must have a single opener; Append/Checkpoint
// are safe for concurrent use once open.
type GraphStore struct {
	fs   FS
	dir  string
	opt  Options
	logf func(format string, args ...any)

	mu        sync.Mutex
	wal       File
	walSize   int64
	walRecs   int
	ckptEpoch uint64
	lastEpoch uint64
	closed    bool
	failed    bool // a torn append could not be rolled back: see ErrFailed
	buf       []byte

	g        *graph.Graph
	recovery struct {
		ckptLoad time.Duration
		replay   time.Duration
		replayed int
	}

	// Durability latency histograms (lock-free; observed with s.mu held
	// on the append path, read without it by /metrics): the whole Append
	// (encode + write + fsync), the fsync alone — the floor under every
	// durable mutation — and the checkpoint cut. ckptBytes is the size
	// of the last installed checkpoint image.
	appendHist     telemetry.Histogram
	fsyncHist      telemetry.Histogram
	checkpointHist telemetry.Histogram
	ckptBytes      atomic.Int64
}

// Open recovers the graph store in dir, creating it if absent: load the
// checkpoint, replay the WAL tail, re-anchor the epoch counter. The
// recovered graph (Graph) serves the exact last durable epoch once
// published; hand it to engine.New with the store as Options.Log.
func Open(dir string, opt Options) (*GraphStore, error) {
	opt = opt.withDefaults()
	fs := opt.FS
	newDir := false
	if _, err := fs.Stat(dir); err != nil {
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: stat %s: %w", dir, err)
		}
		newDir = true
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if newDir {
		// Make the new directory entry itself durable: without a parent
		// fsync a power loss can drop the whole directory — and every
		// fsynced, acked record inside it — leaving recovery to silently
		// serve an empty graph.
		if err := fs.SyncDir(filepath.Dir(dir)); err != nil {
			return nil, fmt.Errorf("store: syncing parent of new dir %s: %w", dir, err)
		}
	}
	// A stale checkpoint.tmp is a crash artifact from an interrupted
	// checkpoint write; the named checkpoint is still the valid one.
	if err := fs.Remove(filepath.Join(dir, checkpointFile+".tmp")); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: removing stale checkpoint.tmp: %w", err)
	}

	s := &GraphStore{fs: fs, dir: dir, opt: opt, logf: opt.Logf}

	t0 := time.Now()
	g, ckptEpoch, err := readCheckpoint(fs, dir)
	if err != nil {
		return nil, err
	}
	if g == nil {
		g = graph.New(nil)
	}
	s.g, s.ckptEpoch = g, ckptEpoch
	s.recovery.ckptLoad = time.Since(t0)

	walPath := filepath.Join(dir, walFile)
	newWAL := false
	if _, err := fs.Stat(walPath); err != nil {
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: stat WAL: %w", err)
		}
		newWAL = true
	}
	wal, err := fs.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	if newWAL {
		// Same power-loss rule for the WAL's own directory entry: a wal
		// file created but never linked durably can vanish with every
		// record fsynced into it.
		if err := fs.SyncDir(dir); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: syncing %s after WAL create: %w", dir, err)
		}
	}
	s.wal = wal
	data, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: read WAL: %w", err)
	}

	t1 := time.Now()
	// The first served epoch of an empty store is 1 (the engine publishes
	// the empty graph without logging it), so the WAL base below starts
	// from at least 1.
	base := ckptEpoch
	if base == 0 {
		base = 1
	}
	last := uint64(0) // last record epoch seen in the WAL
	applied := 0
	validLen, torn, err := replayWAL(data, func(rec Record) error {
		switch {
		case last == 0 && rec.Epoch > base+1:
			return fmt.Errorf("%w: first record epoch %d leaves a gap after epoch %d",
				ErrCorrupt, rec.Epoch, base)
		case last != 0 && rec.Epoch != last+1:
			return fmt.Errorf("%w: record epoch %d after %d (must ascend by 1)",
				ErrCorrupt, rec.Epoch, last)
		}
		last = rec.Epoch
		if rec.Epoch <= ckptEpoch {
			return nil // already in the checkpoint: crash between checkpoint and truncate
		}
		for _, e := range rec.Edges {
			g.AddEdgeByName(e.From, e.Label, e.To)
		}
		applied++
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: replaying %s: %w", filepath.Join(dir, walFile), err)
	}
	if torn {
		s.logf("store: %s: torn final record at offset %d (of %d bytes): truncating",
			filepath.Join(dir, walFile), validLen, len(data))
		if err := wal.Truncate(validLen); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: syncing truncated WAL: %w", err)
		}
	}
	if _, err := wal.Seek(validLen, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: seeking WAL tail: %w", err)
	}
	s.walSize = validLen
	s.walRecs = applied
	s.recovery.replay = time.Since(t1)
	s.recovery.replayed = applied

	s.lastEpoch = max(ckptEpoch, last)
	if s.lastEpoch == 0 {
		s.lastEpoch = 1 // the empty store's first publication
	} else {
		// Re-anchor so the next publication (engine.New's Snapshot) carries
		// the recovered epoch number.
		g.SetEpochBase(s.lastEpoch - 1)
	}
	return s, nil
}

// Graph returns the recovered graph. The caller owns publication: hand
// it to engine.New (which publishes the recovered epoch) before serving.
func (s *GraphStore) Graph() *graph.Graph { return s.g }

// Epoch returns the last durable epoch.
func (s *GraphStore) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEpoch
}

// Stats returns a point-in-time view of the store.
func (s *GraphStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Epoch:                  s.lastEpoch,
		CheckpointEpoch:        s.ckptEpoch,
		WALRecords:             s.walRecs,
		WALBytes:               s.walSize,
		RecoveryCheckpointLoad: s.recovery.ckptLoad,
		RecoveryReplay:         s.recovery.replay,
		RecoveryReplayed:       s.recovery.replayed,
	}
}

// Append logs one mutation publishing epoch, fsyncing before it
// returns — the write-ahead half of engine.MutationLog. The engine
// calls it under its write lock, before applying the edges; an error
// here aborts the mutation with the graph untouched.
func (s *GraphStore) Append(epoch uint64, edges []engine.EdgeSpec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed {
		return ErrFailed
	}
	if epoch != s.lastEpoch+1 {
		return fmt.Errorf("store: append epoch %d does not follow %d", epoch, s.lastEpoch)
	}
	start := time.Now()
	s.buf = appendRecord(s.buf[:0], Record{Epoch: epoch, Edges: edges})
	// Write-side twin of the replay-side MaxRecordLen check: a record
	// replay would refuse must never be written, or an acked durable
	// mutation turns into ErrCorrupt at the next Open. The real length is
	// checked here (not the uint32 the frame header carries), so a
	// payload large enough to wrap the cast is rejected too.
	if payload := len(s.buf) - 8; payload > MaxRecordLen {
		return fmt.Errorf("%w: encoded payload is %d bytes (max %d)", ErrTooLarge, payload, MaxRecordLen)
	}
	if _, err := s.wal.Write(s.buf); err != nil {
		s.unwrite()
		return fmt.Errorf("store: WAL append: %w", err)
	}
	syncStart := time.Now()
	if err := s.wal.Sync(); err != nil {
		s.unwrite()
		return fmt.Errorf("store: WAL sync: %w", err)
	}
	done := time.Now()
	s.fsyncHist.Observe(done.Sub(syncStart))
	s.appendHist.Observe(done.Sub(start))
	s.walSize += int64(len(s.buf))
	s.walRecs++
	s.lastEpoch = epoch
	return nil
}

// FsyncLatency returns the WAL fsync latency distribution — the floor
// under every durable mutation; pqbench reports its p99 in snapshots.
func (s *GraphStore) FsyncLatency() telemetry.HistogramSnapshot {
	return s.fsyncHist.Snapshot()
}

// RegisterMetrics exposes the store's durability histograms and gauges
// on reg under the pathquery_* namespace; labels (typically one tenant
// label) are stamped on every series.
func (s *GraphStore) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterHistogram("pathquery_wal_append_seconds",
		"WAL append latency: encode + write + fsync, per durable mutation.", &s.appendHist, labels...)
	reg.RegisterHistogram("pathquery_wal_fsync_seconds",
		"WAL fsync latency per durable mutation.", &s.fsyncHist, labels...)
	reg.RegisterHistogram("pathquery_checkpoint_seconds",
		"Checkpoint cut latency: encode + atomic install (+ WAL truncate).", &s.checkpointHist, labels...)
	reg.GaugeFunc("pathquery_wal_records",
		"WAL records past the installed checkpoint.",
		func() float64 { return float64(s.Stats().WALRecords) }, labels...)
	reg.GaugeFunc("pathquery_wal_bytes",
		"WAL tail size in bytes.",
		func() float64 { return float64(s.Stats().WALBytes) }, labels...)
	reg.GaugeFunc("pathquery_checkpoint_epoch",
		"Epoch of the installed checkpoint (0: none).",
		func() float64 { return float64(s.Stats().CheckpointEpoch) }, labels...)
	reg.GaugeFunc("pathquery_checkpoint_bytes",
		"Size of the last checkpoint image written by this process.",
		func() float64 { return float64(s.ckptBytes.Load()) }, labels...)
	reg.GaugeFunc("pathquery_recovery_replay_seconds",
		"WAL replay time of the Open that produced this store.",
		func() float64 { return s.Stats().RecoveryReplay.Seconds() }, labels...)
}

// unwrite removes a record that failed to append cleanly, so a later
// successful append is not stacked onto a torn frame. If the rollback
// itself fails (the filesystem is gone, or a transient truncate error)
// the store is poisoned — every later Append returns ErrFailed — because
// acking records behind a torn frame would make them unrecoverable: the
// next Open would see mid-log garbage followed by valid data and refuse
// with ErrCorrupt. A reopen applies the torn-tail rule and continues.
func (s *GraphStore) unwrite() {
	if err := s.wal.Truncate(s.walSize); err != nil {
		s.failed = true
		s.logf("store: %s: rollback of torn append failed (%v); refusing further appends until reopen", s.dir, err)
		return
	}
	if _, err := s.wal.Seek(s.walSize, io.SeekStart); err != nil {
		s.failed = true
		s.logf("store: %s: reseek after torn append failed (%v); refusing further appends until reopen", s.dir, err)
	}
}

// Committed is called by the engine after each publication (the second
// half of engine.MutationLog): it cuts a checkpoint when enough WAL
// records have accumulated. Checkpoint failures are logged, not fatal —
// the WAL alone is sufficient for recovery.
func (s *GraphStore) Committed(snap *graph.Snapshot) {
	s.mu.Lock()
	due := s.opt.CheckpointEvery > 0 &&
		s.lastEpoch-s.ckptEpoch >= uint64(s.opt.CheckpointEvery)
	s.mu.Unlock()
	if !due {
		return
	}
	if err := s.Checkpoint(snap); err != nil {
		s.logf("store: %s: checkpoint at epoch %d failed: %v", s.dir, snap.Epoch(), err)
	}
}

// Checkpoint cuts a checkpoint of snap and truncates the WAL if no
// record newer than snap's epoch has been appended meanwhile (otherwise
// the WAL keeps its tail; recovery skips the pre-checkpoint prefix).
func (s *GraphStore) Checkpoint(snap *graph.Snapshot) error {
	start := time.Now()
	image, err := encodeCheckpoint(snap)
	if err != nil {
		return fmt.Errorf("store: encoding checkpoint: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed {
		return ErrFailed // the WAL tail is torn; only a reopen may touch it
	}
	if snap.Epoch() <= s.ckptEpoch {
		return nil // an older or duplicate snapshot: nothing to gain
	}
	if err := writeCheckpoint(s.fs, s.dir, image); err != nil {
		return err
	}
	s.ckptEpoch = snap.Epoch()
	s.ckptBytes.Store(int64(len(image)))
	defer func() { s.checkpointHist.Observe(time.Since(start)) }()
	if s.lastEpoch <= s.ckptEpoch {
		// Every WAL record is covered by the checkpoint: drop the log.
		if err := s.wal.Truncate(0); err != nil {
			return fmt.Errorf("store: truncating WAL after checkpoint: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing truncated WAL: %w", err)
		}
		if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("store: seeking truncated WAL: %w", err)
		}
		s.walSize, s.walRecs = 0, 0
	}
	return nil
}

// Close closes the WAL. It does not checkpoint: every acked mutation is
// already durable, and the next Open replays the tail.
func (s *GraphStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
