package store

import (
	"errors"
	"io"
	"os"
	"sync"
)

// The store performs every filesystem operation through the FS
// interface so the recovery protocol can be proven under fault
// injection: FaultFS wraps the real filesystem and injects short
// writes, fsync failures and crash-at-offset faults at exact points,
// and the kill-and-restart tests then reopen the same directory with a
// clean FS and assert the recovered state.

// File is the subset of *os.File the WAL and checkpoint writer need.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem operations of the store.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so a preceding Rename is durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ErrInjected is the error every injected fault returns; after a crash
// fault fires, every subsequent operation on the FaultFS fails with it.
var ErrInjected = errors.New("store: injected fault")

// FaultFS wraps an FS with failpoint-style fault injection. Faults are
// armed by the Crash*/Fail* methods; the zero configuration passes all
// operations through. Once a crash fault fires the FaultFS is dead —
// every later operation fails — which models a process kill: the bytes
// already written to the underlying directory are exactly what a
// restarted store will find.
type FaultFS struct {
	Inner FS

	mu      sync.Mutex
	crashed bool
	// writeBudget is the number of bytes writes may still emit before the
	// crash fires; -1 means unlimited. A write that crosses the budget
	// emits the remaining prefix (a short, torn write) and crashes.
	writeBudget int64
	// failSyncAt fails the n-th Sync call (1-based) and crashes; 0 never.
	syncs      int
	failSyncAt int
	// failTruncate / failRename fail the next call and crash.
	failTruncate bool
	failRename   bool
	// Transient faults: the filesystem survives them (disk full, EIO),
	// unlike the crash faults above. failWriteShort is the byte count the
	// next Write emits before failing (-1 disarmed); failTruncateOnce
	// fails the next Truncate only.
	failWriteShort   int
	failTruncateOnce bool
}

// NewFaultFS wraps inner (nil = the real filesystem) with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{Inner: inner, writeBudget: -1, failWriteShort: -1}
}

// FailWriteShort makes the next Write emit only n bytes and fail,
// without killing the filesystem — a transient torn write, as opposed
// to the crash CrashAfterBytes models.
func (f *FaultFS) FailWriteShort(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteShort = n
}

// FailTruncateOnce fails the next Truncate without crashing.
func (f *FaultFS) FailTruncateOnce() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTruncateOnce = true
}

// CrashAfterBytes arms a crash once n more bytes have been written
// across all files: the write that crosses the budget is short.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// FailSync makes the n-th subsequent Sync (1-based) fail and crash.
func (f *FaultFS) FailSync(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs, f.failSyncAt = 0, n
}

// FailTruncate makes the next Truncate fail and crash.
func (f *FaultFS) FailTruncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTruncate = true
}

// FailRename makes the next Rename fail and crash.
func (f *FaultFS) FailRename() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRename = true
}

// Crashed reports whether a crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(); err != nil {
		return err
	}
	f.mu.Lock()
	if f.failRename {
		f.failRename, f.crashed = false, true
		f.mu.Unlock()
		return ErrInjected
	}
	f.mu.Unlock()
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.Inner.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.Inner.Stat(name)
}

func (f *FaultFS) SyncDir(name string) error {
	if err := f.syncFault(); err != nil {
		return err
	}
	return f.Inner.SyncDir(name)
}

// syncFault implements the shared Sync/SyncDir failpoint.
func (f *FaultFS) syncFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	if f.failSyncAt > 0 {
		f.syncs++
		if f.syncs >= f.failSyncAt {
			f.failSyncAt = 0
			f.crashed = true
			return ErrInjected
		}
	}
	return nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return 0, ErrInjected
	}
	if f.fs.failWriteShort >= 0 {
		n := f.fs.failWriteShort
		if n > len(p) {
			n = len(p)
		}
		f.fs.failWriteShort = -1
		f.fs.mu.Unlock()
		if n > 0 {
			if wn, err := f.inner.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, ErrInjected
	}
	if f.fs.writeBudget >= 0 && int64(len(p)) > f.fs.writeBudget {
		// The crossing write is torn: the allowed prefix reaches the disk,
		// the rest never will, and the process is gone.
		n := int(f.fs.writeBudget)
		f.fs.writeBudget = 0
		f.fs.crashed = true
		f.fs.mu.Unlock()
		if n > 0 {
			if wn, err := f.inner.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, ErrInjected
	}
	if f.fs.writeBudget >= 0 {
		f.fs.writeBudget -= int64(len(p))
	}
	f.fs.mu.Unlock()
	return f.inner.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.inner.Seek(offset, whence)
}

func (f *faultFile) Close() error {
	// Close succeeds even after a crash so tests can release the real
	// file handle; the data is whatever made it to disk.
	return f.inner.Close()
}

func (f *faultFile) Sync() error {
	if err := f.fs.syncFault(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return ErrInjected
	}
	if f.fs.failTruncate {
		f.fs.failTruncate, f.fs.crashed = false, true
		f.fs.mu.Unlock()
		return ErrInjected
	}
	if f.fs.failTruncateOnce {
		f.fs.failTruncateOnce = false
		f.fs.mu.Unlock()
		return ErrInjected
	}
	f.fs.mu.Unlock()
	return f.inner.Truncate(size)
}
