// Package charsample implements the characteristic graph-and-sample
// construction of Theorem 3.5: for every (prefix-free) path query q there
// is a graph G and a polynomially-sized sample CS such that the learner
// run on any sample extending CS consistently with q returns q exactly.
//
// The construction mirrors the paper's (illustrated by its Figure 7):
//
//   - one positive chain component per word p of the RPNI characteristic
//     positive set P+ of L(q): a simple path spelling p, whose head νp has
//     paths(νp) = prefixes of p, so the head's SCP is exactly p;
//   - one negative component whose head ν” satisfies paths(ν”) = L'(q),
//     the prefix-closed language of words with no prefix in L(q). It is
//     the complete canonical DFA of q with the final states (and the
//     transitions into them) removed and the implicit sink kept as a
//     universal non-final state. Every strict prefix of every p ∈ P+ lies
//     in L'(q), so SCP selection is pinned to P+, and every generalization
//     that would accept a word without a prefix in L(q) trips over ν”.
package charsample

import (
	"fmt"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/rpni"
	"pathquery/internal/words"
)

// Build returns a characteristic graph and sample for q. The query must be
// non-empty; it is canonicalized to its prefix-free representative first
// (only prefix-free queries are identifiable — Section 2 argues they are
// the canonical representatives of pq equivalence classes).
func Build(q *query.Query) (*graph.Graph, core.Sample, error) {
	pf := q.PrefixFree()
	d := pf.DFA()
	if d.IsEmpty() {
		return nil, core.Sample{}, fmt.Errorf("charsample: query selects nothing; no characteristic sample exists")
	}
	alpha := q.Alphabet()
	g := graph.New(alpha)
	var s core.Sample

	// Positive components: a chain per characteristic positive word.
	pos := rpni.CharacteristicSample(d).Pos
	for i, p := range pos {
		head := g.AddNode(fmt.Sprintf("pos%d", i))
		cur := head
		for j, sym := range p {
			next := g.AddNode(fmt.Sprintf("pos%d_%d", i, j+1))
			g.AddEdge(cur, sym, next)
			cur = next
		}
		s.Pos = append(s.Pos, head)
	}

	// Negative component: complete canonical DFA minus final states.
	c := d.Complete()
	live := make([]graph.NodeID, c.NumStates())
	anyNeg := false
	for st := 0; st < c.NumStates(); st++ {
		if !c.Final[st] {
			live[st] = g.AddNode(fmt.Sprintf("neg_s%d", st))
			anyNeg = true
		} else {
			live[st] = -1
		}
	}
	if anyNeg && !c.Final[c.Start] {
		for st := 0; st < c.NumStates(); st++ {
			if c.Final[st] {
				continue
			}
			for sym := 0; sym < c.NumSyms; sym++ {
				t := c.Delta[st][sym]
				if t != automata.None && !c.Final[t] {
					g.AddEdge(live[st], alphabet.Symbol(sym), live[t])
				}
			}
		}
		s.Neg = append(s.Neg, live[c.Start])
	}
	return g, s, nil
}

// KFor returns the SCP length bound Theorem 3.5 prescribes for learning
// queries of q's size: 2·n + 1.
func KFor(q *query.Query) int {
	return 2*q.PrefixFree().Size() + 1
}

// Verify checks the theorem's statement on a concrete query: it builds the
// characteristic graph and sample, runs the learner with k = 2n+1, and
// reports whether the learned query is exactly q's prefix-free canonical
// DFA. Used by tests and by the pqbench self-check.
func Verify(q *query.Query) (bool, error) {
	g, s, err := Build(q)
	if err != nil {
		return false, err
	}
	learned, err := core.LearnOn(g.Snapshot(), s, core.Options{K: KFor(q)})
	if err != nil {
		return false, err
	}
	return learned.DFA().Equal(q.PrefixFree().DFA()), nil
}

// NegPathLanguage returns the words of length ≤ maxLen in L'(q) — the
// negative head's path language — for tests cross-checking the
// construction: w ∈ L'(q) iff no prefix of w lies in L(q).
func NegPathLanguage(q *query.Query, maxLen int) []words.Word {
	d := q.PrefixFree().DFA().Complete()
	syms := make([]alphabet.Symbol, d.NumSyms)
	for i := range syms {
		syms[i] = alphabet.Symbol(i)
	}
	var out []words.Word
	var walk func(st int32, w words.Word)
	walk = func(st int32, w words.Word) {
		if d.Final[st] {
			return
		}
		out = append(out, w)
		if len(w) == maxLen {
			return
		}
		for _, sym := range syms {
			walk(d.Delta[st][sym], words.Append(w, sym))
		}
	}
	walk(d.Start, words.Epsilon)
	return out
}
