package charsample

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

func TestBuildPaperExampleQuery(t *testing.T) {
	// Theorem 3.5's running query (a·b)*·c: the characteristic sample has
	// two positive nodes (SCPs c and abc) and one negative node, like the
	// paper's Figure 7.
	a := alphabet.NewSorted("a", "b", "c")
	q := query.MustParse(a, "(a·b)*·c")
	g, s, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pos) != 2 {
		t.Fatalf("|CS+| = %d, want 2 (P+ = {c, abc})", len(s.Pos))
	}
	if len(s.Neg) != 1 {
		t.Fatalf("|CS−| = %d, want 1", len(s.Neg))
	}
	// The negative node's path language is L'(q): no prefix in L(q).
	neg := s.Neg[0]
	for _, w := range NegPathLanguage(q, 4) {
		if !g.Matches(neg, w) {
			t.Fatalf("negative head misses %v ∈ L'", words.String(w, a))
		}
	}
	// And it covers nothing with a prefix in L(q): in particular not c.
	c, _ := a.Lookup("c")
	if g.Matches(neg, words.Word{c}) {
		t.Fatal("negative head covers c ∈ L(q)")
	}
}

func TestVerifyPaperExample(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	ok, err := Verify(query.MustParse(a, "(a·b)*·c"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("learner did not identify (a·b)*·c from its characteristic sample")
	}
}

func TestVerifyNamedQueries(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	for _, src := range []string{
		"a",
		"a·b",
		"a·b·c",
		"a+b",
		"(a+b)·c",
		"a*·b",
		"(a·b)*·c",
		"a·(b+c)*·a",
		"(a+b)*·c",
		"c+(a·b·c)",
	} {
		ok, err := Verify(query.MustParse(a, src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !ok {
			t.Errorf("%s: not identified from characteristic sample", src)
		}
	}
}

func TestVerifyEpsilonQuery(t *testing.T) {
	// L = {ε}: the characteristic graph has no negative component (every
	// word has the prefix ε ∈ L, so L' is empty) and a single positive.
	a := alphabet.NewSorted("a", "b")
	q := query.MustParse(a, "ε")
	g, s, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Neg) != 0 {
		t.Fatalf("ε query should have no negative examples, got %d", len(s.Neg))
	}
	learned, err := core.Learn(g, s, core.Options{K: KFor(q)})
	if err != nil {
		t.Fatal(err)
	}
	if !learned.DFA().Equal(q.PrefixFree().DFA()) {
		t.Fatalf("learned %v, want ε", learned)
	}
}

func TestBuildRejectsEmptyQuery(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	empty := query.FromDFA(a, automata.NewDFA(1, 2))
	if _, _, err := Build(empty); err == nil {
		t.Fatal("empty query should be rejected")
	}
}

func TestTheoremRandomQueriesIdentified(t *testing.T) {
	// The main learnability property test: random prefix-free queries are
	// identified exactly from their characteristic graph with k = 2n+1.
	rng := rand.New(rand.NewSource(47))
	a := alphabet.NewSorted("a", "b")
	tried := 0
	for i := 0; i < 150; i++ {
		d := automata.RandomPrefixFreeDFA(rng, 6, 2, 0.7)
		q := query.FromDFA(a, d)
		ok, err := Verify(q)
		if err != nil {
			t.Fatalf("iter %d (%v): %v", i, q, err)
		}
		if !ok {
			t.Fatalf("iter %d: query %v (size %d) not identified", i, q, q.Size())
		}
		tried++
	}
	if tried == 0 {
		t.Fatal("no queries exercised")
	}
}

func TestTheoremSurvivesConsistentExtension(t *testing.T) {
	// Definition 3.4's completeness clause: any sample extending CS
	// consistently with q still learns q. We extend with fresh nodes
	// labeled according to q.
	rng := rand.New(rand.NewSource(53))
	a := alphabet.NewSorted("a", "b")
	for i := 0; i < 60; i++ {
		d := automata.RandomPrefixFreeDFA(rng, 5, 2, 0.7)
		q := query.FromDFA(a, d)
		g, s, err := Build(q)
		if err != nil {
			t.Fatal(err)
		}
		// Extension: a chain spelling a random accepted word (positive) and
		// a dead-end node (negative unless q accepts ε — skip then).
		w, okw := automata.ShortestAccepted(q.DFA())
		if okw && len(w) > 0 {
			head := g.AddNode("extraPos")
			cur := head
			for j, sym := range w {
				next := g.AddNode("extraPos_" + string(rune('a'+j)))
				g.AddEdge(cur, sym, next)
				cur = next
			}
			s.Pos = append(s.Pos, head)
			// The dead-end chain tail covers only suffix-prefixes of w; its
			// label under q: selected iff q accepts ε, which prefix-free
			// non-ε queries don't.
			if !q.Accepts(words.Epsilon) {
				s.Neg = append(s.Neg, cur)
			}
		}
		learned, err := core.Learn(g, s, core.Options{K: KFor(q)})
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !learned.DFA().Equal(q.PrefixFree().DFA()) {
			t.Fatalf("iter %d: extension broke identification of %v", i, q)
		}
	}
}

func TestKForBound(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	q := query.MustParse(a, "(a·b)*·c") // size 3
	if got := KFor(q); got != 7 {
		t.Fatalf("KFor = %d, want 2·3+1 = 7", got)
	}
}

func TestCharacteristicSampleIsPolynomial(t *testing.T) {
	// |CS| (number of labeled nodes) is |P+| + 1 — linear in practice,
	// polynomial as the theorem requires.
	rng := rand.New(rand.NewSource(59))
	a := alphabet.NewSorted("a", "b")
	for i := 0; i < 60; i++ {
		d := automata.RandomPrefixFreeDFA(rng, 6, 2, 0.7)
		q := query.FromDFA(a, d)
		_, s, err := Build(q)
		if err != nil {
			t.Fatal(err)
		}
		n := q.Size() + 1
		if s.Size() > 2*n*n*2+1 {
			t.Fatalf("iter %d: |CS| = %d not polynomial-small for n=%d", i, s.Size(), n)
		}
	}
}
