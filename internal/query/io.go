package query

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
)

// Persistence for queries, used by the CLI tools to save learned queries
// and re-evaluate them later. The format stores the label table (so the
// query is portable across graphs sharing label names) followed by the
// canonical DFA:
//
//	pathquery
//	labels <l1> <l2> ...
//	dfa ...            (automata serialization)

// Save writes q.
func Save(w io.Writer, q *Query) error {
	if _, err := fmt.Fprintln(w, "pathquery"); err != nil {
		return err
	}
	names := q.alpha.Names()
	if _, err := fmt.Fprintf(w, "labels %s\n", strings.Join(names, " ")); err != nil {
		return err
	}
	_, err := q.dfa.WriteTo(w)
	return err
}

// Load reads a query saved by Save. The returned query owns a fresh
// alphabet with the stored labels; use Rebase to evaluate it on a graph
// with a different label table.
func Load(r io.Reader) (*Query, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("query: missing header: %w", err)
	}
	if strings.TrimSpace(header) != "pathquery" {
		return nil, fmt.Errorf("query: bad header %q", strings.TrimSpace(header))
	}
	labelLine, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("query: missing labels: %w", err)
	}
	fields := strings.Fields(labelLine)
	if len(fields) == 0 || fields[0] != "labels" {
		return nil, fmt.Errorf("query: bad labels line %q", strings.TrimSpace(labelLine))
	}
	alpha := alphabet.New()
	for _, l := range fields[1:] {
		alpha.Intern(l)
	}
	d, err := automata.ReadDFA(br)
	if err != nil {
		return nil, err
	}
	if d.NumSyms != alpha.Size() {
		return nil, fmt.Errorf("query: DFA over %d symbols but %d labels stored",
			d.NumSyms, alpha.Size())
	}
	return FromDFA(alpha, d), nil
}

// Rebase translates q onto another alphabet by label name: transitions on
// labels the target alphabet lacks are dropped (they can never match).
// Labels are matched by name, so queries move between graphs that agree on
// edge-label vocabulary.
func (q *Query) Rebase(target *alphabet.Alphabet) *Query {
	d := automata.NewDFA(q.dfa.NumStates(), target.Size())
	d.Start = q.dfa.Start
	copy(d.Final, q.dfa.Final)
	for s := range q.dfa.Delta {
		for sym, t := range q.dfa.Delta[s] {
			if t == automata.None {
				continue
			}
			name := q.alpha.Name(alphabet.Symbol(sym))
			if ns, ok := target.Lookup(name); ok {
				d.Delta[s][ns] = t
			}
		}
	}
	return FromDFA(target, d)
}
