package query_test

import (
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

func TestParseAndSize(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	q := query.MustParse(a, "(a·b)*·c")
	if q.Size() != 3 {
		t.Fatalf("size = %d, want 3 (Figure 4)", q.Size())
	}
	if q.IsEmpty() {
		t.Fatal("query is not empty")
	}
	if _, err := query.Parse(a, "(((("); err == nil {
		t.Fatal("bad syntax accepted")
	}
}

func TestSelectOnG0(t *testing.T) {
	g, _ := paperfix.G0()
	q := query.MustParse(g.Alphabet(), "(a·b)*·c")
	nodes := q.SelectNodes(g)
	if len(nodes) != 2 {
		t.Fatalf("selected %d nodes", len(nodes))
	}
	names := []string{g.NodeName(nodes[0]), g.NodeName(nodes[1])}
	if names[0] != "v1" || names[1] != "v3" {
		t.Fatalf("selected %v", names)
	}
	if got := q.Selectivity(g); got != 2.0/7 {
		t.Fatalf("selectivity = %v", got)
	}
	for _, v := range nodes {
		if !q.Selects(g, v) {
			t.Fatalf("Selects disagrees with SelectNodes at %d", v)
		}
	}
}

func TestEquivalence(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	q1 := query.MustParse(a, "a")
	q2 := query.MustParse(a, "a·b*")
	// Not equivalent as languages...
	if q1.EquivalentTo(q2) {
		t.Fatal("a and a·b* differ as languages")
	}
	// ...but equivalent as queries: same prefix-free representative.
	if !q1.EquivalentTo(q2.PrefixFree()) {
		t.Fatal("prefix-free of a·b* should be a")
	}
	// And they select the same nodes on every graph; check G0.
	g, _ := paperfix.G0()
	ga := query.MustParse(g.Alphabet(), "a")
	gab := query.MustParse(g.Alphabet(), "a·b*")
	if !ga.EquivalentOn(g, gab) {
		t.Fatal("a and a·b* must select the same nodes")
	}
}

func TestFromDFACanonicalizes(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	// A deliberately bloated DFA for the language a.
	d := automata.NewDFA(4, 2)
	d.Start = 0
	d.Delta[0][0] = 1
	d.Final[1] = true
	d.Delta[2][0] = 3 // unreachable garbage
	q := query.FromDFA(a, d)
	if q.Size() != 2 {
		t.Fatalf("size = %d, want 2", q.Size())
	}
	if !q.EquivalentTo(query.MustParse(a, "a")) {
		t.Fatal("language changed")
	}
}

func TestStringRoundTrip(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	src := "(a·b)*·c"
	q := query.MustParse(a, src)
	if q.String() != src {
		t.Fatalf("String = %q", q.String())
	}
	// A learned (DFA-only) query prints an extracted expression that
	// reparses to the same language.
	learned := query.FromDFA(a, q.DFA())
	back := query.MustParse(a, learned.String())
	if !back.EquivalentTo(q) {
		t.Fatalf("extracted expression %q denotes a different language", learned.String())
	}
}

func TestAcceptsAndPrefixFree(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	q := query.MustParse(a, "a·b*")
	ab := words.FromLabels(a, "a", "b")
	if !q.Accepts(ab) {
		t.Fatal("a·b* should accept ab")
	}
	pf := q.PrefixFree()
	if pf.Accepts(ab) {
		t.Fatal("prefix-free representative should not accept ab")
	}
	if !pf.Accepts(words.FromLabels(a, "a")) {
		t.Fatal("prefix-free representative should accept a")
	}
}

func TestBinarySemantics(t *testing.T) {
	g, _ := paperfix.Figure1()
	q := query.MustParse(g.Alphabet(), "(tram+bus)*·cinema")
	n2, _ := g.NodeByName("N2")
	n5, _ := g.NodeByName("N5")
	c1, _ := g.NodeByName("C1")
	if !q.SelectsPair(g, n2, c1) {
		t.Fatal("(N2, C1) should be selected")
	}
	if q.SelectsPair(g, n5, c1) {
		t.Fatal("(N5, C1) should not be selected")
	}
	pairs := q.SelectPairsFrom(g, n2)
	if len(pairs) != 1 || g.NodeName(pairs[0]) != "C1" {
		t.Fatalf("pairs from N2 = %v", pairs)
	}
}

func TestNaryValidation(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	if _, err := query.NewNary(); err == nil {
		t.Fatal("empty n-ary query accepted")
	}
	q1 := query.MustParse(a, "a")
	other := alphabet.NewSorted("a", "b")
	q2 := query.MustParse(other, "b")
	if _, err := query.NewNary(q1, q2); err == nil {
		t.Fatal("mixed alphabets accepted")
	}
	nq, err := query.NewNary(q1, query.MustParse(a, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if nq.Arity() != 3 {
		t.Fatalf("arity = %d", nq.Arity())
	}
	if nq.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestNarySelectsTuple(t *testing.T) {
	g, _ := paperfix.Figure1()
	transport := query.MustParse(g.Alphabet(), "(tram+bus)*")
	cinema := query.MustParse(g.Alphabet(), "cinema")
	nq, err := query.NewNary(transport, cinema)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := g.NodeByName("N2")
	n4, _ := g.NodeByName("N4")
	c1, _ := g.NodeByName("C1")
	ok, err := nq.SelectsTuple(g, []graph.NodeID{n2, n4, c1})
	if err != nil || !ok {
		t.Fatalf("tuple (N2,N4,C1): ok=%v err=%v", ok, err)
	}
	if _, err := nq.SelectsTuple(g, []graph.NodeID{n2, n4}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestEmptyQuerySelectsNothing(t *testing.T) {
	g, _ := paperfix.G0()
	empty := query.FromDFA(g.Alphabet(), automata.NewDFA(1, g.Alphabet().Size()))
	if nodes := empty.SelectNodes(g); len(nodes) != 0 {
		t.Fatalf("empty query selected %v", nodes)
	}
	if !empty.IsEmpty() {
		t.Fatal("IsEmpty = false")
	}
}

func TestEpsilonQuerySelectsEverything(t *testing.T) {
	g, _ := paperfix.G0()
	eps := query.MustParse(g.Alphabet(), "ε")
	if got := len(eps.SelectNodes(g)); got != g.NumNodes() {
		t.Fatalf("ε selected %d of %d", got, g.NumNodes())
	}
}
