// Package query implements path queries (Section 2): a query q is a regular
// expression evaluated under monadic semantics on a graph database G,
//
//	q(G) = {ν ∈ G | L(q) ∩ paths_G(ν) ≠ ∅},
//
// plus the binary and n-ary semantics of Appendix B. Queries are
// represented by the canonical DFA of their (prefix-free) language; the
// size of a query is its canonical-DFA state count.
package query

import (
	"fmt"
	"sort"
	"sync"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
	"pathquery/internal/regex"
	"pathquery/internal/words"
)

// Query is a path query over a fixed alphabet.
type Query struct {
	alpha *alphabet.Alphabet
	// dfa is the canonical (trimmed, minimal) DFA of the query language.
	dfa *automata.DFA
	// source is the originating expression when the query was parsed or
	// built from a regex; nil for learned queries (String falls back to
	// state-elimination extraction).
	source *regex.Node

	keyOnce sync.Once
	key     string

	planOnce sync.Once
	plan     *plan.Plan
}

// Parse parses a regular expression over alpha into a query. New labels in
// the expression are interned into alpha.
func Parse(alpha *alphabet.Alphabet, src string) (*Query, error) {
	n, err := regex.Parse(alpha, src)
	if err != nil {
		return nil, err
	}
	return FromRegex(alpha, n), nil
}

// MustParse is Parse panicking on error; for fixtures and tests.
func MustParse(alpha *alphabet.Alphabet, src string) *Query {
	q, err := Parse(alpha, src)
	if err != nil {
		panic(err)
	}
	return q
}

// FromRegex builds a query from a parsed expression.
func FromRegex(alpha *alphabet.Alphabet, n *regex.Node) *Query {
	return &Query{
		alpha:  alpha,
		dfa:    automata.CompileRegex(n, alpha.Size()),
		source: n,
	}
}

// FromDFA builds a query from an automaton; the DFA is canonicalized.
func FromDFA(alpha *alphabet.Alphabet, d *automata.DFA) *Query {
	return &Query{alpha: alpha, dfa: automata.Minimize(d)}
}

// Alphabet returns the query's alphabet.
func (q *Query) Alphabet() *alphabet.Alphabet { return q.alpha }

// DFA returns the canonical DFA. Callers must not modify it.
func (q *Query) DFA() *automata.DFA { return q.dfa }

// Plan returns the query's compiled evaluation plan: the canonical DFA's
// transition tables, reverse DFA, accept-reachability sets, and symbol
// filters in the layout chosen at compile time (see internal/plan). The
// plan is built once and memoized; it is immutable and safe for unlimited
// concurrent use. Every evaluation method of Query goes through it.
func (q *Query) Plan() *plan.Plan {
	// The canonical DFA is already minimized with dead states pruned, so
	// the shape-preserving table build suffices.
	q.planOnce.Do(func() { q.plan = plan.FromDFA(q.dfa) })
	return q.plan
}

// Size returns the paper's size measure: the number of canonical-DFA states.
func (q *Query) Size() int { return q.dfa.NumStates() }

// CacheKey returns a canonical key for the query's language over its
// alphabet: two queries parsed against the same alphabet have equal keys
// iff they are equivalent (their canonical DFAs coincide), regardless of
// how the source expression was written and of labels interned after
// compilation. The serving engine's plan and result caches are keyed on
// it. Computed once and memoized; safe for concurrent use.
func (q *Query) CacheKey() string {
	q.keyOnce.Do(func() { q.key = q.dfa.CanonicalKey() })
	return q.key
}

// IsEmpty reports whether the query selects nothing on every graph.
func (q *Query) IsEmpty() bool { return q.dfa.IsEmpty() }

// Accepts reports whether w ∈ L(q).
func (q *Query) Accepts(w words.Word) bool { return q.dfa.Accepts(w) }

// PrefixFree returns the unique prefix-free query equivalent to q
// (Section 2): the minimal representative of q's equivalence class.
func (q *Query) PrefixFree() *Query {
	return &Query{alpha: q.alpha, dfa: q.dfa.PrefixFree()}
}

// EquivalentTo reports language equality with o.
func (q *Query) EquivalentTo(o *Query) bool {
	return automata.Equivalent(q.dfa, o.dfa)
}

// EquivalentOn reports whether q and o select exactly the same nodes on g —
// the paper's "indistinguishable by the user" relation (Section 3.3).
func (q *Query) EquivalentOn(g *graph.Graph, o *Query) bool {
	a, b := q.Select(g), o.Select(g)
	for v := range a {
		if a[v] != b[v] {
			return false
		}
	}
	return true
}

// Select evaluates q on g under monadic semantics and returns the per-node
// selection vector.
func (q *Query) Select(g *graph.Graph) []bool {
	return g.Snapshot().SelectMonadicPlan(q.Plan())
}

// Selection is the outcome of one monadic evaluation pass. It lets call
// sites that need several views of the same result — the selected ids, the
// count, the selectivity — pay for a single product pass instead of
// re-running the engine per accessor.
type Selection struct {
	vec   []bool
	count int
}

// Evaluate runs one monadic evaluation pass of q on g.
func (q *Query) Evaluate(g *graph.Graph) Selection {
	return q.EvaluateOn(g.Snapshot())
}

// EvaluateOn runs one monadic evaluation pass of q on an epoch snapshot,
// through the compiled plan.
func (q *Query) EvaluateOn(s *graph.Snapshot) Selection {
	return NewSelection(s.SelectMonadicPlan(q.Plan()))
}

// NewSelection wraps a selection vector, taking ownership of it.
func NewSelection(vec []bool) Selection {
	count := 0
	for _, s := range vec {
		if s {
			count++
		}
	}
	return Selection{vec: vec, count: count}
}

// Vector returns the per-node selection vector. Callers must not modify it.
func (s Selection) Vector() []bool { return s.vec }

// Count returns |q(G)|, the number of selected nodes.
func (s Selection) Count() int { return s.count }

// Nodes returns the selected node ids in increasing order.
func (s Selection) Nodes() []graph.NodeID {
	if s.count == 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, s.count)
	for v, sel := range s.vec {
		if sel {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Selectivity returns |q(G)| / |V|, the measure reported in Table 1.
func (s Selection) Selectivity() float64 {
	if len(s.vec) == 0 {
		return 0
	}
	return float64(s.count) / float64(len(s.vec))
}

// SelectNodes evaluates q on g and returns the selected node ids in
// increasing order.
func (q *Query) SelectNodes(g *graph.Graph) []graph.NodeID {
	return q.Evaluate(g).Nodes()
}

// Selects reports whether q selects ν on g.
func (q *Query) Selects(g *graph.Graph, nu graph.NodeID) bool {
	return q.SelectsOn(g.Snapshot(), nu)
}

// SelectsOn reports whether q selects ν on an epoch snapshot.
func (q *Query) SelectsOn(s *graph.Snapshot, nu graph.NodeID) bool {
	return s.CoversPlan(q.Plan(), nu)
}

// Selectivity returns |q(G)| / |V|, the measure reported in Table 1.
// Callers needing the nodes and the selectivity of the same query should
// use Evaluate once instead of paying two product passes.
func (q *Query) Selectivity(g *graph.Graph) float64 {
	return q.Evaluate(g).Selectivity()
}

// SelectsPair reports whether (u, v) ∈ q(G) under binary semantics
// (Appendix B): some path from u to v spells a word of L(q).
func (q *Query) SelectsPair(g *graph.Graph, u, v graph.NodeID) bool {
	return q.SelectsPairOn(g.Snapshot(), u, v)
}

// SelectsPairOn is SelectsPair on an epoch snapshot: a bidirectional
// product search through the compiled plan.
func (q *Query) SelectsPairOn(s *graph.Snapshot, u, v graph.NodeID) bool {
	return s.CoversPairPlan(q.Plan(), u, v)
}

// SelectPairsFrom returns all v with (u, v) selected under binary
// semantics.
func (q *Query) SelectPairsFrom(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	return q.SelectPairsFromOn(g.Snapshot(), u)
}

// SelectPairsFromOn is SelectPairsFrom on an epoch snapshot: the
// direction-optimizing evaluation through the compiled plan.
func (q *Query) SelectPairsFromOn(s *graph.Snapshot, u graph.NodeID) []graph.NodeID {
	return s.SelectBinaryFromPlan(q.Plan(), u)
}

// String renders the query: its source expression when known, otherwise an
// expression extracted from the canonical DFA.
func (q *Query) String() string {
	if q.source != nil {
		return q.source.String(q.alpha)
	}
	return automata.ToRegex(q.dfa).String(q.alpha)
}

// Regex returns a regular expression denoting L(q): the original source if
// the query was parsed, otherwise one extracted from the DFA.
func (q *Query) Regex() *regex.Node {
	if q.source != nil {
		return q.source
	}
	return automata.ToRegex(q.dfa)
}

// Nary is an n-ary path query (Appendix B): a sequence of n-1 regular
// expressions selecting node tuples (ν1..νn) where each adjacent pair is
// related by the corresponding expression under binary semantics.
type Nary struct {
	Parts []*Query
}

// NewNary builds an n-ary query from its component queries. All components
// must share an alphabet.
func NewNary(parts ...*Query) (*Nary, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("query: n-ary query needs at least one component")
	}
	for _, p := range parts[1:] {
		if p.alpha != parts[0].alpha {
			return nil, fmt.Errorf("query: n-ary components must share an alphabet")
		}
	}
	return &Nary{Parts: parts}, nil
}

// Arity returns n: the tuple width selected by the query.
func (n *Nary) Arity() int { return len(n.Parts) + 1 }

// SelectsTuple reports whether the tuple is selected:
// ∀i. paths2_G(νi, νi+1) ∩ L(qi) ≠ ∅.
func (n *Nary) SelectsTuple(g *graph.Graph, tuple []graph.NodeID) (bool, error) {
	if len(tuple) != n.Arity() {
		return false, fmt.Errorf("query: tuple arity %d, query arity %d", len(tuple), n.Arity())
	}
	for i, part := range n.Parts {
		if !part.SelectsPair(g, tuple[i], tuple[i+1]) {
			return false, nil
		}
	}
	return true, nil
}

// SelectTuples enumerates all selected tuples on g, in lexicographic node
// order. Intended for small graphs (the output is O(|V|^n)); callers on
// large graphs should use SelectsTuple on candidate tuples instead.
func (n *Nary) SelectTuples(g *graph.Graph) [][]graph.NodeID {
	// Start from every node, extend via SelectPairsFrom per position.
	var out [][]graph.NodeID
	var extend func(prefix []graph.NodeID, pos int)
	extend = func(prefix []graph.NodeID, pos int) {
		if pos == len(n.Parts) {
			out = append(out, append([]graph.NodeID(nil), prefix...))
			return
		}
		for _, next := range n.Parts[pos].SelectPairsFrom(g, prefix[len(prefix)-1]) {
			extend(append(prefix, next), pos+1)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		extend([]graph.NodeID{graph.NodeID(v)}, 0)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// String renders the n-ary query as (q1, ..., qn-1).
func (n *Nary) String() string {
	s := "("
	for i, p := range n.Parts {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}
