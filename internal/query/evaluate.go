package query

// The unified evaluation surface: one Req/Answer pair covering every
// result shape the system serves. Each Semantics is an accumulator over
// the same forward/backward product expansion (internal/graph), so adding
// a result shape means adding a case here — not a new verb on Query, a new
// engine method, and a new HTTP endpoint.

import (
	"context"
	"fmt"

	"pathquery/internal/graph"
	"pathquery/internal/plan"
)

// Semantics selects the result shape of one evaluation.
type Semantics uint8

const (
	// SemanticsNodes is the paper's monadic semantics: the nodes ν with
	// L(q) ∩ paths_G(ν) ≠ ∅.
	SemanticsNodes Semantics = iota
	// SemanticsPairsFrom is binary semantics anchored at From: all v with
	// (From, v) ∈ q(G) (Appendix B).
	SemanticsPairsFrom
	// SemanticsWitness is monadic selection plus proof: for each selected
	// node, the canonical-minimal labeled path witnessing the selection.
	SemanticsWitness
	// SemanticsCount counts, per node, the distinct accepting path lengths
	// up to MaxLen.
	SemanticsCount
	// SemanticsShortest returns the shortest witness per node (no From) or
	// per pair (From, v) (with From).
	SemanticsShortest
)

// semanticsNames are the wire names of the /v1/query protocol.
var semanticsNames = [...]string{"nodes", "pairsFrom", "witness", "count", "shortest"}

// NumSemantics is the number of defined Semantics values — the size of
// per-semantics instrumentation arrays.
const NumSemantics = len(semanticsNames)

func (s Semantics) String() string {
	if int(s) < len(semanticsNames) {
		return semanticsNames[s]
	}
	return fmt.Sprintf("Semantics(%d)", uint8(s))
}

// ParseSemantics maps a wire name to its Semantics. The empty string
// defaults to SemanticsNodes, keeping the minimal request {"query": ...}
// meaningful.
func ParseSemantics(name string) (Semantics, error) {
	if name == "" {
		return SemanticsNodes, nil
	}
	for i, n := range semanticsNames {
		if n == name {
			return Semantics(i), nil
		}
	}
	return 0, fmt.Errorf("query: unknown semantics %q (want one of nodes, pairsFrom, witness, count, shortest)", name)
}

// Req is one evaluation request at the snapshot level: the semantics plus
// its arguments, with node references already resolved to ids. The engine
// builds it from the wire-level Request; library callers build it
// directly.
type Req struct {
	// Semantics selects the result shape.
	Semantics Semantics
	// From anchors binary semantics (pairsFrom always, shortest
	// optionally); meaningful only when HasFrom.
	From    graph.NodeID
	HasFrom bool
	// Limit bounds the number of witness paths computed (witness/shortest;
	// 0 = one per selected node). Nodes and counts are never truncated
	// here — presentation-level truncation is the wire layer's job.
	Limit int
	// MaxLen bounds the path lengths counted (count semantics; 0 = the
	// default 2·|Q|+1, the paper's characteristic SCP bound).
	MaxLen int
}

// NodeCount is one count-semantics row: the node and its number of
// distinct accepting path lengths.
type NodeCount struct {
	Node  graph.NodeID
	Count int
}

// Answer is the result of one evaluation. Exactly one of Nodes, Paths,
// Counts is populated, per the request's semantics; Count is always the
// total number of matches (selected nodes, selected pairs, nodes with a
// nonzero count), even when Limit truncated Paths.
type Answer struct {
	Semantics Semantics
	Count     int
	Nodes     []graph.NodeID
	Paths     []graph.PathWitness
	Counts    []NodeCount
}

// DefaultMaxLen returns the count-semantics length bound used when the
// request does not set one: 2·|Q|+1, the characteristic-sample SCP bound
// of Theorem 3.5.
func (q *Query) DefaultMaxLen() int { return 2*q.Size() + 1 }

// EvaluateReq runs one evaluation of q on an epoch snapshot under the
// requested semantics — the single entry point behind Engine.Evaluate and
// the /v1/query endpoint. ctx cancels the underlying product traversal:
// level-synchronous passes check between levels, worklist passes every few
// thousand pops, so a pathological evaluation aborts promptly with
// ctx.Err().
func (q *Query) EvaluateReq(ctx context.Context, s *graph.Snapshot, req Req) (Answer, error) {
	p := q.Plan()
	ans := Answer{Semantics: req.Semantics}
	switch req.Semantics {
	case SemanticsNodes:
		vec, err := s.SelectMonadicPlanCtx(ctx, p)
		if err != nil {
			return Answer{}, err
		}
		sel := NewSelection(vec)
		ans.Nodes, ans.Count = sel.Nodes(), sel.Count()

	case SemanticsPairsFrom:
		if !req.HasFrom {
			return Answer{}, fmt.Errorf("query: pairsFrom semantics requires a from node")
		}
		nodes, err := s.SelectBinaryFromPlanCtx(ctx, p, req.From)
		if err != nil {
			return Answer{}, err
		}
		ans.Nodes, ans.Count = nodes, len(nodes)

	case SemanticsWitness, SemanticsShortest:
		// One implementation for both path-shaped semantics: the witness
		// BFS returns the canonical-minimal — and therefore shortest —
		// path, so shortest without an anchor is witness, and shortest
		// with one is the pair-witness variant of the same reconstruction.
		if req.HasFrom {
			if req.Semantics == SemanticsWitness {
				return Answer{}, fmt.Errorf("query: witness semantics is monadic and takes no from node; use shortest for pair witnesses")
			}
			nodes, err := s.SelectBinaryFromPlanCtx(ctx, p, req.From)
			if err != nil {
				return Answer{}, err
			}
			ans.Count = len(nodes)
			ans.Paths, err = q.witnessPaths(ctx, s, nodes, req.Limit, req.From)
			if err != nil {
				return Answer{}, err
			}
		} else {
			vec, err := s.SelectMonadicPlanCtx(ctx, p)
			if err != nil {
				return Answer{}, err
			}
			sel := NewSelection(vec)
			ans.Count = sel.Count()
			ans.Paths, err = q.witnessPaths(ctx, s, sel.Nodes(), req.Limit, -1)
			if err != nil {
				return Answer{}, err
			}
		}

	case SemanticsCount:
		maxLen := req.MaxLen
		if maxLen <= 0 {
			maxLen = q.DefaultMaxLen()
		}
		counts, err := s.CountPlanCtx(ctx, p, maxLen)
		if err != nil {
			return Answer{}, err
		}
		for v, c := range counts {
			if c > 0 {
				ans.Counts = append(ans.Counts, NodeCount{Node: graph.NodeID(v), Count: int(c)})
			}
		}
		ans.Count = len(ans.Counts)

	default:
		return Answer{}, fmt.Errorf("query: unknown semantics %v", req.Semantics)
	}
	return ans, nil
}

// EvaluateReqState is EvaluateReq additionally returning the product
// fixpoint the evaluation computed — the per-node state masks the
// engine's result cache keeps so a later epoch can regrow the answer
// from a graph delta instead of recomputing (graph.RegrowMonadicMasked /
// RegrowBinaryFromMasked). Masks are returned only for the maintainable
// combinations: nodes and anchored pairsFrom semantics under a non-empty
// masked-layout plan. For every other combination masks is nil and the
// answer is exactly EvaluateReq's — callers treat nil masks as "drop the
// cached entry when a delta overlaps the plan's alphabet".
func (q *Query) EvaluateReqState(ctx context.Context, s *graph.Snapshot, req Req) (Answer, []uint64, error) {
	p := q.Plan()
	if p.Layout == plan.LayoutMasked && !p.Empty() {
		switch req.Semantics {
		case SemanticsNodes:
			nodes, masks, err := s.SelectMonadicMaskedState(ctx, p)
			if err != nil {
				return Answer{}, nil, err
			}
			return Answer{Semantics: req.Semantics, Count: len(nodes), Nodes: nodes}, masks, nil
		case SemanticsPairsFrom:
			if !req.HasFrom {
				return Answer{}, nil, fmt.Errorf("query: pairsFrom semantics requires a from node")
			}
			nodes, masks, err := s.SelectBinaryFromMaskedState(ctx, p, req.From)
			if err != nil {
				return Answer{}, nil, err
			}
			return Answer{Semantics: req.Semantics, Count: len(nodes), Nodes: nodes}, masks, nil
		}
	}
	ans, err := q.EvaluateReq(ctx, s, req)
	return ans, nil, err
}

// witnessPaths reconstructs one witness per node of set (up to limit;
// 0 = all). from < 0 means monadic witnesses starting at each node;
// from ≥ 0 means pair witnesses from that node to each node of set. Every
// node of set is selected by construction, so each reconstruction finds a
// path.
func (q *Query) witnessPaths(ctx context.Context, s *graph.Snapshot, set []graph.NodeID, limit int, from graph.NodeID) ([]graph.PathWitness, error) {
	if len(set) == 0 {
		return nil, nil
	}
	n := len(set)
	if limit > 0 && limit < n {
		n = limit
	}
	pl := q.Plan()
	paths := make([]graph.PathWitness, 0, n)
	for _, v := range set[:n] {
		var (
			pw  graph.PathWitness
			ok  bool
			err error
		)
		if from < 0 {
			pw, ok, err = s.WitnessPathPlan(ctx, pl, v)
		} else {
			pw, ok, err = s.WitnessPairPathPlan(ctx, pl, from, v)
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			// Unreachable when set came from the matching selection pass on
			// the same snapshot; guard against misuse anyway.
			return nil, fmt.Errorf("query: no witness for selected node %d", v)
		}
		paths = append(paths, pw)
	}
	return paths, nil
}
