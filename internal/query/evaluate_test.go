package query_test

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/query"
)

func TestParseSemantics(t *testing.T) {
	for name, want := range map[string]query.Semantics{
		"":          query.SemanticsNodes,
		"nodes":     query.SemanticsNodes,
		"pairsFrom": query.SemanticsPairsFrom,
		"witness":   query.SemanticsWitness,
		"count":     query.SemanticsCount,
		"shortest":  query.SemanticsShortest,
	} {
		got, err := query.ParseSemantics(name)
		if err != nil || got != want {
			t.Errorf("ParseSemantics(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := query.ParseSemantics("pairs"); err == nil {
		t.Error("unknown semantics accepted")
	}
}

func evalFixture() *graph.Graph {
	g := graph.New(nil)
	g.AddEdgeByName("N1", "tram", "N4")
	g.AddEdgeByName("N2", "bus", "N1")
	g.AddEdgeByName("N4", "cinema", "C1")
	g.AddEdgeByName("N6", "cinema", "C2")
	g.AddEdgeByName("N6", "bus", "N5")
	g.AddEdgeByName("N5", "tram", "N3")
	return g
}

func TestEvaluateReqSemantics(t *testing.T) {
	g := evalFixture()
	q := query.MustParse(g.Alphabet(), "(tram+bus)*·cinema")
	snap := g.Snapshot()
	ctx := context.Background()
	name := func(v graph.NodeID) string { return snap.NodeName(v) }

	// nodes
	ans, err := q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsNodes})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count != 4 || len(ans.Nodes) != 4 {
		t.Fatalf("nodes: %+v", ans)
	}

	// pairsFrom
	n2, _ := g.NodeByName("N2")
	ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsPairsFrom, From: n2, HasFrom: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 || name(ans.Nodes[0]) != "C1" {
		t.Fatalf("pairsFrom N2: %+v", ans)
	}
	if _, err := q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsPairsFrom}); err == nil {
		t.Fatal("pairsFrom without from accepted")
	}

	// witness: one path per selected node, words accepted
	ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsWitness})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count != 4 || len(ans.Paths) != 4 {
		t.Fatalf("witness: %+v", ans)
	}
	for _, pw := range ans.Paths {
		if !q.Accepts(pw.Word) {
			t.Fatalf("witness word %v not accepted", pw.Word)
		}
	}
	if _, err := q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsWitness, From: n2, HasFrom: true}); err == nil {
		t.Fatal("witness with from accepted")
	}

	// witness limit truncates paths, not the count
	ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsWitness, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count != 4 || len(ans.Paths) != 1 {
		t.Fatalf("witness limit: count %d, %d paths", ans.Count, len(ans.Paths))
	}

	// count: every selected node has at least one accepting length within
	// the default bound, and only nonzero rows are reported.
	ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsCount})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count == 0 || len(ans.Counts) != ans.Count {
		t.Fatalf("count: %+v", ans)
	}

	// shortest with from: pair witnesses ending at the target
	ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsShortest, From: n2, HasFrom: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Count != 1 || len(ans.Paths) != 1 {
		t.Fatalf("shortest from N2: %+v", ans)
	}
	pw := ans.Paths[0]
	if pw.Nodes[0] != n2 || name(pw.Nodes[len(pw.Nodes)-1]) != "C1" || !q.Accepts(pw.Word) {
		t.Fatalf("shortest pair witness: %+v", pw)
	}
}

// randomEvalGraph builds a random graph over the given alphabet.
func randomEvalGraph(rng *rand.Rand, alpha *alphabet.Alphabet, nodes, edges int) *graph.Graph {
	g := graph.New(alpha)
	for v := 0; v < nodes; v++ {
		g.AddNode(fmt.Sprintf("n%d", v))
	}
	syms := alpha.Symbols()
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(nodes)), syms[rng.Intn(len(syms))], graph.NodeID(rng.Intn(nodes)))
	}
	return g
}

// TestWitnessShortestAcceptProperty is the cross-check the acceptance
// criteria name: on random graphs and queries, every path returned under
// witness and shortest semantics must re-verify under Query.Accepts, start
// (and for pairs, end) at the right node, and cover exactly the selected
// set.
func TestWitnessShortestAcceptProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	exprs := []string{
		"a·b", "(a+b)*·c", "a*", "b·(a+c)·a*", "(a·b)*·c", "c+a·b*",
	}
	ctx := context.Background()
	for iter := 0; iter < 40; iter++ {
		alpha := alphabet.NewSorted("a", "b", "c")
		nodes := 3 + rng.Intn(10)
		g := randomEvalGraph(rng, alpha, nodes, rng.Intn(4*nodes))
		q := query.MustParse(alpha, exprs[rng.Intn(len(exprs))])
		snap := g.Snapshot()

		ans, err := q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsWitness})
		if err != nil {
			t.Fatal(err)
		}
		sel := q.EvaluateOn(snap)
		if ans.Count != sel.Count() || len(ans.Paths) != sel.Count() {
			t.Fatalf("iter %d: witness count %d/%d paths, selection %d",
				iter, ans.Count, len(ans.Paths), sel.Count())
		}
		for i, pw := range ans.Paths {
			if pw.Nodes[0] != sel.Nodes()[i] {
				t.Fatalf("iter %d: witness %d starts at %d, want %d", iter, i, pw.Nodes[0], sel.Nodes()[i])
			}
			if !q.Accepts(pw.Word) {
				t.Fatalf("iter %d: witness word %v rejected by Accepts", iter, pw.Word)
			}
		}

		from := graph.NodeID(rng.Intn(nodes))
		ans, err = q.EvaluateReq(ctx, snap, query.Req{Semantics: query.SemanticsShortest, From: from, HasFrom: true})
		if err != nil {
			t.Fatal(err)
		}
		targets := q.SelectPairsFromOn(snap, from)
		if ans.Count != len(targets) || len(ans.Paths) != len(targets) {
			t.Fatalf("iter %d: shortest count %d, targets %d", iter, ans.Count, len(targets))
		}
		for i, pw := range ans.Paths {
			if pw.Nodes[0] != from {
				t.Fatalf("iter %d: pair witness starts at %d, want %d", iter, pw.Nodes[0], from)
			}
			if last := pw.Nodes[len(pw.Nodes)-1]; !slices.Contains(targets, last) || last != targets[i] {
				t.Fatalf("iter %d: pair witness ends at %d, want %d", iter, last, targets[i])
			}
			if !q.Accepts(pw.Word) {
				t.Fatalf("iter %d: pair witness word %v rejected by Accepts", iter, pw.Word)
			}
		}
	}
}

func TestEvaluateReqCancellation(t *testing.T) {
	g := evalFixture()
	q := query.MustParse(g.Alphabet(), "(tram+bus)*·cinema")
	snap := g.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sem := range []query.Semantics{
		query.SemanticsNodes, query.SemanticsWitness, query.SemanticsCount, query.SemanticsShortest,
	} {
		if _, err := q.EvaluateReq(ctx, snap, query.Req{Semantics: sem}); err != context.Canceled {
			t.Errorf("%v: err = %v, want context.Canceled", sem, err)
		}
	}
}
