package query_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	a := alphabet.NewSorted("a", "b", "c")
	q := query.MustParse(a, "(a·b)*·c")
	var buf bytes.Buffer
	if err := query.Save(&buf, q); err != nil {
		t.Fatal(err)
	}
	back, err := query.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.DFA().Equal(q.DFA()) {
		t.Fatal("round trip changed the DFA")
	}
	if back.Alphabet().Size() != a.Size() {
		t.Fatalf("alphabet size %d, want %d", back.Alphabet().Size(), a.Size())
	}
}

func TestSaveLoadRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := alphabet.NewSorted("x", "y")
	for i := 0; i < 60; i++ {
		d := automata.RandomNonEmptyDFA(rng, 6, 2, 0.7)
		q := query.FromDFA(a, d)
		var buf bytes.Buffer
		if err := query.Save(&buf, q); err != nil {
			t.Fatal(err)
		}
		back, err := query.Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.DFA().Equal(q.DFA()) {
			t.Fatalf("iter %d: round trip changed the DFA", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"nope\n",
		"pathquery\nnolabels\n",
		"pathquery\nlabels a b\n", // missing DFA
		"pathquery\nlabels a\ndfa 1 2 0\nfinal\n",        // symbol mismatch
		"pathquery\nlabels a\ndfa 2 1 5\nfinal\n",        // bad start
		"pathquery\nlabels a\ndfa 2 1 0\nfinal 9\n",      // bad final
		"pathquery\nlabels a\ndfa 2 1 0\nfinal 1\nx y\n", // bad transition
	}
	for _, c := range cases {
		if _, err := query.Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) unexpectedly succeeded", c)
		}
	}
}

func TestRebaseAcrossAlphabets(t *testing.T) {
	// A query learned over one graph evaluates on another graph whose
	// alphabet interned labels in a different order.
	src := alphabet.New()
	src.Intern("cinema") // cinema=0, tram=1 — reversed vs Figure 1's table
	src.Intern("tram")
	src.Intern("bus")
	q := query.MustParse(src, "(tram+bus)*·cinema")

	g, _ := paperfix.Figure1()
	rq := q.Rebase(g.Alphabet())
	want := query.MustParse(g.Alphabet(), "(tram+bus)*·cinema")
	if !rq.EquivalentTo(want) {
		t.Fatalf("rebased query %v differs from %v", rq, want)
	}
	if !rq.EquivalentOn(g, want) {
		t.Fatal("rebased query selects different nodes")
	}
}

func TestRebaseDropsUnknownLabels(t *testing.T) {
	src := alphabet.NewSorted("a", "zz")
	q := query.MustParse(src, "a+zz")
	target := alphabet.NewSorted("a", "b")
	rq := q.Rebase(target)
	// zz cannot match on the target; the language collapses to a.
	want := query.MustParse(target, "a")
	if !rq.EquivalentTo(want) {
		t.Fatalf("rebased = %v, want a", rq)
	}
}

func TestDFAMarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 100; i++ {
		d := automata.RandomDFA(rng, 8, 3, 0.6)
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := automata.ReadDFA(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(d) {
			t.Fatalf("iter %d: marshal round trip changed the DFA", i)
		}
	}
}
