package query_test

import (
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/query"
)

// FuzzParseRenderRoundTrip asserts the serving engine's canonicalization
// contract on arbitrary inputs: for every source that parses, the rendered
// expression (Query.String, which the learner reports and the plan cache
// registers under bySrc) must itself parse, denote the same language
// (equal CacheKey — the plan-cache and result-cache key), and render to a
// fixed point. A violation would split one query language across several
// cached plans, or make a learned query's reported source unusable.
//
// `go test` runs the seed corpus; `go test -fuzz=FuzzParseRenderRoundTrip
// ./internal/query` explores further.
func FuzzParseRenderRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"a",
		"ε",
		"()",
		"a·b",
		"a.b",
		"a b",
		"(tram+bus)*·cinema",
		"(a+b)*·c·(d+ε)",
		"a**",
		"((a))",
		"a+b+c",
		"l00·l01*+l02",
		"x·(y+z)*·x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		alpha := alphabet.New()
		q, err := query.Parse(alpha, src)
		if err != nil {
			t.Skip() // not a valid expression: nothing to round-trip
		}
		rendered := q.String()
		q2, err := query.Parse(alpha, rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, rendered, err)
		}
		if q.CacheKey() != q2.CacheKey() {
			t.Fatalf("round-trip changed the language: %q -> %q (keys %q vs %q)",
				src, rendered, q.CacheKey(), q2.CacheKey())
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("rendering is not a fixed point: %q -> %q -> %q", src, rendered, again)
		}
		if !q.EquivalentTo(q2) {
			t.Fatalf("round-trip of %q not language-equivalent", src)
		}
	})
}
