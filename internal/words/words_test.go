package words

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathquery/internal/alphabet"
)

func w(syms ...alphabet.Symbol) Word { return Word(syms) }

func TestCompareCanonicalOrder(t *testing.T) {
	// Canonical order: shorter first, then lexicographic (Section 2).
	cases := []struct {
		a, b Word
		want int
	}{
		{Epsilon, Epsilon, 0},
		{Epsilon, w(0), -1},
		{w(1), w(0, 0), -1},    // length dominates lex
		{w(0, 1), w(1, 0), -1}, // same length: lex
		{w(2, 0), w(0, 0, 0), -1},
		{w(0, 0), w(0, 0), 0},
		{w(1, 0), w(0, 1), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); sign(got) != c.want {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Word {
		n := rng.Intn(5)
		out := make(Word, n)
		for i := range out {
			out[i] = alphabet.Symbol(rng.Intn(3))
		}
		return out
	}
	for i := 0; i < 2000; i++ {
		a, b, c := gen(), gen(), gen()
		// Antisymmetry.
		if sign(Compare(a, b)) != -sign(Compare(b, a)) {
			t.Fatalf("antisymmetry violated for %v,%v", a, b)
		}
		// Transitivity.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v,%v,%v", a, b, c)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	if !HasPrefix(w(0, 1, 2), Epsilon) {
		t.Fatal("ε must prefix everything")
	}
	if !HasPrefix(w(0, 1, 2), w(0, 1)) {
		t.Fatal("prefix not detected")
	}
	if HasPrefix(w(0, 1), w(0, 1, 2)) {
		t.Fatal("longer word cannot be a prefix")
	}
	if HasPrefix(w(0, 1), w(1)) {
		t.Fatal("non-prefix accepted")
	}
}

func TestConcatAndAppendAreFresh(t *testing.T) {
	a := w(0, 1)
	b := w(2)
	c := Concat(a, b)
	if len(c) != 3 || c[2] != 2 {
		t.Fatalf("Concat = %v", c)
	}
	c[0] = 9
	if a[0] == 9 {
		t.Fatal("Concat aliased its input")
	}
	d := Append(a, 5)
	d[0] = 9
	if a[0] == 9 {
		t.Fatal("Append aliased its input")
	}
}

func TestPrefixes(t *testing.T) {
	ps := Prefixes(w(0, 1))
	if len(ps) != 3 {
		t.Fatalf("prefixes = %v", ps)
	}
	if !Equal(ps[0], Epsilon) || !Equal(ps[1], w(0)) || !Equal(ps[2], w(0, 1)) {
		t.Fatalf("prefixes wrong: %v", ps)
	}
}

func TestMinAndSort(t *testing.T) {
	ws := []Word{w(1, 1), w(2), w(0, 0, 0), Epsilon}
	if !Equal(Min(ws), Epsilon) {
		t.Fatalf("Min = %v", Min(ws))
	}
	Sort(ws)
	if !Equal(ws[0], Epsilon) || !Equal(ws[1], w(2)) || !Equal(ws[2], w(1, 1)) {
		t.Fatalf("Sort = %v", ws)
	}
}

func TestDedup(t *testing.T) {
	ws := []Word{w(0), w(1), w(0), Epsilon, Epsilon}
	out := Dedup(ws)
	if len(out) != 3 {
		t.Fatalf("Dedup = %v", out)
	}
}

func TestKeyInjective(t *testing.T) {
	seen := make(map[string]Word)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(6)
		word := make(Word, n)
		for j := range word {
			word[j] = alphabet.Symbol(rng.Intn(300)) // exercise two-byte symbols
		}
		k := Key(word)
		if prev, ok := seen[k]; ok && !Equal(prev, word) {
			t.Fatalf("Key collision: %v vs %v", prev, word)
		}
		seen[k] = word
	}
}

func TestStringRendering(t *testing.T) {
	a := alphabet.New()
	tram := a.Intern("tram")
	bus := a.Intern("bus")
	if got := String(Epsilon, a); got != "ε" {
		t.Fatalf("ε renders as %q", got)
	}
	if got := String(w(tram, bus), a); got != "tram·bus" {
		t.Fatalf("word renders as %q", got)
	}
}

func TestFromLabels(t *testing.T) {
	a := alphabet.New()
	word := FromLabels(a, "x", "y", "x")
	if len(word) != 3 || word[0] != word[2] {
		t.Fatalf("FromLabels = %v", word)
	}
}

func TestEnumerateIsCanonical(t *testing.T) {
	syms := []alphabet.Symbol{0, 1}
	got := Enumerate(syms, 7)
	want := []Word{Epsilon, w(0), w(1), w(0, 0), w(0, 1), w(1, 0), w(1, 1)}
	if len(got) != len(want) {
		t.Fatalf("Enumerate len = %d", len(got))
	}
	for i := range got {
		if !Equal(got[i], want[i]) {
			t.Fatalf("Enumerate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnumerateSortedProperty(t *testing.T) {
	got := Enumerate([]alphabet.Symbol{0, 1, 2}, 100)
	for i := 1; i < len(got); i++ {
		if !Less(got[i-1], got[i]) {
			t.Fatalf("Enumerate not strictly increasing at %d: %v !< %v", i, got[i-1], got[i])
		}
	}
}

func TestUpToMatchesEnumerate(t *testing.T) {
	syms := []alphabet.Symbol{0, 1}
	bound := w(1, 0)
	got := UpTo(syms, bound)
	// Words ≤ (1,0): ε, 0, 1, 00, 01, 10.
	if len(got) != 6 {
		t.Fatalf("UpTo = %v", got)
	}
	if !Equal(got[len(got)-1], bound) {
		t.Fatalf("last = %v, want bound", got[len(got)-1])
	}
}

func TestCloneIndependent(t *testing.T) {
	orig := w(1, 2, 3)
	c := Clone(orig)
	c[0] = 9
	if orig[0] == 9 {
		t.Fatal("Clone aliased")
	}
}

func TestQuickCompareConsistentWithKeyOrder(t *testing.T) {
	// Equal words have equal keys.
	f := func(a, b []byte) bool {
		wa := make(Word, len(a)%5)
		for i := range wa {
			wa[i] = alphabet.Symbol(a[i] % 4)
		}
		wb := make(Word, len(b)%5)
		for i := range wb {
			wb[i] = alphabet.Symbol(b[i] % 4)
		}
		if Equal(wa, wb) {
			return Key(wa) == Key(wb)
		}
		return Key(wa) != Key(wb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
