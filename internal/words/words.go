// Package words implements words over an interned alphabet and the
// canonical (length-lexicographic) well-founded order of Section 2:
//
//	w ≤ u  iff  |w| < |u|, or |w| = |u| and w ≤lex u.
//
// The canonical order drives the selection of smallest consistent paths
// (SCPs) in the learning algorithm and the enumeration order of paths.
package words

import (
	"sort"
	"strings"

	"pathquery/internal/alphabet"
)

// Word is a finite sequence of symbols. The empty (nil) word is ε.
type Word []alphabet.Symbol

// Epsilon is the empty word ε.
var Epsilon = Word{}

// Compare orders w against u in the canonical order: negative if w < u,
// zero if equal, positive if w > u.
func Compare(w, u Word) int {
	if len(w) != len(u) {
		if len(w) < len(u) {
			return -1
		}
		return 1
	}
	for i := range w {
		if w[i] != u[i] {
			if w[i] < u[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Less reports whether w < u in the canonical order.
func Less(w, u Word) bool { return Compare(w, u) < 0 }

// Equal reports whether w and u are the same word.
func Equal(w, u Word) bool { return Compare(w, u) == 0 }

// HasPrefix reports whether p is a prefix of w. Every word has ε as prefix.
func HasPrefix(w, p Word) bool {
	if len(p) > len(w) {
		return false
	}
	for i := range p {
		if w[i] != p[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation w·u as a fresh word.
func Concat(w, u Word) Word {
	out := make(Word, 0, len(w)+len(u))
	out = append(out, w...)
	out = append(out, u...)
	return out
}

// Append returns w·a as a fresh word (w is not modified).
func Append(w Word, a alphabet.Symbol) Word {
	out := make(Word, 0, len(w)+1)
	out = append(out, w...)
	out = append(out, a)
	return out
}

// Clone returns a copy of w.
func Clone(w Word) Word {
	out := make(Word, len(w))
	copy(out, w)
	return out
}

// Prefixes returns all prefixes of w (including ε and w itself) in
// canonical order.
func Prefixes(w Word) []Word {
	out := make([]Word, 0, len(w)+1)
	for i := 0; i <= len(w); i++ {
		out = append(out, Clone(w[:i]))
	}
	return out
}

// Sort sorts ws in place in canonical order.
func Sort(ws []Word) {
	sort.Slice(ws, func(i, j int) bool { return Less(ws[i], ws[j]) })
}

// Min returns the canonical-order minimum of ws, which must be non-empty.
func Min(ws []Word) Word {
	min := ws[0]
	for _, w := range ws[1:] {
		if Less(w, min) {
			min = w
		}
	}
	return min
}

// Dedup sorts ws canonically and removes duplicates, returning the result.
func Dedup(ws []Word) []Word {
	if len(ws) == 0 {
		return ws
	}
	Sort(ws)
	out := ws[:1]
	for _, w := range ws[1:] {
		if !Equal(out[len(out)-1], w) {
			out = append(out, w)
		}
	}
	return out
}

// Key returns a map key uniquely identifying w. The encoding is the raw
// little-endian bytes of the symbols, so it is injective.
func Key(w Word) string {
	var b strings.Builder
	b.Grow(len(w) * 2)
	for _, s := range w {
		b.WriteByte(byte(s))
		b.WriteByte(byte(s >> 8))
	}
	return b.String()
}

// String renders w with labels from a, separated by '·' for multi-symbol
// words. ε renders as "ε".
func String(w Word, a *alphabet.Alphabet) string {
	if len(w) == 0 {
		return "ε"
	}
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = a.Name(s)
	}
	return strings.Join(parts, "·")
}

// FromLabels interns the labels into a and returns the resulting word.
func FromLabels(a *alphabet.Alphabet, labels ...string) Word {
	w := make(Word, len(labels))
	for i, l := range labels {
		w[i] = a.Intern(l)
	}
	return w
}

// Enumerate returns the first n words over the symbols syms in canonical
// order, starting with ε. It is used by tests and by the characteristic
// sample construction, which needs "all words smaller than p".
func Enumerate(syms []alphabet.Symbol, n int) []Word {
	out := make([]Word, 0, n)
	if n == 0 {
		return out
	}
	out = append(out, Epsilon)
	// Generate level by level: words of length l+1 are words of length l
	// extended by each symbol, with symbols in sorted order.
	sorted := make([]alphabet.Symbol, len(syms))
	copy(sorted, syms)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	level := []Word{Epsilon}
	for len(out) < n && len(sorted) > 0 {
		next := make([]Word, 0, len(level)*len(sorted))
		for _, w := range level {
			for _, s := range sorted {
				next = append(next, Append(w, s))
			}
		}
		for _, w := range next {
			if len(out) == n {
				break
			}
			out = append(out, w)
		}
		level = next
	}
	return out
}

// UpTo returns all words over syms that are ≤ bound in the canonical order
// (including ε and bound itself if bound is over syms). The result is in
// canonical order. Used by the characteristic-sample analysis.
func UpTo(syms []alphabet.Symbol, bound Word) []Word {
	var out []Word
	sorted := make([]alphabet.Symbol, len(syms))
	copy(sorted, syms)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	level := []Word{Epsilon}
	out = append(out, Epsilon)
	for l := 1; l <= len(bound); l++ {
		next := make([]Word, 0, len(level)*len(sorted))
		for _, w := range level {
			for _, s := range sorted {
				nw := Append(w, s)
				if l < len(bound) || Compare(nw, bound) <= 0 {
					out = append(out, nw)
				}
				next = append(next, nw)
			}
		}
		level = next
	}
	return out
}
