// Package hardness implements the paper's intractability reductions as
// executable gadget constructors, making the lower-bound arguments
// testable artifacts:
//
//   - Lemma 3.2 (consistency checking is PSPACE-complete): a reduction
//     from universality of the union of DFAs. Given DFAs D1..Dn over Σ,
//     build a graph and sample consistent iff ∪L(Di) ≠ Σ*.
//   - Lemma 3.3 (consistency for single-path queries with distinct symbols
//     is NP-complete): a reduction from 3SAT. Given a 3CNF formula φ,
//     build a graph and sample admitting a consistent query of the form
//     a1·…·an (pairwise distinct symbols) iff φ is satisfiable.
//
// The constructions follow the appendix's proofs line by line (including
// the fresh symbols s1, s2 and the per-variable gadgets).
package hardness

import (
	"fmt"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/graph"
)

// FromDFAUnion builds the Lemma 3.2 gadget for the DFAs ds, which must
// share an alphabet of numSyms symbols named by alpha (symbols 0..numSyms-1
// must be interned in alpha already). It returns the constructed graph and
// sample, which is consistent iff the union of the DFAs is not universal.
func FromDFAUnion(alpha *alphabet.Alphabet, ds []*automata.DFA) (*graph.Graph, core.Sample) {
	numSyms := alpha.Size()
	g := graph.New(alpha)
	s1 := alpha.Intern("_s1")
	s2 := alpha.Intern("_s2")
	var sample core.Sample

	// Component per DFA Di: νi --s1--> (initial states); final --s2--> νi'.
	for i, d := range ds {
		prefix := fmt.Sprintf("d%d_", i)
		head := g.AddNode(prefix + "head")
		tail := g.AddNode(prefix + "tail")
		states := make([]graph.NodeID, d.NumStates())
		for q := 0; q < d.NumStates(); q++ {
			states[q] = g.AddNode(fmt.Sprintf("%sq%d", prefix, q))
		}
		g.AddEdge(head, s1, states[d.Start])
		for q := 0; q < d.NumStates(); q++ {
			for sym := 0; sym < numSyms; sym++ {
				if t := d.Delta[q][sym]; t != automata.None {
					g.AddEdge(states[q], alphabet.Symbol(sym), states[t])
				}
			}
			if d.Final[q] {
				g.AddEdge(states[q], s2, tail)
			}
		}
		sample.Neg = append(sample.Neg, head)
	}

	// G_{n+1}: ν --s1--> u1 with Σ-self-loops (covers s1·Σ* but never s2).
	{
		head := g.AddNode("gn1_head")
		u1 := g.AddNode("gn1_u1")
		g.AddEdge(head, s1, u1)
		for sym := 0; sym < numSyms; sym++ {
			g.AddEdge(u1, alphabet.Symbol(sym), u1)
		}
		sample.Neg = append(sample.Neg, head)
	}

	// G_{n+2}: ν --s1--> u2 (Σ-loops) --s2--> ν' — the positive: covers
	// exactly s1·Σ*·s2 prefixes.
	{
		head := g.AddNode("gn2_head")
		u2 := g.AddNode("gn2_u2")
		tail := g.AddNode("gn2_tail")
		g.AddEdge(head, s1, u2)
		for sym := 0; sym < numSyms; sym++ {
			g.AddEdge(u2, alphabet.Symbol(sym), u2)
		}
		g.AddEdge(u2, s2, tail)
		sample.Pos = append(sample.Pos, head)
	}
	return g, sample
}

// Literal is a 3SAT literal: variable index (1-based) with sign.
type Literal struct {
	Var     int
	Negated bool
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Eval evaluates the formula under assignment (1-based; assignment[v] is
// the value of variable v).
func (f Formula) Eval(assignment []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assignment[l.Var] != l.Negated {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable decides the formula by brute force (for testing the
// reduction; exponential in NumVars).
func (f Formula) Satisfiable() bool {
	assignment := make([]bool, f.NumVars+1)
	var try func(v int) bool
	try = func(v int) bool {
		if v > f.NumVars {
			return f.Eval(assignment)
		}
		assignment[v] = false
		if try(v + 1) {
			return true
		}
		assignment[v] = true
		return try(v + 1)
	}
	return try(1)
}

// From3SAT builds the Lemma 3.3 gadget: a graph and sample admitting a
// consistent query of the form a1·…·an with pairwise distinct symbols iff
// the formula is satisfiable. It also returns the alphabet, with symbols
// _s1, _s2 and aij (clause i position j).
func From3SAT(f Formula) (*graph.Graph, core.Sample, *alphabet.Alphabet) {
	alpha := alphabet.New()
	s1 := alpha.Intern("_s1")
	s2 := alpha.Intern("_s2")
	k := len(f.Clauses)
	lit := make([][3]alphabet.Symbol, k)
	for i := 0; i < k; i++ {
		for j := 0; j < 3; j++ {
			lit[i][j] = alpha.Intern(fmt.Sprintf("a%d%d", i+1, j+1))
		}
	}
	allSyms := alpha.Symbols()

	g := graph.New(alpha)
	var sample core.Sample

	// Gφ+ : νφ+ --s1--> u1 --ai1/ai2/ai3--> u2 ... --s2--> νφ+'.
	{
		head := g.AddNode("phi_pos_head")
		us := make([]graph.NodeID, k+1)
		for i := range us {
			us[i] = g.AddNode(fmt.Sprintf("phi_pos_u%d", i+1))
		}
		tail := g.AddNode("phi_pos_tail")
		g.AddEdge(head, s1, us[0])
		for i := 0; i < k; i++ {
			for j := 0; j < 3; j++ {
				g.AddEdge(us[i], lit[i][j], us[i+1])
			}
		}
		g.AddEdge(us[k], s2, tail)
		sample.Pos = append(sample.Pos, head)
	}

	// Gφ− : same chain without the final s2 — forces consistent queries to
	// end with s2.
	{
		head := g.AddNode("phi_neg_head")
		us := make([]graph.NodeID, k+1)
		for i := range us {
			us[i] = g.AddNode(fmt.Sprintf("phi_neg_u%d", i+1))
		}
		g.AddEdge(head, s1, us[0])
		for i := 0; i < k; i++ {
			for j := 0; j < 3; j++ {
				g.AddEdge(us[i], lit[i][j], us[i+1])
			}
		}
		sample.Neg = append(sample.Neg, head)
	}

	// Per-variable gadget Gi for variables appearing both positively and
	// negatively: walking both a true-literal and a false-literal of xi
	// reaches the all-loop state ν5, which never dies before s2 — so such
	// queries select the negative head.
	for v := 1; v <= f.NumVars; v++ {
		var ti, fi []alphabet.Symbol
		for i, c := range f.Clauses {
			for j, l := range c {
				if l.Var != v {
					continue
				}
				if l.Negated {
					fi = append(fi, lit[i][j])
				} else {
					ti = append(ti, lit[i][j])
				}
			}
		}
		if len(ti) == 0 || len(fi) == 0 {
			continue
		}
		inT := symSet(ti)
		inF := symSet(fi)
		n1 := g.AddNode(fmt.Sprintf("x%d_1", v))
		n2 := g.AddNode(fmt.Sprintf("x%d_2", v))
		n3 := g.AddNode(fmt.Sprintf("x%d_3", v))
		n4 := g.AddNode(fmt.Sprintf("x%d_4", v))
		n5 := g.AddNode(fmt.Sprintf("x%d_5", v))
		g.AddEdge(n1, s1, n2)
		for _, a := range allSyms {
			switch {
			case a == s2:
				// no s2 transitions except from ν5's loop
			case inT[a]:
				g.AddEdge(n2, a, n4)
			case inF[a]:
				g.AddEdge(n2, a, n3)
			default:
				g.AddEdge(n2, a, n2)
			}
		}
		for _, a := range allSyms {
			switch {
			case a == s2:
			case inT[a]:
				g.AddEdge(n3, a, n5)
			default:
				g.AddEdge(n3, a, n3)
			}
		}
		for _, a := range allSyms {
			switch {
			case a == s2:
			case inF[a]:
				g.AddEdge(n4, a, n5)
			default:
				g.AddEdge(n4, a, n4)
			}
		}
		for _, a := range allSyms {
			g.AddEdge(n5, a, n5)
		}
		sample.Neg = append(sample.Neg, n1)
	}
	return g, sample, alpha
}

func symSet(syms []alphabet.Symbol) map[alphabet.Symbol]bool {
	out := make(map[alphabet.Symbol]bool, len(syms))
	for _, s := range syms {
		out[s] = true
	}
	return out
}

// HasDistinctPathQuery searches for a query of the form a1·…·an with
// pairwise distinct symbols consistent with the sample — the NP witness
// check of Lemma 3.3, implemented by depth-first search over symbol
// sequences (exponential worst case; the certificate is polynomial).
func HasDistinctPathQuery(g *graph.Graph, s core.Sample) bool {
	alpha := g.Alphabet()
	numSyms := alpha.Size()
	// Pin one epoch snapshot for the whole search: every Step below reads
	// the same immutable CSR instead of re-checking the build side.
	snap := g.Snapshot()
	// Track, per candidate word w: the set of nodes reachable from each
	// example's head; accept when every positive still matches and no
	// negative does... a query a1·…·an selects ν iff the word matches from
	// ν, so consistency = word ∈ paths(pos) ∀pos and ∉ paths(neg) ∀neg.
	used := make([]bool, numSyms)
	type sets struct {
		pos [][]graph.NodeID
		neg [][]graph.NodeID
	}
	init := sets{}
	for _, p := range s.Pos {
		init.pos = append(init.pos, []graph.NodeID{p})
	}
	for _, n := range s.Neg {
		init.neg = append(init.neg, []graph.NodeID{n})
	}
	consistent := func(st sets) bool {
		for _, set := range st.pos {
			if len(set) == 0 {
				return false
			}
		}
		for _, set := range st.neg {
			if len(set) > 0 {
				return false
			}
		}
		return true
	}
	var dfs func(st sets) bool
	dfs = func(st sets) bool {
		if consistent(st) {
			return true
		}
		// Prune: a positive died; no extension revives it.
		for _, set := range st.pos {
			if len(set) == 0 {
				return false
			}
		}
		for sym := 0; sym < numSyms; sym++ {
			if used[sym] {
				continue
			}
			next := sets{}
			ok := true
			for _, set := range st.pos {
				ns := snap.Step(set, alphabet.Symbol(sym))
				if len(ns) == 0 {
					ok = false
					break
				}
				next.pos = append(next.pos, ns)
			}
			if !ok {
				continue
			}
			for _, set := range st.neg {
				next.neg = append(next.neg, snap.Step(set, alphabet.Symbol(sym)))
			}
			used[sym] = true
			if dfs(next) {
				return true
			}
			used[sym] = false
		}
		return false
	}
	return dfs(init)
}
