package hardness

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/regex"
)

func compile(t *testing.T, a *alphabet.Alphabet, src string) *automata.DFA {
	t.Helper()
	n, err := regex.Parse(a, src)
	if err != nil {
		t.Fatal(err)
	}
	return automata.CompileRegex(n, a.Size())
}

func TestLemma32ReductionNonUniversal(t *testing.T) {
	// ∪ = a* over {a,b} is not universal → the sample must be consistent.
	a := alphabet.NewSorted("a", "b")
	ds := []*automata.DFA{compile(t, a, "a*")}
	g, s := FromDFAUnion(a, ds)
	if universal, _ := automata.UnionUniversal(ds); universal {
		t.Fatal("a* should not be universal")
	}
	if !core.Consistent(g, s) {
		t.Fatal("reduction: non-universal union must yield a consistent sample")
	}
	// And the learner can actually find a consistent query.
	if _, err := core.Learn(g, s, core.Options{}); err != nil {
		t.Fatalf("learner abstained on consistent gadget: %v", err)
	}
}

func TestLemma32ReductionUniversal(t *testing.T) {
	// ∪ = Σ* → the sample must be inconsistent.
	a := alphabet.NewSorted("a", "b")
	ds := []*automata.DFA{compile(t, a, "(a+b)*")}
	g, s := FromDFAUnion(a, ds)
	if universal, _ := automata.UnionUniversal(ds); !universal {
		t.Fatal("(a+b)* should be universal")
	}
	if core.Consistent(g, s) {
		t.Fatal("reduction: universal union must yield an inconsistent sample")
	}
}

func TestLemma32ReductionSplitUnion(t *testing.T) {
	// Universality achieved only through the union of two DFAs.
	a := alphabet.NewSorted("a", "b")
	ds := []*automata.DFA{
		compile(t, a, "a·(a+b)*+ε"),
		compile(t, a, "b·(a+b)*"),
	}
	g, s := FromDFAUnion(a, ds)
	if core.Consistent(g, s) {
		t.Fatal("split-universal union must yield an inconsistent sample")
	}
	// Removing one DFA breaks universality → consistent again.
	g2, s2 := FromDFAUnion(alphabet.NewSorted("a", "b"), ds[:1])
	if !core.Consistent(g2, s2) {
		t.Fatal("single non-universal DFA must yield a consistent sample")
	}
}

func TestLemma32RandomAgreement(t *testing.T) {
	// Property: consistency of the gadget always agrees with
	// non-universality of the union.
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 40; i++ {
		a := alphabet.NewSorted("a", "b")
		n := 1 + rng.Intn(3)
		ds := make([]*automata.DFA, n)
		for j := range ds {
			ds[j] = automata.RandomDFA(rng, 4, 2, 0.8)
		}
		universal, _ := automata.UnionUniversal(ds)
		g, s := FromDFAUnion(a, ds)
		if got := core.Consistent(g, s); got != !universal {
			t.Fatalf("iter %d: consistent=%v, universal=%v", i, got, universal)
		}
	}
}

func TestFormulaEvalAndSatisfiable(t *testing.T) {
	// (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ ¬x4) — the paper's φ0 — satisfiable.
	phi := Formula{
		NumVars: 4,
		Clauses: []Clause{
			{Literal{1, false}, Literal{2, true}, Literal{3, false}},
			{Literal{1, true}, Literal{3, false}, Literal{4, true}},
		},
	}
	if !phi.Satisfiable() {
		t.Fatal("φ0 should be satisfiable")
	}
	// x ∧ ¬x (padded to 3 literals) is unsatisfiable.
	contradiction := Formula{
		NumVars: 1,
		Clauses: []Clause{
			{Literal{1, false}, Literal{1, false}, Literal{1, false}},
			{Literal{1, true}, Literal{1, true}, Literal{1, true}},
		},
	}
	if contradiction.Satisfiable() {
		t.Fatal("x ∧ ¬x should be unsatisfiable")
	}
}

func TestLemma33ReductionPaperFormula(t *testing.T) {
	phi := Formula{
		NumVars: 4,
		Clauses: []Clause{
			{Literal{1, false}, Literal{2, true}, Literal{3, false}},
			{Literal{1, true}, Literal{3, false}, Literal{4, true}},
		},
	}
	g, s, _ := From3SAT(phi)
	if got := HasDistinctPathQuery(g, s); got != true {
		t.Fatal("satisfiable φ0 must admit a distinct-symbols path query")
	}
}

func TestLemma33ReductionUnsat(t *testing.T) {
	contradiction := Formula{
		NumVars: 1,
		Clauses: []Clause{
			{Literal{1, false}, Literal{1, false}, Literal{1, false}},
			{Literal{1, true}, Literal{1, true}, Literal{1, true}},
		},
	}
	g, s, _ := From3SAT(contradiction)
	if HasDistinctPathQuery(g, s) {
		t.Fatal("unsatisfiable formula must admit no distinct-symbols path query")
	}
}

func TestLemma33RandomAgreement(t *testing.T) {
	// Property: the gadget's distinct-path-query existence always agrees
	// with satisfiability, on random small formulas.
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 30; i++ {
		numVars := 2 + rng.Intn(3)
		numClauses := 1 + rng.Intn(3)
		f := Formula{NumVars: numVars}
		for c := 0; c < numClauses; c++ {
			var cl Clause
			for j := 0; j < 3; j++ {
				cl[j] = Literal{Var: 1 + rng.Intn(numVars), Negated: rng.Intn(2) == 1}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		g, s, _ := From3SAT(f)
		if got, want := HasDistinctPathQuery(g, s), f.Satisfiable(); got != want {
			t.Fatalf("iter %d: gadget=%v, sat=%v (formula %+v)", i, got, want, f)
		}
	}
}
