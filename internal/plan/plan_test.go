package plan

import (
	"math/rand"
	"testing"

	"pathquery/internal/automata"
)

// checkTables verifies every derived table of p against the source DFA by
// direct recomputation.
func checkTables(t *testing.T, p *Plan, d *automata.DFA) {
	t.Helper()
	nq, nsym := d.NumStates(), d.NumSyms
	if p.NumStates != nq || p.NumSyms != nsym || p.Start != d.Start {
		t.Fatalf("dimensions: got (%d,%d,%d), want (%d,%d,%d)",
			p.NumStates, p.NumSyms, p.Start, nq, nsym, d.Start)
	}
	wantLayout := LayoutPacked
	if nq <= 64 {
		wantLayout = LayoutMasked
	}
	if p.Layout != wantLayout {
		t.Fatalf("layout: got %v for %d states", p.Layout, nq)
	}
	for q := 0; q < nq; q++ {
		if p.Final[q] != d.Final[q] {
			t.Fatalf("final[%d] mismatch", q)
		}
		for sym := 0; sym < nsym; sym++ {
			if p.Delta[q*nsym+sym] != d.Delta[q][sym] {
				t.Fatalf("delta[%d][%d] mismatch", q, sym)
			}
		}
	}
	// Reverse buckets: q ∈ RevPred[sym, t] iff δ(q, sym) = t.
	for sym := 0; sym < nsym; sym++ {
		for tgt := 0; tgt < nq; tgt++ {
			k := sym*nq + tgt
			preds := map[int32]bool{}
			for _, pr := range p.RevPred[p.RevOff[k]:p.RevOff[k+1]] {
				preds[pr] = true
			}
			for q := 0; q < nq; q++ {
				want := d.Delta[q][sym] == int32(tgt)
				if preds[int32(q)] != want {
					t.Fatalf("revpred(sym=%d, t=%d, q=%d): got %v want %v",
						sym, tgt, q, preds[int32(q)], want)
				}
				if p.Layout == LayoutMasked {
					got := p.PredMask[k]&(1<<uint(q)) != 0
					if got != want {
						t.Fatalf("predmask(sym=%d, t=%d, q=%d): got %v want %v",
							sym, tgt, q, got, want)
					}
				}
			}
		}
	}
	// Live = can reach a final; Reach = reachable from start (reference BFS).
	live := make([]bool, nq)
	for changed := true; changed; {
		changed = false
		for q := 0; q < nq; q++ {
			if live[q] {
				continue
			}
			ok := d.Final[q]
			for sym := 0; sym < nsym && !ok; sym++ {
				if t := d.Delta[q][sym]; t != automata.None && live[t] {
					ok = true
				}
			}
			if ok {
				live[q], changed = true, true
			}
		}
	}
	reach := make([]bool, nq)
	reach[d.Start] = true
	for changed := true; changed; {
		changed = false
		for q := 0; q < nq; q++ {
			if !reach[q] {
				continue
			}
			for sym := 0; sym < nsym; sym++ {
				if t := d.Delta[q][sym]; t != automata.None && !reach[t] {
					reach[t], changed = true, true
				}
			}
		}
	}
	for q := 0; q < nq; q++ {
		if p.Live[q] != live[q] {
			t.Fatalf("live[%d]: got %v want %v", q, p.Live[q], live[q])
		}
		if p.Reach[q] != reach[q] {
			t.Fatalf("reach[%d]: got %v want %v", q, p.Reach[q], reach[q])
		}
	}
	for sym := 0; sym < nsym; sym++ {
		wantFirst := false
		if t := d.Delta[d.Start][sym]; t != automata.None && live[t] {
			wantFirst = true
		}
		if p.FirstSym[sym] != wantFirst {
			t.Fatalf("firstsym[%d]: got %v want %v", sym, p.FirstSym[sym], wantFirst)
		}
		wantLast := false
		for q := 0; q < nq; q++ {
			if t := d.Delta[q][sym]; t != automata.None && d.Final[t] {
				wantLast = true
			}
		}
		if p.LastSym[sym] != wantLast {
			t.Fatalf("lastsym[%d]: got %v want %v", sym, p.LastSym[sym], wantLast)
		}
	}
}

func TestFromDFATablesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		nq := 1 + rng.Intn(8)
		nsym := 1 + rng.Intn(4)
		d := automata.RandomNonEmptyDFA(rng, nq, nsym, 0.2+0.6*rng.Float64())
		checkTables(t, FromDFA(d), d)
	}
}

// TestFromDFAPackedLayout pins the layout switch at 65 states and checks
// the packed tables on a large chain DFA (a^64·b accepted).
func TestFromDFAPackedLayout(t *testing.T) {
	d := automata.NewDFA(66, 2)
	for q := 0; q < 64; q++ {
		d.Delta[q][0] = int32(q + 1)
	}
	d.Delta[64][1] = 65
	d.Final[65] = true
	p := FromDFA(d)
	if p.Layout != LayoutPacked {
		t.Fatalf("66-state DFA got layout %v", p.Layout)
	}
	checkTables(t, p, d)
	if p.FirstSym[1] || !p.FirstSym[0] {
		t.Fatalf("firstsym = %v, want only symbol 0", p.FirstSym)
	}
	if p.LastSym[0] || !p.LastSym[1] {
		t.Fatalf("lastsym = %v, want only symbol 1", p.LastSym)
	}
}

// TestCompileCanonicalizes verifies Compile prunes dead and unreachable
// states (Minimize) while FromDFA preserves shape.
func TestCompileCanonicalizes(t *testing.T) {
	// States: 0 -a-> 1 (final); 2 unreachable; 3 dead (reachable, no
	// accept): 0 -b-> 3.
	d := automata.NewDFA(4, 2)
	d.Delta[0][0] = 1
	d.Delta[0][1] = 3
	d.Final[1] = true
	c := Compile(d)
	if c.NumStates != 2 {
		t.Fatalf("Compile kept %d states, want 2", c.NumStates)
	}
	f := FromDFA(d)
	if f.NumStates != 4 {
		t.Fatalf("FromDFA reshaped to %d states", f.NumStates)
	}
	if f.Live[3] || f.Live[2] || !f.Live[0] || !f.Live[1] {
		t.Fatalf("live = %v", f.Live)
	}
	if f.Reach[2] || !f.Reach[3] {
		t.Fatalf("reach = %v", f.Reach)
	}
	if c.Empty() || f.Empty() {
		t.Fatal("nonempty language reported empty")
	}
	if !FromDFA(automata.NewDFA(1, 2)).Empty() {
		t.Fatal("empty language not reported empty")
	}
}

func TestEpsilonAndEmpty(t *testing.T) {
	eps := automata.NewDFA(1, 1)
	eps.Final[0] = true
	p := FromDFA(eps)
	if !p.AcceptsEpsilon() || p.Empty() {
		t.Fatal("ε-DFA misclassified")
	}
	if p.CompileTime < 0 {
		t.Fatal("negative compile time")
	}
}

// TestAlphaMask verifies the plan's alphabet bitmask against direct
// recomputation: SymBit(sym) is set iff some transition on sym leaves a
// reachable state for a live target — exactly the transitions an
// accepting run can take, so the engine's delta-disjointness test
// (delta.SymMask & AlphaMask == 0) never falsely retains a cached
// result. Symbols ≥ 64 hash into the 64-bit mask; collisions are safe
// (conservative) by construction, which random DFAs exercise only below
// the fold, so the hash itself is pinned separately.
func TestAlphaMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		nq := 1 + rng.Intn(8)
		nsym := 1 + rng.Intn(5)
		d := automata.RandomNonEmptyDFA(rng, nq, nsym, 0.2+0.6*rng.Float64())
		p := FromDFA(d)
		var want uint64
		for q := 0; q < d.NumStates(); q++ {
			if !p.Reach[q] {
				continue
			}
			for sym := 0; sym < d.NumSyms; sym++ {
				if tgt := d.Delta[q][sym]; tgt != automata.None && p.Live[tgt] {
					want |= SymBit(sym)
				}
			}
		}
		if p.AlphaMask != want {
			t.Fatalf("iter %d: AlphaMask = %b, recomputed %b", i, p.AlphaMask, want)
		}
	}
	if SymBit(0) != 1 || SymBit(63) != 1<<63 || SymBit(64) != 1 || SymBit(65) != 2 {
		t.Fatal("SymBit must fold symbol indices mod 64")
	}
	// A dead transition (target cannot reach a final state) must not
	// contribute: a·b accepted, c goes to a sink.
	d := automata.NewDFA(4, 3)
	d.Final[2] = true
	d.Delta[0][0] = 1
	d.Delta[1][1] = 2
	d.Delta[0][2] = 3 // sink
	p := FromDFA(d)
	if want := SymBit(0) | SymBit(1); p.AlphaMask != want {
		t.Fatalf("chain AlphaMask = %b, want %b (dead sink transition excluded)", p.AlphaMask, want)
	}
}
