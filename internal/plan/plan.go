// Package plan compiles a query DFA into an immutable evaluation plan —
// the IR every product-traversal evaluator in the system consumes.
//
// The serving engine, the learner's consistency checks, and the Table-1
// experiments all spend their time in product searches between a graph and
// a DFA. Before this package, every call handed a raw *automata.DFA to the
// graph layer, which rebuilt the same derived structures per call:
// per-symbol reverse-transition buckets for the backward monadic pass,
// predecessor bit-masks for the |Q| ≤ 64 engine, and final-state lookups.
// A Plan precomputes all of it exactly once per query:
//
//   - a flat forward transition table (Delta, one contiguous int32 slab
//     instead of a [][]int32 with one bounds check and pointer chase per
//     state),
//   - the reverse DFA as packed per-(symbol, state) predecessor buckets
//     (RevOff/RevPred) — the table backward evaluation walks,
//   - when |Q| ≤ 64, additionally the mask layout: PredMask[sym·|Q|+q] is
//     the bitmask of states p with δ(p, sym) = q, and FinalPredMask[sym]
//     the union over final q — the whole first backward level as one mask,
//   - accept-reachability (Live/LiveMask): states from which a final state
//     is reachable, so forward searches never enter a dead region,
//   - first-symbol filters (FirstSym/LastSym): the symbols that can start,
//     respectively end, an accepted word — used to skip whole nodes and
//     CSR segments before any product pair is materialized.
//
// The Layout — LayoutMasked vs LayoutPacked — is chosen at compile time
// from the state count, so evaluators branch once per call, not per
// transition. Plans are immutable after construction and safe for
// unlimited concurrent use; the serving engine interns one Plan per
// canonical query language and shares it across all requests.
package plan

import (
	"time"

	"pathquery/internal/automata"
)

// None marks an absent transition, mirroring automata.None.
const None int32 = automata.None

// Layout selects the reverse-transition representation the monadic
// backward engine uses.
type Layout uint8

const (
	// LayoutMasked packs each node's marked state set into one uint64:
	// chosen when the DFA has at most 64 states (every learned and
	// workload query in practice).
	LayoutMasked Layout = iota
	// LayoutPacked indexes flat predecessor buckets by sym·|Q|+q: the
	// general layout for large automata.
	LayoutPacked
)

func (l Layout) String() string {
	if l == LayoutMasked {
		return "masked"
	}
	return "packed"
}

// Plan is a compiled, immutable evaluation plan for one query DFA. All
// fields are read-only after construction; evaluators index the tables
// directly. Plans are safe for concurrent use.
type Plan struct {
	// NumStates and NumSyms dimension every table below.
	NumStates int
	NumSyms   int
	// Start is the initial state.
	Start int32
	// Layout is the reverse-table representation chosen at compile time.
	Layout Layout

	// Delta is the flat forward transition table: Delta[q·NumSyms+sym] is
	// δ(q, sym), or None.
	Delta []int32
	// Final[q] reports whether q accepts; Finals lists the final states in
	// increasing order.
	Final  []bool
	Finals []int32
	// FinalMask is the bitmask of final states (LayoutMasked only).
	FinalMask uint64

	// Live[q] reports whether a final state is reachable from q — the
	// accept-reachability set. Forward searches skip transitions into
	// non-live states: they can never contribute to any result.
	Live []bool
	// LiveMask is the bitmask form of Live (LayoutMasked only).
	LiveMask uint64
	// Reach[q] reports whether q is reachable from Start — the mirror of
	// Live for backward evaluation: predecessors outside Reach can never
	// lie on an accepting run, so backward searches skip them.
	Reach []bool

	// FirstSym[sym] reports whether some accepted word starts with sym:
	// δ(Start, sym) exists and is live. A node with no out-edge labeled by
	// a first symbol cannot be selected (unless ε is accepted), so forward
	// searches skip it without touching the product space.
	FirstSym []bool
	// LastSym[sym] reports whether some accepted word ends with sym: a
	// transition on sym into a final state exists. Backward evaluation
	// seeds only from in-segments labeled by a last symbol.
	LastSym []bool

	// RevOff/RevPred are the packed reverse DFA: the predecessors of q on
	// sym are RevPred[RevOff[sym·NumStates+q]:RevOff[sym·NumStates+q+1]].
	// Built for every layout — backward traversal always walks them.
	RevOff  []int32
	RevPred []int32

	// PredMask[sym·NumStates+q] is the bitmask of states p with
	// δ(p, sym) = q; FinalPredMask[sym] is the union over final q — the
	// first backward level of the monadic mask engine, precomputed.
	// LayoutMasked only.
	PredMask      []uint64
	FinalPredMask []uint64

	// AlphaMask is the 64-bit hashed alphabet of the plan: SymBit(sym)
	// OR-ed over every useful transition — one on a path from Start to a
	// final state (Reach[p] && Live[δ(p,sym)]). The engine's incremental
	// result maintenance tests "does this epoch delta touch this plan?"
	// with one AND against the delta's symbol mask. The hash is
	// conservative under collision (symbols 64 apart share a bit): a
	// false intersection only forces an unnecessary regrow or drop,
	// never a wrong retain.
	AlphaMask uint64

	// CompileTime is how long table construction (plus canonicalization,
	// for Compile) took — surfaced by the engine's /plans endpoint.
	CompileTime time.Duration

	dfa *automata.DFA
}

// Compile canonicalizes d — minimize, which prunes unreachable and dead
// states — and builds its plan. Use for raw automata of unknown shape; a
// DFA that is already canonical (query.Query holds one) compiles faster
// via FromDFA.
func Compile(d *automata.DFA) *Plan {
	start := time.Now()
	p := build(automata.Minimize(d))
	p.CompileTime = time.Since(start)
	return p
}

// FromDFA builds the plan of d exactly as given: no states are added,
// removed, or renumbered, so the product-space shape (and the masked vs
// packed layout choice) matches the input automaton. Dead regions are
// still excluded from evaluation through the Live set.
func FromDFA(d *automata.DFA) *Plan {
	start := time.Now()
	p := build(d)
	p.CompileTime = time.Since(start)
	return p
}

// DFA returns the automaton the plan was built from. Callers must not
// modify it.
func (p *Plan) DFA() *automata.DFA { return p.dfa }

// Empty reports whether the plan's language is empty — no evaluation can
// select anything.
func (p *Plan) Empty() bool {
	return p.NumStates == 0 || !p.Live[p.Start]
}

// AcceptsEpsilon reports whether ε is accepted (the start state is final).
func (p *Plan) AcceptsEpsilon() bool {
	return p.NumStates > 0 && p.Final[p.Start]
}

// SymBit hashes a symbol index into a position of a 64-bit symbol mask.
// Plans (AlphaMask) and epoch deltas (graph.Delta.SymMask) must hash with
// the same function for the disjointness AND to be sound; this is the one
// definition both use.
func SymBit(sym int) uint64 { return 1 << (uint(sym) & 63) }

func build(d *automata.DFA) *Plan {
	nq, nsym := d.NumStates(), d.NumSyms
	p := &Plan{
		NumStates: nq,
		NumSyms:   nsym,
		Start:     d.Start,
		Layout:    LayoutPacked,
		dfa:       d,
	}
	if nq <= 64 {
		p.Layout = LayoutMasked
	}
	if nq == 0 {
		return p
	}

	// Flat forward table and finals.
	p.Delta = make([]int32, nq*nsym)
	p.Final = make([]bool, nq)
	for q := 0; q < nq; q++ {
		copy(p.Delta[q*nsym:(q+1)*nsym], d.Delta[q])
		if d.Final[q] {
			p.Final[q] = true
			p.Finals = append(p.Finals, int32(q))
			if p.Layout == LayoutMasked {
				p.FinalMask |= 1 << uint(q)
			}
		}
	}

	// Packed reverse DFA, bucketed by sym·|Q|+q: one counting pass sizes
	// the buckets, a second fills them.
	p.RevOff = make([]int32, nsym*nq+1)
	for q := 0; q < nq; q++ {
		for sym := 0; sym < nsym; sym++ {
			if t := p.Delta[q*nsym+sym]; t != None {
				p.RevOff[sym*nq+int(t)+1]++
			}
		}
	}
	for i := 1; i < len(p.RevOff); i++ {
		p.RevOff[i] += p.RevOff[i-1]
	}
	p.RevPred = make([]int32, p.RevOff[len(p.RevOff)-1])
	fill := append([]int32(nil), p.RevOff[:len(p.RevOff)-1]...)
	for q := 0; q < nq; q++ {
		for sym := 0; sym < nsym; sym++ {
			if t := p.Delta[q*nsym+sym]; t != None {
				k := sym*nq + int(t)
				p.RevPred[fill[k]] = int32(q)
				fill[k]++
			}
		}
	}

	// Accept-reachability over the reverse table.
	p.Live = make([]bool, nq)
	stack := append([]int32(nil), p.Finals...)
	for _, f := range p.Finals {
		p.Live[f] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sym := 0; sym < nsym; sym++ {
			k := sym*nq + int(q)
			for _, pr := range p.RevPred[p.RevOff[k]:p.RevOff[k+1]] {
				if !p.Live[pr] {
					p.Live[pr] = true
					stack = append(stack, pr)
				}
			}
		}
	}
	if p.Layout == LayoutMasked {
		for q := 0; q < nq; q++ {
			if p.Live[q] {
				p.LiveMask |= 1 << uint(q)
			}
		}
	}

	// Start-reachability over the forward table.
	p.Reach = make([]bool, nq)
	p.Reach[p.Start] = true
	stack = append(stack[:0], p.Start)
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for sym := 0; sym < nsym; sym++ {
			if t := p.Delta[int(q)*nsym+sym]; t != None && !p.Reach[t] {
				p.Reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	// Hashed useful alphabet: transitions outside Reach×Live cannot lie
	// on an accepting run, so their symbols do not make a graph delta
	// relevant to this plan.
	for q := 0; q < nq; q++ {
		if !p.Reach[q] {
			continue
		}
		for sym := 0; sym < nsym; sym++ {
			if t := p.Delta[q*nsym+sym]; t != None && p.Live[t] {
				p.AlphaMask |= SymBit(sym)
			}
		}
	}

	// Symbol filters.
	p.FirstSym = make([]bool, nsym)
	for sym := 0; sym < nsym; sym++ {
		if t := p.Delta[int(p.Start)*nsym+sym]; t != None && p.Live[t] {
			p.FirstSym[sym] = true
		}
	}
	p.LastSym = make([]bool, nsym)
	for sym := 0; sym < nsym; sym++ {
		for _, f := range p.Finals {
			k := sym*nq + int(f)
			if p.RevOff[k] < p.RevOff[k+1] {
				p.LastSym[sym] = true
				break
			}
		}
	}

	// Masked reverse layout.
	if p.Layout == LayoutMasked {
		p.PredMask = make([]uint64, nsym*nq)
		for q := 0; q < nq; q++ {
			for sym := 0; sym < nsym; sym++ {
				if t := p.Delta[q*nsym+sym]; t != None {
					p.PredMask[sym*nq+int(t)] |= 1 << uint(q)
				}
			}
		}
		p.FinalPredMask = make([]uint64, nsym)
		for sym := 0; sym < nsym; sym++ {
			var pm uint64
			for _, f := range p.Finals {
				pm |= p.PredMask[sym*nq+int(f)]
			}
			p.FinalPredMask[sym] = pm
		}
	}
	return p
}
