// Package rpni implements the classic RPNI algorithm (Oncina & García,
// 1992) for learning a regular language from positive and negative word
// examples, together with the characteristic-sample construction that
// guarantees identification. The paper builds on both: its learner
// generalizes SCPs "by state merges, similarly to RPNI" (Section 3.2), and
// its learnability proof (Theorem 3.5) constructs graph samples whose SCPs
// are exactly the word sample RPNI needs.
package rpni

import (
	"fmt"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/words"
)

// Sample is a set of labeled words.
type Sample struct {
	Pos []words.Word
	Neg []words.Word
}

// Validate rejects samples labeling a word both positive and negative.
func (s Sample) Validate() error {
	seen := make(map[string]bool, len(s.Pos))
	for _, w := range s.Pos {
		seen[words.Key(w)] = true
	}
	for _, w := range s.Neg {
		if seen[words.Key(w)] {
			return fmt.Errorf("rpni: word labeled both positive and negative")
		}
	}
	return nil
}

// Merge combines two samples.
func (s Sample) Merge(o Sample) Sample {
	return Sample{
		Pos: words.Dedup(append(append([]words.Word{}, s.Pos...), o.Pos...)),
		Neg: words.Dedup(append(append([]words.Word{}, s.Neg...), o.Neg...)),
	}
}

// Learn runs RPNI: build the augmented PTA of the sample and generalize by
// red-blue state merging, rejecting merges that fold an accepting state
// into a rejecting one. The result is the canonical DFA of the learned
// language; it accepts every positive and rejects every negative.
func Learn(numSyms int, s Sample) (*automata.DFA, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Pos) == 0 {
		// No positive evidence: the empty language is the canonical
		// consistent hypothesis.
		return automata.NewDFA(1, numSyms), nil
	}
	pta := automata.BuildPTA(numSyms, s.Pos, s.Neg)
	m := automata.NewMerger(pta)
	m.Generalize(nil)
	return automata.Minimize(m.DFA()), nil
}

// CharacteristicSample returns a sample that makes RPNI identify L(d)
// exactly: any sample containing it (consistently) drives Learn to the
// canonical DFA of L(d). The construction is the standard one over the
// *complete* canonical DFA (the sink class included — merges with the
// sink must be blocked too):
//
//   - SP: the canonical-order shortest prefix reaching each state;
//   - kernel N: ε plus every SP extended by one transition;
//   - P+: every kernel word with a live residual, completed to a final
//     state by the shortest completion;
//   - for every kernel word u and shortest prefix u' reaching distinct
//     states, a shortest distinguishing suffix w, contributing u·w and
//     u'·w to P+ or P− according to membership in L(d).
//
// The sample size is polynomial in the size of the canonical DFA, and the
// longest word is bounded by 2·n+1 (the bound behind the paper's choice of
// k in Theorem 3.5).
func CharacteristicSample(d *automata.DFA) Sample {
	c := automata.Minimize(d).Complete()
	numSyms := c.NumSyms
	access, _ := automata.AccessWords(c)
	comp, hasComp := automata.CompletionWords(c)

	type entry struct {
		word  words.Word
		state int32
	}
	var kernel []entry
	kernel = append(kernel, entry{words.Epsilon, c.Start})
	for q := int32(0); int(q) < c.NumStates(); q++ {
		for sym := 0; sym < numSyms; sym++ {
			t := c.Delta[q][sym]
			if t == automata.None {
				continue
			}
			kernel = append(kernel, entry{words.Append(access[q], alphabet.Symbol(sym)), t})
		}
	}

	var s Sample
	addPos := func(w words.Word) { s.Pos = append(s.Pos, w) }
	addNeg := func(w words.Word) { s.Neg = append(s.Neg, w) }
	classify := func(w words.Word) {
		if c.Accepts(w) {
			addPos(w)
		} else {
			addNeg(w)
		}
	}

	// P+ core: kernel completions.
	for _, e := range kernel {
		if hasComp[e.state] {
			addPos(words.Concat(e.word, comp[e.state]))
		}
	}
	// Distinguishing pairs: kernel word vs shortest prefix.
	for _, e := range kernel {
		for q := int32(0); int(q) < c.NumStates(); q++ {
			if q == e.state {
				continue
			}
			w, ok := distinguish(c, e.state, q)
			if !ok {
				continue // states equivalent: impossible on a minimal DFA
			}
			classify(words.Concat(e.word, w))
			classify(words.Concat(access[q], w))
		}
	}
	s.Pos = words.Dedup(s.Pos)
	s.Neg = words.Dedup(s.Neg)
	return s
}

// distinguish returns the canonical-order minimal word w with
// δ(s1, w) ∈ F xor δ(s2, w) ∈ F, by BFS over state pairs of the complete
// DFA c. ok=false iff the states are equivalent.
func distinguish(c *automata.DFA, s1, s2 int32) (words.Word, bool) {
	type pair struct{ x, y int32 }
	type node struct {
		p    pair
		word words.Word
	}
	seen := map[pair]bool{{s1, s2}: true}
	queue := []node{{pair{s1, s2}, words.Epsilon}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if c.Final[cur.p.x] != c.Final[cur.p.y] {
			return cur.word, true
		}
		for sym := 0; sym < c.NumSyms; sym++ {
			np := pair{c.Delta[cur.p.x][sym], c.Delta[cur.p.y][sym]}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{np, words.Append(cur.word, alphabet.Symbol(sym))})
			}
		}
	}
	return nil, false
}
