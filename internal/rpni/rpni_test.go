package rpni

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/regex"
	"pathquery/internal/words"
)

func compile(t *testing.T, a *alphabet.Alphabet, src string) *automata.DFA {
	t.Helper()
	n, err := regex.Parse(a, src)
	if err != nil {
		t.Fatal(err)
	}
	return automata.CompileRegex(n, a.Size())
}

func TestLearnConsistency(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	s := Sample{
		Pos: []words.Word{words.FromLabels(a, "a"), words.FromLabels(a, "a", "a", "a")},
		Neg: []words.Word{words.Epsilon, words.FromLabels(a, "a", "a")},
	}
	d, err := Learn(a.Size(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Pos {
		if !d.Accepts(w) {
			t.Errorf("positive %v rejected", w)
		}
	}
	for _, w := range s.Neg {
		if d.Accepts(w) {
			t.Errorf("negative %v accepted", w)
		}
	}
}

func TestLearnEmptyPositives(t *testing.T) {
	d, err := Learn(2, Sample{Neg: []words.Word{words.Epsilon}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Fatal("no positives should learn the empty language")
	}
}

func TestLearnContradiction(t *testing.T) {
	w := words.Word{0}
	if _, err := Learn(2, Sample{Pos: []words.Word{w}, Neg: []words.Word{w}}); err == nil {
		t.Fatal("contradictory sample should error")
	}
}

func TestCharacteristicSamplePaperExample(t *testing.T) {
	// Theorem 3.5's example: for q = (a·b)*·c, "we obtain P+ = {c, abc}
	// and P− = {ε, a, ab, ac, bc}". Our construction is the standard one
	// over the complete DFA, so it may contain more words, but it must
	// contain the paper's P+ core and stay label-consistent.
	a := alphabet.NewSorted("a", "b", "c")
	d := compile(t, a, "(a·b)*·c")
	s := CharacteristicSample(d)
	has := func(ws []words.Word, labels ...string) bool {
		w := words.FromLabels(a, labels...)
		for _, x := range ws {
			if words.Equal(x, w) {
				return true
			}
		}
		return false
	}
	if !has(s.Pos, "c") || !has(s.Pos, "a", "b", "c") {
		t.Fatalf("P+ missing paper core: %v", s.Pos)
	}
	for _, w := range s.Pos {
		if !d.Accepts(w) {
			t.Fatalf("P+ word %v not in L", words.String(w, a))
		}
	}
	for _, w := range s.Neg {
		if d.Accepts(w) {
			t.Fatalf("P− word %v in L", words.String(w, a))
		}
	}
}

func TestCharacteristicSampleWordLengthBound(t *testing.T) {
	// The longest characteristic word is bounded by 2·n+1 where n is the
	// canonical DFA size — the bound behind the paper's k (Theorem 3.5).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		d := automata.RandomNonEmptyDFA(rng, 6, 2, 0.7)
		n := d.NumStates()
		s := CharacteristicSample(d)
		for _, w := range append(append([]words.Word{}, s.Pos...), s.Neg...) {
			if len(w) > 2*n+1 {
				t.Fatalf("iter %d: word of length %d exceeds 2·%d+1", i, len(w), n)
			}
		}
	}
}

func TestRPNIIdentifiesFromCharacteristicSample(t *testing.T) {
	// The central property: Learn(CharacteristicSample(A)) = A for random
	// minimal DFAs. This is the guarantee Theorem 3.5 lifts to graphs.
	rng := rand.New(rand.NewSource(37))
	identified := 0
	for i := 0; i < 200; i++ {
		target := automata.RandomNonEmptyDFA(rng, 6, 2, 0.7)
		s := CharacteristicSample(target)
		got, err := Learn(2, s)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !got.Equal(target) {
			t.Fatalf("iter %d: learned %v, want %v (sample %d+/%d-)",
				i, got, target, len(s.Pos), len(s.Neg))
		}
		identified++
	}
	if identified == 0 {
		t.Fatal("no targets exercised")
	}
}

func TestRPNIIdentificationSurvivesExtraExamples(t *testing.T) {
	// Identification in the limit: any consistent extension of the
	// characteristic sample still learns the target.
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		target := automata.RandomNonEmptyDFA(rng, 5, 2, 0.7)
		s := CharacteristicSample(target)
		// Add random consistent labels.
		for j := 0; j < 10; j++ {
			n := rng.Intn(6)
			w := make(words.Word, n)
			for k := range w {
				w[k] = alphabet.Symbol(rng.Intn(2))
			}
			if target.Accepts(w) {
				s.Pos = append(s.Pos, w)
			} else {
				s.Neg = append(s.Neg, w)
			}
		}
		s.Pos = words.Dedup(s.Pos)
		s.Neg = words.Dedup(s.Neg)
		got, err := Learn(2, s)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !got.Equal(target) {
			t.Fatalf("iter %d: extension broke identification", i)
		}
	}
}

func TestCharacteristicSamplePolynomialSize(t *testing.T) {
	// |CS| is polynomial in the DFA size: crudely, O(n²·|Σ|) words.
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		d := automata.RandomNonEmptyDFA(rng, 8, 2, 0.7)
		n := d.NumStates() + 1 // sink included
		s := CharacteristicSample(d)
		bound := 4 * n * n * 2
		if len(s.Pos)+len(s.Neg) > bound {
			t.Fatalf("iter %d: sample size %d exceeds %d", i, len(s.Pos)+len(s.Neg), bound)
		}
	}
}

func TestSampleMerge(t *testing.T) {
	a := alphabet.NewSorted("a", "b")
	s1 := Sample{Pos: []words.Word{words.FromLabels(a, "a")}}
	s2 := Sample{Pos: []words.Word{words.FromLabels(a, "a"), words.FromLabels(a, "b")}}
	m := s1.Merge(s2)
	if len(m.Pos) != 2 {
		t.Fatalf("merge = %v", m.Pos)
	}
}

func TestLearnKnownLanguages(t *testing.T) {
	// End-to-end: characteristic samples of named languages.
	a := alphabet.NewSorted("a", "b", "c")
	for _, src := range []string{"a", "a*·b", "(a·b)*·c", "a·(b+c)", "(a+b)*", "a·a·a"} {
		target := compile(t, a, src)
		s := CharacteristicSample(target)
		got, err := Learn(a.Size(), s)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !got.Equal(target) {
			t.Fatalf("%s: learned %v, want %v", src, got, target)
		}
	}
}
