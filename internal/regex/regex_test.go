package regex

import (
	"testing"

	"pathquery/internal/alphabet"
)

func TestParsePaperQueries(t *testing.T) {
	// The queries appearing in the paper must parse and round-trip.
	cases := []string{
		"(tram+bus)*·cinema",
		"ProteinPurification·ProteinSeparation*·MassSpectrometry",
		"(a·b)*·c",
		"c+(a·b·c)",
		"b·b·c·c",
		"a·b*",
	}
	a := alphabet.New()
	for _, src := range cases {
		n, err := Parse(a, src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := n.String(a)
		again, err := Parse(a, printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if again.String(a) != printed {
			t.Fatalf("print not stable: %q -> %q", printed, again.String(a))
		}
	}
}

func TestParseAlternativeSyntax(t *testing.T) {
	a := alphabet.New()
	dot, err := Parse(a, "a.b")
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Parse(a, "a·b")
	if err != nil {
		t.Fatal(err)
	}
	if dot.String(a) != mid.String(a) {
		t.Fatalf("'.' and '·' parse differently: %q vs %q", dot.String(a), mid.String(a))
	}
	pipe, err := Parse(a, "a|b")
	if err != nil {
		t.Fatal(err)
	}
	plus, err := Parse(a, "a+b")
	if err != nil {
		t.Fatal(err)
	}
	if pipe.String(a) != plus.String(a) {
		t.Fatalf("'|' and '+' parse differently")
	}
}

func TestParseImplicitConcat(t *testing.T) {
	a := alphabet.New()
	implicit := MustParse(a, "(a+b)c")
	explicit := MustParse(a, "(a+b)·c")
	if implicit.String(a) != explicit.String(a) {
		t.Fatalf("implicit concat differs: %q vs %q", implicit.String(a), explicit.String(a))
	}
}

func TestParseEpsilon(t *testing.T) {
	a := alphabet.New()
	for _, src := range []string{"ε", "()"} {
		n, err := Parse(a, src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if n.Kind != Epsilon {
			t.Fatalf("Parse(%q).Kind = %v, want Epsilon", src, n.Kind)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	a := alphabet.New()
	// Star binds tighter than concat, concat tighter than union.
	n := MustParse(a, "a+b·c*")
	if n.Kind != Union {
		t.Fatalf("top = %v, want Union", n.Kind)
	}
	if n.Right.Kind != Concat {
		t.Fatalf("right = %v, want Concat", n.Right.Kind)
	}
	if n.Right.Right.Kind != Star {
		t.Fatalf("right.right = %v, want Star", n.Right.Right.Kind)
	}
}

func TestParseErrors(t *testing.T) {
	a := alphabet.New()
	for _, src := range []string{"", "(a", "a+", "*a", "a)", "a++b"} {
		if _, err := Parse(a, src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestMultiCharacterLabels(t *testing.T) {
	a := alphabet.New()
	n := MustParse(a, "ProteinPurification·ProteinSeparation*·MassSpectrometry")
	syms := n.Symbols()
	if len(syms) != 3 {
		t.Fatalf("symbols = %d, want 3", len(syms))
	}
	if _, ok := a.Lookup("ProteinSeparation"); !ok {
		t.Fatal("multi-char label not interned")
	}
}

func TestConstructorSimplifications(t *testing.T) {
	a := alphabet.New()
	x := NewLiteral(a.Intern("x"))
	if NewUnion(NewEmpty(), x) != x {
		t.Fatal("∅+x should fold to x")
	}
	if NewConcat(NewEpsilon(), x) != x {
		t.Fatal("ε·x should fold to x")
	}
	if NewConcat(NewEmpty(), x).Kind != Empty {
		t.Fatal("∅·x should fold to ∅")
	}
	if NewStar(NewEmpty()).Kind != Epsilon {
		t.Fatal("∅* should fold to ε")
	}
	if NewStar(NewStar(x)) != NewStar(x) && NewStar(NewStar(x)).Kind != Star {
		t.Fatal("(x*)* should stay a single star")
	}
	st := NewStar(x)
	if NewStar(st) != st {
		t.Fatal("(x*)* should fold to x*")
	}
}

func TestUnionAllConcatAll(t *testing.T) {
	a := alphabet.New()
	x, y := NewLiteral(a.Intern("x")), NewLiteral(a.Intern("y"))
	if UnionAll().Kind != Empty {
		t.Fatal("empty UnionAll should be ∅")
	}
	if ConcatAll().Kind != Epsilon {
		t.Fatal("empty ConcatAll should be ε")
	}
	u := UnionAll(x, y)
	if u.Kind != Union {
		t.Fatalf("UnionAll = %v", u.Kind)
	}
	c := ConcatAll(x, y, x)
	if c.String(a) != "x·y·x" {
		t.Fatalf("ConcatAll = %q", c.String(a))
	}
}

func TestClassNode(t *testing.T) {
	a := alphabet.New()
	cls := alphabet.NewClass(a, "A", "p", "q", "r")
	n := ClassNode(cls)
	if got := n.String(a); got != "p+q+r" {
		t.Fatalf("ClassNode = %q", got)
	}
}

func TestSize(t *testing.T) {
	a := alphabet.New()
	n := MustParse(a, "(a·b)*·c")
	if n.Size() != 6 { // concat, star, concat, a, b, c
		t.Fatalf("Size = %d, want 6", n.Size())
	}
}

func TestStringParenthesization(t *testing.T) {
	a := alphabet.New()
	n := MustParse(a, "(a+b)·c")
	if got := n.String(a); got != "(a+b)·c" {
		t.Fatalf("String = %q", got)
	}
	n2 := MustParse(a, "a+b·c")
	if got := n2.String(a); got != "a+b·c" {
		t.Fatalf("String = %q", got)
	}
	n3 := MustParse(a, "(a·b)*")
	if got := n3.String(a); got != "(a·b)*" {
		t.Fatalf("String = %q", got)
	}
	n4 := MustParse(a, "a*")
	if got := n4.String(a); got != "a*" {
		t.Fatalf("String = %q", got)
	}
}
