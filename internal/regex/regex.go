// Package regex implements the regular expressions of the paper (Section 2):
//
//	q := ε | a (a ∈ Σ) | q1 + q2 | q1 · q2 | q*
//
// with '+' for disjunction, '·' (or '.') for concatenation and '*' for the
// Kleene star. Labels are arbitrary identifiers (e.g. "tram",
// "ProteinPurification"), interned into an alphabet.
package regex

import (
	"fmt"
	"strings"

	"pathquery/internal/alphabet"
)

// Kind discriminates AST nodes.
type Kind int

const (
	// Empty is the empty language ∅ (not expressible in the paper's
	// grammar, but useful internally for simplification and for
	// DFA→regex extraction).
	Empty Kind = iota
	// Epsilon is the empty word ε.
	Epsilon
	// Literal is a single symbol a ∈ Σ.
	Literal
	// Union is q1 + q2.
	Union
	// Concat is q1 · q2.
	Concat
	// Star is q*.
	Star
)

// Node is a regular-expression AST node. Nodes are immutable once built.
type Node struct {
	Kind  Kind
	Sym   alphabet.Symbol // Literal only
	Left  *Node           // Union, Concat: left operand; Star: operand
	Right *Node           // Union, Concat
}

// Constructors. They perform light local simplification so that printed
// expressions stay readable (∅ and ε units are folded away).

// NewEmpty returns ∅.
func NewEmpty() *Node { return &Node{Kind: Empty} }

// NewEpsilon returns ε.
func NewEpsilon() *Node { return &Node{Kind: Epsilon} }

// NewLiteral returns the single-symbol expression a.
func NewLiteral(s alphabet.Symbol) *Node { return &Node{Kind: Literal, Sym: s} }

// NewUnion returns l + r, folding ∅ units.
func NewUnion(l, r *Node) *Node {
	switch {
	case l == nil || l.Kind == Empty:
		return r
	case r == nil || r.Kind == Empty:
		return l
	case l.Kind == Epsilon && r.Kind == Epsilon:
		return l
	}
	return &Node{Kind: Union, Left: l, Right: r}
}

// NewConcat returns l · r, folding ε and ∅ units.
func NewConcat(l, r *Node) *Node {
	switch {
	case l == nil || l.Kind == Empty || r == nil || r.Kind == Empty:
		return NewEmpty()
	case l.Kind == Epsilon:
		return r
	case r.Kind == Epsilon:
		return l
	}
	return &Node{Kind: Concat, Left: l, Right: r}
}

// NewStar returns l*, folding (∅)* = (ε)* = ε and (l*)* = l*.
func NewStar(l *Node) *Node {
	switch {
	case l == nil || l.Kind == Empty || l.Kind == Epsilon:
		return NewEpsilon()
	case l.Kind == Star:
		return l
	}
	return &Node{Kind: Star, Left: l}
}

// UnionAll folds a slice of expressions into a disjunction. An empty slice
// yields ∅.
func UnionAll(nodes ...*Node) *Node {
	out := NewEmpty()
	for _, n := range nodes {
		out = NewUnion(out, n)
	}
	return out
}

// ConcatAll folds a slice of expressions into a concatenation. An empty
// slice yields ε.
func ConcatAll(nodes ...*Node) *Node {
	out := NewEpsilon()
	for _, n := range nodes {
		out = NewConcat(out, n)
	}
	return out
}

// ClassNode renders a symbol class (disjunction a1 + ... + an).
func ClassNode(c alphabet.Class) *Node {
	out := NewEmpty()
	for _, s := range c.Members {
		out = NewUnion(out, NewLiteral(s))
	}
	return out
}

// precedence for printing: Union < Concat < Star/atoms.
func (n *Node) prec() int {
	switch n.Kind {
	case Union:
		return 1
	case Concat:
		return 2
	default:
		return 3
	}
}

// String renders the expression with labels from a, using the paper's
// notation: '+' for disjunction, '·' for concatenation, '*' for star.
func (n *Node) String(a *alphabet.Alphabet) string {
	var b strings.Builder
	n.print(&b, a)
	return b.String()
}

func (n *Node) print(b *strings.Builder, a *alphabet.Alphabet) {
	child := func(c *Node, minPrec int) {
		if c.prec() < minPrec {
			b.WriteByte('(')
			c.print(b, a)
			b.WriteByte(')')
		} else {
			c.print(b, a)
		}
	}
	switch n.Kind {
	case Empty:
		b.WriteString("∅")
	case Epsilon:
		b.WriteString("ε")
	case Literal:
		b.WriteString(a.Name(n.Sym))
	case Union:
		child(n.Left, 1)
		b.WriteString("+")
		child(n.Right, 1)
	case Concat:
		child(n.Left, 2)
		b.WriteString("·")
		child(n.Right, 2)
	case Star:
		if n.Left.Kind == Literal {
			child(n.Left, 3)
		} else {
			b.WriteByte('(')
			n.Left.print(b, a)
			b.WriteByte(')')
		}
		b.WriteByte('*')
	}
}

// Size returns the number of AST nodes, a rough complexity measure.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case Union, Concat:
		return 1 + n.Left.Size() + n.Right.Size()
	case Star:
		return 1 + n.Left.Size()
	default:
		return 1
	}
}

// Symbols returns the set of symbols occurring in the expression.
func (n *Node) Symbols() map[alphabet.Symbol]bool {
	out := make(map[alphabet.Symbol]bool)
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.Kind == Literal {
			out[m.Sym] = true
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	return out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type parser struct {
	input string
	pos   int
	a     *alphabet.Alphabet
}

// Parse parses expr over a, interning any new labels. The grammar is the
// paper's, with a few conveniences: '|' is accepted for '+', '.' for '·',
// "()" for ε, and concatenation may be implicit between adjacent factors
// (e.g. "(a+b)c" ≡ "(a+b)·c").
func Parse(a *alphabet.Alphabet, expr string) (*Node, error) {
	p := &parser{input: expr, a: a}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d in %q",
			p.rest(), p.pos, p.input)
	}
	return n, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(a *alphabet.Alphabet, expr string) *Node {
	n, err := Parse(a, expr)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) rest() string {
	if p.pos >= len(p.input) {
		return ""
	}
	return p.input[p.pos:]
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

// hasPrefix reports whether the remaining input starts with s (after spaces).
func (p *parser) hasPrefix(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.input[p.pos:], s)
}

func (p *parser) consume(s string) bool {
	if p.hasPrefix(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseUnion() (*Node, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		if !p.consume("+") && !p.consume("|") {
			return left, nil
		}
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = &Node{Kind: Union, Left: left, Right: right}
	}
}

func (p *parser) parseConcat() (*Node, error) {
	left, err := p.parseStar()
	if err != nil {
		return nil, err
	}
	for {
		explicit := p.consume("·") || p.consume(".")
		if !explicit {
			// Implicit concatenation: next token starts a factor.
			c := p.peek()
			if c != '(' && !isIdentByte(c) && !p.hasPrefix("ε") {
				return left, nil
			}
		}
		right, err := p.parseStar()
		if err != nil {
			return nil, err
		}
		left = NewConcat(left, right)
	}
}

func (p *parser) parseStar() (*Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.consume("*") {
		n = NewStar(n)
	}
	return n, nil
}

func (p *parser) parseAtom() (*Node, error) {
	switch {
	case p.consume("ε"):
		return NewEpsilon(), nil
	case p.consume("()"):
		return NewEpsilon(), nil
	case p.consume("("):
		n, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if !p.consume(")") {
			return nil, fmt.Errorf("regex: missing ')' at offset %d in %q", p.pos, p.input)
		}
		return n, nil
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) && isIdentByte(p.input[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("regex: expected atom at offset %d in %q", p.pos, p.input)
	}
	return NewLiteral(p.a.Intern(p.input[start:p.pos])), nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}
