package nodelabeled_test

import (
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/nodelabeled"
	"pathquery/internal/query"
)

func buildFigure2(t *testing.T) (*nodelabeled.Graph, *graph.Graph) {
	t.Helper()
	nl := nodelabeled.New(nil)
	add := func(name, label string) {
		if _, err := nl.AddNode(name, label); err != nil {
			t.Fatal(err)
		}
	}
	edge := func(from, to string) {
		if err := nl.AddEdgeByName(from, to); err != nil {
			t.Fatal(err)
		}
	}
	// Three workflows in the spirit of Figure 2.
	add("wf1", "Start")
	add("wf1_pur", "ProteinPurification")
	add("wf1_ms", "MassSpectrometry")
	edge("wf1", "wf1_pur")
	edge("wf1_pur", "wf1_ms")

	add("wf2", "Start")
	add("wf2_pur", "ProteinPurification")
	add("wf2_sep", "ProteinSeparation")
	add("wf2_ms", "MassSpectrometry")
	edge("wf2", "wf2_pur")
	edge("wf2_pur", "wf2_sep")
	edge("wf2_sep", "wf2_ms")

	add("wf3", "Start")
	add("wf3_rna", "RNAExtraction")
	add("wf3_seq", "Sequencing")
	edge("wf3", "wf3_rna")
	edge("wf3_rna", "wf3_seq")

	return nl, nl.ToEdgeLabeled()
}

func TestEncodingSpellsNodeLabels(t *testing.T) {
	// A path ν0→ν1→ν2 spells label(ν1)·label(ν2) after encoding.
	_, g := buildFigure2(t)
	wf1, _ := g.NodeByName("wf1")
	goal := query.MustParse(g.Alphabet(), "ProteinPurification·MassSpectrometry")
	if !goal.Selects(g, wf1) {
		t.Fatal("wf1 should match Purification·MassSpectrometry")
	}
	wf3, _ := g.NodeByName("wf3")
	if goal.Selects(g, wf3) {
		t.Fatal("wf3 should not match")
	}
}

func TestLearnOnNodeLabeledWorkflows(t *testing.T) {
	// The paper's seamless-application claim: the learner works unchanged
	// on the encoded graph, inferring the Figure 2 pattern from labeled
	// workflow entry points.
	_, g := buildFigure2(t)
	node := func(n string) graph.NodeID {
		id, ok := g.NodeByName(n)
		if !ok {
			t.Fatalf("missing %q", n)
		}
		return id
	}
	s := core.Sample{
		Pos: []graph.NodeID{node("wf1"), node("wf2")},
		Neg: []graph.NodeID{node("wf3"), node("wf2_pur")},
	}
	learned, err := core.Learn(g, s, core.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	sel := learned.Select(g)
	for _, p := range s.Pos {
		if !sel[p] {
			t.Fatalf("positive %s not selected", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Fatalf("negative %s selected", g.NodeName(n))
		}
	}
}

func TestRelabelRejected(t *testing.T) {
	nl := nodelabeled.New(nil)
	if _, err := nl.AddNode("x", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddNode("x", "B"); err == nil {
		t.Fatal("relabeling accepted")
	}
	if _, err := nl.AddNode("x", "A"); err != nil {
		t.Fatalf("idempotent re-add rejected: %v", err)
	}
}

func TestAddEdgeByNameErrors(t *testing.T) {
	nl := nodelabeled.New(nil)
	nl.AddNode("a", "A")
	if err := nl.AddEdgeByName("a", "ghost"); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := nl.AddEdgeByName("ghost", "a"); err == nil {
		t.Fatal("edge from unknown node accepted")
	}
}

func TestWorkflowCorpusGoalFraction(t *testing.T) {
	nl, g, err := datasets.WorkflowCorpus(datasets.WorkflowConfig{
		Workflows: 200, MaxStages: 5, TargetFraction: 0.3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumNodes() != g.NumNodes() {
		t.Fatalf("encoding changed node count: %d vs %d", nl.NumNodes(), g.NumNodes())
	}
	goal := datasets.WorkflowGoal(g)
	// Count matching workflow entries.
	matched := 0
	for i := 0; i < 200; i++ {
		id, ok := g.NodeByName(fmtName(i))
		if !ok {
			t.Fatalf("missing wf%d", i)
		}
		if goal.Selects(g, id) {
			matched++
		}
	}
	if matched < 35 || matched > 90 {
		t.Fatalf("matched %d of 200 workflows, want ≈60", matched)
	}
}

func fmtName(i int) string { return "wf" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestInteractiveOnWorkflowCorpus(t *testing.T) {
	// End-to-end: interactive learning of the workflow pattern on the
	// generated corpus converges to a query matching the goal's selection.
	_, g, err := datasets.WorkflowCorpus(datasets.WorkflowConfig{
		Workflows: 60, MaxStages: 4, TargetFraction: 0.3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	goal := datasets.WorkflowGoal(g)
	sess := interactive.NewSession(g, interactive.Options{
		Strategy: interactive.KS{},
		Seed:     3,
	})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal),
		interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltSatisfied {
		t.Fatalf("halted %v after %d labels", res.Halted, res.Labels())
	}
	if !res.Query.EquivalentOn(g, goal) {
		t.Fatalf("learned %v", res.Query)
	}
	// The interactive session must beat labeling everything.
	if res.Labels() >= g.NumNodes() {
		t.Fatalf("used %d labels on %d nodes", res.Labels(), g.NumNodes())
	}
}
