// Package nodelabeled supports graphs whose labels sit on nodes instead of
// edges — the representation of the paper's scientific-workflow scenario
// (Figure 2), where "the labels are attached to the nodes (e.g., as in
// Figure 2) instead of the edges". The paper notes its techniques apply
// "in a seamless fashion"; this package implements the seam: the standard
// encoding that pushes every node's label onto its incoming edges, so a
// path ν0 → ν1 → … → νn spells label(ν1)·…·label(νn) and monadic path
// queries mean "sequences of module labels reachable from here", exactly
// the workflow-mining reading.
package nodelabeled

import (
	"fmt"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
)

// Graph is a directed graph with labeled nodes.
type Graph struct {
	alpha  *alphabet.Alphabet
	names  []string
	labels []alphabet.Symbol
	ids    map[string]graph.NodeID
	succ   [][]graph.NodeID
}

// New returns an empty node-labeled graph over alpha (nil for fresh).
func New(alpha *alphabet.Alphabet) *Graph {
	if alpha == nil {
		alpha = alphabet.New()
	}
	return &Graph{alpha: alpha, ids: make(map[string]graph.NodeID)}
}

// Alphabet returns the label table.
func (g *Graph) Alphabet() *alphabet.Alphabet { return g.alpha }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// AddNode adds a node with the given label; re-adding an existing name
// must repeat the same label.
func (g *Graph) AddNode(name, label string) (graph.NodeID, error) {
	sym := g.alpha.Intern(label)
	if id, ok := g.ids[name]; ok {
		if g.labels[id] != sym {
			return 0, fmt.Errorf("nodelabeled: node %q relabeled %q -> %q",
				name, g.alpha.Name(g.labels[id]), label)
		}
		return id, nil
	}
	id := graph.NodeID(len(g.names))
	g.names = append(g.names, name)
	g.labels = append(g.labels, sym)
	g.ids[name] = id
	g.succ = append(g.succ, nil)
	return id, nil
}

// AddEdge links two existing nodes.
func (g *Graph) AddEdge(from, to graph.NodeID) {
	g.succ[from] = append(g.succ[from], to)
}

// AddEdgeByName links two nodes by name; both must exist.
func (g *Graph) AddEdgeByName(from, to string) error {
	f, ok := g.ids[from]
	if !ok {
		return fmt.Errorf("nodelabeled: unknown node %q", from)
	}
	t, ok := g.ids[to]
	if !ok {
		return fmt.Errorf("nodelabeled: unknown node %q", to)
	}
	g.AddEdge(f, t)
	return nil
}

// NodeByName returns the id of a named node.
func (g *Graph) NodeByName(name string) (graph.NodeID, bool) {
	id, ok := g.ids[name]
	return id, ok
}

// Label returns the label of id.
func (g *Graph) Label(id graph.NodeID) string { return g.alpha.Name(g.labels[id]) }

// ToEdgeLabeled encodes the graph for the edge-labeled machinery: edge
// (u, v) carries label(v). Node ids and names are preserved, so samples
// and selections translate verbatim. The returned graph shares the
// alphabet.
func (g *Graph) ToEdgeLabeled() *graph.Graph {
	out := graph.New(g.alpha)
	for _, name := range g.names {
		out.AddNode(name)
	}
	for from, succs := range g.succ {
		for _, to := range succs {
			out.AddEdge(graph.NodeID(from), g.labels[to], to)
		}
	}
	return out
}
