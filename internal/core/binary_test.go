package core_test

import (
	"errors"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

func pairOf(t *testing.T, g *graph.Graph, from, to string) core.Pair {
	t.Helper()
	f, ok := g.NodeByName(from)
	if !ok {
		t.Fatalf("node %q missing", from)
	}
	tt, ok := g.NodeByName(to)
	if !ok {
		t.Fatalf("node %q missing", to)
	}
	return core.Pair{From: f, To: tt}
}

func TestLearnBinaryFigure1(t *testing.T) {
	// Binary semantics on the geographic graph: (N2, C1) and (N6, C2) are
	// reachable via transport-then-cinema, (N5, C1) is not.
	g, _ := paperfix.Figure1()
	s := core.PairSample{
		Pos: []core.Pair{pairOf(t, g, "N2", "C1"), pairOf(t, g, "N6", "C2")},
		Neg: []core.Pair{pairOf(t, g, "N5", "C1"), pairOf(t, g, "N5", "R1")},
	}
	q, err := core.LearnBinary(g, s, core.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	for _, p := range s.Pos {
		if !q.SelectsPair(g, p.From, p.To) {
			t.Errorf("positive pair (%s,%s) not selected", g.NodeName(p.From), g.NodeName(p.To))
		}
	}
	for _, n := range s.Neg {
		if q.SelectsPair(g, n.From, n.To) {
			t.Errorf("negative pair (%s,%s) selected", g.NodeName(n.From), g.NodeName(n.To))
		}
	}
}

func TestLearnBinarySmallerCandidateSpace(t *testing.T) {
	// The paper notes binary examples have fewer candidate paths because
	// the destination is fixed. On G0, (ν3, ν5) admits c directly even
	// with no negatives, while the monadic SCP for ν3 with no negatives
	// would be ε.
	g, _ := paperfix.G0()
	v3, _ := g.NodeByName("v3")
	v5, _ := g.NodeByName("v5")
	s := core.PairSample{Pos: []core.Pair{{From: v3, To: v5}}}
	q, err := core.LearnBinary(g, s, core.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	if !q.SelectsPair(g, v3, v5) {
		t.Fatal("positive pair not selected")
	}
	// The smallest pair path is c (ε cannot relate the distinct endpoints),
	// so the learned language contains c.
	c, _ := g.Alphabet().Lookup("c")
	if !q.Accepts(words.Word{c}) {
		t.Fatalf("learned %v; expected a language containing c", q)
	}
	// v5 has no path to v3 at all, so the pair (v5, v3) stays unselected
	// whatever the generalization did.
	if q.SelectsPair(g, v5, v3) {
		t.Fatal("(v5, v3) selected despite having no connecting path")
	}
}

func TestLearnBinaryAbstains(t *testing.T) {
	// A pair with every connecting path covered by a negative pair: only
	// path from pos.From to pos.To is "a", and the negative pair has the
	// same "a" path.
	g := graph.New(nil)
	g.AddEdgeByName("p", "a", "q")
	g.AddEdgeByName("x", "a", "y")
	p, _ := g.NodeByName("p")
	qn, _ := g.NodeByName("q")
	x, _ := g.NodeByName("x")
	y, _ := g.NodeByName("y")
	s := core.PairSample{
		Pos: []core.Pair{{From: p, To: qn}},
		Neg: []core.Pair{{From: x, To: y}},
	}
	if _, err := core.LearnBinary(g, s, core.Options{}); !errors.Is(err, core.ErrAbstain) {
		t.Fatalf("err = %v, want ErrAbstain", err)
	}
}

func TestLearnBinaryValidation(t *testing.T) {
	g, _ := paperfix.G0()
	v1, _ := g.NodeByName("v1")
	v2, _ := g.NodeByName("v2")
	s := core.PairSample{
		Pos: []core.Pair{{From: v1, To: v2}},
		Neg: []core.Pair{{From: v1, To: v2}},
	}
	if _, err := core.LearnBinary(g, s, core.Options{}); err == nil || errors.Is(err, core.ErrAbstain) {
		t.Fatalf("err = %v, want validation error", err)
	}
}

func TestLearnNary(t *testing.T) {
	// 3-ary tuples on Figure 1: (neighborhood, neighborhood, cinema) via
	// (transport, cinema-visit) component queries.
	g, _ := paperfix.Figure1()
	n2, _ := g.NodeByName("N2")
	n1, _ := g.NodeByName("N1")
	n4, _ := g.NodeByName("N4")
	c1, _ := g.NodeByName("C1")
	n5, _ := g.NodeByName("N5")
	r1, _ := g.NodeByName("R1")
	n3, _ := g.NodeByName("N3")
	r2, _ := g.NodeByName("R2")
	s := core.TupleSample{
		Pos: [][]graph.NodeID{
			{n2, n1, n4},
			{n1, n4, c1},
		},
		Neg: [][]graph.NodeID{
			{n5, r1, r1},
			{n5, n3, r2},
		},
	}
	nq, err := core.LearnNary(g, s, core.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	if nq.Arity() != 3 {
		t.Fatalf("arity = %d", nq.Arity())
	}
	for _, tp := range s.Pos {
		ok, err := nq.SelectsTuple(g, tp)
		if err != nil || !ok {
			t.Errorf("positive tuple %v not selected (err %v)", tp, err)
		}
	}
	for _, tn := range s.Neg {
		ok, err := nq.SelectsTuple(g, tn)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("negative tuple %v selected", tn)
		}
	}
}

func TestLearnNaryValidation(t *testing.T) {
	g, _ := paperfix.G0()
	if _, err := core.LearnNary(g, core.TupleSample{}, core.Options{}); err == nil {
		t.Fatal("empty tuple sample should fail validation")
	}
	v1, _ := g.NodeByName("v1")
	v2, _ := g.NodeByName("v2")
	mixed := core.TupleSample{
		Pos: [][]graph.NodeID{{v1, v2}},
		Neg: [][]graph.NodeID{{v1, v2, v1}},
	}
	if _, err := core.LearnNary(g, mixed, core.Options{}); err == nil {
		t.Fatal("mixed arities should fail validation")
	}
}

func TestNaryQuerySelectTuples(t *testing.T) {
	g, _ := paperfix.Figure1()
	transport := query.MustParse(g.Alphabet(), "(tram+bus)*")
	cinema := query.MustParse(g.Alphabet(), "cinema")
	nq, err := query.NewNary(transport, cinema)
	if err != nil {
		t.Fatal(err)
	}
	tuples := nq.SelectTuples(g)
	if len(tuples) == 0 {
		t.Fatal("no tuples selected")
	}
	// Every returned tuple must satisfy SelectsTuple.
	for _, tp := range tuples {
		ok, err := nq.SelectsTuple(g, tp)
		if err != nil || !ok {
			t.Fatalf("inconsistent tuple %v", tp)
		}
	}
}
