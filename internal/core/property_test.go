package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// randomInstance builds a random graph plus a sample labeled by a random
// goal query, as an oracle-consistent user would.
func randomInstance(rng *rand.Rand) (*graph.Graph, *query.Query, core.Sample) {
	alpha := alphabet.NewSorted("a", "b", "c")
	g := graph.New(alpha)
	nodes := 6 + rng.Intn(10)
	for i := 0; i < nodes; i++ {
		g.AddNode(string(rune('A' + i)))
	}
	edges := nodes + rng.Intn(2*nodes)
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(nodes)), alphabet.Symbol(rng.Intn(3)),
			graph.NodeID(rng.Intn(nodes)))
	}
	goal := query.FromDFA(alpha, automata.RandomPrefixFreeDFA(rng, 4, 3, 0.7))
	sel := goal.Select(g)
	var s core.Sample
	for v := 0; v < nodes; v++ {
		if rng.Intn(2) == 0 {
			continue // leave unlabeled
		}
		if sel[v] {
			s.Pos = append(s.Pos, graph.NodeID(v))
		} else {
			s.Neg = append(s.Neg, graph.NodeID(v))
		}
	}
	return g, goal, s
}

// TestLearnerSoundnessProperty is Definition 3.4's soundness clause on
// random instances: whenever the learner answers, the answer is consistent
// with the sample.
func TestLearnerSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	answered := 0
	for iter := 0; iter < 300; iter++ {
		g, _, s := randomInstance(rng)
		if len(s.Pos) == 0 {
			continue
		}
		q, err := core.Learn(g, s, core.Options{})
		if errors.Is(err, core.ErrAbstain) {
			// Abstaining is allowed; soundness only constrains answers.
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		answered++
		sel := q.Select(g)
		for _, p := range s.Pos {
			if !sel[p] {
				t.Fatalf("iter %d: positive %d not selected by %v", iter, p, q)
			}
		}
		for _, n := range s.Neg {
			if sel[n] {
				t.Fatalf("iter %d: negative %d selected by %v", iter, n, q)
			}
		}
	}
	if answered < 50 {
		t.Fatalf("only %d answered instances; property under-exercised", answered)
	}
}

// TestLearnerOutputPrefixFreeProperty: learned queries are canonical
// prefix-free representatives (Section 2's normalization).
func TestLearnerOutputPrefixFreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for iter := 0; iter < 150; iter++ {
		g, _, s := randomInstance(rng)
		if len(s.Pos) == 0 {
			continue
		}
		q, err := core.Learn(g, s, core.Options{})
		if err != nil {
			continue
		}
		if !q.DFA().IsPrefixFree() {
			t.Fatalf("iter %d: learned query %v not prefix-free", iter, q)
		}
	}
}

// TestPrefixFreeSelectionInvariance: a query and its prefix-free
// representative select exactly the same nodes on any graph — the
// equivalence Section 2 builds the normalization on.
func TestPrefixFreeSelectionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 200; iter++ {
		g, _, _ := randomInstance(rng)
		q := query.FromDFA(alpha, automata.RandomNonEmptyDFA(rng, 5, 3, 0.7))
		if !q.EquivalentOn(g, q.PrefixFree()) {
			t.Fatalf("iter %d: prefix-free changed selection of %v", iter, q)
		}
	}
}

// TestLearnerMonotoneInK: raising the SCP bound never turns an answer into
// an abstain (the k=K run is tried by the dynamic schedule too).
func TestLearnerMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 100; iter++ {
		g, _, s := randomInstance(rng)
		if len(s.Pos) == 0 {
			continue
		}
		_, errLow := core.Learn(g, s, core.Options{K: 2})
		_, errDyn := core.Learn(g, s, core.Options{StartK: 2, MaxK: 6})
		if errLow == nil && errDyn != nil {
			t.Fatalf("iter %d: k=2 answered but dynamic schedule abstained", iter)
		}
	}
}

// TestLearnerAgreesWithOracleOnCharacteristicExtensions: when the sample
// is drawn consistently with a goal and the learner answers, re-labeling
// any node the learner got "wrong" and re-learning still yields a
// consistent query — the interactive loop's core invariant.
func TestLearnerRefinementInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 80; iter++ {
		g, goal, s := randomInstance(rng)
		if len(s.Pos) == 0 {
			continue
		}
		q, err := core.Learn(g, s, core.Options{})
		if err != nil {
			continue
		}
		goalSel := goal.Select(g)
		learnedSel := q.Select(g)
		// Find a disagreement on an unlabeled node and label it per the
		// goal.
		for v := 0; v < g.NumNodes(); v++ {
			nu := graph.NodeID(v)
			if _, labeled := s.Labeled(nu); labeled {
				continue
			}
			if goalSel[v] == learnedSel[v] {
				continue
			}
			if goalSel[v] {
				s.Pos = append(s.Pos, nu)
			} else {
				s.Neg = append(s.Neg, nu)
			}
			break
		}
		q2, err := core.Learn(g, s, core.Options{})
		if errors.Is(err, core.ErrAbstain) {
			continue // bound too small for the refined sample: allowed
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		sel := q2.Select(g)
		for _, p := range s.Pos {
			if !sel[p] {
				t.Fatalf("iter %d: refined positive %d lost", iter, p)
			}
		}
		for _, n := range s.Neg {
			if sel[n] {
				t.Fatalf("iter %d: refined negative %d selected", iter, n)
			}
		}
	}
}
