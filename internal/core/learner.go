// Package core implements the paper's primary contribution: the learning
// algorithms for path queries from node examples.
//
//   - Learn (Algorithm 1): monadic semantics. Select the smallest
//     consistent path (SCP) of length ≤ k for each positive node, build
//     their prefix tree acceptor, generalize by RPNI-style state merging
//     while no negative node's path language meets the automaton, and
//     return the query iff it selects every positive node.
//   - LearnBinary (Algorithm 2): binary semantics; identical shape with
//     pair path languages paths2.
//   - LearnNary (Algorithm 3): runs LearnBinary per tuple position.
//
// The learners follow the paper's "learning with abstain" framework
// (Definition 3.4): they run in polynomial time and either return a query
// consistent with the sample or ErrAbstain — the paper's null, meaning
// "not enough examples were provided", which sidesteps the
// PSPACE-completeness of consistency checking (Lemma 3.2).
package core

import (
	"errors"
	"fmt"

	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/scp"
	"pathquery/internal/words"
)

// ErrAbstain is the paper's null result: no consistent query could be
// constructed efficiently from the given examples, either because the
// sample is inconsistent or because the SCP length bound is too small.
var ErrAbstain = errors.New("core: not enough examples to learn a consistent query (abstain)")

// Sample is a set of examples over a graph: nodes the user wants selected
// (Pos) and nodes she does not (Neg).
type Sample struct {
	Pos []graph.NodeID
	Neg []graph.NodeID
}

// Validate rejects samples labeling a node both positive and negative.
func (s Sample) Validate() error {
	seen := make(map[graph.NodeID]bool, len(s.Pos))
	for _, v := range s.Pos {
		seen[v] = true
	}
	for _, v := range s.Neg {
		if seen[v] {
			return fmt.Errorf("core: node %d labeled both positive and negative", v)
		}
	}
	return nil
}

// Labeled reports whether ν carries a label and which.
func (s Sample) Labeled(nu graph.NodeID) (positive, ok bool) {
	for _, v := range s.Pos {
		if v == nu {
			return true, true
		}
	}
	for _, v := range s.Neg {
		if v == nu {
			return false, true
		}
	}
	return false, false
}

// Size returns the number of examples.
func (s Sample) Size() int { return len(s.Pos) + len(s.Neg) }

// Options tunes the learner.
type Options struct {
	// K is the fixed maximal SCP length (the parameter k of Algorithm 1).
	// K = 0 selects the dynamic schedule of Section 5.1: start at
	// StartK and increase while the learned query misses a positive.
	K int
	// StartK and MaxK bound the dynamic schedule; defaults 2 and 8.
	StartK, MaxK int
	// DisableGeneralization skips the state-merging phase and returns the
	// disjunction of the SCPs — the ablation discussed in Section 5.2
	// ("the positive effect of the generalization ... is generally of 1%
	// in F1 score").
	DisableGeneralization bool
}

func (o Options) withDefaults() Options {
	if o.StartK == 0 {
		o.StartK = 2
	}
	if o.MaxK == 0 {
		o.MaxK = 8
	}
	return o
}

// Result reports what the learner did, alongside the learned query.
type Result struct {
	Query *query.Query
	// SCPs are the smallest consistent paths selected for the positives
	// that had one within the bound, in input order.
	SCPs []words.Word
	// K is the SCP length bound that succeeded.
	K int
	// Merges is the number of successful state merges during
	// generalization.
	Merges int
}

// Learn runs Algorithm 1 and returns the learned query, or ErrAbstain.
func Learn(g *graph.Graph, s Sample, opt Options) (*query.Query, error) {
	r, err := LearnDetailed(g, s, opt)
	if err != nil {
		return nil, err
	}
	return r.Query, nil
}

// LearnDetailed is Learn exposing diagnostics.
func LearnDetailed(g *graph.Graph, s Sample, opt Options) (*Result, error) {
	// Freeze once up front: every consistency check below runs on the CSR
	// read view, and freezing here keeps the first check's timing honest.
	g.Freeze()
	opt = opt.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Pos) == 0 {
		// With no positive examples any query selecting nothing on the
		// negatives would do, but none is distinguished; the interactive
		// scenario interprets abstain as "keep asking".
		return nil, ErrAbstain
	}
	if opt.K > 0 {
		return learnFixedK(g, s, opt, opt.K)
	}
	// Dynamic schedule (Section 5.1): start with k = StartK; if for a given
	// k the learned query does not select all positive nodes, increment k
	// and iterate.
	var lastErr error = ErrAbstain
	for k := opt.StartK; k <= opt.MaxK; k++ {
		r, err := learnFixedK(g, s, opt, k)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func learnFixedK(g *graph.Graph, s Sample, opt Options, k int) (*Result, error) {
	cov := scp.NewCoverage(g, s.Neg)

	// Lines 1-2: select the SCP of length ≤ k for every positive that has
	// one.
	var paths []words.Word
	for _, nu := range s.Pos {
		if p, ok := cov.Smallest(nu, k); ok {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return nil, ErrAbstain
	}
	res := &Result{SCPs: paths, K: k}

	// Line 3: prefix tree acceptor of the SCPs.
	pta := automata.BuildPTA(g.Alphabet().Size(), paths, nil)

	// Lines 4-5: generalize by state merging while consistent — no
	// negative node may gain a path in the candidate language.
	var d *automata.DFA
	if opt.DisableGeneralization {
		d = pta.DFA()
	} else {
		m := automata.NewMerger(pta)
		before := pta.NumStates()
		m.Generalize(func(cand *automata.DFA) bool {
			return !g.CoversAny(cand, s.Neg)
		})
		d = m.DFA()
		res.Merges = before - len(m.Representatives())
	}

	// Lines 6-7: the query must select every positive node — including
	// those whose SCP was longer than k.
	for _, nu := range s.Pos {
		if !g.Covers(d, nu) {
			return nil, ErrAbstain
		}
	}
	// Return the prefix-free canonical representative of the learned
	// query's equivalence class (Section 2); node selection is unchanged.
	res.Query = query.FromDFA(g.Alphabet(), d.PrefixFree())
	return res, nil
}

// Consistent decides whether a sample is consistent (Lemma 3.1): every
// positive node has a path not covered by the negatives. The decision is
// exact and therefore PSPACE-hard in general (Lemma 3.2) — the subset
// construction it runs can be exponential in |S−|'s reachable region. Use
// on small graphs, or bound the search with ConsistentWithin.
func Consistent(g *graph.Graph, s Sample) bool {
	for _, nu := range s.Pos {
		if g.PathsIncluded([]graph.NodeID{nu}, s.Neg) {
			return false
		}
	}
	return true
}

// ConsistentWithin is the k-bounded approximation of Consistent: it only
// certifies consistency witnessed by paths of length ≤ k. It can report
// false for samples that are consistent only via longer paths.
func ConsistentWithin(g *graph.Graph, s Sample, k int) bool {
	cov := scp.NewCoverage(g, s.Neg)
	for _, nu := range s.Pos {
		if !cov.IsKInformative(nu, k) {
			return false
		}
	}
	return true
}
