// Package core implements the paper's primary contribution: the learning
// algorithms for path queries from node examples.
//
//   - Learn (Algorithm 1): monadic semantics. Select the smallest
//     consistent path (SCP) of length ≤ k for each positive node, build
//     their prefix tree acceptor, generalize by RPNI-style state merging
//     while no negative node's path language meets the automaton, and
//     return the query iff it selects every positive node.
//   - LearnBinary (Algorithm 2): binary semantics; identical shape with
//     pair path languages paths2.
//   - LearnNary (Algorithm 3): runs LearnBinary per tuple position.
//
// The learners follow the paper's "learning with abstain" framework
// (Definition 3.4): they run in polynomial time and either return a query
// consistent with the sample or ErrAbstain — the paper's null, meaning
// "not enough examples were provided", which sidesteps the
// PSPACE-completeness of consistency checking (Lemma 3.2).
//
// Every learner runs against one immutable epoch Snapshot (the *On
// variants; the *graph.Graph forms are read-your-writes delegates that
// publish the pending epoch first). Pinning a snapshot makes learning
// safe to run concurrently with writers mutating and publishing newer
// epochs — the serving engine's Learn service relies on this. The two hot
// phases fan out across worker shards over the pinned snapshot: the
// per-positive SCP searches (each worker holds its own lazily-determinized
// coverage index) and the merger's per-negative consistency checks.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
	"pathquery/internal/query"
	"pathquery/internal/scp"
	"pathquery/internal/words"
)

// ErrAbstain is the paper's null result: no consistent query could be
// constructed efficiently from the given examples, either because the
// sample is inconsistent or because the SCP length bound is too small.
var ErrAbstain = errors.New("core: not enough examples to learn a consistent query (abstain)")

// Sample is a set of examples over a graph: nodes the user wants selected
// (Pos) and nodes she does not (Neg).
type Sample struct {
	Pos []graph.NodeID
	Neg []graph.NodeID
}

// Validate rejects samples labeling a node both positive and negative.
func (s Sample) Validate() error {
	seen := make(map[graph.NodeID]bool, len(s.Pos))
	for _, v := range s.Pos {
		seen[v] = true
	}
	for _, v := range s.Neg {
		if seen[v] {
			return fmt.Errorf("core: node %d labeled both positive and negative", v)
		}
	}
	return nil
}

// ValidateOn is Validate plus a bounds check of every example against the
// snapshot: an id outside [0, NumNodes) — a node from a different graph,
// or one created after the epoch was published — is an error here instead
// of a panic deep inside the CSR scans.
func (s Sample) ValidateOn(snap *graph.Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := checkBounds(snap, s.Pos); err != nil {
		return err
	}
	return checkBounds(snap, s.Neg)
}

// checkBounds rejects node ids outside the snapshot's node range.
func checkBounds(snap *graph.Snapshot, set []graph.NodeID) error {
	for _, v := range set {
		if v < 0 || int(v) >= snap.NumNodes() {
			return fmt.Errorf("core: node id %d out of range for epoch %d (%d nodes)",
				v, snap.Epoch(), snap.NumNodes())
		}
	}
	return nil
}

// Labeled reports whether ν carries a label and which.
func (s Sample) Labeled(nu graph.NodeID) (positive, ok bool) {
	for _, v := range s.Pos {
		if v == nu {
			return true, true
		}
	}
	for _, v := range s.Neg {
		if v == nu {
			return false, true
		}
	}
	return false, false
}

// Size returns the number of examples.
func (s Sample) Size() int { return len(s.Pos) + len(s.Neg) }

// Options tunes the learner.
type Options struct {
	// K is the fixed maximal SCP length (the parameter k of Algorithm 1).
	// K = 0 selects the dynamic schedule of Section 5.1: start at
	// StartK and increase while the learned query misses a positive.
	K int
	// StartK and MaxK bound the dynamic schedule; defaults 2 and 8.
	StartK, MaxK int
	// DisableGeneralization skips the state-merging phase and returns the
	// disjunction of the SCPs — the ablation discussed in Section 5.2
	// ("the positive effect of the generalization ... is generally of 1%
	// in F1 score").
	DisableGeneralization bool
	// Workers bounds the learner's parallelism: the per-positive SCP
	// searches and the merger's per-negative consistency checks fan out
	// across this many goroutines over the pinned snapshot. 0 selects
	// GOMAXPROCS; 1 forces the serial path.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.StartK == 0 {
		o.StartK = 2
	}
	if o.MaxK == 0 {
		o.MaxK = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// workersFor caps the configured worker count by the number of independent
// work items; 1 means "stay serial".
func (o Options) workersFor(items int) int {
	w := o.Workers
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result reports what the learner did, alongside the learned query.
type Result struct {
	Query *query.Query
	// SCPs are the smallest consistent paths selected for the positives
	// that had one within the bound, in input order.
	SCPs []words.Word
	// K is the SCP length bound that succeeded.
	K int
	// Merges is the number of successful state merges during
	// generalization.
	Merges int
}

// Learn runs Algorithm 1 and returns the learned query, or ErrAbstain.
func Learn(g *graph.Graph, s Sample, opt Options) (*query.Query, error) {
	r, err := LearnDetailed(g, s, opt)
	if err != nil {
		return nil, err
	}
	return r.Query, nil
}

// LearnOn runs Algorithm 1 against a pinned epoch snapshot and returns the
// learned query, or ErrAbstain.
func LearnOn(snap *graph.Snapshot, s Sample, opt Options) (*query.Query, error) {
	r, err := LearnDetailedOn(snap, s, opt)
	if err != nil {
		return nil, err
	}
	return r.Query, nil
}

// LearnDetailed is Learn exposing diagnostics. It publishes the graph's
// pending epoch and learns on it (read-your-writes); use LearnDetailedOn
// to learn on an explicitly pinned snapshot while writers stay active.
func LearnDetailed(g *graph.Graph, s Sample, opt Options) (*Result, error) {
	return LearnDetailedOn(g.Snapshot(), s, opt)
}

// LearnDetailedOn is LearnOn exposing diagnostics. Every read — SCP
// selection, merge consistency checks, the final positives check — runs
// against snap, so the learner observes exactly one epoch no matter what
// the owning graph's writer does meanwhile.
func LearnDetailedOn(snap *graph.Snapshot, s Sample, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := s.ValidateOn(snap); err != nil {
		return nil, err
	}
	if len(s.Pos) == 0 {
		// With no positive examples any query selecting nothing on the
		// negatives would do, but none is distinguished; the interactive
		// scenario interprets abstain as "keep asking".
		return nil, ErrAbstain
	}
	if opt.K > 0 {
		return learnFixedK(snap, s, opt, opt.K)
	}
	// Dynamic schedule (Section 5.1): start with k = StartK; if for a given
	// k the learned query does not select all positive nodes, increment k
	// and iterate.
	var lastErr error = ErrAbstain
	for k := opt.StartK; k <= opt.MaxK; k++ {
		r, err := learnFixedK(snap, s, opt, k)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func learnFixedK(snap *graph.Snapshot, s Sample, opt Options, k int) (*Result, error) {
	// Lines 1-2: select the SCP of length ≤ k for every positive that has
	// one.
	paths := smallestPaths(snap, s.Pos, s.Neg, k, opt.workersFor(len(s.Pos)))
	if len(paths) == 0 {
		return nil, ErrAbstain
	}
	res := &Result{SCPs: paths, K: k}

	// Line 3: prefix tree acceptor of the SCPs.
	pta := automata.BuildPTA(snap.Alphabet().Size(), paths, nil)

	// Lines 4-5: generalize by state merging while consistent — no
	// negative node may gain a path in the candidate language.
	var d *automata.DFA
	if opt.DisableGeneralization {
		d = pta.DFA()
	} else {
		m := automata.NewMerger(pta)
		before := pta.NumStates()
		negWorkers := opt.workersFor((len(s.Neg) + coversShardSize - 1) / coversShardSize)
		m.Generalize(func(cand *automata.DFA) bool {
			// One shape-preserving plan per candidate: all negative-shard
			// checks of this candidate share its compiled tables (and its
			// first-symbol filter prunes most negatives without touching
			// the product space).
			return coversNone(snap, plan.FromDFA(cand), s.Neg, negWorkers)
		})
		d = m.DFA()
		res.Merges = before - len(m.Representatives())
	}

	// Lines 6-7: the query must select every positive node — including
	// those whose SCP was longer than k.
	dp := plan.FromDFA(d)
	for _, nu := range s.Pos {
		if !snap.CoversPlan(dp, nu) {
			return nil, ErrAbstain
		}
	}
	// Return the prefix-free canonical representative of the learned
	// query's equivalence class (Section 2); node selection is unchanged.
	res.Query = query.FromDFA(snap.Alphabet(), d.PrefixFree())
	return res, nil
}

// smallestPaths selects the SCP of length ≤ k for every positive that has
// one, in input order. With workers > 1 the positives are sharded across
// goroutines, each holding its own coverage index over the shared pinned
// snapshot (the index memoizes lazily and is not safe to share); the
// snapshot's pooled scratch makes the concurrent subset steps cheap.
func smallestPaths(snap *graph.Snapshot, pos, neg []graph.NodeID, k, workers int) []words.Word {
	found := make([]words.Word, len(pos))
	ok := make([]bool, len(pos))
	if workers <= 1 || len(pos) < 2 {
		cov := scp.NewCoverageOn(snap, neg)
		for i, nu := range pos {
			found[i], ok[i] = cov.Smallest(nu, k)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cov := scp.NewCoverageOn(snap, neg)
				for i := w; i < len(pos); i += workers {
					found[i], ok[i] = cov.Smallest(pos[i], k)
				}
			}(w)
		}
		wg.Wait()
	}
	paths := found[:0]
	for i := range found {
		if ok[i] {
			paths = append(paths, found[i])
		}
	}
	return paths
}

// coversShardSize is the per-worker chunk of the negative set in the
// parallel consistency check: below it, goroutine startup dominates the
// product search it would offload.
const coversShardSize = 16

// coversNone reports whether no node of set has a path in L(dp) — the
// merger's consistency predicate, evaluated through one shared compiled
// plan. Large negative sets are sharded across workers, each running the
// early-exit forward product search on its chunk against the shared
// snapshot; a found cover stops the other shards at their next chunk
// boundary.
func coversNone(snap *graph.Snapshot, dp *plan.Plan, set []graph.NodeID, workers int) bool {
	if workers <= 1 || len(set) <= coversShardSize {
		return !snap.CoversAnyPlan(dp, set)
	}
	shards := (len(set) + coversShardSize - 1) / coversShardSize
	if workers > shards {
		workers = shards
	}
	var next atomic.Int64
	var covered atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !covered.Load() {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				lo := i * coversShardSize
				hi := min(lo+coversShardSize, len(set))
				if snap.CoversAnyPlan(dp, set[lo:hi]) {
					covered.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return !covered.Load()
}

// Consistent decides whether a sample is consistent (Lemma 3.1): every
// positive node has a path not covered by the negatives. The decision is
// exact and therefore PSPACE-hard in general (Lemma 3.2) — the subset
// construction it runs can be exponential in |S−|'s reachable region. Use
// on small graphs, or bound the search with ConsistentWithin.
func Consistent(g *graph.Graph, s Sample) bool {
	return ConsistentOn(g.Snapshot(), s)
}

// ConsistentOn is Consistent against a pinned epoch snapshot.
func ConsistentOn(snap *graph.Snapshot, s Sample) bool {
	for _, nu := range s.Pos {
		if snap.PathsIncluded([]graph.NodeID{nu}, s.Neg) {
			return false
		}
	}
	return true
}

// ConsistentWithin is the k-bounded approximation of Consistent: it only
// certifies consistency witnessed by paths of length ≤ k. It can report
// false for samples that are consistent only via longer paths.
func ConsistentWithin(g *graph.Graph, s Sample, k int) bool {
	return ConsistentWithinOn(g.Snapshot(), s, k)
}

// ConsistentWithinOn is ConsistentWithin against a pinned epoch snapshot.
func ConsistentWithinOn(snap *graph.Snapshot, s Sample, k int) bool {
	cov := scp.NewCoverageOn(snap, s.Neg)
	for _, nu := range s.Pos {
		if !cov.IsKInformative(nu, k) {
			return false
		}
	}
	return true
}
