package core_test

import (
	"errors"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

func TestLearnerPaperExample(t *testing.T) {
	// Section 3.2's running example: on G0 with S+ = {ν1, ν3},
	// S− = {ν2, ν7} and k = 3, the learner returns (a·b)*·c.
	g, s := paperfix.G0()
	r, err := core.LearnDetailed(g, s, core.Options{K: 3})
	if err != nil {
		t.Fatalf("learner abstained: %v", err)
	}
	// The SCPs are abc (for ν1) and c (for ν3).
	if len(r.SCPs) != 2 {
		t.Fatalf("SCPs = %v", r.SCPs)
	}
	gotSCPs := []string{
		words.String(r.SCPs[0], g.Alphabet()),
		words.String(r.SCPs[1], g.Alphabet()),
	}
	if gotSCPs[0] != "a·b·c" || gotSCPs[1] != "c" {
		t.Fatalf("SCPs = %v, want [a·b·c c]", gotSCPs)
	}
	want := query.MustParse(g.Alphabet(), "(a·b)*·c")
	if !r.Query.EquivalentTo(want) {
		t.Fatalf("learned %v, want (a·b)*·c", r.Query)
	}
	// Exactly the canonical DFA: the sample is characteristic (§3.3).
	if !r.Query.DFA().Equal(want.DFA()) {
		t.Fatalf("learned DFA not canonical-equal to goal")
	}
	if r.Merges == 0 {
		t.Fatal("generalization performed no merges")
	}
}

func TestLearnerDynamicKReachesPaperExample(t *testing.T) {
	// With the dynamic schedule (start k=2), k=2 finds SCP c for ν3 but
	// the resulting query cannot select ν1, so the learner retries with
	// k=3 and succeeds (§5.1).
	g, s := paperfix.G0()
	r, err := core.LearnDetailed(g, s, core.Options{})
	if err != nil {
		t.Fatalf("learner abstained: %v", err)
	}
	if r.K != 3 {
		t.Fatalf("dynamic schedule stopped at k=%d, want 3", r.K)
	}
	want := query.MustParse(g.Alphabet(), "(a·b)*·c")
	if !r.Query.EquivalentTo(want) {
		t.Fatalf("learned %v", r.Query)
	}
}

func TestLearnerAbstainsWhenKTooSmall(t *testing.T) {
	g, s := paperfix.G0()
	// k = 2: SCP for ν1 (abc) is out of reach; the k=2 query (c) does not
	// select ν1, so the learner must abstain.
	_, err := core.Learn(g, s, core.Options{K: 2})
	if !errors.Is(err, core.ErrAbstain) {
		t.Fatalf("err = %v, want ErrAbstain", err)
	}
}

func TestLearnerInconsistentFigure5(t *testing.T) {
	// Figure 5's sample is inconsistent: every path of the positive is
	// covered by the negatives. The learner must abstain for any k.
	g, s := paperfix.Figure5()
	for _, k := range []int{2, 4, 8} {
		if _, err := core.Learn(g, s, core.Options{K: k}); !errors.Is(err, core.ErrAbstain) {
			t.Fatalf("k=%d: err = %v, want ErrAbstain", k, err)
		}
	}
	if core.Consistent(g, s) {
		t.Fatal("figure 5 sample should be inconsistent")
	}
}

func TestLearnerFigure8Equivalent(t *testing.T) {
	// Figure 8: the graph owns no characteristic sample for (a·b)*·c; the
	// learner returns the query a, indistinguishable on this graph.
	g, s := paperfix.Figure8()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	// The sample is what a user labeling w.r.t. the goal would produce.
	sel := goal.Select(g)
	for _, p := range s.Pos {
		if !sel[p] {
			t.Fatalf("fixture: positive %s not selected by goal", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Fatalf("fixture: negative %s selected by goal", g.NodeName(n))
		}
	}
	learned, err := core.Learn(g, s, core.Options{})
	if err != nil {
		t.Fatalf("learner abstained: %v", err)
	}
	want := query.MustParse(g.Alphabet(), "a")
	if !learned.EquivalentTo(want) {
		t.Fatalf("learned %v, want a", learned)
	}
	if !learned.EquivalentOn(g, goal) {
		t.Fatal("learned query should be indistinguishable from the goal on this graph")
	}
	if learned.EquivalentTo(goal) {
		t.Fatal("a and (a·b)*·c are not equivalent as languages")
	}
}

func TestLearnerFigure1GeographicExample(t *testing.T) {
	// Section 1's motivating example: from N2, N6 positive and N5
	// negative, a consistent query must be found that behaves like
	// (tram+bus)*·cinema on the positives and negatives.
	g, s := paperfix.Figure1()
	learned, err := core.Learn(g, s, core.Options{})
	if err != nil {
		t.Fatalf("learner abstained: %v", err)
	}
	sel := learned.Select(g)
	for _, p := range s.Pos {
		if !sel[p] {
			t.Fatalf("positive %s not selected", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Fatalf("negative %s selected", g.NodeName(n))
		}
	}
}

func TestLearnerConsistencyGuarantee(t *testing.T) {
	// Soundness (Definition 3.4): whenever the learner returns a query, it
	// is consistent with the sample. Exercised across the fixtures with
	// several samples.
	type fixture struct {
		name string
		g    *graph.Graph
		s    core.Sample
	}
	g0, s0 := paperfix.G0()
	f1, sf1 := paperfix.Figure1()
	f8, sf8 := paperfix.Figure8()
	fixtures := []fixture{{"G0", g0, s0}, {"Figure1", f1, sf1}, {"Figure8", f8, sf8}}
	for _, f := range fixtures {
		q, err := core.Learn(f.g, f.s, core.Options{})
		if err != nil {
			t.Fatalf("%s: abstained: %v", f.name, err)
		}
		sel := q.Select(f.g)
		for _, p := range f.s.Pos {
			if !sel[p] {
				t.Errorf("%s: positive %d not selected", f.name, p)
			}
		}
		for _, n := range f.s.Neg {
			if sel[n] {
				t.Errorf("%s: negative %d selected", f.name, n)
			}
		}
	}
}

func TestLearnerEmptySampleAbstains(t *testing.T) {
	g, _ := paperfix.G0()
	if _, err := core.Learn(g, core.Sample{}, core.Options{}); !errors.Is(err, core.ErrAbstain) {
		t.Fatalf("err = %v, want ErrAbstain", err)
	}
}

func TestLearnerRejectsContradictorySample(t *testing.T) {
	g, _ := paperfix.G0()
	v1, _ := g.NodeByName("v1")
	s := core.Sample{Pos: []graph.NodeID{v1}, Neg: []graph.NodeID{v1}}
	_, err := core.Learn(g, s, core.Options{})
	if err == nil || errors.Is(err, core.ErrAbstain) {
		t.Fatalf("err = %v, want validation error", err)
	}
}

func TestLearnerOnlyPositives(t *testing.T) {
	// With no negatives every node's SCP is ε and the learned query is ε,
	// which selects everything — consistent with the (all-positive) sample.
	g, _ := paperfix.G0()
	v1, _ := g.NodeByName("v1")
	q, err := core.Learn(g, core.Sample{Pos: []graph.NodeID{v1}}, core.Options{})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	if !q.Selects(g, v1) {
		t.Fatal("positive not selected")
	}
	if !q.Accepts(words.Epsilon) {
		t.Fatalf("learned %v, want the ε query", q)
	}
}

func TestDisableGeneralizationAblation(t *testing.T) {
	// Without the merge phase the learner returns the disjunction of the
	// SCPs: on G0 that is c + a·b·c, which is consistent but, unlike the
	// generalized (a·b)*·c, not equal to the goal.
	g, s := paperfix.G0()
	q, err := core.Learn(g, s, core.Options{K: 3, DisableGeneralization: true})
	if err != nil {
		t.Fatalf("abstained: %v", err)
	}
	want := query.MustParse(g.Alphabet(), "c+(a·b·c)")
	if !q.EquivalentTo(want) {
		t.Fatalf("learned %v, want c+(a·b·c)", q)
	}
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	if q.EquivalentTo(goal) {
		t.Fatal("without generalization the Kleene star cannot be learned")
	}
}

func TestConsistencyChecks(t *testing.T) {
	g, s := paperfix.G0()
	if !core.Consistent(g, s) {
		t.Fatal("G0 sample is consistent")
	}
	if !core.ConsistentWithin(g, s, 3) {
		t.Fatal("G0 sample is consistent within k=3")
	}
	if core.ConsistentWithin(g, s, 2) {
		t.Fatal("ν1's only escape is abc: not consistent within k=2")
	}
}

func TestSampleHelpers(t *testing.T) {
	s := core.Sample{Pos: []graph.NodeID{1, 2}, Neg: []graph.NodeID{3}}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if pos, ok := s.Labeled(2); !ok || !pos {
		t.Fatal("node 2 should be labeled positive")
	}
	if pos, ok := s.Labeled(3); !ok || pos {
		t.Fatal("node 3 should be labeled negative")
	}
	if _, ok := s.Labeled(9); ok {
		t.Fatal("node 9 is unlabeled")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
}
