package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
	"pathquery/internal/query"
	"pathquery/internal/words"
)

// This file implements Algorithms 2 and 3 (Appendix B): learning under
// binary and n-ary semantics. A binary example is a pair of nodes; the
// only change from Algorithm 1 is that SCPs are drawn from the pair path
// language paths2_G(ν, ν') — a smaller candidate space, since the
// destination is fixed. Like the monadic learner, everything runs against
// one pinned epoch snapshot, with the per-pair searches and per-negative
// consistency checks sharded across workers.

// Pair is an ordered node pair (the example of binary semantics).
type Pair struct {
	From, To graph.NodeID
}

// PairSample is a set of positive and negative pair examples.
type PairSample struct {
	Pos []Pair
	Neg []Pair
}

// Validate rejects samples labeling a pair both positive and negative.
func (s PairSample) Validate() error {
	seen := make(map[Pair]bool, len(s.Pos))
	for _, p := range s.Pos {
		seen[p] = true
	}
	for _, p := range s.Neg {
		if seen[p] {
			return fmt.Errorf("core: pair (%d,%d) labeled both positive and negative", p.From, p.To)
		}
	}
	return nil
}

// ValidateOn is Validate plus a bounds check of every pair endpoint
// against the snapshot's node range.
func (s PairSample) ValidateOn(snap *graph.Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, set := range [][]Pair{s.Pos, s.Neg} {
		for _, p := range set {
			if err := checkBounds(snap, []graph.NodeID{p.From, p.To}); err != nil {
				return err
			}
		}
	}
	return nil
}

// LearnBinary runs Algorithm 2 and returns the learned binary query, or
// ErrAbstain.
func LearnBinary(g *graph.Graph, s PairSample, opt Options) (*query.Query, error) {
	return LearnBinaryOn(g.Snapshot(), s, opt)
}

// LearnBinaryOn runs Algorithm 2 against a pinned epoch snapshot.
func LearnBinaryOn(snap *graph.Snapshot, s PairSample, opt Options) (*query.Query, error) {
	opt = opt.withDefaults()
	if err := s.ValidateOn(snap); err != nil {
		return nil, err
	}
	if len(s.Pos) == 0 {
		return nil, ErrAbstain
	}
	if opt.K > 0 {
		return learnBinaryFixedK(snap, s, opt, opt.K)
	}
	var lastErr error = ErrAbstain
	for k := opt.StartK; k <= opt.MaxK; k++ {
		q, err := learnBinaryFixedK(snap, s, opt, k)
		if err == nil {
			return q, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func learnBinaryFixedK(snap *graph.Snapshot, s PairSample, opt Options, k int) (*query.Query, error) {
	// Lines 1-2: smallest consistent pair-path per positive pair.
	paths := smallestPairPaths(snap, s.Pos, s.Neg, k, opt.workersFor(len(s.Pos)))
	if len(paths) == 0 {
		return nil, ErrAbstain
	}

	pta := automata.BuildPTA(snap.Alphabet().Size(), paths, nil)
	var d *automata.DFA
	if opt.DisableGeneralization {
		d = pta.DFA()
	} else {
		m := automata.NewMerger(pta)
		negWorkers := opt.workersFor(len(s.Neg))
		m.Generalize(func(cand *automata.DFA) bool {
			// One shape-preserving plan per candidate: every negative
			// check of this candidate shares its compiled tables.
			return coversNoPair(snap, plan.FromDFA(cand), s.Neg, negWorkers)
		})
		d = m.DFA()
	}
	dp := plan.FromDFA(d)
	for _, p := range s.Pos {
		if !snap.CoversPairPlan(dp, p.From, p.To) {
			return nil, ErrAbstain
		}
	}
	// Binary queries keep their exact language: the prefix-free reduction
	// is a monadic-semantics equivalence and does not apply to paths2.
	return query.FromDFA(snap.Alphabet(), d), nil
}

// smallestPairPaths selects the smallest consistent pair-path per positive
// pair, in input order. The searches are independent (each builds its own
// subset interner), so they shard directly across workers over the shared
// pinned snapshot.
func smallestPairPaths(snap *graph.Snapshot, pos, neg []Pair, k, workers int) []words.Word {
	found := make([]words.Word, len(pos))
	ok := make([]bool, len(pos))
	if workers <= 1 || len(pos) < 2 {
		for i, p := range pos {
			found[i], ok[i] = smallestPairPath(snap, p, neg, k)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(pos); i += workers {
					found[i], ok[i] = smallestPairPath(snap, pos[i], neg, k)
				}
			}(w)
		}
		wg.Wait()
	}
	paths := found[:0]
	for i := range found {
		if ok[i] {
			paths = append(paths, found[i])
		}
	}
	return paths
}

// coversNoPair reports whether the compiled candidate selects none of the
// negative pairs — the binary merger's consistency predicate, sharded
// across workers with an early exit when any pair is covered. All shards
// share one immutable plan.
func coversNoPair(snap *graph.Snapshot, dp *plan.Plan, neg []Pair, workers int) bool {
	if workers <= 1 || len(neg) < 2 {
		for _, n := range neg {
			if snap.CoversPairPlan(dp, n.From, n.To) {
				return false
			}
		}
		return true
	}
	var covered atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(neg) && !covered.Load(); i += workers {
				if snap.CoversPairPlan(dp, neg[i].From, neg[i].To) {
					covered.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return !covered.Load()
}

// smallestPairPath returns the canonical-order minimal word of length ≤ k
// in paths2_G(p) \ paths2_G(neg). The whole search state — the node set
// reachable from p.From and, per negative pair, the set reachable from its
// origin — is a deterministic function of the word, so the shared
// canonical-order witness core (graph.WitnessBFS) over pairs
// (mine subset id, negative-subset tuple id) enumerates words canonically.
// Subsets are interned to dense ids (graph.NodeSetIndex) with memoized
// (set, symbol) transitions, and the per-negative id vectors are interned
// in turn (tupleIndex), so the search state is two int32s and each
// distinct subset is stepped at most once per symbol.
func smallestPairPath(snap *graph.Snapshot, p Pair, neg []Pair, k int) (words.Word, bool) {
	ix := graph.NewNodeSetIndex()
	tup := newTupleIndex()
	trans := make(map[uint64]int32)
	stepID := func(id int32, sym alphabet.Symbol) int32 {
		key := uint64(uint32(id))<<32 | uint64(sym)
		if t, ok := trans[key]; ok {
			return t
		}
		t := ix.Intern(snap.Step(ix.Set(id), sym))
		trans[key] = t
		return t
	}
	contains := func(id int32, v graph.NodeID) bool {
		set := ix.Set(id)
		i := sort.Search(len(set), func(i int) bool { return set[i] >= v })
		return i < len(set) && set[i] == v
	}
	accept := func(mine, negsID int32) bool {
		if !contains(mine, p.To) {
			return false
		}
		for i, id := range tup.set(negsID) {
			if contains(id, neg[i].To) {
				return false
			}
		}
		return true
	}

	startMine := ix.Intern([]graph.NodeID{p.From})
	negsInit := make([]int32, len(neg))
	for i, n := range neg {
		negsInit[i] = ix.Intern([]graph.NodeID{n.From})
	}
	startNegs := tup.intern(negsInit)
	scratch := make([]int32, len(neg))
	return graph.WitnessBFS(k, [][2]int32{{startMine, startNegs}},
		accept,
		func(mine, negsID int32, emit func(sym alphabet.Symbol, a2, b2 int32)) {
			negs := tup.set(negsID)
			for _, sym := range snap.SymbolsOf(ix.Set(mine)) {
				m2 := stepID(mine, sym)
				if len(ix.Set(m2)) == 0 {
					continue // the positive pair's path dies here
				}
				for i, id := range negs {
					scratch[i] = stepID(id, sym)
				}
				emit(sym, m2, tup.intern(scratch))
			}
		})
}

// tupleIndex interns int32 vectors (the per-negative subset-id tuples of
// smallestPairPath) as dense ids, replacing the byte-string state encoding
// of the pre-plan implementation. Same shape as graph.NodeSetIndex: FNV-1a
// hash into buckets, element-wise compare on collision.
type tupleIndex struct {
	tuples  [][]int32
	buckets map[uint64][]int32
}

func newTupleIndex() *tupleIndex {
	return &tupleIndex{buckets: make(map[uint64][]int32)}
}

func (ix *tupleIndex) intern(t []int32) int32 {
	h := uint64(14695981039346656037)
	for _, v := range t {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	for _, id := range ix.buckets[h] {
		if tuplesEqual(ix.tuples[id], t) {
			return id
		}
	}
	id := int32(len(ix.tuples))
	ix.tuples = append(ix.tuples, append([]int32(nil), t...))
	ix.buckets[h] = append(ix.buckets[h], id)
	return id
}

func (ix *tupleIndex) set(id int32) []int32 { return ix.tuples[id] }

func tuplesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TupleSample is a set of n-ary examples: node tuples labeled + or −.
type TupleSample struct {
	Pos [][]graph.NodeID
	Neg [][]graph.NodeID
}

// Arity returns the tuple width, or 0 for an empty sample.
func (s TupleSample) Arity() int {
	if len(s.Pos) > 0 {
		return len(s.Pos[0])
	}
	if len(s.Neg) > 0 {
		return len(s.Neg[0])
	}
	return 0
}

// Validate checks that all tuples share an arity ≥ 2.
func (s TupleSample) Validate() error {
	n := s.Arity()
	if n < 2 {
		return fmt.Errorf("core: n-ary sample needs tuples of arity ≥ 2")
	}
	for _, t := range append(append([][]graph.NodeID{}, s.Pos...), s.Neg...) {
		if len(t) != n {
			return fmt.Errorf("core: mixed tuple arities %d and %d", n, len(t))
		}
	}
	return nil
}

// ValidateOn is Validate plus a bounds check of every tuple component
// against the snapshot's node range.
func (s TupleSample) ValidateOn(snap *graph.Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, set := range [][][]graph.NodeID{s.Pos, s.Neg} {
		for _, t := range set {
			if err := checkBounds(snap, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// LearnNary runs Algorithm 3: project the tuple sample onto each adjacent
// position pair, learn a binary query per position with Algorithm 2, and
// combine. Abstains if any position abstains.
func LearnNary(g *graph.Graph, s TupleSample, opt Options) (*query.Nary, error) {
	return LearnNaryOn(g.Snapshot(), s, opt)
}

// LearnNaryOn runs Algorithm 3 against a pinned epoch snapshot.
func LearnNaryOn(snap *graph.Snapshot, s TupleSample, opt Options) (*query.Nary, error) {
	if err := s.ValidateOn(snap); err != nil {
		return nil, err
	}
	n := s.Arity()
	parts := make([]*query.Query, 0, n-1)
	for i := 0; i < n-1; i++ {
		ps := PairSample{}
		for _, t := range s.Pos {
			ps.Pos = append(ps.Pos, Pair{t[i], t[i+1]})
		}
		for _, t := range s.Neg {
			ps.Neg = append(ps.Neg, Pair{t[i], t[i+1]})
		}
		if err := ps.Validate(); err != nil {
			// A pair may appear positively in one tuple and negatively in
			// another projection; per the paper's Algorithm 3 semantics we
			// abstain, since no single regular expression can satisfy both.
			return nil, ErrAbstain
		}
		q, err := LearnBinaryOn(snap, ps, opt)
		if err != nil {
			return nil, err
		}
		parts = append(parts, q)
	}
	return query.NewNary(parts...)
}
