package core_test

import (
	"math/rand"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
)

// TestLearnRejectsOutOfRangeIDs is the regression test for the CSR-scan
// panic: example ids outside the snapshot's node range must surface as
// validation errors from every learner entry point.
func TestLearnRejectsOutOfRangeIDs(t *testing.T) {
	g, _ := paperfix.G0()
	snap := g.Snapshot()
	bad := graph.NodeID(snap.NumNodes())
	cases := []func() error{
		func() error {
			_, err := core.LearnOn(snap, core.Sample{Pos: []graph.NodeID{bad}}, core.Options{})
			return err
		},
		func() error {
			_, err := core.LearnOn(snap, core.Sample{Pos: []graph.NodeID{0}, Neg: []graph.NodeID{-1}}, core.Options{})
			return err
		},
		func() error {
			_, err := core.LearnBinaryOn(snap, core.PairSample{Pos: []core.Pair{{From: 0, To: bad}}}, core.Options{})
			return err
		},
		func() error {
			_, err := core.LearnNaryOn(snap, core.TupleSample{Pos: [][]graph.NodeID{{0, 1, bad}}}, core.Options{})
			return err
		},
	}
	for i, run := range cases {
		if err := run(); err == nil {
			t.Errorf("case %d: out-of-range example accepted", i)
		}
	}
	if err := (core.Sample{Pos: []graph.NodeID{bad}}).ValidateOn(snap); err == nil {
		t.Error("Sample.ValidateOn accepted out-of-range id")
	}
	if err := (core.PairSample{Neg: []core.Pair{{From: -2, To: 0}}}).ValidateOn(snap); err == nil {
		t.Error("PairSample.ValidateOn accepted negative id")
	}
	if err := (core.TupleSample{Pos: [][]graph.NodeID{{0, bad}}}).ValidateOn(snap); err == nil {
		t.Error("TupleSample.ValidateOn accepted out-of-range id")
	}
}

// TestLearnParallelMatchesSerial cross-checks the worker-shard fan-out
// (per-positive SCP searches, per-negative-shard consistency checks)
// against the serial path on randomized samples: same snapshot, same
// sample, same learned language.
func TestLearnParallelMatchesSerial(t *testing.T) {
	g := datasets.Synthetic(400, 7)
	snap := g.Snapshot()
	qs := datasets.SynQueries(g)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		goal := qs[trial%len(qs)].Query
		pos, neg := datasets.RandomSample(g, goal, 0.1, rng)
		s := core.Sample{Pos: pos, Neg: neg}
		serial, errS := core.LearnDetailedOn(snap, s, core.Options{Workers: 1})
		parallel, errP := core.LearnDetailedOn(snap, s, core.Options{Workers: 8})
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trial %d: serial err %v, parallel err %v", trial, errS, errP)
		}
		if errS != nil {
			continue
		}
		if !serial.Query.EquivalentTo(parallel.Query) {
			t.Fatalf("trial %d: serial learned %v, parallel %v", trial, serial.Query, parallel.Query)
		}
		if serial.K != parallel.K || len(serial.SCPs) != len(parallel.SCPs) {
			t.Fatalf("trial %d: diagnostics diverge: k %d/%d, scps %d/%d",
				trial, serial.K, parallel.K, len(serial.SCPs), len(parallel.SCPs))
		}
	}
}
