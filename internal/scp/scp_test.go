package scp_test

import (
	"testing"

	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/scp"
	"pathquery/internal/words"
)

func node(t *testing.T, g *graph.Graph, name string) graph.NodeID {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("missing node %q", name)
	}
	return id
}

func TestSmallestPaperSCPs(t *testing.T) {
	// Section 3.2: "we obtain the SCPs abc and c for ν1 and ν3".
	g, s := paperfix.G0()
	cov := scp.NewCoverage(g, s.Neg)
	w1, ok := cov.Smallest(node(t, g, "v1"), 3)
	if !ok || words.String(w1, g.Alphabet()) != "a·b·c" {
		t.Fatalf("SCP(v1) = %v, want a·b·c", w1)
	}
	w3, ok := cov.Smallest(node(t, g, "v3"), 3)
	if !ok || words.String(w3, g.Alphabet()) != "c" {
		t.Fatalf("SCP(v3) = %v, want c", w3)
	}
}

func TestSmallestRespectsBound(t *testing.T) {
	g, s := paperfix.G0()
	if _, ok := scp.Smallest(g, node(t, g, "v1"), s.Neg, 2); ok {
		t.Fatal("SCP(v1) has length 3; k=2 must fail")
	}
}

func TestSmallestNoNegatives(t *testing.T) {
	// With no negatives, ε escapes immediately.
	g, _ := paperfix.G0()
	w, ok := scp.Smallest(g, node(t, g, "v5"), nil, 3)
	if !ok || len(w) != 0 {
		t.Fatalf("SCP with no negatives = %v, want ε", w)
	}
}

func TestSmallestInconsistentNode(t *testing.T) {
	// Figure 5: the positive's paths are all covered; no SCP at any k.
	g, s := paperfix.Figure5()
	for _, k := range []int{1, 3, 6, 10} {
		if _, ok := scp.Smallest(g, s.Pos[0], s.Neg, k); ok {
			t.Fatalf("k=%d: found an SCP for a fully covered node", k)
		}
	}
}

func TestIsKInformative(t *testing.T) {
	g, s := paperfix.G0()
	if !scp.IsKInformative(g, node(t, g, "v3"), s.Neg, 2) {
		t.Fatal("v3 is 2-informative (path c)")
	}
	if scp.IsKInformative(g, node(t, g, "v1"), s.Neg, 2) {
		t.Fatal("v1 is not 2-informative (SCP is abc)")
	}
	if !scp.IsKInformative(g, node(t, g, "v1"), s.Neg, 3) {
		t.Fatal("v1 is 3-informative")
	}
}

func TestCountNonCoveredMatchesEnumeration(t *testing.T) {
	// Cross-check the DP against brute-force path enumeration on G0.
	g, s := paperfix.G0()
	cov := scp.NewCoverage(g, s.Neg)
	for v := 0; v < g.NumNodes(); v++ {
		nu := graph.NodeID(v)
		for _, k := range []int{1, 2, 3, 4} {
			brute := 0
			for _, w := range g.PathsUpTo(nu, k, 0) {
				if !g.MatchesAny(s.Neg, w) {
					brute++
				}
			}
			if got := cov.CountNonCovered(nu, k); got != brute {
				t.Fatalf("node %s k=%d: DP=%d brute=%d", g.NodeName(nu), k, got, brute)
			}
		}
	}
}

func TestCountNonCoveredNoNegatives(t *testing.T) {
	g, _ := paperfix.G0()
	// With no negatives every bounded path counts, ε included.
	nu := node(t, g, "v5")
	got := scp.CountNonCovered(g, nu, nil, 2)
	want := len(g.PathsUpTo(nu, 2, 0)) // ε, a, b
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestCoverageIsSharedAcrossNodes(t *testing.T) {
	// One Coverage must serve many nodes and memoize subset transitions.
	g, s := paperfix.G0()
	cov := scp.NewCoverage(g, s.Neg)
	for v := 0; v < g.NumNodes(); v++ {
		cov.Smallest(graph.NodeID(v), 3)
	}
	if cov.NumStates() < 2 {
		t.Fatalf("coverage materialized %d states", cov.NumStates())
	}
	// Determinism: a fresh coverage yields the same SCPs.
	fresh := scp.NewCoverage(g, s.Neg)
	for v := 0; v < g.NumNodes(); v++ {
		w1, ok1 := cov.Smallest(graph.NodeID(v), 3)
		w2, ok2 := fresh.Smallest(graph.NodeID(v), 3)
		if ok1 != ok2 || (ok1 && !words.Equal(w1, w2)) {
			t.Fatalf("node %d: SCP differs between coverage instances", v)
		}
	}
}

func TestSmallestCanonicalOrder(t *testing.T) {
	// The SCP must be the canonical-order minimum of all escaping paths.
	g, s := paperfix.G0()
	cov := scp.NewCoverage(g, s.Neg)
	for v := 0; v < g.NumNodes(); v++ {
		nu := graph.NodeID(v)
		got, ok := cov.Smallest(nu, 4)
		var want words.Word
		found := false
		for _, w := range g.PathsUpTo(nu, 4, 0) {
			if !g.MatchesAny(s.Neg, w) {
				want = w
				found = true
				break // PathsUpTo is already canonical-ordered
			}
		}
		if ok != found {
			t.Fatalf("node %d: ok=%v brute=%v", v, ok, found)
		}
		if ok && !words.Equal(got, want) {
			t.Fatalf("node %d: SCP %v, brute %v", v, got, want)
		}
	}
}
