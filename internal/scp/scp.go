// Package scp implements the smallest-consistent-path machinery of
// Section 3.2: for a positive node ν, the SCP is the canonical-order
// minimal word in paths_G(ν) \ paths_G(S−), searched up to the length
// bound k of Algorithm 1. The same search underlies the practical
// interactive strategies of Section 4.2: a node is k-informative iff it
// has a path of length ≤ k not covered by a negative example, and strategy
// kS ranks k-informative nodes by their number of non-covered k-paths.
//
// For a fixed word w the negatives' coverage set is a function of w alone,
// so it is determinized once per sample into a lazily-built Coverage index
// shared by every positive node's search. The per-node search is then a
// BFS over (graph node, coverage state) expanding symbols in sorted order,
// which visits words in canonical order; the first state with empty
// coverage yields the SCP. Depth is bounded by k (2–4 in the paper's
// experiments), which bounds the subset blow-up that makes the unbounded
// problem PSPACE-hard (Lemma 3.2).
//
// Subset states are interned to dense ids via graph.NodeSetIndex (hashed
// sorted-set interning over the CSR substrate) and transitions are flat
// per-state symbol slabs, so the learner's thousands of consistency checks
// run without per-step string encoding or per-state maps.
//
// A Coverage is pinned to one immutable epoch Snapshot: every search it
// runs observes exactly the graph published at that epoch, so coverage
// indexes may be built and queried while a writer keeps mutating and
// publishing newer epochs. The *graph.Graph entry points are thin
// read-your-writes delegates that publish the pending epoch first. One
// Coverage is not safe for concurrent use (transitions are memoized
// lazily); concurrent searches build one Coverage per worker over the same
// pinned snapshot, as the parallel learner and the kS strategy do.
package scp

import (
	"slices"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/words"
)

// Coverage is the lazily-determinized automaton of paths_G(S−): state ids
// stand for subsets of graph nodes reachable from the negative examples,
// with transitions computed on demand and memoized. The empty subset is a
// distinguished absorbing state meaning "no longer covered by any
// negative".
type Coverage struct {
	s       *graph.Snapshot
	ix      *graph.NodeSetIndex
	nsym    int
	start   int32
	emptyID int32
	// trans[id] is the state's full transition slab over symbols, built in
	// one StepAll pass on first use; nil means not yet determinized.
	// Entries store the successor id so absent symbols read as the empty
	// (escaped) subset.
	trans [][]int32
}

// NewCoverage builds the coverage index for the negative node set neg on
// the graph's read-your-writes snapshot (pending mutations are published
// first). Writer-side only; concurrent readers use NewCoverageOn.
func NewCoverage(g *graph.Graph, neg []graph.NodeID) *Coverage {
	return NewCoverageOn(g.Snapshot(), neg)
}

// NewCoverageOn builds the coverage index for the negative node set neg,
// pinned to the given epoch snapshot.
func NewCoverageOn(s *graph.Snapshot, neg []graph.NodeID) *Coverage {
	c := &Coverage{s: s, ix: graph.NewNodeSetIndex(), nsym: s.Alphabet().Size()}
	c.emptyID = c.ix.Intern(nil)
	c.start = c.ix.Intern(sortedUnique(neg))
	return c
}

// Snapshot returns the epoch snapshot the coverage is pinned to.
func (c *Coverage) Snapshot() *graph.Snapshot { return c.s }

// Start returns the initial coverage state (the full negative set).
func (c *Coverage) Start() int32 { return c.start }

// Escaped reports whether the coverage state is the empty subset: words
// reaching it are not covered by any negative example.
func (c *Coverage) Escaped(id int32) bool { return len(c.ix.Set(id)) == 0 }

// Step returns the coverage state after reading sym.
func (c *Coverage) Step(id int32, sym alphabet.Symbol) int32 {
	row := c.row(id)
	if int(sym) >= len(row) {
		// The alphabet grew since this Coverage was built: no edge carried
		// sym when the graph froze, so the successor is the empty subset.
		return c.emptyID
	}
	return row[sym]
}

// row determinizes state id on first use: one StepAll pass computes every
// symbol's successor subset at once.
func (c *Coverage) row(id int32) []int32 {
	for int(id) >= len(c.trans) {
		c.trans = append(c.trans, nil)
	}
	row := c.trans[id]
	if row != nil {
		return row
	}
	row = make([]int32, c.nsym)
	for i := range row {
		row[i] = c.emptyID
	}
	c.s.StepAll(c.ix.Set(id), func(sym alphabet.Symbol, succ []graph.NodeID) {
		row[sym] = c.ix.Intern(succ)
	})
	c.trans[id] = row
	return row
}

// NumStates returns how many subset states have been materialized; a
// measure of the index's cost, used by benchmarks.
func (c *Coverage) NumStates() int { return c.ix.Len() }

// Smallest returns the SCP of ν bounded by k: the canonical-order minimal
// word of length ≤ k in paths_G(ν) \ paths_G(S−); ok=false if none exists.
//
// The search is the shared canonical-order witness core (graph.WitnessBFS)
// over pairs (graph node, coverage state): out-edges are sorted by symbol,
// so expansion preserves canonical order across each BFS level, and the
// first state with escaped coverage yields the SCP.
func (c *Coverage) Smallest(nu graph.NodeID, k int) (words.Word, bool) {
	return graph.WitnessBFS(k, [][2]int32{{nu, c.start}},
		func(_, cov int32) bool { return c.Escaped(cov) },
		func(v, cov int32, emit func(sym alphabet.Symbol, a2, b2 int32)) {
			row := c.row(cov)
			for _, e := range c.s.OutEdges(v) {
				next := c.emptyID
				if int(e.Sym) < len(row) {
					next = row[e.Sym]
				}
				emit(e.Sym, e.To, next)
			}
		})
}

// IsKInformative reports whether ν has at least one path of length ≤ k not
// covered by a negative example (Section 4.2).
func (c *Coverage) IsKInformative(nu graph.NodeID, k int) bool {
	_, ok := c.Smallest(nu, k)
	return ok
}

// CountNonCovered returns the number of distinct words of length ≤ k in
// paths_G(ν) \ paths_G(S−) — the ranking used by strategy kS, which favors
// nodes with the smallest non-zero count (their SCP search space is
// smallest).
//
// Distinct words are in bijection with paths of the determinized product
// (reachable-set from ν, coverage state), so a per-level DP over those
// product states counts exactly the non-covered words. Reachable sets are
// interned in the same index as the coverage subsets, making the DP keys
// plain integer pairs.
func (c *Coverage) CountNonCovered(nu graph.NodeID, k int) int {
	type key struct {
		mine int32
		cov  int32
	}
	level := map[key]int{}
	startMine := c.ix.Intern([]graph.NodeID{nu})
	level[key{startMine, c.start}] = 1

	total := 0
	if c.Escaped(c.start) {
		total++ // ε itself is uncovered when there are no negatives
	}
	for depth := 0; depth < k; depth++ {
		nextLevel := map[key]int{}
		for kk, n := range level {
			for _, sym := range c.s.SymbolsOf(c.ix.Set(kk.mine)) {
				mine := c.s.Step(c.ix.Set(kk.mine), sym)
				if len(mine) == 0 {
					continue
				}
				cov := c.Step(kk.cov, sym)
				nextLevel[key{c.ix.Intern(mine), cov}] += n
			}
		}
		for nk, n := range nextLevel {
			if c.Escaped(nk.cov) {
				total += n
			}
		}
		level = nextLevel
	}
	return total
}

// Smallest is the one-shot convenience form of Coverage.Smallest.
func Smallest(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) (words.Word, bool) {
	return NewCoverage(g, neg).Smallest(nu, k)
}

// IsKInformative is the one-shot convenience form of
// Coverage.IsKInformative.
func IsKInformative(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) bool {
	return NewCoverage(g, neg).IsKInformative(nu, k)
}

// CountNonCovered is the one-shot convenience form of
// Coverage.CountNonCovered.
func CountNonCovered(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) int {
	return NewCoverage(g, neg).CountNonCovered(nu, k)
}

func sortedUnique(set []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), set...)
	slices.Sort(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}
