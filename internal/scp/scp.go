// Package scp implements the smallest-consistent-path machinery of
// Section 3.2: for a positive node ν, the SCP is the canonical-order
// minimal word in paths_G(ν) \ paths_G(S−), searched up to the length
// bound k of Algorithm 1. The same search underlies the practical
// interactive strategies of Section 4.2: a node is k-informative iff it
// has a path of length ≤ k not covered by a negative example, and strategy
// kS ranks k-informative nodes by their number of non-covered k-paths.
//
// For a fixed word w the negatives' coverage set is a function of w alone,
// so it is determinized once per sample into a lazily-built Coverage index
// shared by every positive node's search. The per-node search is then a
// BFS over (graph node, coverage state) expanding symbols in sorted order,
// which visits words in canonical order; the first state with empty
// coverage yields the SCP. Depth is bounded by k (2–4 in the paper's
// experiments), which bounds the subset blow-up that makes the unbounded
// problem PSPACE-hard (Lemma 3.2).
package scp

import (
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/words"
)

// Coverage is the lazily-determinized automaton of paths_G(S−): state ids
// stand for subsets of graph nodes reachable from the negative examples,
// with transitions computed on demand and memoized. The empty subset is a
// distinguished absorbing state meaning "no longer covered by any
// negative".
type Coverage struct {
	g       *graph.Graph
	subsets [][]graph.NodeID
	trans   []map[alphabet.Symbol]int32
	ids     map[string]int32
	start   int32
	emptyID int32
}

// NewCoverage builds the coverage index for the negative node set neg.
func NewCoverage(g *graph.Graph, neg []graph.NodeID) *Coverage {
	c := &Coverage{g: g, ids: make(map[string]int32), emptyID: -1}
	c.start = c.intern(sortedUnique(neg))
	return c
}

func (c *Coverage) intern(set []graph.NodeID) int32 {
	k := encode(set)
	if id, ok := c.ids[k]; ok {
		return id
	}
	id := int32(len(c.subsets))
	c.ids[k] = id
	c.subsets = append(c.subsets, set)
	c.trans = append(c.trans, nil)
	if len(set) == 0 {
		c.emptyID = id
	}
	return id
}

// Start returns the initial coverage state (the full negative set).
func (c *Coverage) Start() int32 { return c.start }

// Escaped reports whether the coverage state is the empty subset: words
// reaching it are not covered by any negative example.
func (c *Coverage) Escaped(id int32) bool { return len(c.subsets[id]) == 0 }

// Step returns the coverage state after reading sym.
func (c *Coverage) Step(id int32, sym alphabet.Symbol) int32 {
	if t := c.trans[id]; t != nil {
		if next, ok := t[sym]; ok {
			return next
		}
	} else {
		c.trans[id] = make(map[alphabet.Symbol]int32)
	}
	next := c.intern(c.g.Step(c.subsets[id], sym))
	c.trans[id][sym] = next
	return next
}

// NumStates returns how many subset states have been materialized; a
// measure of the index's cost, used by benchmarks.
func (c *Coverage) NumStates() int { return len(c.subsets) }

// Smallest returns the SCP of ν bounded by k: the canonical-order minimal
// word of length ≤ k in paths_G(ν) \ paths_G(S−); ok=false if none exists.
func (c *Coverage) Smallest(nu graph.NodeID, k int) (words.Word, bool) {
	type state struct {
		v    graph.NodeID
		cov  int32
		word words.Word
	}
	type seenKey struct {
		v   graph.NodeID
		cov int32
	}
	if c.Escaped(c.start) {
		return words.Epsilon, true
	}
	seen := map[seenKey]bool{{nu, c.start}: true}
	queue := []state{{nu, c.start, words.Epsilon}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.word) >= k {
			continue
		}
		// Out-edges are sorted by symbol: expansion preserves canonical
		// order across the BFS level.
		for _, e := range c.g.OutEdges(cur.v) {
			cov := c.Step(cur.cov, e.Sym)
			if c.Escaped(cov) {
				return words.Append(cur.word, e.Sym), true
			}
			k2 := seenKey{e.To, cov}
			if !seen[k2] {
				seen[k2] = true
				queue = append(queue, state{e.To, cov, words.Append(cur.word, e.Sym)})
			}
		}
	}
	return nil, false
}

// IsKInformative reports whether ν has at least one path of length ≤ k not
// covered by a negative example (Section 4.2).
func (c *Coverage) IsKInformative(nu graph.NodeID, k int) bool {
	_, ok := c.Smallest(nu, k)
	return ok
}

// CountNonCovered returns the number of distinct words of length ≤ k in
// paths_G(ν) \ paths_G(S−) — the ranking used by strategy kS, which favors
// nodes with the smallest non-zero count (their SCP search space is
// smallest).
//
// Distinct words are in bijection with paths of the determinized product
// (reachable-set from ν, coverage state), so a per-level DP over those
// product states counts exactly the non-covered words.
func (c *Coverage) CountNonCovered(nu graph.NodeID, k int) int {
	type key struct {
		mine string
		cov  int32
	}
	type st struct {
		mine []graph.NodeID
		cov  int32
	}
	level := map[key]st{}
	counts := map[key]int{}
	start := st{[]graph.NodeID{nu}, c.start}
	sk := key{encode(start.mine), start.cov}
	level[sk] = start
	counts[sk] = 1

	total := 0
	if c.Escaped(c.start) {
		total++ // ε itself is uncovered when there are no negatives
	}
	for depth := 0; depth < k; depth++ {
		nextLevel := map[key]st{}
		nextCounts := map[key]int{}
		for kk, cur := range level {
			n := counts[kk]
			for _, sym := range symbolsFrom(c.g, cur.mine) {
				mine := c.g.Step(cur.mine, sym)
				if len(mine) == 0 {
					continue
				}
				cov := c.Step(cur.cov, sym)
				nk := key{encode(mine), cov}
				if _, ok := nextLevel[nk]; !ok {
					nextLevel[nk] = st{mine, cov}
				}
				nextCounts[nk] += n
			}
		}
		for nk, cur := range nextLevel {
			if c.Escaped(cur.cov) {
				total += nextCounts[nk]
			}
		}
		level, counts = nextLevel, nextCounts
	}
	return total
}

// Smallest is the one-shot convenience form of Coverage.Smallest.
func Smallest(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) (words.Word, bool) {
	return NewCoverage(g, neg).Smallest(nu, k)
}

// IsKInformative is the one-shot convenience form of
// Coverage.IsKInformative.
func IsKInformative(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) bool {
	return NewCoverage(g, neg).IsKInformative(nu, k)
}

// CountNonCovered is the one-shot convenience form of
// Coverage.CountNonCovered.
func CountNonCovered(g *graph.Graph, nu graph.NodeID, neg []graph.NodeID, k int) int {
	return NewCoverage(g, neg).CountNonCovered(nu, k)
}

// symbolsFrom returns the sorted distinct symbols with an out-edge from set.
func symbolsFrom(g *graph.Graph, set []graph.NodeID) []alphabet.Symbol {
	seen := make(map[alphabet.Symbol]bool)
	var out []alphabet.Symbol
	for _, v := range set {
		for _, e := range g.OutEdges(v) {
			if !seen[e.Sym] {
				seen[e.Sym] = true
				out = append(out, e.Sym)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedUnique(set []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), set...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

func encode(set []graph.NodeID) string {
	b := make([]byte, 0, len(set)*4)
	for _, v := range set {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}
