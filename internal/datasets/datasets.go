// Package datasets builds the evaluation workloads of Section 5.
//
// The paper evaluates on (i) the AliBaba protein-interaction graph
// (~3k nodes, ~8k edges) with six real biological queries of known
// selectivities (Table 1), and (ii) synthetic scale-free graphs with a
// Zipfian edge-label distribution (10k/20k/30k nodes, |E| = 3·|V|) with
// three queries of shape A·B*·C at 1%/15%/40% selectivity.
//
// The AliBaba graph is not redistributable, so this package generates a
// deterministic stand-in with the same size, a heavy-tailed degree
// distribution, and a Zipfian label distribution, and defines the six
// bio-query *shapes* from Table 1 over frequency-ranked label classes so
// that the selectivity ordering of the paper is preserved. The synthetic
// generator matches the paper's stated properties directly, and the syn
// queries are calibrated against the generated graph to hit the paper's
// selectivity targets.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/regex"
)

// Zipf samples ranks 0..n-1 with P(r) ∝ 1/(r+1)^s, deterministically from
// the provided rng.
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws a rank.
func (z *Zipf) Sample(rng *rand.Rand) int {
	x := rng.Float64()
	return sort.SearchFloat64s(z.cum, x)
}

// ScaleFreeConfig parametrizes the generator.
type ScaleFreeConfig struct {
	Nodes  int
	Edges  int
	Labels int
	// ZipfS is the label-distribution exponent (1.0 in the experiments).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
	// NamePrefix prefixes node names (default "n").
	NamePrefix string
}

// ScaleFree generates a directed scale-free multigraph: edge targets are
// chosen by preferential attachment on in-degree and sources by
// preferential attachment on out-degree (each with +1 smoothing), which
// yields the heavy-tailed degree distribution of real-world graphs; labels
// are drawn Zipfian by frequency rank (label "l00" most frequent).
func ScaleFree(cfg ScaleFreeConfig) *graph.Graph {
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "n"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alpha := alphabet.New()
	for l := 0; l < cfg.Labels; l++ {
		alpha.Intern(labelName(l))
	}
	g := graph.New(alpha)
	for i := 0; i < cfg.Nodes; i++ {
		g.AddNode(fmt.Sprintf("%s%d", cfg.NamePrefix, i))
	}
	zipf := NewZipf(cfg.Labels, cfg.ZipfS)

	// Preferential attachment via repeated-endpoint sampling: keep a pool
	// of endpoints where each node appears once plus once per incident
	// edge, so sampling the pool is degree-proportional.
	outPool := make([]graph.NodeID, 0, cfg.Nodes+cfg.Edges)
	inPool := make([]graph.NodeID, 0, cfg.Nodes+cfg.Edges)
	for i := 0; i < cfg.Nodes; i++ {
		outPool = append(outPool, graph.NodeID(i))
		inPool = append(inPool, graph.NodeID(i))
	}
	for e := 0; e < cfg.Edges; e++ {
		from := outPool[rng.Intn(len(outPool))]
		to := inPool[rng.Intn(len(inPool))]
		sym := alphabet.Symbol(zipf.Sample(rng))
		g.AddEdge(from, sym, to)
		outPool = append(outPool, from)
		inPool = append(inPool, to)
	}
	// Generated graphs are immutable from here on: build the CSR read
	// view before the graph fans out to queries and benchmarks.
	g.Freeze()
	return g
}

func labelName(rank int) string { return fmt.Sprintf("l%02d", rank) }

// classExpr renders label ranks as a disjunction expression.
func classExpr(ranks []int) string {
	if len(ranks) == 1 {
		return labelName(ranks[0])
	}
	s := "("
	for i, r := range ranks {
		if i > 0 {
			s += "+"
		}
		s += labelName(r)
	}
	return s + ")"
}

func rankRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for r := lo; r <= hi; r++ {
		out = append(out, r)
	}
	return out
}

// NamedQuery is a workload query with the selectivity the paper reports.
type NamedQuery struct {
	Name string
	// Expr is the regular expression source.
	Expr string
	// Query is the compiled query over the dataset's alphabet.
	Query *query.Query
	// PaperSelectivity is the fraction of nodes the paper reports selected
	// (Table 1 for bio queries; 1%/15%/40% for syn).
	PaperSelectivity float64
}

// AliBabaNodes and AliBabaEdges match the paper's extracted semantic
// subgraph: "about 3k nodes and 8k edges".
const (
	AliBabaNodes  = 3000
	AliBabaEdges  = 8000
	AliBabaLabels = 30
)

// AliBaba generates the deterministic AliBaba stand-in graph. The steeper
// Zipf exponent (1.3) gives the label-frequency tail needed for the most
// selective bio queries.
func AliBaba() *graph.Graph {
	return ScaleFree(ScaleFreeConfig{
		Nodes:      AliBabaNodes,
		Edges:      AliBabaEdges,
		Labels:     AliBabaLabels,
		ZipfS:      1.3,
		Seed:       20150323, // EDBT 2015 opening day; fixed for reproducibility
		NamePrefix: "p",
	})
}

// BioQueries returns the six biological queries of Table 1, with the
// paper's reported selectivities, compiled over g's alphabet. The shapes
// are the paper's; the classes A, C, E, I are disjunctions of up to 10
// labels (with overlaps, as the paper describes), chosen by frequency rank
// so that the selectivity ordering bio1 < bio2 < bio3 < bio4 ≈ bio5 < bio6
// carries over to the stand-in graph.
func BioQueries(g *graph.Graph) []NamedQuery {
	return BioQueriesOn(g.Snapshot())
}

// BioQueriesOn is BioQueries pinned to an epoch snapshot: the rare-label
// choice evaluates candidate queries on s, so the returned workload is a
// pure function of the snapshot even while writers advance the graph.
func BioQueriesOn(s *graph.Snapshot) []NamedQuery {
	// Classes over frequency-ranked labels (rank 0 = most frequent).
	A := classExpr(rankRange(2, 7))   // broad mid-frequency
	I := classExpr(rankRange(5, 12))  // overlapping A, less frequent
	C := classExpr(rankRange(10, 15)) // mid-tail
	E := classExpr(rankRange(4, 8))   // overlapping A and I
	a := labelName(9)
	// b is the tail label making bio1 the most selective query that still
	// selects at least one node — the paper likewise "retained those
	// queries that select at least one node on the graph".
	b := labelName(chooseRareLabel(s, A))
	defs := []struct {
		name, expr string
		sel        float64
	}{
		{"bio1", fmt.Sprintf("%s·%s·%s*", b, A, A), 0.0003},
		{"bio2", fmt.Sprintf("%s·%s*·%s·%s·%s*", C, C, a, A, A), 0.002},
		{"bio3", fmt.Sprintf("%s·%s", C, E), 0.03},
		{"bio4", fmt.Sprintf("%s·%s·%s*", I, I, I), 0.11},
		{"bio5", fmt.Sprintf("%s·%s·%s*·%s·%s·%s*", A, A, A, I, I, I), 0.12},
		{"bio6", fmt.Sprintf("%s·%s·%s*", A, A, A), 0.22},
	}
	out := make([]NamedQuery, len(defs))
	for i, d := range defs {
		out[i] = NamedQuery{
			Name:             d.name,
			Expr:             d.expr,
			Query:            query.MustParse(s.Alphabet(), d.expr),
			PaperSelectivity: d.sel,
		}
	}
	return out
}

// chooseRareLabel returns the rank r ≥ 20 minimizing the (non-zero)
// selectivity of labelName(r)·A·A* on the snapshot.
func chooseRareLabel(s *graph.Snapshot, A string) int {
	best, bestSel := 20, math.Inf(1)
	for r := 20; r < s.Alphabet().Size(); r++ {
		expr := fmt.Sprintf("%s·%s·%s*", labelName(r), A, A)
		q, err := query.Parse(s.Alphabet(), expr)
		if err != nil {
			continue
		}
		sel := q.EvaluateOn(s).Selectivity()
		if sel > 0 && sel < bestSel {
			bestSel = sel
			best = r
		}
	}
	return best
}

// SyntheticSizes are the node counts of the synthetic experiments.
var SyntheticSizes = []int{10000, 20000, 30000}

// Synthetic generates a synthetic scale-free graph with n nodes, 3·n
// edges, and Zipfian labels, as in Section 5.1.
func Synthetic(n int, seed int64) *graph.Graph {
	return ScaleFree(ScaleFreeConfig{
		Nodes:  n,
		Edges:  3 * n,
		Labels: 20,
		ZipfS:  1.0,
		Seed:   seed,
	})
}

// SynTargets are the paper's selectivity targets for syn1..syn3.
var SynTargets = []float64{0.01, 0.15, 0.40}

// SynQueries returns syn1..syn3 — queries of shape A·B*·C — calibrated on
// g to approximate the paper's selectivity targets (1%, 15%, 40%
// "regardless of the actual size of the graph"). Calibration searches over
// class widths for A and C with B fixed mid-weight, evaluating each
// candidate on g and keeping the closest.
func SynQueries(g *graph.Graph) []NamedQuery {
	return SynQueriesOn(g.Snapshot())
}

// SynQueriesOn is SynQueries pinned to an epoch snapshot: every
// calibration candidate is evaluated on s, so concurrent mutations cannot
// skew the search mid-way.
func SynQueriesOn(s *graph.Snapshot) []NamedQuery {
	out := make([]NamedQuery, len(SynTargets))
	for i, target := range SynTargets {
		name := fmt.Sprintf("syn%d", i+1)
		expr, q := calibrateABC(s, target)
		out[i] = NamedQuery{Name: name, Expr: expr, Query: q, PaperSelectivity: target}
	}
	return out
}

// calibrateABC searches start ranks and widths for the classes A and C
// (B fixed as a mid-frequency band, overlapping as the paper allows) and
// returns the A·B*·C candidate whose selectivity on the snapshot is
// closest to target. The search evaluates each candidate on s, so
// calibration adapts to the generated graph — the paper's queries
// likewise hold their selectivities "regardless of the actual size of the
// graph".
func calibrateABC(s *graph.Snapshot, target float64) (string, *query.Query) {
	bestExpr := ""
	var bestQ *query.Query
	bestGap := math.Inf(1)
	labels := s.Alphabet().Size()
	B := classExpr(rankRange(1, 4))
	starts := []int{0, 2, 4, 6, 8, 10, 12, 14, 16}
	widths := []int{1, 2, 3, 4, 6, 8, 10}
	for _, la := range starts {
		for _, wa := range widths {
			if la+wa > labels {
				continue
			}
			for _, lc := range starts {
				for _, wc := range widths {
					if lc+wc > labels {
						continue
					}
					expr := fmt.Sprintf("%s·%s*·%s",
						classExpr(rankRange(la, la+wa-1)), B,
						classExpr(rankRange(lc, lc+wc-1)))
					q, err := query.Parse(s.Alphabet(), expr)
					if err != nil {
						continue
					}
					gap := math.Abs(q.EvaluateOn(s).Selectivity() - target)
					if gap < bestGap {
						bestGap = gap
						bestExpr = expr
						bestQ = q
					}
				}
			}
		}
	}
	return bestExpr, bestQ
}

// RandomSample draws a static-protocol sample for a goal query: labeled
// nodes are chosen uniformly at random and labeled by the goal, until
// fraction·|V| examples are collected (Section 5.2's setup). The result
// may contain zero positives for very selective goals at low fractions —
// exactly as in the paper's static experiments.
func RandomSample(g *graph.Graph, goal *query.Query, fraction float64, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID) {
	return RandomSampleOn(g.Snapshot(), goal, fraction, rng)
}

// RandomSampleOn is RandomSample pinned to an epoch snapshot, so the
// labels and the node universe come from one consistent epoch.
func RandomSampleOn(s *graph.Snapshot, goal *query.Query, fraction float64, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID) {
	sel := goal.EvaluateOn(s).Vector()
	n := s.NumNodes()
	want := int(fraction * float64(n))
	if want < 1 {
		want = 1
	}
	perm := rng.Perm(n)
	var pos, neg []graph.NodeID
	for _, v := range perm[:want] {
		if sel[v] {
			pos = append(pos, graph.NodeID(v))
		} else {
			neg = append(neg, graph.NodeID(v))
		}
	}
	return pos, neg
}

// Regex exposes the compiled expression of a named query for callers that
// need the AST (e.g. printing with a different alphabet).
func (nq NamedQuery) Regex() *regex.Node { return nq.Query.Regex() }

// DirectionalSkew builds the adversarial shape for forward-only binary
// evaluation under the query a*·b: a dense strongly-connected 'a' core
// (coreNodes nodes, ~8 out-edges each) that a chain of chainLen nodes
// feeds into, with the graph's only 'b' edge at the chain's end. Forward
// evaluation from the chain head floods the whole core for one answer;
// the backward co-accepting set is just the chain, so the
// direction-optimizing evaluator wins by an |E|/|chain| factor. Shared by
// the direction-optimizing benchmark and its correctness tests. Returns
// the frozen graph, the chain head, and the accepting sink.
func DirectionalSkew(coreNodes, chainLen int) (*graph.Graph, graph.NodeID, graph.NodeID) {
	alpha := alphabet.NewSorted("a", "b")
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	g := graph.New(alpha)
	core := make([]graph.NodeID, coreNodes)
	for i := range core {
		core[i] = g.AddNode(fmt.Sprintf("core%d", i))
	}
	rng := rand.New(rand.NewSource(11))
	for i := range core {
		g.AddEdge(core[i], a, core[(i+1)%coreNodes])
		for k := 0; k < 7; k++ {
			g.AddEdge(core[i], a, core[rng.Intn(coreNodes)])
		}
	}
	head := g.AddNode("chain0")
	prev := head
	g.AddEdge(head, a, core[0])
	for i := 1; i < chainLen; i++ {
		n := g.AddNode(fmt.Sprintf("chain%d", i))
		g.AddEdge(prev, a, n)
		prev = n
	}
	sink := g.AddNode("sink")
	g.AddEdge(prev, b, sink)
	g.Freeze()
	return g, head, sink
}
