package datasets

import (
	"math"
	"math/rand"
	"testing"

	"pathquery/internal/graph"
	"pathquery/internal/query"
)

func TestZipfDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(10, 1.0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 must be the most frequent and the counts must decrease
	// (weakly) with rank.
	for r := 1; r < 10; r++ {
		if counts[r] > counts[r-1] {
			t.Fatalf("rank %d more frequent than rank %d (%d > %d)",
				r, r-1, counts[r], counts[r-1])
		}
	}
	// Rank 0 frequency ≈ 1/H10 ≈ 0.341.
	got := float64(counts[0]) / n
	if math.Abs(got-0.3414) > 0.01 {
		t.Fatalf("rank-0 frequency = %.4f, want ≈ 0.341", got)
	}
}

func TestScaleFreeShape(t *testing.T) {
	g := ScaleFree(ScaleFreeConfig{Nodes: 2000, Edges: 6000, Labels: 10, ZipfS: 1, Seed: 7})
	if g.NumNodes() != 2000 || g.NumEdges() != 6000 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	// Heavy tail: the max out-degree must far exceed the mean (3).
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 15 {
		t.Fatalf("max out-degree = %d; expected a heavy-tailed hub ≫ mean 3", maxDeg)
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	a := ScaleFree(ScaleFreeConfig{Nodes: 100, Edges: 300, Labels: 5, ZipfS: 1, Seed: 3})
	b := ScaleFree(ScaleFreeConfig{Nodes: 100, Edges: 300, Labels: 5, ZipfS: 1, Seed: 3})
	for v := 0; v < a.NumNodes(); v++ {
		ea, eb := a.OutEdges(graph.NodeID(v)), b.OutEdges(graph.NodeID(v))
		if len(ea) != len(eb) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %d edge %d differs", v, i)
			}
		}
	}
	c := ScaleFree(ScaleFreeConfig{Nodes: 100, Edges: 300, Labels: 5, ZipfS: 1, Seed: 4})
	same := true
	for v := 0; v < a.NumNodes() && same; v++ {
		ea, ec := a.OutEdges(graph.NodeID(v)), c.OutEdges(graph.NodeID(v))
		if len(ea) != len(ec) {
			same = false
			break
		}
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestAliBabaSize(t *testing.T) {
	g := AliBaba()
	if g.NumNodes() != AliBabaNodes || g.NumEdges() != AliBabaEdges {
		t.Fatalf("AliBaba = %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestBioQuerySelectivityOrdering(t *testing.T) {
	// Table 1's selectivity ordering must carry over to the stand-in:
	// bio1, bio2 ≪ bio3 < {bio4, bio5} < bio6, with every query selecting
	// at least one node (the paper's retention criterion).
	g := AliBaba()
	qs := BioQueries(g)
	if len(qs) != 6 {
		t.Fatalf("%d bio queries", len(qs))
	}
	sel := make(map[string]float64, 6)
	for _, nq := range qs {
		s := nq.Query.Selectivity(g)
		sel[nq.Name] = s
		if s == 0 {
			t.Errorf("%s selects no node", nq.Name)
		}
	}
	if !(sel["bio1"] < sel["bio2"]) {
		t.Errorf("bio1 (%.4f) should be more selective than bio2 (%.4f)", sel["bio1"], sel["bio2"])
	}
	if !(sel["bio2"] < sel["bio3"]) {
		t.Errorf("bio2 (%.4f) should be more selective than bio3 (%.4f)", sel["bio2"], sel["bio3"])
	}
	if !(sel["bio3"] < sel["bio4"]) {
		t.Errorf("bio3 (%.4f) should be more selective than bio4 (%.4f)", sel["bio3"], sel["bio4"])
	}
	if !(sel["bio3"] < sel["bio5"]) {
		t.Errorf("bio3 (%.4f) should be more selective than bio5 (%.4f)", sel["bio3"], sel["bio5"])
	}
	if !(sel["bio4"] < sel["bio6"]) {
		t.Errorf("bio4 (%.4f) should be more selective than bio6 (%.4f)", sel["bio4"], sel["bio6"])
	}
	if !(sel["bio5"] < sel["bio6"]) {
		t.Errorf("bio5 ≤ bio6 must hold by construction (A·A·A*·I·I·I* ⊆-selects A·A·A*)")
	}
	// Magnitude bands: the most selective stay sub-percent, the broadest
	// reaches the tens of percent, as in Table 1.
	if sel["bio1"] > 0.01 {
		t.Errorf("bio1 = %.4f; want < 1%%", sel["bio1"])
	}
	if sel["bio6"] < 0.10 || sel["bio6"] > 0.45 {
		t.Errorf("bio6 = %.4f; want within [10%%, 45%%]", sel["bio6"])
	}
}

func TestBio5SubsumedByBio6(t *testing.T) {
	// Structural invariant: every node selected by bio5 is selected by
	// bio6 (an A·A·A*·I·I·I* path starts with an A·A·A* path).
	g := AliBaba()
	qs := BioQueries(g)
	var bio5, bio6 *query.Query
	for _, nq := range qs {
		switch nq.Name {
		case "bio5":
			bio5 = nq.Query
		case "bio6":
			bio6 = nq.Query
		}
	}
	s5, s6 := bio5.Select(g), bio6.Select(g)
	for v := range s5 {
		if s5[v] && !s6[v] {
			t.Fatalf("node %d selected by bio5 but not bio6", v)
		}
	}
}

func TestSynQueriesHitTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep on a 10k-node graph")
	}
	g := Synthetic(10000, 1)
	if g.NumEdges() != 3*g.NumNodes() {
		t.Fatalf("|E| = %d, want 3·|V|", g.NumEdges())
	}
	for i, nq := range SynQueries(g) {
		got := nq.Query.Selectivity(g)
		target := SynTargets[i]
		// Within 40% relative or 2 points absolute of the paper's target.
		if math.Abs(got-target) > 0.02 && math.Abs(got-target)/target > 0.4 {
			t.Errorf("%s selectivity %.4f, target %.2f", nq.Name, got, target)
		}
	}
}

func TestRandomSampleLabelsMatchGoal(t *testing.T) {
	g := Synthetic(1000, 5)
	nq := SynQueries(g)[1]
	rng := rand.New(rand.NewSource(9))
	pos, neg := RandomSample(g, nq.Query, 0.05, rng)
	if len(pos)+len(neg) != 50 {
		t.Fatalf("sample size = %d, want 50", len(pos)+len(neg))
	}
	sel := nq.Query.Select(g)
	for _, v := range pos {
		if !sel[v] {
			t.Fatalf("positive %d not selected by goal", v)
		}
	}
	for _, v := range neg {
		if sel[v] {
			t.Fatalf("negative %d selected by goal", v)
		}
	}
}

func TestNamedQueryRegex(t *testing.T) {
	g := AliBaba()
	for _, nq := range BioQueries(g) {
		if nq.Regex() == nil {
			t.Fatalf("%s has no regex", nq.Name)
		}
	}
}

// TestSnapshotWorkloadsPinned: the ...On variants are pure functions of
// the pinned snapshot — mutating the graph after pinning changes neither
// the chosen queries nor the sample, and the Graph receivers delegate to
// the same code.
func TestSnapshotWorkloadsPinned(t *testing.T) {
	g := Synthetic(800, 3)
	s := g.Snapshot()

	wantBio := BioQueries(g)
	wantSyn := SynQueries(g)
	rng := rand.New(rand.NewSource(4))
	wantPos, wantNeg := RandomSample(g, wantSyn[0].Query, 0.05, rng)

	// Advance the live graph past the pinned epoch.
	a := g.AddNode("pin-a")
	b := g.AddNode("pin-b")
	for i := 0; i < 200; i++ {
		g.AddEdge(a, 0, b)
	}

	gotBio := BioQueriesOn(s)
	for i := range wantBio {
		if gotBio[i].Expr != wantBio[i].Expr {
			t.Fatalf("%s drifted after mutation: %q vs %q", wantBio[i].Name, gotBio[i].Expr, wantBio[i].Expr)
		}
	}
	gotSyn := SynQueriesOn(s)
	for i := range wantSyn {
		if gotSyn[i].Expr != wantSyn[i].Expr {
			t.Fatalf("%s drifted after mutation: %q vs %q", wantSyn[i].Name, gotSyn[i].Expr, wantSyn[i].Expr)
		}
	}
	rng = rand.New(rand.NewSource(4))
	gotPos, gotNeg := RandomSampleOn(s, gotSyn[0].Query, 0.05, rng)
	if len(gotPos) != len(wantPos) || len(gotNeg) != len(wantNeg) {
		t.Fatalf("sample drifted after mutation: %d/%d vs %d/%d",
			len(gotPos), len(gotNeg), len(wantPos), len(wantNeg))
	}
	for i := range gotPos {
		if gotPos[i] != wantPos[i] {
			t.Fatalf("positive sample drifted at %d", i)
		}
	}
}
