package datasets

import (
	"fmt"
	"math/rand"

	"pathquery/internal/graph"
	"pathquery/internal/nodelabeled"
	"pathquery/internal/query"
)

// This file generates the scientific-workflow corpus of the paper's
// introduction (Figure 2): interrelated workflows whose nodes are
// processing modules, mined with path queries like
// ProteinPurification·ProteinSeparation*·MassSpectrometry. Workflows are
// node-labeled; WorkflowCorpus returns both forms via the nodelabeled
// encoding.

// WorkflowModules is the module vocabulary, loosely after the proteomics
// pipelines the paper cites.
var WorkflowModules = []string{
	"SampleCollection",
	"ProteinPurification",
	"ProteinSeparation",
	"MassSpectrometry",
	"GelImaging",
	"RNAExtraction",
	"Sequencing",
	"DataAnalysis",
}

// WorkflowConfig tunes corpus generation.
type WorkflowConfig struct {
	// Workflows is the number of workflow chains.
	Workflows int
	// MaxStages bounds each workflow's length (≥ 2).
	MaxStages int
	// TargetFraction is the approximate fraction of workflows matching the
	// goal pattern Purification·Separation*·MassSpectrometry.
	TargetFraction float64
	Seed           int64
}

// WorkflowCorpus generates a node-labeled workflow corpus and its
// edge-labeled encoding. Each workflow is a chain of module nodes starting
// at an entry node named wfN; roughly TargetFraction of the chains match
// the goal pattern.
func WorkflowCorpus(cfg WorkflowConfig) (*nodelabeled.Graph, *graph.Graph, error) {
	if cfg.Workflows <= 0 {
		cfg.Workflows = 50
	}
	if cfg.MaxStages < 2 {
		cfg.MaxStages = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nl := nodelabeled.New(nil)
	for i := 0; i < cfg.Workflows; i++ {
		name := fmt.Sprintf("wf%d", i)
		var modules []string
		if rng.Float64() < cfg.TargetFraction {
			// A matching pipeline: purification, 0..n separations, mass spec.
			modules = append(modules, "ProteinPurification")
			for s := rng.Intn(cfg.MaxStages - 1); s > 0; s-- {
				modules = append(modules, "ProteinSeparation")
			}
			modules = append(modules, "MassSpectrometry")
		} else {
			// A non-matching pipeline: random modules, fixed up if it
			// accidentally matches.
			n := 2 + rng.Intn(cfg.MaxStages-1)
			for s := 0; s < n; s++ {
				modules = append(modules, WorkflowModules[rng.Intn(len(WorkflowModules))])
			}
			if matchesGoal(modules) {
				modules[len(modules)-1] = "GelImaging"
			}
		}
		// Entry node labeled as a generic start marker.
		if _, err := nl.AddNode(name, "Start"); err != nil {
			return nil, nil, err
		}
		prev := name
		for j, m := range modules {
			stage := fmt.Sprintf("%s_s%d", name, j+1)
			if _, err := nl.AddNode(stage, m); err != nil {
				return nil, nil, err
			}
			if err := nl.AddEdgeByName(prev, stage); err != nil {
				return nil, nil, err
			}
			prev = stage
		}
	}
	return nl, nl.ToEdgeLabeled(), nil
}

// matchesGoal reports whether a module sequence (as a whole) matches
// Purification·Separation*·MassSpectrometry.
func matchesGoal(modules []string) bool {
	if len(modules) < 2 || modules[0] != "ProteinPurification" ||
		modules[len(modules)-1] != "MassSpectrometry" {
		return false
	}
	for _, m := range modules[1 : len(modules)-1] {
		if m != "ProteinSeparation" {
			return false
		}
	}
	return true
}

// WorkflowGoal compiles the Figure 2 goal pattern over the corpus
// alphabet.
func WorkflowGoal(g *graph.Graph) *query.Query {
	return query.MustParse(g.Alphabet(),
		"ProteinPurification·ProteinSeparation*·MassSpectrometry")
}
