package interactive

import (
	"encoding/json"
	"fmt"
	"io"

	"pathquery/internal/core"
	"pathquery/internal/graph"
)

// Sample persistence lets an interactive session be interrupted and
// resumed: labels are stored by node name, so a saved session survives
// graph re-serialization as long as names are stable.

type sampleJSON struct {
	Pos []string `json:"pos"`
	Neg []string `json:"neg"`
}

// SaveSample writes the sample as JSON with node names.
func SaveSample(w io.Writer, g *graph.Graph, s core.Sample) error {
	out := sampleJSON{Pos: make([]string, 0, len(s.Pos)), Neg: make([]string, 0, len(s.Neg))}
	for _, v := range s.Pos {
		out.Pos = append(out.Pos, g.NodeName(v))
	}
	for _, v := range s.Neg {
		out.Neg = append(out.Neg, g.NodeName(v))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadSample reads a saved sample and resolves names on g.
func LoadSample(r io.Reader, g *graph.Graph) (core.Sample, error) {
	var in sampleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return core.Sample{}, fmt.Errorf("interactive: decoding sample: %w", err)
	}
	var s core.Sample
	for _, name := range in.Pos {
		id, ok := g.NodeByName(name)
		if !ok {
			return core.Sample{}, fmt.Errorf("interactive: unknown node %q in saved sample", name)
		}
		s.Pos = append(s.Pos, id)
	}
	for _, name := range in.Neg {
		id, ok := g.NodeByName(name)
		if !ok {
			return core.Sample{}, fmt.Errorf("interactive: unknown node %q in saved sample", name)
		}
		s.Neg = append(s.Neg, id)
	}
	if err := s.Validate(); err != nil {
		return core.Sample{}, err
	}
	return s, nil
}

// Resume builds a session pre-loaded with an existing sample: the k
// schedule is warmed up to the sample's needs and proposals skip labeled
// nodes as usual.
func Resume(g *graph.Graph, s core.Sample, opts Options) (*Session, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sess := NewSession(g, opts)
	for _, v := range s.Pos {
		if err := sess.Label(v, true); err != nil {
			return nil, err
		}
	}
	for _, v := range s.Neg {
		if err := sess.Label(v, false); err != nil {
			return nil, err
		}
	}
	return sess, nil
}
