package interactive_test

import (
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

func TestSessionLearnsPaperGoalOnG0(t *testing.T) {
	// Interactive learning of (a·b)*·c on G0 must converge to a query
	// selecting exactly the goal's nodes, for both strategies.
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	for _, strat := range []interactive.Strategy{interactive.KR{}, interactive.KS{}} {
		sess := interactive.NewSession(g, interactive.Options{Strategy: strat, Seed: 1})
		oracle := interactive.NewQueryOracle(g, goal)
		res, err := sess.Run(oracle, interactive.ExactMatch(g, goal))
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if res.Halted != interactive.HaltSatisfied {
			t.Fatalf("%s: halted %v after %d labels", strat.Name(), res.Halted, res.Labels())
		}
		if !res.Query.EquivalentOn(g, goal) {
			t.Fatalf("%s: learned %v not equivalent on G0", strat.Name(), res.Query)
		}
		if res.Labels() == 0 || res.Labels() > g.NumNodes() {
			t.Fatalf("%s: %d labels", strat.Name(), res.Labels())
		}
	}
}

func TestSessionNeverProposesLabeledNode(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "a")
	sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KR{}, Seed: 7})
	oracle := interactive.NewQueryOracle(g, goal)
	res, err := sess.Run(oracle, interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.NodeID]bool)
	for _, it := range res.Interactions {
		if seen[it.Node] {
			t.Fatalf("node %d proposed twice", it.Node)
		}
		seen[it.Node] = true
	}
}

func TestSessionDeterministicGivenSeed(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	run := func() []graph.NodeID {
		sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KR{}, Seed: 42})
		res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
		if err != nil {
			t.Fatal(err)
		}
		var order []graph.NodeID
		for _, it := range res.Interactions {
			order = append(order, it.Node)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestKSPrefersSmallestCount(t *testing.T) {
	// Build a graph with two informative nodes: one with many non-covered
	// paths, one with a single one. kS must propose the latter.
	g := graph.New(nil)
	// rich: three distinct 1-paths.
	g.AddEdgeByName("rich", "a", "x")
	g.AddEdgeByName("rich", "b", "x")
	g.AddEdgeByName("rich", "c", "x")
	// poor: a single 1-path.
	g.AddEdgeByName("poor", "a", "x")
	ks := interactive.KS{}
	sess := interactive.NewSession(g, interactive.Options{Strategy: ks, Seed: 1})
	_ = sess
	ctx := &interactive.Context{
		Snap:     g.Snapshot(),
		Coverage: nil,
		K:        2,
	}
	// Build the context via a session-free path: coverage over no negatives.
	ctx.Coverage = ctx.NewCoverage()
	nu, ok := ks.Next(ctx)
	if !ok {
		t.Fatal("no k-informative node found")
	}
	poor, _ := g.NodeByName("poor")
	// With no negatives both nodes count their ε and 1-paths; poor has
	// fewer. Dead-end x has exactly one (ε), even fewer — accept either
	// poor or x; rich must not win.
	rich, _ := g.NodeByName("rich")
	if nu == rich {
		t.Fatalf("kS proposed the node with the most non-covered paths (%d)", nu)
	}
	_ = poor
}

func TestHaltMaxInteractions(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sess := interactive.NewSession(g, interactive.Options{
		Strategy:        interactive.KR{},
		Seed:            3,
		MaxInteractions: 1,
	})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), func(q *query.Query) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltMaxInteractions {
		t.Fatalf("halted %v", res.Halted)
	}
	if res.Labels() != 1 {
		t.Fatalf("labels = %d, want 1", res.Labels())
	}
}

func TestHaltNoInformativeNodes(t *testing.T) {
	// A graph with no edges: every node has only the ε path; after the
	// first negative label, nothing is k-informative.
	g := graph.New(nil)
	g.AddNode("a")
	g.AddNode("b")
	g.AddNode("c")
	// Goal selecting nothing: every oracle answer is negative.
	goal := query.MustParse(g.Alphabet(), "zzz")
	sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KR{}, Seed: 5})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), func(q *query.Query) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltNoInformativeNodes {
		t.Fatalf("halted %v after %d labels", res.Halted, res.Labels())
	}
}

func TestSessionInteractionDiagnostics(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KS{}, Seed: 9})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.Interactions {
		if len(it.Neighborhood) == 0 {
			t.Fatalf("interaction %d has empty neighborhood", i)
		}
		found := false
		for _, v := range it.Neighborhood {
			if v == it.Node {
				found = true
			}
		}
		if !found {
			t.Fatalf("interaction %d: proposed node missing from its neighborhood", i)
		}
		if it.K < 2 {
			t.Fatalf("interaction %d: k = %d", i, it.K)
		}
	}
	if res.LabelFraction(g) <= 0 || res.LabelFraction(g) > 1 {
		t.Fatalf("label fraction = %v", res.LabelFraction(g))
	}
	if res.MeanTimeBetweenInteractions() < 0 {
		t.Fatal("negative mean time")
	}
}

func TestOracleLabelsMatchGoal(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "a")
	oracle := interactive.NewQueryOracle(g, goal)
	sel := goal.Select(g)
	for v := 0; v < g.NumNodes(); v++ {
		if oracle.Label(graph.NodeID(v)) != sel[v] {
			t.Fatalf("oracle disagrees with goal at %d", v)
		}
	}
}

func TestLabelRejectsDuplicates(t *testing.T) {
	g, _ := paperfix.G0()
	sess := interactive.NewSession(g, interactive.Options{})
	if err := sess.Label(0, true); err != nil {
		t.Fatal(err)
	}
	if err := sess.Label(0, false); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestInteractiveBeatsStaticOnLabels(t *testing.T) {
	// The paper's headline interactive result, in miniature: interactive
	// sessions need far fewer labels than labeling everything. On G0 the
	// goal needs at most 4 labels interactively (|V| = 7).
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KS{}, Seed: 11})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltSatisfied {
		t.Fatalf("halted %v", res.Halted)
	}
	if res.Labels() >= g.NumNodes() {
		t.Fatalf("interactive used %d labels on a %d-node graph", res.Labels(), g.NumNodes())
	}
}

func TestSessionSampleStaysConsistentWithOracle(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	sess := interactive.NewSession(g, interactive.Options{Strategy: interactive.KR{}, Seed: 13})
	oracle := interactive.NewQueryOracle(g, goal)
	res, err := sess.Run(oracle, interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	s := sess.Sample()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !core.Consistent(g, s) {
		t.Fatal("oracle-labeled sample must be consistent")
	}
}
