package interactive

import (
	"fmt"
	"io"

	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// Observer receives session events — the hook a UI (like the paper's demo
// system [12]) plugs into. All methods are optional via the embedded
// no-op base; implementations must not retain the neighborhood slice.
type Observer interface {
	// Proposed fires after the strategy picked a node, before the user
	// labels it.
	Proposed(nu graph.NodeID, neighborhood []graph.NodeID, k int)
	// Labeled fires after the user's answer is recorded.
	Labeled(nu graph.NodeID, positive bool)
	// Learned fires after each re-learning; q is nil when the learner
	// abstained.
	Learned(q *query.Query)
}

// NopObserver is an Observer doing nothing; embed it to implement only
// some events.
type NopObserver struct{}

// Proposed implements Observer.
func (NopObserver) Proposed(graph.NodeID, []graph.NodeID, int) {}

// Labeled implements Observer.
func (NopObserver) Labeled(graph.NodeID, bool) {}

// Learned implements Observer.
func (NopObserver) Learned(*query.Query) {}

// LogObserver writes a human-readable transcript of the session.
type LogObserver struct {
	NopObserver
	G *graph.Graph
	W io.Writer
}

// Proposed implements Observer.
func (l LogObserver) Proposed(nu graph.NodeID, neighborhood []graph.NodeID, k int) {
	fmt.Fprintf(l.W, "propose %s (neighborhood %d nodes, k=%d)\n",
		l.G.NodeName(nu), len(neighborhood), k)
}

// Labeled implements Observer.
func (l LogObserver) Labeled(nu graph.NodeID, positive bool) {
	sign := "-"
	if positive {
		sign = "+"
	}
	fmt.Fprintf(l.W, "label %s %s\n", l.G.NodeName(nu), sign)
}

// Learned implements Observer.
func (l LogObserver) Learned(q *query.Query) {
	if q == nil {
		fmt.Fprintln(l.W, "learned: (abstain)")
		return
	}
	fmt.Fprintf(l.W, "learned: %v\n", q)
}
