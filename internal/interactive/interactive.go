// Package interactive implements the paper's interactive scenario
// (Section 4, Figure 9): starting from an empty sample, repeatedly choose
// a node according to a strategy Υ, show the user its neighborhood, ask
// for a label, propagate it, re-learn, and halt when the learned query
// satisfies the user.
//
// Strategies kR and kS (Section 4.2) avoid the PSPACE-hardness of exact
// informativeness (Lemma 4.2) by restricting attention to k-informative
// nodes — nodes with at least one path of length ≤ k not covered by a
// negative example. kR picks a random k-informative node; kS picks the
// k-informative node with the fewest non-covered k-paths, favoring nodes
// whose SCP computation has the smallest search space. When no
// k-informative node exists, k is increased (the dynamic schedule of
// Section 5.1).
package interactive

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/scp"
)

// Oracle answers the membership question of step 5 of Figure 9: would the
// user select this node?
type Oracle interface {
	// Label returns true when the node belongs to the user's goal result.
	Label(nu graph.NodeID) bool
}

// QueryOracle simulates a user holding a hidden goal query, as the paper's
// experiments do: nodes are labeled according to the goal's selection.
type QueryOracle struct {
	goal     *query.Query
	selected []bool
}

// NewQueryOracle precomputes the goal's selection on g.
func NewQueryOracle(g *graph.Graph, goal *query.Query) *QueryOracle {
	return NewQueryOracleOn(g.Snapshot(), goal)
}

// NewQueryOracleOn precomputes the goal's selection on a pinned epoch
// snapshot.
func NewQueryOracleOn(snap *graph.Snapshot, goal *query.Query) *QueryOracle {
	return &QueryOracle{goal: goal, selected: goal.EvaluateOn(snap).Vector()}
}

// Label reports whether the goal selects nu.
func (o *QueryOracle) Label(nu graph.NodeID) bool { return o.selected[nu] }

// Goal returns the hidden query.
func (o *QueryOracle) Goal() *query.Query { return o.goal }

// Selection returns the goal's selection vector (the experiments' ground
// truth).
func (o *QueryOracle) Selection() []bool { return o.selected }

// Context is the read-only view a strategy receives. All graph reads go
// through Snap, the epoch snapshot the session is pinned to.
type Context struct {
	Snap   *graph.Snapshot
	Sample core.Sample
	// Coverage indexes paths_G(S−); shared by candidate tests at the
	// current k. Not safe for concurrent use — strategies that scan in
	// parallel build per-worker coverages via NewCoverage.
	Coverage *scp.Coverage
	K        int
	Rng      *rand.Rand
}

// NewCoverage builds a fresh coverage index over the current negatives on
// the pinned snapshot, for use by concurrent scans.
func (c *Context) NewCoverage() *scp.Coverage {
	return scp.NewCoverageOn(c.Snap, c.Sample.Neg)
}

// Unlabeled returns the ids of nodes without a label, in increasing order.
func (c *Context) Unlabeled() []graph.NodeID {
	labeled := make(map[graph.NodeID]bool, c.Sample.Size())
	for _, v := range c.Sample.Pos {
		labeled[v] = true
	}
	for _, v := range c.Sample.Neg {
		labeled[v] = true
	}
	out := make([]graph.NodeID, 0, c.Snap.NumNodes()-len(labeled))
	for v := 0; v < c.Snap.NumNodes(); v++ {
		if !labeled[graph.NodeID(v)] {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Strategy proposes the next node to label, or ok=false when no
// k-informative node exists at the context's k.
type Strategy interface {
	Name() string
	Next(ctx *Context) (graph.NodeID, bool)
}

// KR is the random strategy: a uniformly random k-informative node.
type KR struct{}

// Name returns "kR".
func (KR) Name() string { return "kR" }

// Next scans unlabeled nodes in random order and returns the first
// k-informative one.
func (KR) Next(ctx *Context) (graph.NodeID, bool) {
	candidates := ctx.Unlabeled()
	ctx.Rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, nu := range candidates {
		if ctx.Coverage.IsKInformative(nu, ctx.K) {
			return nu, true
		}
	}
	return 0, false
}

// KS is the smallest-count strategy: the k-informative node with the
// fewest non-covered k-paths (ties broken by node id). The scan is
// parallelized across CPU cores with per-worker coverage indexes.
type KS struct{}

// Name returns "kS".
func (KS) Name() string { return "kS" }

// Next returns the k-informative node minimizing CountNonCovered.
func (KS) Next(ctx *Context) (graph.NodeID, bool) {
	candidates := ctx.Unlabeled()
	type best struct {
		node  graph.NodeID
		count int
		ok    bool
	}
	workers := runtime.NumCPU()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers == 0 {
		return 0, false
	}
	results := make([]best, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cov := ctx.NewCoverage()
			local := best{}
			for i := w; i < len(candidates); i += workers {
				nu := candidates[i]
				n := cov.CountNonCovered(nu, ctx.K)
				if n == 0 {
					continue // not k-informative
				}
				if !local.ok || n < local.count || (n == local.count && nu < local.node) {
					local = best{nu, n, true}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	overall := best{}
	for _, r := range results {
		if !r.ok {
			continue
		}
		if !overall.ok || r.count < overall.count || (r.count == overall.count && r.node < overall.node) {
			overall = r
		}
	}
	return overall.node, overall.ok
}

// Options tunes a session.
type Options struct {
	Strategy Strategy // default KS
	StartK   int      // default 2
	MaxK     int      // default 8
	// MaxInteractions caps the number of labels; 0 means |V|.
	MaxInteractions int
	// Seed drives kR's randomness; sessions are deterministic given a seed.
	Seed int64
	// NeighborhoodRadius controls the zoom-out of step 4; default is the
	// current k, per the paper's suggestion.
	NeighborhoodRadius int
	// LearnerOptions passes through to the learner at each round; K is
	// overridden by the session's dynamic schedule.
	LearnerOptions core.Options
	// Observer, when set, receives session events (proposals, labels,
	// learned queries) — the hook for interactive UIs.
	Observer Observer
}

func (o Options) withDefaults() Options {
	if o.Strategy == nil {
		o.Strategy = KS{}
	}
	if o.StartK == 0 {
		o.StartK = 2
	}
	if o.MaxK == 0 {
		o.MaxK = 8
	}
	return o
}

// Interaction records one round of the session.
type Interaction struct {
	Node     graph.NodeID
	Positive bool
	K        int
	// Neighborhood is the node set shown to the user (step 4 of Figure 9).
	Neighborhood []graph.NodeID
	// Elapsed is the time spent computing this proposal and re-learning —
	// the paper's "time between interactions".
	Elapsed time.Duration
}

// Result summarizes a finished session.
type Result struct {
	Query        *query.Query
	Interactions []Interaction
	// Halted tells why the session stopped.
	Halted HaltReason
	// FinalK is the SCP bound in force at the end.
	FinalK int
}

// Labels returns the number of interactions (labels given).
func (r Result) Labels() int { return len(r.Interactions) }

// LabelFraction returns labels / |V|, the paper's Table 2 measure.
func (r Result) LabelFraction(g *graph.Graph) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(r.Labels()) / float64(g.NumNodes())
}

// MeanTimeBetweenInteractions averages the per-round elapsed times.
func (r Result) MeanTimeBetweenInteractions() time.Duration {
	if len(r.Interactions) == 0 {
		return 0
	}
	var total time.Duration
	for _, it := range r.Interactions {
		total += it.Elapsed
	}
	return total / time.Duration(len(r.Interactions))
}

// HaltReason explains why a session ended.
type HaltReason int

const (
	// HaltSatisfied: the halt condition accepted the learned query.
	HaltSatisfied HaltReason = iota
	// HaltNoInformativeNodes: no k-informative node remains at MaxK.
	HaltNoInformativeNodes
	// HaltMaxInteractions: the interaction budget ran out.
	HaltMaxInteractions
)

func (h HaltReason) String() string {
	switch h {
	case HaltSatisfied:
		return "satisfied"
	case HaltNoInformativeNodes:
		return "no-informative-nodes"
	case HaltMaxInteractions:
		return "max-interactions"
	}
	return "unknown"
}

// HaltCondition decides whether the user is satisfied with the learned
// query (which may be nil when the learner abstained).
type HaltCondition func(learned *query.Query) bool

// ExactMatch is the strongest halt condition of the experiments: the
// learned query selects exactly the same nodes as the goal — F1 = 1.
func ExactMatch(g *graph.Graph, goal *query.Query) HaltCondition {
	return ExactMatchOn(g.Snapshot(), goal)
}

// ExactMatchOn is ExactMatch evaluated on a pinned epoch snapshot.
func ExactMatchOn(snap *graph.Snapshot, goal *query.Query) HaltCondition {
	want := goal.EvaluateOn(snap).Vector()
	return func(learned *query.Query) bool {
		if learned == nil {
			return false
		}
		got := learned.EvaluateOn(snap).Vector()
		for v := range want {
			if want[v] != got[v] {
				return false
			}
		}
		return true
	}
}

// Session runs the interactive loop of Figure 9. A session is pinned to
// one epoch snapshot: proposals, labels, and every re-learning round
// observe the same immutable graph, so sessions run safely while a writer
// publishes newer epochs underneath.
type Session struct {
	snap   *graph.Snapshot
	opts   Options
	sample core.Sample
	k      int
	rng    *rand.Rand
	cov    *scp.Coverage
}

// NewSession starts a session with an empty sample over g's
// read-your-writes snapshot (pending mutations are published first).
func NewSession(g *graph.Graph, opts Options) *Session {
	return NewSessionOn(g.Snapshot(), opts)
}

// NewSessionOn starts a session with an empty sample, pinned to the given
// epoch snapshot.
func NewSessionOn(snap *graph.Snapshot, opts Options) *Session {
	opts = opts.withDefaults()
	return &Session{
		snap: snap,
		opts: opts,
		k:    opts.StartK,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		cov:  scp.NewCoverageOn(snap, nil),
	}
}

// Snapshot returns the epoch snapshot the session is pinned to.
func (s *Session) Snapshot() *graph.Snapshot { return s.snap }

// Sample returns the labels collected so far.
func (s *Session) Sample() core.Sample { return s.sample }

// K returns the current SCP bound.
func (s *Session) K() int { return s.k }

// Propose picks the next node to ask about, escalating k while no
// k-informative node exists (Section 5.1's interactive schedule). ok=false
// means no informative node remains even at MaxK.
func (s *Session) Propose() (graph.NodeID, bool) {
	for {
		ctx := &Context{Snap: s.snap, Sample: s.sample, Coverage: s.cov, K: s.k, Rng: s.rng}
		if nu, ok := s.opts.Strategy.Next(ctx); ok {
			return nu, true
		}
		if s.k >= s.opts.MaxK {
			return 0, false
		}
		s.k++
	}
}

// Neighborhood returns the zoom-out region shown to the user for nu
// (step 4 of Figure 9): all nodes within the configured radius (default:
// the current k).
func (s *Session) Neighborhood(nu graph.NodeID) []graph.NodeID {
	r := s.opts.NeighborhoodRadius
	if r == 0 {
		r = s.k
	}
	return s.snap.Neighborhood(nu, r)
}

// Label records the user's answer and propagates it (the coverage index is
// rebuilt when the negative set changes).
func (s *Session) Label(nu graph.NodeID, positive bool) error {
	if _, ok := s.sample.Labeled(nu); ok {
		return fmt.Errorf("interactive: node %d already labeled", nu)
	}
	if positive {
		s.sample.Pos = append(s.sample.Pos, nu)
	} else {
		s.sample.Neg = append(s.sample.Neg, nu)
		s.cov = scp.NewCoverageOn(s.snap, s.sample.Neg)
	}
	return nil
}

// Learn runs the learner on the current sample with the session's k
// schedule. A nil query with nil error means the learner abstained.
func (s *Session) Learn() (*query.Query, error) {
	opt := s.opts.LearnerOptions
	opt.K = 0
	opt.StartK = s.opts.StartK
	opt.MaxK = s.opts.MaxK
	r, err := core.LearnDetailedOn(s.snap, s.sample, opt)
	if err == core.ErrAbstain {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if r.K > s.k {
		s.k = r.K
	}
	return r.Query, nil
}

// Run drives the loop against an oracle until halt accepts the learned
// query, the interaction budget is exhausted, or no informative node
// remains. It returns the final learned query and per-round diagnostics.
func (s *Session) Run(oracle Oracle, halt HaltCondition) (*Result, error) {
	budget := s.opts.MaxInteractions
	if budget == 0 {
		budget = s.snap.NumNodes()
	}
	res := &Result{}
	var learned *query.Query
	for {
		if learned != nil && halt(learned) {
			res.Query = learned
			res.Halted = HaltSatisfied
			res.FinalK = s.k
			return res, nil
		}
		if len(res.Interactions) >= budget {
			res.Query = learned
			res.Halted = HaltMaxInteractions
			res.FinalK = s.k
			return res, nil
		}
		start := time.Now()
		nu, ok := s.Propose()
		if !ok {
			res.Query = learned
			res.Halted = HaltNoInformativeNodes
			res.FinalK = s.k
			return res, nil
		}
		neighborhood := s.Neighborhood(nu)
		if s.opts.Observer != nil {
			s.opts.Observer.Proposed(nu, neighborhood, s.k)
		}
		positive := oracle.Label(nu)
		if err := s.Label(nu, positive); err != nil {
			return nil, err
		}
		if s.opts.Observer != nil {
			s.opts.Observer.Labeled(nu, positive)
		}
		q, err := s.Learn()
		if err != nil {
			return nil, err
		}
		learned = q
		if s.opts.Observer != nil {
			s.opts.Observer.Learned(q)
		}
		res.Interactions = append(res.Interactions, Interaction{
			Node:         nu,
			Positive:     positive,
			K:            s.k,
			Neighborhood: neighborhood,
			Elapsed:      time.Since(start),
		})
	}
}
