package interactive_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

func TestSampleSaveLoadRoundTrip(t *testing.T) {
	g, s := paperfix.G0()
	var buf bytes.Buffer
	if err := interactive.SaveSample(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	back, err := interactive.LoadSample(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pos) != len(s.Pos) || len(back.Neg) != len(s.Neg) {
		t.Fatalf("round trip: %d+/%d-, want %d+/%d-",
			len(back.Pos), len(back.Neg), len(s.Pos), len(s.Neg))
	}
	for i := range s.Pos {
		if back.Pos[i] != s.Pos[i] {
			t.Fatal("positive ids changed")
		}
	}
}

func TestLoadSampleErrors(t *testing.T) {
	g, _ := paperfix.G0()
	cases := []string{
		"not json",
		`{"pos": ["ghost"], "neg": []}`,
		`{"pos": ["v1"], "neg": ["v1"]}`,
	}
	for _, c := range cases {
		if _, err := interactive.LoadSample(strings.NewReader(c), g); err == nil {
			t.Errorf("LoadSample(%q) unexpectedly succeeded", c)
		}
	}
}

func TestResumeContinuesSession(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	oracle := interactive.NewQueryOracle(g, goal)

	// First session: stop after 2 labels.
	first := interactive.NewSession(g, interactive.Options{
		Strategy: interactive.KS{}, Seed: 5, MaxInteractions: 2,
	})
	if _, err := first.Run(oracle, interactive.ExactMatch(g, goal)); err != nil {
		t.Fatal(err)
	}
	partial := first.Sample()
	if partial.Size() != 2 {
		t.Fatalf("partial sample has %d labels", partial.Size())
	}

	// Persist, resume, finish.
	var buf bytes.Buffer
	if err := interactive.SaveSample(&buf, g, partial); err != nil {
		t.Fatal(err)
	}
	loaded, err := interactive.LoadSample(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := interactive.Resume(g, loaded, interactive.Options{
		Strategy: interactive.KS{}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(oracle, interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != interactive.HaltSatisfied {
		t.Fatalf("resumed session halted %v", res.Halted)
	}
	// Total labels across both sessions stay within the graph size and the
	// resumed session did not relabel.
	total := partial.Size() + res.Labels()
	if total > g.NumNodes() {
		t.Fatalf("relabeling suspected: %d total labels", total)
	}
	if err := resumed.Sample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResumeRejectsInvalidSample(t *testing.T) {
	g, _ := paperfix.G0()
	bad := core.Sample{Pos: []int32{0}, Neg: []int32{0}}
	if _, err := interactive.Resume(g, bad, interactive.Options{}); err == nil {
		t.Fatal("contradictory sample accepted")
	}
}
