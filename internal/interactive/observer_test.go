package interactive_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/paperfix"
	"pathquery/internal/query"
)

// countingObserver tallies events.
type countingObserver struct {
	interactive.NopObserver
	proposed, labeled, learned int
	lastNode                   graph.NodeID
}

func (c *countingObserver) Proposed(nu graph.NodeID, neighborhood []graph.NodeID, k int) {
	c.proposed++
	c.lastNode = nu
	if len(neighborhood) == 0 {
		panic("empty neighborhood")
	}
	if k < 2 {
		panic("k below the schedule's start")
	}
}

func (c *countingObserver) Labeled(nu graph.NodeID, positive bool) {
	if nu != c.lastNode {
		panic("labeled a different node than proposed")
	}
	c.labeled++
}

func (c *countingObserver) Learned(q *query.Query) { c.learned++ }

func TestObserverReceivesAllEvents(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	obs := &countingObserver{}
	sess := interactive.NewSession(g, interactive.Options{
		Strategy: interactive.KS{},
		Seed:     1,
		Observer: obs,
	})
	res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
	if err != nil {
		t.Fatal(err)
	}
	n := res.Labels()
	if obs.proposed != n || obs.labeled != n || obs.learned != n {
		t.Fatalf("events proposed=%d labeled=%d learned=%d, want all %d",
			obs.proposed, obs.labeled, obs.learned, n)
	}
}

func TestLogObserverTranscript(t *testing.T) {
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "a")
	var buf bytes.Buffer
	sess := interactive.NewSession(g, interactive.Options{
		Strategy: interactive.KR{},
		Seed:     2,
		Observer: interactive.LogObserver{G: g, W: &buf},
	})
	if _, err := sess.Run(interactive.NewQueryOracle(g, goal),
		interactive.ExactMatch(g, goal)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"propose ", "label ", "learned:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestNopObserverIsSilent(t *testing.T) {
	// NopObserver implements the full interface; a session with it behaves
	// identically to one without an observer.
	g, _ := paperfix.G0()
	goal := query.MustParse(g.Alphabet(), "(a·b)*·c")
	run := func(obs interactive.Observer) int {
		sess := interactive.NewSession(g, interactive.Options{
			Strategy: interactive.KS{},
			Seed:     3,
			Observer: obs,
		})
		res, err := sess.Run(interactive.NewQueryOracle(g, goal), interactive.ExactMatch(g, goal))
		if err != nil {
			t.Fatal(err)
		}
		return res.Labels()
	}
	if run(nil) != run(interactive.NopObserver{}) {
		t.Fatal("observer changed session behavior")
	}
}
