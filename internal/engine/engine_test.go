package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pathquery/internal/graph"
	"pathquery/internal/query"
)

func buildFixture() *graph.Graph {
	g := graph.New(nil)
	g.AddEdgeByName("N1", "tram", "N4")
	g.AddEdgeByName("N2", "bus", "N4")
	g.AddEdgeByName("N4", "cinema", "C1")
	g.AddEdgeByName("N3", "tram", "N5")
	g.AddEdgeByName("N5", "bus", "N5")
	return g
}

func names(t *testing.T, r Result) []string {
	t.Helper()
	return r.Names()
}

func TestEngineSelectBasic(t *testing.T) {
	e := New(buildFixture(), Options{})
	res, err := e.Select("tram·cinema")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); len(got) != 1 || got[0] != "N1" {
		t.Fatalf("tram·cinema selected %v, want [N1]", got)
	}
	if res.Cached {
		t.Error("first select reported cached")
	}
	res2, err := e.Select("tram·cinema")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("repeat select not served from cache")
	}
	if res2.Epoch != res.Epoch {
		t.Errorf("epoch moved without mutation: %d -> %d", res.Epoch, res2.Epoch)
	}
	if _, err := e.Select("tram·("); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestEnginePlanCacheDedupesVariants(t *testing.T) {
	e := New(buildFixture(), Options{})
	if _, err := e.Select("tram·cinema"); err != nil {
		t.Fatal(err)
	}
	// Same language, different syntax: shares the plan and therefore the
	// cached result.
	res, err := e.Select("tram.cinema")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("syntactic variant missed the result cache")
	}
	st := e.Stats()
	if st.Plans != 1 {
		t.Errorf("Plans = %d, want 1 (variants deduplicated by CacheKey)", st.Plans)
	}
	if st.PlanMisses != 2 {
		t.Errorf("PlanMisses = %d, want 2 (one compile per distinct source)", st.PlanMisses)
	}
}

func TestEngineMutateAdvancesEpoch(t *testing.T) {
	e := New(buildFixture(), Options{})
	before, err := e.Select("bus·cinema")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, before); len(got) != 1 || got[0] != "N2" {
		t.Fatalf("bus·cinema selected %v, want [N2]", got)
	}
	m, _ := e.Mutate([]EdgeSpec{{From: "N5", Label: "cinema", To: "C2"}})
	if m.Epoch != before.Epoch+1 {
		t.Fatalf("mutation published epoch %d, want %d", m.Epoch, before.Epoch+1)
	}
	// Maintenance is async; wait for the regrow so the next select is
	// deterministically a hit.
	e.FlushMaintenance()
	after, err := e.Select("bus·cinema")
	if err != nil {
		t.Fatal(err)
	}
	// The mutation touches the plan's alphabet ("cinema"), so the cached
	// entry is incrementally regrown at publish: the post-mutation select
	// is a cache hit at the new epoch and already includes the new edge.
	if !after.Cached {
		t.Error("post-mutation select missed the regrown cache entry")
	}
	if st := e.Stats(); st.ResultRegrown == 0 {
		t.Errorf("ResultRegrown = 0 after an alphabet-overlapping mutation; stats %+v", st)
	}
	if got := names(t, after); len(got) != 2 || got[0] != "N2" || got[1] != "N5" {
		t.Fatalf("bus·cinema after mutation selected %v, want [N2 N5]", got)
	}
	// The pinned pre-mutation result is immutable.
	if got := names(t, before); len(got) != 1 || got[0] != "N2" {
		t.Errorf("pre-mutation result changed retroactively: %v", got)
	}
}

func TestEngineSelectPairsFrom(t *testing.T) {
	e := New(buildFixture(), Options{})
	res, err := e.SelectPairsFrom("tram·cinema", "N1")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); len(got) != 1 || got[0] != "C1" {
		t.Fatalf("pairs from N1 = %v, want [C1]", got)
	}
	if _, err := e.SelectPairsFrom("tram", "nope"); err == nil {
		t.Error("unknown source node not rejected")
	}
	// A node created by a mutation is only addressable once its epoch is
	// served — and then immediately is.
	e.Mutate([]EdgeSpec{{From: "X1", Label: "tram", To: "N4"}})
	res, err = e.SelectPairsFrom("tram·cinema", "X1")
	if err != nil {
		t.Fatal(err)
	}
	if got := names(t, res); len(got) != 1 || got[0] != "C1" {
		t.Fatalf("pairs from X1 = %v, want [C1]", got)
	}
}

func TestEngineSelectBatchSharesEpoch(t *testing.T) {
	e := New(buildFixture(), Options{})
	queries := []string{"tram·cinema", "bus·cinema", "tram·cinema", "tram"}
	results, err := e.SelectBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Epoch != results[0].Epoch {
			t.Fatalf("batch result %d on epoch %d, others on %d", i, r.Epoch, results[0].Epoch)
		}
	}
	// Duplicates inside the batch collapse onto one product pass.
	if st := e.Stats(); st.ResultMisses != 3 {
		t.Errorf("ResultMisses = %d, want 3 (duplicate collapsed)", st.ResultMisses)
	}
	if _, err := e.SelectBatch([]string{"tram", "("}); err == nil {
		t.Error("batch with a parse error did not fail")
	}
}

func TestEngineSingleFlight(t *testing.T) {
	// Fresh engine, k concurrent identical requests: exactly one product
	// pass; everyone else hits the cache or shares the in-flight call.
	e := New(buildFixture(), Options{})
	const k = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(k)
	results := make([]Result, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			r, err := e.Select("tram·cinema")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	start.Done()
	done.Wait()
	for i, r := range results {
		if len(r.Nodes) != 1 {
			t.Fatalf("request %d: %d nodes, want 1", i, len(r.Nodes))
		}
	}
	st := e.Stats()
	if st.ResultMisses != 1 {
		t.Errorf("ResultMisses = %d, want exactly 1 compute for %d concurrent requests", st.ResultMisses, k)
	}
	if st.ResultHits+st.ResultShared != k-1 {
		t.Errorf("hits %d + shared %d = %d, want %d", st.ResultHits, st.ResultShared,
			st.ResultHits+st.ResultShared, k-1)
	}
}

// queryPool is the mix used by the randomized tests; all labels come from
// the small vocabulary the random mutations draw from.
var queryPool = []string{
	"a", "b·c", "a·b*", "(a+b)·c", "a*·c", "(a+c)*·b", "b*",
}

// randomEdge draws a random (from, label, to) over a bounded node universe.
func randomEdge(rng *rand.Rand) EdgeSpec {
	return EdgeSpec{
		From:  fmt.Sprintf("v%d", rng.Intn(40)),
		Label: string(rune('a' + rng.Intn(3))),
		To:    fmt.Sprintf("v%d", rng.Intn(40)),
	}
}

// TestEnginePropertyCachedVsUncached cross-checks the serving engine
// against the uncached library over randomized mutate/select
// interleavings: after every step, a select through the engine (plan
// cache, result cache, epochs) must agree with a fresh Query.Select on an
// identically-built mirror graph. Run under -race in CI.
func TestEnginePropertyCachedVsUncached(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		e := New(graph.New(nil), Options{})
		var edges []EdgeSpec
		for step := 0; step < 120; step++ {
			switch {
			case step == 0 || rng.Intn(3) == 0: // mutate
				n := 1 + rng.Intn(3)
				batch := make([]EdgeSpec, n)
				for i := range batch {
					batch[i] = randomEdge(rng)
				}
				edges = append(edges, batch...)
				m, _ := e.Mutate(batch)
				if m.Epoch != e.Epoch() {
					t.Fatalf("trial %d step %d: mutation epoch %d != served %d",
						trial, step, m.Epoch, e.Epoch())
				}
			case rng.Intn(4) == 0: // batch select
				k := 1 + rng.Intn(4)
				srcs := make([]string, k)
				for i := range srcs {
					srcs[i] = queryPool[rng.Intn(len(queryPool))]
				}
				results, err := e.SelectBatch(srcs)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					checkAgainstMirror(t, trial, step, srcs[i], edges, r)
				}
			default: // single select
				src := queryPool[rng.Intn(len(queryPool))]
				r, err := e.Select(src)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstMirror(t, trial, step, src, edges, r)
			}
		}
	}
}

// checkAgainstMirror compares an engine result with an uncached evaluation
// on a freshly built graph with the same edges.
func checkAgainstMirror(t *testing.T, trial, step int, src string, edges []EdgeSpec, r Result) {
	t.Helper()
	mirror := graph.New(nil)
	for _, ed := range edges {
		mirror.AddEdgeByName(ed.From, ed.Label, ed.To)
	}
	q, err := query.Parse(mirror.Alphabet(), src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, v := range q.SelectNodes(mirror) {
		want[mirror.NodeName(v)] = true
	}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("trial %d step %d query %q: engine selected %d nodes %v, uncached %d",
			trial, step, src, len(got), got, len(want))
	}
	for _, name := range got {
		if !want[name] {
			t.Fatalf("trial %d step %d query %q: engine selected %q, uncached did not",
				trial, step, src, name)
		}
	}
}

// TestEngineConcurrentMutateSelect hammers the engine from concurrent
// readers, batchers, and a mutating writer — the stress companion of the
// property test, meaningful under -race. Correctness invariants checked
// inside: results are internally consistent name resolutions, epochs only
// move forward, and the final state agrees with an uncached mirror.
func TestEngineConcurrentMutateSelect(t *testing.T) {
	e := New(graph.New(nil), Options{})
	seed, _ := e.Mutate([]EdgeSpec{{From: "v0", Label: "a", To: "v1"}, {From: "v1", Label: "b", To: "v2"}})
	if seed.Epoch == 0 {
		t.Fatal("no epoch published")
	}
	const (
		readers   = 6
		mutations = 60
		selects   = 200
	)
	var edgesMu sync.Mutex
	edges := []EdgeSpec{{From: "v0", Label: "a", To: "v1"}, {From: "v1", Label: "b", To: "v2"}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single logical writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		last := uint64(0)
		for i := 0; i < mutations; i++ {
			ed := randomEdge(rng)
			edgesMu.Lock()
			edges = append(edges, ed)
			edgesMu.Unlock()
			m, _ := e.Mutate([]EdgeSpec{ed})
			if m.Epoch <= last {
				t.Errorf("epoch went backwards: %d after %d", m.Epoch, last)
				return
			}
			last = m.Epoch
		}
	}()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			lastEpoch := uint64(0)
			for i := 0; i < selects; i++ {
				var r Result
				var err error
				if rng.Intn(5) == 0 {
					var rs []Result
					rs, err = e.SelectBatch([]string{
						queryPool[rng.Intn(len(queryPool))],
						queryPool[rng.Intn(len(queryPool))],
					})
					if err == nil {
						r = rs[0]
					}
				} else {
					r, err = e.Select(queryPool[rng.Intn(len(queryPool))])
				}
				if err != nil {
					t.Error(err)
					return
				}
				if r.Epoch < lastEpoch {
					t.Errorf("reader %d observed epoch regression %d -> %d", w, lastEpoch, r.Epoch)
					return
				}
				lastEpoch = r.Epoch
				r.Names() // must not race with the writer
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: the engine must agree with an uncached mirror of the final
	// edge list.
	for _, src := range queryPool {
		r, err := e.Select(src)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstMirror(t, -1, -1, src, edges, r)
	}
}

// TestResultCacheStaleRequestKeepsFreshEntries regresses an eviction bug:
// a request pinned to an older epoch arriving at a full cache must not
// wipe the warm current-epoch entries.
func TestResultCacheStaleRequestKeepsFreshEntries(t *testing.T) {
	c := newResultCache(3)
	for _, p := range []string{"a", "b", "c"} {
		c.do(context.Background(), resultKey{epoch: 2, plan: p}, nil, func() (query.Answer, []uint64, error) { return query.Answer{}, nil, nil })
	}
	computed := false
	c.do(context.Background(), resultKey{epoch: 1, plan: "stale"}, nil, func() (query.Answer, []uint64, error) {
		computed = true
		return query.Answer{}, nil, nil
	})
	if !computed {
		t.Fatal("stale-epoch request was not computed")
	}
	fresh := 0
	for _, p := range []string{"a", "b", "c"} {
		if _, cached, _ := c.do(context.Background(), resultKey{epoch: 2, plan: p}, nil, func() (query.Answer, []uint64, error) { return query.Answer{}, nil, nil }); cached {
			fresh++
		}
	}
	// Capacity pressure may evict one completed entry, never the whole
	// current epoch.
	if fresh < 2 {
		t.Errorf("only %d of 3 current-epoch entries survived a stale request", fresh)
	}
}

// TestResultCachePanicRetries regresses the single-flight panic path: a
// panicking compute must propagate, leave the key retryable, and never be
// served to anyone as an empty cached result.
func TestResultCachePanicRetries(t *testing.T) {
	c := newResultCache(8)
	key := resultKey{epoch: 1, plan: "boom"}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("compute panic did not propagate")
			}
		}()
		c.do(context.Background(), key, nil, func() (query.Answer, []uint64, error) { panic("product engine bug") })
	}()
	ans, cached, err := c.do(context.Background(), key, nil, func() (query.Answer, []uint64, error) {
		return query.Answer{Nodes: []graph.NodeID{7}, Count: 1}, nil, nil
	})
	if err != nil || cached || len(ans.Nodes) != 1 || ans.Nodes[0] != 7 {
		t.Errorf("after panic: answer %v cached %v err %v, want fresh [7]", ans.Nodes, cached, err)
	}
}

func TestEngineResultCacheEviction(t *testing.T) {
	e := New(buildFixture(), Options{ResultCacheCap: 2})
	for i, src := range []string{"tram", "bus", "cinema", "tram·cinema"} {
		if _, err := e.Select(src); err != nil {
			t.Fatalf("select %d: %v", i, err)
		}
	}
	if st := e.Stats(); st.ResultEntries > 2 {
		t.Errorf("ResultEntries = %d, want ≤ cap 2", st.ResultEntries)
	}
}
