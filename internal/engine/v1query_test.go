package engine

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathquery/internal/datasets"
	"pathquery/internal/query"
)

// TestV1QueryGolden pins the /v1/query wire format: exact response bodies
// for every semantics on the shared fixture (epoch 1, nothing cached yet),
// so any accidental field rename, reorder, or shape change fails loudly.
func TestV1QueryGolden(t *testing.T) {
	e := New(buildFixture(), Options{})
	h := NewHandler(e)

	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "nodes",
			body: `{"query":"tram·cinema"}`,
			want: `{"epoch":1,"semantics":"nodes","count":1,"cached":false,"nodes":["N1"]}`,
		},
		{
			name: "nodes explicit semantics, cached repeat",
			body: `{"query":"tram·cinema","semantics":"nodes"}`,
			want: `{"epoch":1,"semantics":"nodes","count":1,"cached":true,"nodes":["N1"]}`,
		},
		{
			name: "pairsFrom",
			body: `{"query":"tram·cinema","semantics":"pairsFrom","from":"N1"}`,
			want: `{"epoch":1,"semantics":"pairsFrom","count":1,"cached":false,"nodes":["C1"]}`,
		},
		{
			name: "witness",
			body: `{"query":"tram·cinema","semantics":"witness"}`,
			want: `{"epoch":1,"semantics":"witness","count":1,"cached":false,"paths":[{"nodes":["N1","N4","C1"],"word":"tram·cinema"}]}`,
		},
		{
			name: "count",
			body: `{"query":"tram·cinema","semantics":"count","maxLen":4}`,
			want: `{"epoch":1,"semantics":"count","count":1,"cached":false,"counts":[{"node":"N1","count":1}]}`,
		},
		{
			name: "shortest per node",
			body: `{"query":"cinema","semantics":"shortest"}`,
			want: `{"epoch":1,"semantics":"shortest","count":1,"cached":false,"paths":[{"nodes":["N4","C1"],"word":"cinema"}]}`,
		},
		{
			name: "shortest per pair",
			body: `{"query":"bus·cinema","semantics":"shortest","from":"N2"}`,
			want: `{"epoch":1,"semantics":"shortest","count":1,"cached":false,"paths":[{"nodes":["N2","N4","C1"],"word":"bus·cinema"}]}`,
		},
		{
			name: "empty selection",
			body: `{"query":"cinema·tram"}`,
			want: `{"epoch":1,"semantics":"nodes","count":0,"cached":false}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/query", strings.NewReader(tc.body)))
			if rr.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
			}
			if got := strings.TrimSpace(rr.Body.String()); got != tc.want {
				t.Fatalf("body\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestV1QueryErrorEnvelope pins the structured error envelope across the
// error taxonomy: bad query, unknown semantics, unknown node, abstain,
// bad body, and the from-validation errors.
func TestV1QueryErrorEnvelope(t *testing.T) {
	e := New(buildFixture(), Options{})
	h := NewHandler(e)

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   string
	}{
		{"bad query", "/v1/query", `{"query":"tram·("}`, 400, "parse_error"},
		{"unknown semantics", "/v1/query", `{"query":"tram","semantics":"pairs"}`, 400, "unknown_semantics"},
		{"unknown node", "/v1/query", `{"query":"tram","semantics":"pairsFrom","from":"NOPE"}`, 404, "unknown_node"},
		{"missing from", "/v1/query", `{"query":"tram","semantics":"pairsFrom"}`, 400, "missing_from"},
		{"unexpected from", "/v1/query", `{"query":"tram","semantics":"witness","from":"N1"}`, 400, "unexpected_from"},
		{"maxLen too large", "/v1/query", `{"query":"tram","semantics":"count","maxLen":1000000}`, 400, "max_len_too_large"},
		{"bad body", "/v1/query", `{"quer":"tram"}`, 400, "bad_body"},
		{"malformed json", "/v1/query", `{"query":`, 400, "bad_body"},
		{"abstain", "/learn", `{"pos":[],"neg":["N1"]}`, 422, "abstain"},
		{"batch member error", "/v1/batch", `{"requests":[{"query":"tram"},{"query":"(("}]}`, 400, "parse_error"},
		{"batch member unknown node", "/v1/batch", `{"requests":[{"query":"tram"},{"query":"tram","semantics":"pairsFrom","from":"NOPE"}]}`, 404, "unknown_node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", tc.path, strings.NewReader(tc.body)))
			if rr.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", rr.Code, tc.status, rr.Body.String())
			}
			var env errorEnvelope
			if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
				t.Fatalf("response is not an error envelope: %v (%s)", err, rr.Body.String())
			}
			if env.Error.Code != tc.code || env.Error.Message == "" {
				t.Fatalf("envelope %+v, want code %q with a message", env, tc.code)
			}
			if strings.HasPrefix(tc.path, "/v1/batch") && !strings.Contains(env.Error.Message, "batch request 1") {
				t.Fatalf("batch error does not name the failing member: %q", env.Error.Message)
			}
		})
	}
}

// TestV1BatchSharedEpoch: a batch answers every request from one pinned
// snapshot and reports that epoch exactly once.
func TestV1BatchSharedEpoch(t *testing.T) {
	e := New(buildFixture(), Options{})
	h := NewHandler(e)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/batch", strings.NewReader(
		`{"requests":[{"query":"tram"},{"query":"bus","semantics":"witness"},{"query":"tram·cinema","semantics":"count"}]}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var out struct {
		Epoch   uint64 `json:"epoch"`
		Answers []struct {
			Epoch     uint64 `json:"epoch"`
			Semantics string `json:"semantics"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 1 || len(out.Answers) != 3 {
		t.Fatalf("batch: %+v", out)
	}
	for i, ans := range out.Answers {
		if ans.Epoch != out.Epoch {
			t.Errorf("answer %d epoch %d, batch epoch %d", i, ans.Epoch, out.Epoch)
		}
	}
	if out.Answers[1].Semantics != "witness" || out.Answers[2].Semantics != "count" {
		t.Errorf("per-request semantics not honored: %+v", out.Answers)
	}
}

// TestV1QueryCancellation: a request arriving with an already-exceeded
// deadline answers 504 deadline_exceeded; an already-canceled context
// answers 499 — and both return promptly even under -race.
func TestV1QueryCancellation(t *testing.T) {
	e := New(datasets.Synthetic(500, 1), Options{})
	h := NewHandler(e)

	deadline, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"query":"l00·l01*"}`)).WithContext(deadline)
	h.ServeHTTP(rr, req)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-exceeded request took %v", elapsed)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if rr.Code != http.StatusGatewayTimeout || env.Error.Code != "deadline_exceeded" {
		t.Fatalf("status %d code %q, want 504 deadline_exceeded", rr.Code, env.Error.Code)
	}

	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	rr = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"query":"l00·l01*"}`)).WithContext(canceled)
	h.ServeHTTP(rr, req)
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if rr.Code != 499 || env.Error.Code != "canceled" {
		t.Fatalf("status %d code %q, want 499 canceled", rr.Code, env.Error.Code)
	}

	// A canceled request caches nothing: the same query served with a live
	// context computes fresh and succeeds.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"query":"l00·l01*"}`)))
	if rr.Code != http.StatusOK {
		t.Fatalf("post-cancel request: status %d (%s)", rr.Code, rr.Body.String())
	}
	var ans struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Cached {
		t.Fatal("canceled evaluation left a cached answer behind")
	}
}

// TestEvaluateDeadlineAbortsMidTraversal drives a genuinely long
// evaluation (count semantics walks one backward relaxation per length)
// into a short deadline and asserts it aborts mid-traversal, promptly,
// with context.DeadlineExceeded.
func TestEvaluateDeadlineAbortsMidTraversal(t *testing.T) {
	e := New(datasets.Synthetic(3000, 7), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.Evaluate(ctx, Request{Query: "(l00+l01+l02)*·l03", Semantics: "count", MaxLen: 4096})
	elapsed := time.Since(start)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded evaluation took %v", elapsed)
	}
}

// TestEvaluateCacheKeyedBySemanticsAndArgs: the result cache must not
// conflate result shapes or arguments of the same query language.
func TestEvaluateCacheKeyedBySemanticsAndArgs(t *testing.T) {
	e := New(buildFixture(), Options{})
	ctx := context.Background()

	first, err := e.Evaluate(ctx, Request{Query: "tram·cinema"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold nodes evaluation reported cached")
	}
	// Same language, different shape: a fresh evaluation, not the cached
	// node list.
	wit, err := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "witness"})
	if err != nil {
		t.Fatal(err)
	}
	if wit.Cached || len(wit.Paths) != 1 {
		t.Fatalf("witness after nodes: cached %v paths %d", wit.Cached, len(wit.Paths))
	}
	// Different witness limits are distinct cache entries (the limit
	// bounds the work), same limit is a hit.
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "witness", Limit: 1}); a.Cached {
		t.Fatal("limit=1 witness served from the limit=0 entry")
	}
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "witness"}); !a.Cached {
		t.Fatal("repeat witness not cached")
	}
	// Shortest without an anchor is witness by definition: it shares the
	// witness cache entry while still reporting the requested semantics.
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "shortest"}); !a.Cached || a.Semantics != query.SemanticsShortest {
		t.Fatalf("shortest without from: cached %v semantics %v, want shared witness entry labeled shortest", a.Cached, a.Semantics)
	}
	// Different count bounds are distinct entries.
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "count", MaxLen: 3}); a.Cached {
		t.Fatal("cold count reported cached")
	}
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "count", MaxLen: 4}); a.Cached {
		t.Fatal("maxLen=4 count served from the maxLen=3 entry")
	}
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "count", MaxLen: 3}); !a.Cached {
		t.Fatal("repeat count not cached")
	}
	// pairsFrom entries are keyed by the anchor node.
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "pairsFrom", From: "N1"}); a.Cached {
		t.Fatal("cold pairsFrom reported cached")
	}
	if a, _ := e.Evaluate(ctx, Request{Query: "tram·cinema", Semantics: "pairsFrom", From: "N2"}); a.Cached {
		t.Fatal("pairsFrom N2 served from the N1 entry")
	}
	// The deprecated verbs share the unified cache: Select after Evaluate
	// (nodes) is a hit, and syntactic variants share the plan key.
	if r, err := e.Select("tram·cinema"); err != nil || !r.Cached {
		t.Fatalf("Select after Evaluate: cached %v err %v", r.Cached, err)
	}
	if a, _ := e.Evaluate(ctx, Request{Query: "tram.cinema"}); !a.Cached {
		t.Fatal("syntactic variant missed the language-keyed cache")
	}
}

// TestEvaluateWitnessReverifies: the acceptance criterion — every path of
// a witness answer re-verifies under Query.Accepts of the served query.
func TestEvaluateWitnessReverifies(t *testing.T) {
	e := New(buildFixture(), Options{})
	for _, src := range []string{"tram·cinema", "(tram+bus)*·cinema", "bus", "tram*"} {
		ans, err := e.Evaluate(context.Background(), Request{Query: src, Semantics: "witness"})
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.Parse(e.Graph().Alphabet(), src)
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Paths) != ans.Count {
			t.Fatalf("%s: %d paths for %d selected", src, len(ans.Paths), ans.Count)
		}
		for _, pw := range ans.Paths {
			if !q.Accepts(pw.Word) {
				t.Errorf("%s: witness word %v rejected by Accepts", src, pw.Word)
			}
		}
	}
}

// TestWitnessLimitNormalization regresses the int32 key-narrowing alias:
// absent, huge, and negative limits all normalize to the per-request path
// cap before keying, so a limit differing by a multiple of 2^32 can never
// serve another request's entry, and "no limit" still bounds the work.
func TestWitnessLimitNormalization(t *testing.T) {
	e := New(buildFixture(), Options{})
	ctx := context.Background()
	cold, err := e.Evaluate(ctx, Request{Query: "tram", Semantics: "witness"})
	if err != nil || cold.Cached {
		t.Fatalf("cold witness: cached %v err %v", cold.Cached, err)
	}
	// A huge limit used to survive into the int32 key narrowing (2^32+5
	// truncated to key.limit = 5); now any over-cap value normalizes to
	// the cap, sharing the default entry (and never a truncated one).
	huge, err := e.Evaluate(ctx, Request{Query: "tram", Semantics: "witness", Limit: math.MaxInt})
	if err != nil || !huge.Cached {
		t.Fatalf("huge-limit witness: cached %v err %v (want the normalized default entry)", huge.Cached, err)
	}
	if neg, _ := e.Evaluate(ctx, Request{Query: "tram", Semantics: "witness", Limit: -1}); !neg.Cached {
		t.Fatal("negative limit did not normalize to the default entry")
	}
	if small, _ := e.Evaluate(ctx, Request{Query: "tram", Semantics: "witness", Limit: 5}); small.Cached {
		t.Fatal("limit=5 served from the normalized-cap entry")
	}
}
