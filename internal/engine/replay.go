package engine

// Deterministic traffic replay: the ReplaySpec axis of the closed-loop
// load driver. Instead of the uniform Queries mix, each read draws one
// recorded workload entry — an (AQ class, expr, semantics, anchor)
// tuple, typically loaded from a pqworkload file — under a configurable
// class-weight mix, and its latency is observed into a per-class
// histogram alongside the aggregate ones. The engine deliberately does
// not import internal/workload: the caller (pqbench, tests) converts
// file entries to ReplayEntry values, so the dependency points from the
// tooling down into the engine and never sideways.

import (
	"fmt"
	"sort"

	"pathquery/internal/query"
	"pathquery/internal/telemetry"
)

// ReplayEntry is one recorded request of a replay mix.
type ReplayEntry struct {
	// Class is the entry's workload class (e.g. "AQ7") — the label its
	// latency histogram is reported under.
	Class string
	// Expr is the query expression.
	Expr string
	// Semantics is the evaluation semantics ("nodes", "pairsFrom", ...;
	// empty defaults to "nodes").
	Semantics string
	// From is the anchor node name (anchored entries only).
	From string
}

// Anchoring filters a replay mix by tier.
type Anchoring int

const (
	// AnchoredAny replays anchored and unanchored entries as recorded.
	AnchoredAny Anchoring = iota
	// AnchoredOnly keeps only anchored (From != "") entries.
	AnchoredOnly
	// AnchoredNone keeps only unanchored entries.
	AnchoredNone
)

// ReplaySpec configures workload-file replay. When set on a LoadConfig
// it replaces the Queries/Weights mix for read requests.
type ReplaySpec struct {
	// Entries is the recorded workload (required).
	Entries []ReplayEntry
	// ClassWeights is the class mix: the probability of drawing an entry
	// of class C is proportional to ClassWeights[C], split evenly across
	// that class's entries. Classes absent from the map default to
	// weight 1; weight 0 excludes a class entirely. A nil map replays
	// all classes equally.
	ClassWeights map[string]float64
	// Anchored filters the mix by tier before weighting.
	Anchored Anchoring
}

// Flatten applies the spec's tier filter and class weights, returning
// the draw-ready entry pool and its chooser. The class weight is split
// evenly across a class's surviving entries so the class-level mix
// matches the requested weights regardless of how many templates and
// anchors the source file records per class. Exported so out-of-process
// drivers (pqbench's HTTP replay) reproduce exactly the draw sequence
// RunLoad uses in-process.
func (spec *ReplaySpec) Flatten() ([]ReplayEntry, WeightedChooser, error) {
	var kept []ReplayEntry
	classCount := make(map[string]int)
	for _, re := range spec.Entries {
		switch spec.Anchored {
		case AnchoredOnly:
			if re.From == "" {
				continue
			}
		case AnchoredNone:
			if re.From != "" {
				continue
			}
		}
		if w, ok := spec.ClassWeights[re.Class]; ok && w == 0 {
			continue
		}
		kept = append(kept, re)
		classCount[re.Class]++
	}
	if len(kept) == 0 {
		return nil, WeightedChooser{}, fmt.Errorf("engine: replay spec has no entries left after filtering")
	}
	weights := make([]float64, len(kept))
	for i, re := range kept {
		w := 1.0
		if cw, ok := spec.ClassWeights[re.Class]; ok {
			w = cw
		}
		if w < 0 {
			return nil, WeightedChooser{}, fmt.Errorf("engine: negative replay weight %v for class %s", w, re.Class)
		}
		weights[i] = w / float64(classCount[re.Class])
	}
	chooser, err := NewWeightedChooser(weights)
	if err != nil {
		return nil, WeightedChooser{}, fmt.Errorf("engine: replay spec: %w", err)
	}
	return kept, chooser, nil
}

// replayMix is the validated, draw-ready form of a ReplaySpec: a flat
// entry slice with a cumulative-weight array (one sort.Search per draw,
// nothing allocated on the hot path) and one shared histogram per class.
type replayMix struct {
	entries []ReplayEntry
	chooser WeightedChooser
	hists   map[string]*telemetry.Histogram
}

func buildReplayMix(e *Engine, spec *ReplaySpec) (*replayMix, error) {
	kept, chooser, err := spec.Flatten()
	if err != nil {
		return nil, err
	}
	hists := make(map[string]*telemetry.Histogram)
	for _, re := range kept {
		if _, err := e.plans.get(re.Expr); err != nil {
			return nil, fmt.Errorf("engine: replay entry %s %q: %w", re.Class, re.Expr, err)
		}
		if _, err := query.ParseSemantics(re.Semantics); err != nil {
			return nil, fmt.Errorf("engine: replay entry %s: %w", re.Class, err)
		}
		if re.From != "" {
			// Nodes are never removed, so resolving anchors up front keeps
			// the hot loop free of not-found errors for the whole run.
			if _, ok := e.g.NodeByName(re.From); !ok {
				return nil, fmt.Errorf("engine: replay entry %s: anchor %q not in graph", re.Class, re.From)
			}
		}
		if hists[re.Class] == nil {
			hists[re.Class] = &telemetry.Histogram{}
		}
	}
	return &replayMix{entries: kept, chooser: chooser, hists: hists}, nil
}

// snapshot freezes the per-class distributions into a report map.
func (m *replayMix) snapshot() map[string]telemetry.HistogramSnapshot {
	out := make(map[string]telemetry.HistogramSnapshot, len(m.hists))
	for class, h := range m.hists {
		out[class] = h.Snapshot()
	}
	return out
}

// WeightedChooser draws indices proportionally to a fixed weight slice
// via its cumulative-sum array. Zero-weight indices are never drawn: a
// zero weight leaves cum[i] == cum[i-1], and the strict `cum[i] > x`
// predicate steps past equal entries. Draws allocate nothing.
type WeightedChooser struct {
	cum   []float64
	total float64
}

// NewWeightedChooser validates and precomputes the cumulative weights.
func NewWeightedChooser(weights []float64) (WeightedChooser, error) {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return WeightedChooser{}, fmt.Errorf("negative weight %v at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return WeightedChooser{}, fmt.Errorf("weights sum to zero")
	}
	return WeightedChooser{cum: cum, total: total}, nil
}

// Choose maps a uniform draw u ∈ [0,1) to an index.
func (c WeightedChooser) Choose(u float64) int {
	x := u * c.total
	return sort.Search(len(c.cum), func(i int) bool { return c.cum[i] > x })
}
