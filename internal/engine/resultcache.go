package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// resultKey identifies one cached evaluation: the epoch it ran on, the
// semantics, the semantics arguments (from for pairsFrom/shortest, the
// witness-path limit, the count length bound — zero when the semantics
// ignores them, so equivalent requests share an entry), and the plan's
// canonical language key. Because the epoch is part of the key, publishing
// a new epoch invalidates every older entry implicitly; prune reclaims
// their memory.
type resultKey struct {
	epoch  uint64
	sem    query.Semantics
	from   graph.NodeID
	limit  int32
	maxLen int32
	plan   string
}

// resultEntry is one cached (or in-flight) evaluation. done is closed when
// the computation finished; waiters observing an open channel are
// single-flight sharers. failed marks an entry whose compute panicked or
// returned an error (a canceled context, typically) — sharers must not
// serve its zero answer and retry instead.
type resultEntry struct {
	done   chan struct{}
	ans    query.Answer
	failed bool
	// q and masks make the entry maintainable across epochs (maintain.go):
	// q reaches the plan's alphabet mask and ε/emptiness flags, and masks
	// is the product fixpoint EvaluateReqState captured alongside the
	// answer — nil when the (semantics, layout) pair is not regrowable,
	// in which case a delta overlapping the plan's alphabet drops the
	// entry.
	q     *query.Query
	masks []uint64
}

// resultCache is a bounded single-flight cache of evaluation answers.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[resultKey]*resultEntry
	// latest is the newest epoch seen in any request or prune; eviction
	// treats entries from older epochs as stale.
	latest uint64

	hits   atomic.Uint64
	misses atomic.Uint64
	shared atomic.Uint64
	// uncached counts requests computed without cache residency because
	// the cache was full of in-flight entries (the hard bound held).
	uncached atomic.Uint64
	// Publish-maintenance outcomes (maintain.go): entries re-stamped to
	// the new epoch untouched, incrementally regrown from the epoch
	// delta, and dropped.
	retained atomic.Uint64
	regrown  atomic.Uint64
	dropped  atomic.Uint64
}

func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, entries: make(map[resultKey]*resultEntry)}
}

// lookup is the closure-free fast path: it returns the completed answer
// for key, or ok=false for a miss, an in-flight entry, or a failed flight
// — all of which the caller routes through do (which shares, retries, or
// computes as appropriate). Skipping the compute-closure construction and
// the single-flight bookkeeping here keeps the steady-state cached hit at
// a map probe plus one atomic counter.
func (c *resultCache) lookup(key resultKey) (*query.Answer, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.failed {
			return nil, false
		}
		c.hits.Add(1)
		return &e.ans, true
	default:
		return nil, false
	}
}

// do returns the answer for key, computing it via compute exactly once
// across all concurrent callers. cached reports whether the caller got a
// stored or shared answer instead of running compute itself. ctx bounds
// the caller's wait on someone else's in-flight computation — a waiter
// whose context expires stops waiting and returns ctx.Err() (the flight
// itself keeps running under its own caller's context). A compute error
// (cancellation) is returned to its own caller only and never cached:
// waiters sharing the failed flight retry with their own compute. The
// returned answer points into the cache entry (never copied on the hit
// path) — callers must treat it and its slices as immutable.
//
// q is the query the key's plan string identifies; compute additionally
// returns the product fixpoint masks (or nil). Both are stored on the
// entry so publish-time maintenance can retain or regrow it.
func (c *resultCache) do(ctx context.Context, key resultKey, q *query.Query, compute func() (query.Answer, []uint64, error)) (ans *query.Answer, cached bool, err error) {
	c.mu.Lock()
	if key.epoch > c.latest {
		c.latest = key.epoch
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.failed {
				// The computing goroutine panicked or was canceled (and
				// removed the entry); retry as a fresh flight rather than
				// serving its zero answer.
				return c.do(ctx, key, q, compute)
			}
			c.hits.Add(1)
		default:
			c.shared.Add(1)
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.failed {
				return c.do(ctx, key, q, compute)
			}
		}
		return &e.ans, true, nil
	}
	if len(c.entries) >= c.cap {
		c.evictLocked()
	}
	if len(c.entries) >= c.cap {
		// Eviction freed nothing: every resident entry is still in flight.
		// Refusing to insert keeps the cache hard-bounded at cap — this
		// request computes uncached (no single-flight sharing for its key)
		// instead of growing the map without limit under compute storms.
		c.mu.Unlock()
		c.misses.Add(1)
		c.uncached.Add(1)
		a, _, err := compute()
		if err != nil {
			return nil, false, err
		}
		return &a, false, nil
	}
	e := &resultEntry{done: make(chan struct{}), q: q}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		if !e.failed {
			return
		}
		// compute panicked or errored: drop the entry so the key can be
		// retried, release waiters (flagged failed), and let a panic
		// propagate.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
	}()
	e.failed = true
	e.ans, e.masks, err = compute()
	if err != nil {
		return nil, false, err
	}
	e.failed = false
	close(e.done)
	return &e.ans, false, nil
}

// evictLocked makes room: completed entries from epochs older than the
// newest seen go first, then completed entries of the current epoch.
// In-flight entries are never evicted.
func (c *resultCache) evictLocked() {
	for k, e := range c.entries {
		if k.epoch < c.latest {
			select {
			case <-e.done:
				delete(c.entries, k)
			default:
			}
		}
	}
	for k, e := range c.entries {
		if len(c.entries) < c.cap {
			break
		}
		select {
		case <-e.done:
			delete(c.entries, k)
		default:
		}
	}
}

// prune drops completed entries from epochs before cur — called after a
// mutation publishes a new epoch. (Stale in-flight entries finish, serve
// their pinned-epoch waiters, and are reclaimed by a later eviction.)
func (c *resultCache) prune(cur uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur > c.latest {
		c.latest = cur
	}
	for k, e := range c.entries {
		if k.epoch < cur {
			select {
			case <-e.done:
				delete(c.entries, k)
			default:
			}
		}
	}
}

// size returns the current number of cached entries — the
// result_cache_entries gauge.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *resultCache) fill(s *Stats) {
	s.ResultHits = c.hits.Load()
	s.ResultMisses = c.misses.Load()
	s.ResultShared = c.shared.Load()
	s.ResultRetained = c.retained.Load()
	s.ResultRegrown = c.regrown.Load()
	s.ResultDropped = c.dropped.Load()
	c.mu.Lock()
	s.ResultEntries = len(c.entries)
	c.mu.Unlock()
}
