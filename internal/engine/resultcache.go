package engine

import (
	"sync"
	"sync/atomic"

	"pathquery/internal/graph"
)

type resultKind uint8

const (
	kindMonadic resultKind = iota
	kindPairs
)

// resultKey identifies one cached selection: the epoch it was evaluated
// on, the semantics, the source node (binary semantics only), and the
// plan's canonical language key. Because the epoch is part of the key,
// publishing a new epoch invalidates every older entry implicitly; prune
// reclaims their memory.
type resultKey struct {
	epoch uint64
	kind  resultKind
	from  graph.NodeID
	plan  string
}

// resultEntry is one cached (or in-flight) selection. done is closed when
// the computation finished; waiters observing an open channel are
// single-flight sharers. failed marks an entry whose compute panicked —
// sharers must not serve its nil result.
type resultEntry struct {
	done   chan struct{}
	nodes  []graph.NodeID
	failed bool
}

// resultCache is a bounded single-flight cache of selection results.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[resultKey]*resultEntry
	// latest is the newest epoch seen in any request or prune; eviction
	// treats entries from older epochs as stale.
	latest uint64

	hits   atomic.Uint64
	misses atomic.Uint64
	shared atomic.Uint64
	// uncached counts requests computed without cache residency because
	// the cache was full of in-flight entries (the hard bound held).
	uncached atomic.Uint64
}

func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, entries: make(map[resultKey]*resultEntry)}
}

// do returns the result for key, computing it via compute exactly once
// across all concurrent callers. cached reports whether the caller got a
// stored or shared result instead of running compute itself. The returned
// slice is owned by the cache.
func (c *resultCache) do(key resultKey, compute func() []graph.NodeID) (nodes []graph.NodeID, cached bool) {
	c.mu.Lock()
	if key.epoch > c.latest {
		c.latest = key.epoch
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.failed {
				// The computing goroutine panicked (and removed the
				// entry); retry as a fresh flight rather than serving its
				// nil result as an empty selection.
				return c.do(key, compute)
			}
			c.hits.Add(1)
		default:
			c.shared.Add(1)
			<-e.done
			if e.failed {
				return c.do(key, compute)
			}
		}
		return e.nodes, true
	}
	if len(c.entries) >= c.cap {
		c.evictLocked()
	}
	if len(c.entries) >= c.cap {
		// Eviction freed nothing: every resident entry is still in flight.
		// Refusing to insert keeps the cache hard-bounded at cap — this
		// request computes uncached (no single-flight sharing for its key)
		// instead of growing the map without limit under compute storms.
		c.mu.Unlock()
		c.misses.Add(1)
		c.uncached.Add(1)
		return compute(), false
	}
	e := &resultEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	defer func() {
		if !e.failed {
			return
		}
		// compute panicked: drop the entry so the key can be retried,
		// release waiters (flagged failed), and let the panic propagate.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
	}()
	e.failed = true
	e.nodes = compute()
	e.failed = false
	close(e.done)
	return e.nodes, false
}

// evictLocked makes room: completed entries from epochs older than the
// newest seen go first, then completed entries of the current epoch.
// In-flight entries are never evicted.
func (c *resultCache) evictLocked() {
	for k, e := range c.entries {
		if k.epoch < c.latest {
			select {
			case <-e.done:
				delete(c.entries, k)
			default:
			}
		}
	}
	for k, e := range c.entries {
		if len(c.entries) < c.cap {
			break
		}
		select {
		case <-e.done:
			delete(c.entries, k)
		default:
		}
	}
}

// prune drops completed entries from epochs before cur — called after a
// mutation publishes a new epoch. (Stale in-flight entries finish, serve
// their pinned-epoch waiters, and are reclaimed by a later eviction.)
func (c *resultCache) prune(cur uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur > c.latest {
		c.latest = cur
	}
	for k, e := range c.entries {
		if k.epoch < cur {
			select {
			case <-e.done:
				delete(c.entries, k)
			default:
			}
		}
	}
}

func (c *resultCache) fill(s *Stats) {
	s.ResultHits = c.hits.Load()
	s.ResultMisses = c.misses.Load()
	s.ResultShared = c.shared.Load()
	c.mu.Lock()
	s.ResultEntries = len(c.entries)
	c.mu.Unlock()
}
