// Package engine is the concurrent query-serving layer: it owns a graph
// and answers evaluation requests from any number of goroutines while a
// single logical writer keeps mutating the graph underneath.
//
// The evaluation surface is one request/answer pair: Evaluate(ctx,
// Request) serves every result shape — monadic nodes, binary pairs,
// witness paths, accepting-length counts, shortest witnesses — selected
// by Request.Semantics, with the context canceling the underlying product
// traversal. The pre-unified verbs (Select, SelectPairsFrom, SelectBatch)
// survive as deprecated shims over it.
//
// Four mechanisms make serving safe and fast (see DESIGN.md):
//
//   - Epoch snapshots: every request pins one immutable CSR epoch
//     (graph.Snapshot) with a single atomic pointer load; mutations build
//     a new epoch and swap it in, so readers never block writers.
//   - A plan cache interning query sources to compiled plans (parse →
//     determinize → minimize happens once per distinct query), deduplicated
//     across syntactic variants by the canonical language key
//     (query.CacheKey).
//   - A result cache keyed by (epoch, semantics, args, plan) with
//     single-flight deduplication: concurrent identical requests share one
//     product-engine pass, and a new epoch implicitly invalidates every
//     older entry. Canceled evaluations are never cached; their
//     single-flight waiters retry under their own contexts.
//   - Batched evaluation: EvaluateBatch runs many requests against one
//     pinned snapshot through the worker-shard product engine, amortizing
//     the pooled bitset scratch across queries.
//
// The engine also hosts the paper's learner as a service: Learn pins the
// currently served epoch, runs Algorithm 1 on it (SCP searches and merge
// consistency checks sharded across workers over that one snapshot, so
// learning never races mutation), and installs the learned query into the
// plan and result caches — the query serves immediately after.
package engine

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/telemetry"
	"pathquery/internal/words"
)

// Options tunes an Engine.
type Options struct {
	// ResultCacheCap bounds the number of cached result entries
	// (default 4096). Stale-epoch entries are evicted first.
	ResultCacheCap int
	// Log, if set, makes the engine durable: every Mutate appends its
	// edges to the log — under the write lock, before they are applied —
	// and a log failure aborts the mutation with the graph untouched.
	// internal/store.GraphStore is the WAL-backed implementation.
	Log MutationLog
	// RegrowBudget bounds the edge relaxations one publication may spend
	// incrementally regrowing cached results (maintain.go). Zero selects
	// the default (1<<20); a negative value disables maintenance
	// entirely, restoring the prune-every-entry behavior.
	RegrowBudget int
}

// MutationLog is the engine's write-ahead hook (implemented by
// internal/store.GraphStore). Append receives the mutation before it is
// applied, together with the epoch its publication will carry; it must
// make the record durable (or fail, aborting the mutation). Committed
// runs after the epoch is published, outside the write lock — the
// store's checkpoint trigger; implementations handle their own errors
// (a failed checkpoint is a warning, the WAL already holds the data).
type MutationLog interface {
	Append(epoch uint64, edges []EdgeSpec) error
	Committed(snap *graph.Snapshot)
}

// Engine serves path queries over a mutable graph. All methods are safe
// for concurrent use; mutations are serialized internally.
type Engine struct {
	g       *graph.Graph
	log     MutationLog  // write-ahead hook; nil = volatile engine
	mu      sync.RWMutex // write: mutate+publish; read: build-side name lookups
	plans   *planCache
	results *resultCache

	queries   atomic.Uint64
	batches   atomic.Uint64
	mutations atomic.Uint64
	learns    atomic.Uint64

	// evalHist[s] is the end-to-end Evaluate latency under semantics s
	// (per batch member in EvaluateBatch); mutateHist is the Mutate
	// latency including the WAL append and epoch publication. The
	// deprecated Select path is deliberately not timed: it is the
	// cached-hit nanosecond benchmark, and two time.Now calls would be
	// a measurable fraction of it.
	evalHist   [query.NumSemantics]telemetry.Histogram
	mutateHist telemetry.Histogram
	// regrowHist is the per-entry incremental regrow latency; maintMu
	// serializes publish-time cache maintenance (maintain.go) so two
	// racing publications never interleave their classification passes.
	regrowHist   telemetry.Histogram
	maintMu      sync.Mutex
	regrowBudget int
}

// New wraps g in a serving engine and publishes its first epoch. The
// engine takes over concurrency control: from here on, mutate only through
// Mutate/Update and read only through the engine (or through snapshots).
func New(g *graph.Graph, opt Options) *Engine {
	if opt.ResultCacheCap <= 0 {
		opt.ResultCacheCap = 4096
	}
	if opt.RegrowBudget == 0 {
		opt.RegrowBudget = defaultRegrowBudget
	}
	e := &Engine{
		g:            g,
		log:          opt.Log,
		plans:        newPlanCache(g.Alphabet()),
		results:      newResultCache(opt.ResultCacheCap),
		regrowBudget: opt.RegrowBudget,
	}
	g.Snapshot()
	return e
}

// Graph returns the underlying graph. Mutating it directly bypasses the
// engine's write serialization; use Mutate/Update instead.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Epoch returns the currently served epoch.
func (e *Engine) Epoch() uint64 { return e.g.Current().Epoch() }

// Result is the outcome of one selection, pinned to the epoch it was
// evaluated (or cached) on.
type Result struct {
	// Epoch is the snapshot the result is valid for.
	Epoch uint64
	// Nodes are the selected node ids in increasing order. The slice is
	// shared with the result cache and must not be modified.
	Nodes []graph.NodeID
	// Cached reports whether the result came from the result cache (or an
	// in-flight computation shared via single-flight) rather than a fresh
	// product pass.
	Cached bool

	snap *graph.Snapshot
}

// Count returns the number of selected nodes.
func (r Result) Count() int { return len(r.Nodes) }

// Names resolves the selected nodes to names, as of the result's epoch.
func (r Result) Names() []string {
	out := make([]string, len(r.Nodes))
	for i, v := range r.Nodes {
		out[i] = r.snap.NodeName(v)
	}
	return out
}

// result converts an Answer carrying a node selection into the legacy
// Result shape the deprecated verbs return.
func (a Answer) result() Result {
	return Result{Epoch: a.Epoch, Nodes: a.Nodes, Cached: a.Cached, snap: a.snap}
}

// Select evaluates src under monadic semantics on the current epoch. It
// is equivalent to Evaluate with the default (nodes) semantics, skipping
// only the wire-level request decoding it has no arguments for.
//
// Deprecated: use Evaluate; Select cannot be canceled and returns only
// the node shape.
func (e *Engine) Select(src string) (Result, error) {
	p, err := e.plans.get(src)
	if err != nil {
		return Result{}, badRequest("parse_error", "%v", err)
	}
	e.queries.Add(1)
	return e.selectNodesOn(e.g.Current(), p)
}

// selectOn answers one monadic selection against a pinned snapshot,
// through the single-flight result cache — the warm-the-caches path of
// Engine.Learn.
func (e *Engine) selectOn(snap *graph.Snapshot, p *cachedPlan) Result {
	r, _ := e.selectNodesOn(snap, p)
	return r
}

// SelectPairsFrom evaluates src under binary semantics from the named
// node: all v with (from, v) selected, on the current epoch. A node
// created after the served epoch was published is not visible yet.
//
// Deprecated: use Evaluate with pairsFrom semantics.
func (e *Engine) SelectPairsFrom(src, from string) (Result, error) {
	ans, err := e.Evaluate(context.Background(), Request{
		Query:     src,
		Semantics: query.SemanticsPairsFrom.String(),
		From:      from,
	})
	if err != nil {
		return Result{}, err
	}
	return ans.result(), nil
}

// SelectBatch evaluates every query in srcs against one pinned snapshot,
// so all results share an epoch. Cache misses run concurrently through the
// product engine (bounded by GOMAXPROCS); duplicate queries inside the
// batch collapse into one pass via the single-flight result cache. The
// whole batch fails on the first parse error.
//
// Deprecated: use EvaluateBatch, which also returns the shared epoch.
func (e *Engine) SelectBatch(srcs []string) ([]Result, error) {
	reqs := make([]Request, len(srcs))
	for i, src := range srcs {
		reqs[i] = Request{Query: src}
	}
	_, answers, err := e.EvaluateBatch(context.Background(), reqs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(answers))
	for i, ans := range answers {
		results[i] = ans.result()
	}
	return results, nil
}

// EdgeSpec names one edge to add.
type EdgeSpec struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// MutationResult summarizes a published mutation.
type MutationResult struct {
	// Epoch is the newly published epoch serving the mutation.
	Epoch uint64
	// Nodes and Edges are the graph totals as of Epoch.
	Nodes, Edges int
}

// Mutate adds the given edges (creating nodes and interning labels as
// needed) and publishes a new epoch serving them. Mutations from any
// number of goroutines are serialized; in-flight readers keep their
// pinned epochs. On a durable engine (Options.Log) the edges are
// appended to the write-ahead log and fsynced before they are applied:
// a log failure aborts the mutation — graph untouched, epoch unchanged
// — with a 503 durability_error. An empty edge list is a no-op.
func (e *Engine) Mutate(edges []EdgeSpec) (MutationResult, error) {
	if len(edges) == 0 {
		snap := e.g.Current()
		return MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}, nil
	}
	start := time.Now()
	defer func() { e.mutateHist.Observe(time.Since(start)) }()
	snap, err := e.publish(func() error {
		if e.log != nil {
			// Every AddEdge dirties the build side, so a nonempty mutation
			// publishes exactly the next epoch — the number logged here.
			if err := e.log.Append(e.g.Epoch()+1, edges); err != nil {
				return &APIError{
					Code:    "durability_error",
					Status:  http.StatusServiceUnavailable,
					Message: fmt.Sprintf("mutation not applied: %v", err),
				}
			}
		}
		for _, ed := range edges {
			e.g.AddEdgeByName(ed.From, ed.Label, ed.To)
		}
		return nil
	})
	if err != nil {
		return MutationResult{}, err
	}
	if e.log != nil {
		e.log.Committed(snap)
	}
	return MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}, nil
}

// publish is the single path every epoch publisher goes through: fn runs
// under the write lock (the write-ahead append plus the build-side
// mutations; an error aborts with the graph untouched), the new epoch is
// published, and result-cache maintenance classifies every cached entry
// against the epoch delta (maintain.go) — so no future publisher can
// forget maintenance. Maintenance runs outside the write lock: readers
// pin epochs via one atomic load and are never blocked behind it.
func (e *Engine) publish(fn func() error) (*graph.Snapshot, error) {
	e.mu.Lock()
	if err := fn(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	snap := e.g.Snapshot()
	e.mu.Unlock()
	e.mutations.Add(1)
	e.maintainResults(snap)
	return snap, nil
}

// Update runs fn against the build side under the write lock and
// publishes a new epoch. fn must only mutate (AddNode/AddEdge/...), not
// read through Graph-level read methods. Update cannot write ahead (fn
// is opaque), so it refuses to run on a durable engine — recovery would
// silently diverge; use Mutate there.
func (e *Engine) Update(fn func(g *graph.Graph)) MutationResult {
	if e.log != nil {
		panic("engine: Update bypasses the mutation log; use Mutate on a durable engine")
	}
	snap, _ := e.publish(func() error {
		fn(e.g)
		return nil
	})
	return MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}
}

// LearnResult is the outcome of one Engine.Learn call: the learned query,
// its plan-cache installation, and its selection on the epoch the learner
// pinned.
type LearnResult struct {
	// Epoch is the snapshot the learner ran against.
	Epoch uint64
	// Query is the learned path query.
	Query *query.Query
	// Source is the query's rendered expression; issuing it to Select hits
	// the plan entry installed by this call.
	Source string
	// Key is the canonical plan-cache key the query was installed under.
	Key string
	// K is the SCP length bound that succeeded; SCPs are the smallest
	// consistent paths the query was generalized from, in input order.
	K    int
	SCPs []words.Word
	// Selection is the learned query's selection on the pinned epoch,
	// computed through (and therefore warming) the result cache: a Select
	// of Source at the same epoch is a cache hit.
	Selection Result
}

// Learn runs the paper's Algorithm 1 against the currently served epoch
// and installs the learned query as a first-class serving plan: the
// snapshot is pinned with one atomic load (mutations racing the learner
// build future epochs and never touch it), the learner's SCP searches and
// consistency checks fan out over that snapshot, and the result goes into
// the plan cache under its canonical language key plus the result cache at
// the pinned epoch — learn→serve in one call. Returns core.ErrAbstain
// (wrapped) when the examples are insufficient.
func (e *Engine) Learn(s core.Sample, opt core.Options) (LearnResult, error) {
	return e.learnOn(e.g.Current(), s, opt)
}

// LearnNamed is Learn with examples given as node names, resolved against
// the pinned epoch.
func (e *Engine) LearnNamed(pos, neg []string, opt core.Options) (LearnResult, error) {
	snap := e.g.Current()
	sample := core.Sample{}
	var err error
	if sample.Pos, err = e.resolve(snap, pos); err != nil {
		return LearnResult{}, err
	}
	if sample.Neg, err = e.resolve(snap, neg); err != nil {
		return LearnResult{}, err
	}
	return e.learnOn(snap, sample, opt)
}

// resolve maps node names to ids visible in snap, under one read-lock so
// the whole request sees one build-side name table.
func (e *Engine) resolve(snap *graph.Snapshot, names []string) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, 0, len(names))
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, name := range names {
		id, ok := e.g.NodeByName(name)
		if !ok || int(id) >= snap.NumNodes() {
			return nil, fmt.Errorf("engine: no node %q in epoch %d", name, snap.Epoch())
		}
		out = append(out, id)
	}
	return out, nil
}

// learnOn learns on the pinned snapshot and installs the result.
func (e *Engine) learnOn(snap *graph.Snapshot, s core.Sample, opt core.Options) (LearnResult, error) {
	res, err := core.LearnDetailedOn(snap, s, opt)
	if err != nil {
		return LearnResult{}, err
	}
	e.learns.Add(1)
	p := e.plans.install(res.Query)
	return LearnResult{
		Epoch:     snap.Epoch(),
		Query:     p.q,
		Source:    p.q.String(),
		Key:       p.key,
		K:         res.K,
		SCPs:      res.SCPs,
		Selection: e.selectOn(snap, p),
	}, nil
}

// Stats is a point-in-time counter snapshot of the engine.
type Stats struct {
	Epoch uint64 `json:"epoch"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`

	Queries   uint64 `json:"queries"`
	Batches   uint64 `json:"batches"`
	Mutations uint64 `json:"mutations"`
	Learns    uint64 `json:"learns"`

	PlanHits   uint64 `json:"plan_hits"`
	PlanMisses uint64 `json:"plan_misses"`
	Plans      int    `json:"plans"`
	// PlanStates is the total canonical-DFA state count across cached
	// plans and PlanCompileNs the total one-time compilation cost — the
	// aggregate view of GET /plans.
	PlanStates    int   `json:"plan_states"`
	PlanCompileNs int64 `json:"plan_compile_ns"`

	ResultHits    uint64 `json:"result_hits"`
	ResultMisses  uint64 `json:"result_misses"`
	ResultShared  uint64 `json:"result_shared"` // single-flight waiters
	ResultEntries int    `json:"result_entries"`

	// Publish-time maintenance outcomes (maintain.go): cached results
	// re-stamped to the new epoch untouched (the delta's symbols are
	// disjoint from the plan's alphabet), incrementally regrown from the
	// epoch delta, and dropped (unmaintainable semantics, budget
	// exceeded, or a delta-chain gap).
	ResultRetained uint64 `json:"result_retained"`
	ResultRegrown  uint64 `json:"result_regrown"`
	ResultDropped  uint64 `json:"result_dropped"`
}

// Plans lists every cached compiled plan — source, canonical key, state
// count, layout, compile time, and hit count — most-used first. This is
// the GET /plans view.
func (e *Engine) Plans() []PlanInfo { return e.plans.list() }

// RegisterMetrics exposes the engine's counters, gauges, and latency
// histograms on reg under the pathquery_* namespace; labels (typically
// one tenant label) are stamped on every series. Registration is
// idempotent for a given registry and label set — the counters bridge
// the engine's existing atomics via CounterFunc, so no double counting
// can result from calling it twice.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	for s := 0; s < query.NumSemantics; s++ {
		// A fresh slice per semantics: appending to `labels` directly
		// could alias one backing array across iterations.
		ls := make([]telemetry.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, telemetry.Label{Key: "semantics", Value: query.Semantics(s).String()})
		reg.RegisterHistogram("pathquery_eval_seconds",
			"End-to-end Evaluate latency by requested semantics.", &e.evalHist[s], ls...)
	}
	reg.RegisterHistogram("pathquery_mutate_seconds",
		"Mutate latency, including the WAL append and epoch publication.", &e.mutateHist, labels...)
	reg.CounterFunc("pathquery_engine_queries_total",
		"Queries evaluated, batch members included.", e.queries.Load, labels...)
	reg.CounterFunc("pathquery_engine_batches_total",
		"Batch evaluations served.", e.batches.Load, labels...)
	reg.CounterFunc("pathquery_engine_mutations_total",
		"Mutations published.", e.mutations.Load, labels...)
	reg.CounterFunc("pathquery_engine_learns_total",
		"Learner runs installed.", e.learns.Load, labels...)
	reg.CounterFunc("pathquery_plan_cache_hits_total",
		"Plan-cache hits.", e.plans.hits.Load, labels...)
	reg.CounterFunc("pathquery_plan_cache_misses_total",
		"Plan-cache misses (one-time compilations).", e.plans.misses.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_hits_total",
		"Result-cache hits.", e.results.hits.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_misses_total",
		"Result-cache misses (fresh product passes).", e.results.misses.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_shared_total",
		"Evaluations shared with an in-flight identical request (single-flight).", e.results.shared.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_retained_total",
		"Cached results re-stamped to a new epoch untouched (alphabet-disjoint delta).", e.results.retained.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_regrown_total",
		"Cached results incrementally regrown from an epoch delta.", e.results.regrown.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_dropped_total",
		"Cached results dropped at publish (unmaintainable semantics, budget, or chain gap).", e.results.dropped.Load, labels...)
	reg.RegisterHistogram("pathquery_result_cache_regrow_seconds",
		"Per-entry incremental regrow latency at publish.", &e.regrowHist, labels...)
	reg.GaugeFunc("pathquery_result_cache_entries",
		"Cached result entries.", func() float64 { return float64(e.results.size()) }, labels...)
	reg.GaugeFunc("pathquery_epoch",
		"Currently served epoch.", func() float64 { return float64(e.g.Current().Epoch()) }, labels...)
	reg.GaugeFunc("pathquery_graph_nodes",
		"Nodes in the served epoch.", func() float64 { return float64(e.g.Current().NumNodes()) }, labels...)
	reg.GaugeFunc("pathquery_graph_edges",
		"Edges in the served epoch.", func() float64 { return float64(e.g.Current().NumEdges()) }, labels...)
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	snap := e.g.Current()
	s := Stats{
		Epoch:     snap.Epoch(),
		Nodes:     snap.NumNodes(),
		Edges:     snap.NumEdges(),
		Queries:   e.queries.Load(),
		Batches:   e.batches.Load(),
		Mutations: e.mutations.Load(),
		Learns:    e.learns.Load(),
	}
	e.plans.fill(&s)
	e.results.fill(&s)
	return s
}
