// Package engine is the concurrent query-serving layer: it owns a graph
// and answers evaluation requests from any number of goroutines while a
// single logical writer keeps mutating the graph underneath.
//
// The evaluation surface is one request/answer pair: Evaluate(ctx,
// Request) serves every result shape — monadic nodes, binary pairs,
// witness paths, accepting-length counts, shortest witnesses — selected
// by Request.Semantics, with the context canceling the underlying product
// traversal. The pre-unified verbs (Select, SelectPairsFrom, SelectBatch)
// survive as deprecated shims over it.
//
// Four mechanisms make serving safe and fast (see DESIGN.md):
//
//   - Epoch snapshots: every request pins one immutable CSR epoch
//     (graph.Snapshot) with a single atomic pointer load; mutations build
//     a new epoch and swap it in, so readers never block writers.
//   - A plan cache interning query sources to compiled plans (parse →
//     determinize → minimize happens once per distinct query), deduplicated
//     across syntactic variants by the canonical language key
//     (query.CacheKey).
//   - A result cache keyed by (epoch, semantics, args, plan) with
//     single-flight deduplication: concurrent identical requests share one
//     product-engine pass, and a new epoch implicitly invalidates every
//     older entry. Canceled evaluations are never cached; their
//     single-flight waiters retry under their own contexts.
//   - Batched evaluation: EvaluateBatch runs many requests against one
//     pinned snapshot through the worker-shard product engine, amortizing
//     the pooled bitset scratch across queries.
//
// The engine also hosts the paper's learner as a service: Learn pins the
// currently served epoch, runs Algorithm 1 on it (SCP searches and merge
// consistency checks sharded across workers over that one snapshot, so
// learning never races mutation), and installs the learned query into the
// plan and result caches — the query serves immediately after.
package engine

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/core"
	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/telemetry"
	"pathquery/internal/words"
)

// Options tunes an Engine.
type Options struct {
	// ResultCacheCap bounds the number of cached result entries
	// (default 4096). Stale-epoch entries are evicted first.
	ResultCacheCap int
	// Log, if set, makes the engine durable: every Mutate appends its
	// edges to the log — under the write lock, before they are applied —
	// and a log failure aborts the mutation with the graph untouched.
	// internal/store.GraphStore is the WAL-backed implementation.
	Log MutationLog
	// RegrowBudget bounds the edge relaxations one publication may spend
	// incrementally regrowing cached results (maintain.go). Zero selects
	// the default (1<<20); a negative value disables maintenance
	// entirely, restoring the prune-every-entry behavior.
	RegrowBudget int
}

// MutationLog is the engine's write-ahead hook (implemented by
// internal/store.GraphStore). Append receives the mutation before it is
// applied, together with the epoch its publication will carry; it must
// make the record durable (or fail, aborting the mutation). Committed
// runs after the epoch is published, outside the write lock — the
// store's checkpoint trigger; implementations handle their own errors
// (a failed checkpoint is a warning, the WAL already holds the data).
type MutationLog interface {
	Append(epoch uint64, edges []EdgeSpec) error
	Committed(snap *graph.Snapshot)
}

// Engine serves path queries over a mutable graph. All methods are safe
// for concurrent use; mutations are serialized internally.
type Engine struct {
	g       *graph.Graph
	log     MutationLog  // write-ahead hook; nil = volatile engine
	mu      sync.RWMutex // write: mutate+publish; read: build-side name lookups
	plans   *planCache
	results *resultCache

	queries   atomic.Uint64
	batches   atomic.Uint64
	mutations atomic.Uint64
	learns    atomic.Uint64

	// evalHist[s] is the end-to-end Evaluate latency under semantics s
	// (per batch member in EvaluateBatch); mutateHist is the Mutate
	// latency including the group-commit queue wait, WAL append, and
	// epoch publication. The deprecated Select path is deliberately not
	// timed: it is the cached-hit nanosecond benchmark, and two time.Now
	// calls would be a measurable fraction of it.
	evalHist   [query.NumSemantics]telemetry.Histogram
	mutateHist telemetry.Histogram
	// Per-stage publish latency: building the new epoch's adjacency,
	// the WAL append+fsync, and the snapshot swap. walBatchHist is the
	// distribution of mutations coalesced per WAL batch.
	publishBuildHist telemetry.Histogram
	publishFsyncHist telemetry.Histogram
	publishSwapHist  telemetry.Histogram
	walBatchHist     telemetry.ValueHistogram
	walBatches       atomic.Uint64
	walBatchedMuts   atomic.Uint64

	// Group commit (combining lock): concurrent Mutate callers enqueue
	// on commitQ under commitMu; the first to find no committer in
	// flight becomes the leader and drains the queue in byte-capped
	// batches — one WAL append (one fsync), one applied delta, one
	// published epoch per batch — fanning results back to the waiters.
	commitMu   sync.Mutex
	commitCond *sync.Cond
	commitQ    []*pendingMutation
	committing bool

	// regrowHist is the per-entry incremental regrow latency; maintMu
	// serializes cache maintenance passes (maintain.go); maint is the
	// async maintainer's mailbox — publications enqueue their snapshot
	// there and return without waiting for classification.
	regrowHist   telemetry.Histogram
	maintMu      sync.Mutex
	maint        maintState
	regrowBudget int
}

// pendingMutation is one Mutate call waiting in the group-commit queue.
type pendingMutation struct {
	edges []EdgeSpec
	res   MutationResult
	err   error
	done  bool
}

// New wraps g in a serving engine and publishes its first epoch. The
// engine takes over concurrency control: from here on, mutate only through
// Mutate/Update and read only through the engine (or through snapshots).
func New(g *graph.Graph, opt Options) *Engine {
	if opt.ResultCacheCap <= 0 {
		opt.ResultCacheCap = 4096
	}
	if opt.RegrowBudget == 0 {
		opt.RegrowBudget = defaultRegrowBudget
	}
	e := &Engine{
		g:            g,
		log:          opt.Log,
		plans:        newPlanCache(g.Alphabet()),
		results:      newResultCache(opt.ResultCacheCap),
		regrowBudget: opt.RegrowBudget,
	}
	e.commitCond = sync.NewCond(&e.commitMu)
	snap := g.Snapshot()
	e.maint.workCond = sync.NewCond(&e.maint.mu)
	e.maint.doneCond = sync.NewCond(&e.maint.mu)
	e.maint.doneEpoch = snap.Epoch()
	e.maint.exited = make(chan struct{})
	go e.maintainLoop()
	return e
}

// Graph returns the underlying graph. Mutating it directly bypasses the
// engine's write serialization; use Mutate/Update instead.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Epoch returns the currently served epoch.
func (e *Engine) Epoch() uint64 { return e.g.Current().Epoch() }

// Result is the outcome of one selection, pinned to the epoch it was
// evaluated (or cached) on.
type Result struct {
	// Epoch is the snapshot the result is valid for.
	Epoch uint64
	// Nodes are the selected node ids in increasing order. The slice is
	// shared with the result cache and must not be modified.
	Nodes []graph.NodeID
	// Cached reports whether the result came from the result cache (or an
	// in-flight computation shared via single-flight) rather than a fresh
	// product pass.
	Cached bool

	snap *graph.Snapshot
}

// Count returns the number of selected nodes.
func (r Result) Count() int { return len(r.Nodes) }

// Names resolves the selected nodes to names, as of the result's epoch.
func (r Result) Names() []string {
	out := make([]string, len(r.Nodes))
	for i, v := range r.Nodes {
		out[i] = r.snap.NodeName(v)
	}
	return out
}

// result converts an Answer carrying a node selection into the legacy
// Result shape the deprecated verbs return.
func (a Answer) result() Result {
	return Result{Epoch: a.Epoch, Nodes: a.Nodes, Cached: a.Cached, snap: a.snap}
}

// Select evaluates src under monadic semantics on the current epoch. It
// is equivalent to Evaluate with the default (nodes) semantics, skipping
// only the wire-level request decoding it has no arguments for.
//
// Deprecated: use Evaluate; Select cannot be canceled and returns only
// the node shape.
func (e *Engine) Select(src string) (Result, error) {
	p, err := e.plans.get(src)
	if err != nil {
		return Result{}, badRequest("parse_error", "%v", err)
	}
	e.queries.Add(1)
	return e.selectNodesOn(e.g.Current(), p)
}

// selectOn answers one monadic selection against a pinned snapshot,
// through the single-flight result cache — the warm-the-caches path of
// Engine.Learn.
func (e *Engine) selectOn(snap *graph.Snapshot, p *cachedPlan) Result {
	r, _ := e.selectNodesOn(snap, p)
	return r
}

// SelectPairsFrom evaluates src under binary semantics from the named
// node: all v with (from, v) selected, on the current epoch. A node
// created after the served epoch was published is not visible yet.
//
// Deprecated: use Evaluate with pairsFrom semantics.
func (e *Engine) SelectPairsFrom(src, from string) (Result, error) {
	ans, err := e.Evaluate(context.Background(), Request{
		Query:     src,
		Semantics: query.SemanticsPairsFrom.String(),
		From:      from,
	})
	if err != nil {
		return Result{}, err
	}
	return ans.result(), nil
}

// SelectBatch evaluates every query in srcs against one pinned snapshot,
// so all results share an epoch. Cache misses run concurrently through the
// product engine (bounded by GOMAXPROCS); duplicate queries inside the
// batch collapse into one pass via the single-flight result cache. The
// whole batch fails on the first parse error.
//
// Deprecated: use EvaluateBatch, which also returns the shared epoch.
func (e *Engine) SelectBatch(srcs []string) ([]Result, error) {
	reqs := make([]Request, len(srcs))
	for i, src := range srcs {
		reqs[i] = Request{Query: src}
	}
	_, answers, err := e.EvaluateBatch(context.Background(), reqs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(answers))
	for i, ans := range answers {
		results[i] = ans.result()
	}
	return results, nil
}

// EdgeSpec names one edge to add.
type EdgeSpec struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// MutationResult summarizes a published mutation.
type MutationResult struct {
	// Epoch is the newly published epoch serving the mutation.
	Epoch uint64
	// Nodes and Edges are the graph totals as of Epoch.
	Nodes, Edges int
}

// maxCommitBatchBytes caps how much one group-commit batch carries (by
// estimated WAL record payload); the batch's first mutation is always
// included, so an oversized single mutation still commits alone.
const maxCommitBatchBytes = 4 << 20

// Mutate adds the given edges (creating nodes and interning labels as
// needed) and publishes a new epoch serving them. Mutations from any
// number of goroutines are serialized; in-flight readers keep their
// pinned epochs. Concurrent callers group-commit: one leader drains the
// queue in byte-capped batches, writing each batch as a single WAL
// record (one fsync on a durable engine), applying it as one delta, and
// publishing one epoch that every batched caller's result reports. A
// log failure aborts the whole batch — graph untouched, epoch unchanged
// — with a 503 durability_error. An empty edge list is a no-op.
func (e *Engine) Mutate(edges []EdgeSpec) (MutationResult, error) {
	if len(edges) == 0 {
		snap := e.g.Current()
		return MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}, nil
	}
	start := time.Now()
	defer func() { e.mutateHist.Observe(time.Since(start)) }()
	pm := &pendingMutation{edges: edges}
	e.commitMu.Lock()
	e.commitQ = append(e.commitQ, pm)
	for !pm.done {
		if e.committing {
			// A leader is draining the queue; it will commit pm (and
			// broadcast) or exit, whichever comes first.
			e.commitCond.Wait()
			continue
		}
		e.committing = true
		e.commitMu.Unlock()
		e.commitBatches()
		e.commitMu.Lock()
		e.committing = false
		e.commitCond.Broadcast()
	}
	e.commitMu.Unlock()
	return pm.res, pm.err
}

// nextBatch dequeues the next group-commit batch: a maximal prefix of
// the queue within maxCommitBatchBytes (first entry always included).
func (e *Engine) nextBatch() []*pendingMutation {
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	if len(e.commitQ) == 0 {
		return nil
	}
	n, size := 0, 0
	for n < len(e.commitQ) {
		sz := 0
		for _, ed := range e.commitQ[n].edges {
			sz += len(ed.From) + len(ed.Label) + len(ed.To) + 12
		}
		if n > 0 && size+sz > maxCommitBatchBytes {
			break
		}
		size += sz
		n++
	}
	batch := make([]*pendingMutation, n)
	copy(batch, e.commitQ)
	rest := copy(e.commitQ, e.commitQ[n:])
	for i := rest; i < len(e.commitQ); i++ {
		e.commitQ[i] = nil // release for GC
	}
	e.commitQ = e.commitQ[:rest]
	return batch
}

// commitGatherWindow is how long the leader pauses between consecutive
// durable batches before picking up the next one: the writers woken by
// the previous fan-out are re-enqueueing at that very moment, and the
// window lets them join the imminent batch instead of the one after it —
// roughly doubling coalescing under writer saturation for a cost that is
// noise next to the fsync the batch is about to pay. A parked sleep, not
// a Gosched loop: yielding on a single-P runtime donates whole scheduler
// slices to unrelated spinning goroutines, while a timer wakes the
// leader regardless of what else is runnable.
const commitGatherWindow = 50 * time.Microsecond

// commitBatches drains the group-commit queue; only the leader runs it.
// The first batch is taken immediately: an uncontended Mutate must not
// pay any gather window.
func (e *Engine) commitBatches() {
	for first := true; ; first = false {
		if !first && e.log != nil {
			time.Sleep(commitGatherWindow)
		}
		batch := e.nextBatch()
		if batch == nil {
			return
		}
		e.commitBatch(batch)
	}
}

// commitBatch commits one batch: one WAL append covering every queued
// mutation, one build-side application, one published epoch, results
// fanned back to the waiters. On append failure the whole batch errors
// with the graph untouched.
func (e *Engine) commitBatch(batch []*pendingMutation) {
	edges := batch[0].edges
	if len(batch) > 1 {
		total := 0
		for _, pm := range batch {
			total += len(pm.edges)
		}
		edges = make([]EdgeSpec, 0, total)
		for _, pm := range batch {
			edges = append(edges, pm.edges...)
		}
	}

	var commitErr error
	var snap *graph.Snapshot
	var st graph.PublishStats
	var fsyncDur time.Duration
	e.mu.Lock()
	if e.log != nil {
		// Every AddEdge dirties the build side, so a nonempty batch
		// publishes exactly the next epoch — the number logged here.
		fsyncStart := time.Now()
		err := e.log.Append(e.g.Epoch()+1, edges)
		fsyncDur = time.Since(fsyncStart)
		if err != nil {
			commitErr = &APIError{
				Code:    "durability_error",
				Status:  http.StatusServiceUnavailable,
				Message: fmt.Sprintf("mutation not applied: %v", err),
			}
		}
	}
	if commitErr == nil {
		for _, ed := range edges {
			e.g.AddEdgeByName(ed.From, ed.Label, ed.To)
		}
		snap, st = e.g.SnapshotStats()
	}
	e.mu.Unlock()

	var res MutationResult
	if commitErr == nil {
		res = MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}
		e.mutations.Add(uint64(len(batch)))
		e.walBatches.Add(1)
		e.walBatchedMuts.Add(uint64(len(batch)))
		e.walBatchHist.Observe(int64(len(batch)))
		if e.log != nil {
			e.publishFsyncHist.Observe(fsyncDur)
		}
		e.publishBuildHist.Observe(st.Build)
		e.publishSwapHist.Observe(st.Swap)
		if e.log != nil {
			e.log.Committed(snap)
		}
		e.scheduleMaintain(snap)
	}
	e.commitMu.Lock()
	for _, pm := range batch {
		pm.res, pm.err, pm.done = res, commitErr, true
	}
	e.commitCond.Broadcast()
	e.commitMu.Unlock()
}

// publish is the single path every non-batched epoch publisher goes
// through: fn runs under the write lock (an error aborts with the graph
// untouched), the new epoch is published, and the snapshot is handed to
// the async maintainer (maintain.go) — so no future publisher can forget
// maintenance. Neither readers nor the publisher wait on maintenance:
// readers pin epochs via one atomic load, and classification happens on
// the maintainer goroutine.
func (e *Engine) publish(fn func() error) (*graph.Snapshot, error) {
	e.mu.Lock()
	if err := fn(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	snap := e.g.Snapshot()
	e.mu.Unlock()
	e.mutations.Add(1)
	e.scheduleMaintain(snap)
	return snap, nil
}

// Update runs fn against the build side under the write lock and
// publishes a new epoch. fn must only mutate (AddNode/AddEdge/...), not
// read through Graph-level read methods. Update cannot write ahead (fn
// is opaque), so it refuses to run on a durable engine — recovery would
// silently diverge; use Mutate there.
func (e *Engine) Update(fn func(g *graph.Graph)) MutationResult {
	if e.log != nil {
		panic("engine: Update bypasses the mutation log; use Mutate on a durable engine")
	}
	snap, _ := e.publish(func() error {
		fn(e.g)
		return nil
	})
	return MutationResult{Epoch: snap.Epoch(), Nodes: snap.NumNodes(), Edges: snap.NumEdges()}
}

// LearnResult is the outcome of one Engine.Learn call: the learned query,
// its plan-cache installation, and its selection on the epoch the learner
// pinned.
type LearnResult struct {
	// Epoch is the snapshot the learner ran against.
	Epoch uint64
	// Query is the learned path query.
	Query *query.Query
	// Source is the query's rendered expression; issuing it to Select hits
	// the plan entry installed by this call.
	Source string
	// Key is the canonical plan-cache key the query was installed under.
	Key string
	// K is the SCP length bound that succeeded; SCPs are the smallest
	// consistent paths the query was generalized from, in input order.
	K    int
	SCPs []words.Word
	// Selection is the learned query's selection on the pinned epoch,
	// computed through (and therefore warming) the result cache: a Select
	// of Source at the same epoch is a cache hit.
	Selection Result
}

// Learn runs the paper's Algorithm 1 against the currently served epoch
// and installs the learned query as a first-class serving plan: the
// snapshot is pinned with one atomic load (mutations racing the learner
// build future epochs and never touch it), the learner's SCP searches and
// consistency checks fan out over that snapshot, and the result goes into
// the plan cache under its canonical language key plus the result cache at
// the pinned epoch — learn→serve in one call. Returns core.ErrAbstain
// (wrapped) when the examples are insufficient.
func (e *Engine) Learn(s core.Sample, opt core.Options) (LearnResult, error) {
	return e.learnOn(e.g.Current(), s, opt)
}

// LearnNamed is Learn with examples given as node names, resolved against
// the pinned epoch.
func (e *Engine) LearnNamed(pos, neg []string, opt core.Options) (LearnResult, error) {
	snap := e.g.Current()
	sample := core.Sample{}
	var err error
	if sample.Pos, err = e.resolve(snap, pos); err != nil {
		return LearnResult{}, err
	}
	if sample.Neg, err = e.resolve(snap, neg); err != nil {
		return LearnResult{}, err
	}
	return e.learnOn(snap, sample, opt)
}

// resolve maps node names to ids visible in snap, under one read-lock so
// the whole request sees one build-side name table.
func (e *Engine) resolve(snap *graph.Snapshot, names []string) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, 0, len(names))
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, name := range names {
		id, ok := e.g.NodeByName(name)
		if !ok || int(id) >= snap.NumNodes() {
			return nil, fmt.Errorf("engine: no node %q in epoch %d", name, snap.Epoch())
		}
		out = append(out, id)
	}
	return out, nil
}

// learnOn learns on the pinned snapshot and installs the result.
func (e *Engine) learnOn(snap *graph.Snapshot, s core.Sample, opt core.Options) (LearnResult, error) {
	res, err := core.LearnDetailedOn(snap, s, opt)
	if err != nil {
		return LearnResult{}, err
	}
	e.learns.Add(1)
	p := e.plans.install(res.Query)
	return LearnResult{
		Epoch:     snap.Epoch(),
		Query:     p.q,
		Source:    p.q.String(),
		Key:       p.key,
		K:         res.K,
		SCPs:      res.SCPs,
		Selection: e.selectOn(snap, p),
	}, nil
}

// Stats is a point-in-time counter snapshot of the engine.
type Stats struct {
	Epoch uint64 `json:"epoch"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`

	Queries   uint64 `json:"queries"`
	Batches   uint64 `json:"batches"`
	Mutations uint64 `json:"mutations"`
	Learns    uint64 `json:"learns"`

	PlanHits   uint64 `json:"plan_hits"`
	PlanMisses uint64 `json:"plan_misses"`
	Plans      int    `json:"plans"`
	// PlanStates is the total canonical-DFA state count across cached
	// plans and PlanCompileNs the total one-time compilation cost — the
	// aggregate view of GET /plans.
	PlanStates    int   `json:"plan_states"`
	PlanCompileNs int64 `json:"plan_compile_ns"`

	ResultHits    uint64 `json:"result_hits"`
	ResultMisses  uint64 `json:"result_misses"`
	ResultShared  uint64 `json:"result_shared"` // single-flight waiters
	ResultEntries int    `json:"result_entries"`

	// Publish-time maintenance outcomes (maintain.go): cached results
	// re-stamped to the new epoch untouched (the delta's symbols are
	// disjoint from the plan's alphabet), incrementally regrown from the
	// epoch delta, and dropped (unmaintainable semantics, budget
	// exceeded, or a delta-chain gap).
	ResultRetained uint64 `json:"result_retained"`
	ResultRegrown  uint64 `json:"result_regrown"`
	ResultDropped  uint64 `json:"result_dropped"`

	// Group-commit write path: batches published, mutations carried by
	// them (batched/batches is the mean coalescing factor), and the
	// publications not yet processed by the async cache maintainer.
	WalBatches          uint64 `json:"wal_batches"`
	WalBatchedMutations uint64 `json:"wal_batched_mutations"`
	MaintainQueueDepth  uint64 `json:"maintain_queue_depth"`
}

// Plans lists every cached compiled plan — source, canonical key, state
// count, layout, compile time, and hit count — most-used first. This is
// the GET /plans view.
func (e *Engine) Plans() []PlanInfo { return e.plans.list() }

// RegisterMetrics exposes the engine's counters, gauges, and latency
// histograms on reg under the pathquery_* namespace; labels (typically
// one tenant label) are stamped on every series. Registration is
// idempotent for a given registry and label set — the counters bridge
// the engine's existing atomics via CounterFunc, so no double counting
// can result from calling it twice.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	for s := 0; s < query.NumSemantics; s++ {
		// A fresh slice per semantics: appending to `labels` directly
		// could alias one backing array across iterations.
		ls := make([]telemetry.Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, telemetry.Label{Key: "semantics", Value: query.Semantics(s).String()})
		reg.RegisterHistogram("pathquery_eval_seconds",
			"End-to-end Evaluate latency by requested semantics.", &e.evalHist[s], ls...)
	}
	reg.RegisterHistogram("pathquery_mutate_seconds",
		"Mutate latency, including the group-commit wait, WAL append, and epoch publication.", &e.mutateHist, labels...)
	reg.RegisterHistogram("pathquery_publish_build_seconds",
		"Per-publication adjacency build time (incremental overlay merge or full rebuild).", &e.publishBuildHist, labels...)
	reg.RegisterHistogram("pathquery_publish_fsync_seconds",
		"Per-batch WAL append+fsync time (durable engines only).", &e.publishFsyncHist, labels...)
	reg.RegisterHistogram("pathquery_publish_swap_seconds",
		"Per-publication snapshot swap time (delta seal + pointer install).", &e.publishSwapHist, labels...)
	reg.RegisterValueHistogram("pathquery_wal_batch_records",
		"Mutations coalesced per group-commit batch.", &e.walBatchHist, labels...)
	reg.CounterFunc("pathquery_wal_batches_total",
		"Group-commit batches published.", e.walBatches.Load, labels...)
	reg.GaugeFunc("pathquery_maintain_queue_depth",
		"Published epochs not yet processed by the async cache maintainer.",
		func() float64 { return float64(e.maintainLag()) }, labels...)
	reg.CounterFunc("pathquery_engine_queries_total",
		"Queries evaluated, batch members included.", e.queries.Load, labels...)
	reg.CounterFunc("pathquery_engine_batches_total",
		"Batch evaluations served.", e.batches.Load, labels...)
	reg.CounterFunc("pathquery_engine_mutations_total",
		"Mutations published.", e.mutations.Load, labels...)
	reg.CounterFunc("pathquery_engine_learns_total",
		"Learner runs installed.", e.learns.Load, labels...)
	reg.CounterFunc("pathquery_plan_cache_hits_total",
		"Plan-cache hits.", e.plans.hits.Load, labels...)
	reg.CounterFunc("pathquery_plan_cache_misses_total",
		"Plan-cache misses (one-time compilations).", e.plans.misses.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_hits_total",
		"Result-cache hits.", e.results.hits.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_misses_total",
		"Result-cache misses (fresh product passes).", e.results.misses.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_shared_total",
		"Evaluations shared with an in-flight identical request (single-flight).", e.results.shared.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_retained_total",
		"Cached results re-stamped to a new epoch untouched (alphabet-disjoint delta).", e.results.retained.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_regrown_total",
		"Cached results incrementally regrown from an epoch delta.", e.results.regrown.Load, labels...)
	reg.CounterFunc("pathquery_result_cache_dropped_total",
		"Cached results dropped at publish (unmaintainable semantics, budget, or chain gap).", e.results.dropped.Load, labels...)
	reg.RegisterHistogram("pathquery_result_cache_regrow_seconds",
		"Per-entry incremental regrow latency at publish.", &e.regrowHist, labels...)
	reg.GaugeFunc("pathquery_result_cache_entries",
		"Cached result entries.", func() float64 { return float64(e.results.size()) }, labels...)
	reg.GaugeFunc("pathquery_epoch",
		"Currently served epoch.", func() float64 { return float64(e.g.Current().Epoch()) }, labels...)
	reg.GaugeFunc("pathquery_graph_nodes",
		"Nodes in the served epoch.", func() float64 { return float64(e.g.Current().NumNodes()) }, labels...)
	reg.GaugeFunc("pathquery_graph_edges",
		"Edges in the served epoch.", func() float64 { return float64(e.g.Current().NumEdges()) }, labels...)
}

// PublishLatency returns snapshots of the per-stage publish histograms
// (adjacency build, WAL append+fsync, snapshot swap) — the same
// distributions exported to /metrics — for benchmarks and load drivers
// that report percentiles directly.
func (e *Engine) PublishLatency() (build, fsync, swap telemetry.HistogramSnapshot) {
	return e.publishBuildHist.Snapshot(), e.publishFsyncHist.Snapshot(), e.publishSwapHist.Snapshot()
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	snap := e.g.Current()
	s := Stats{
		Epoch:               snap.Epoch(),
		Nodes:               snap.NumNodes(),
		Edges:               snap.NumEdges(),
		Queries:             e.queries.Load(),
		Batches:             e.batches.Load(),
		Mutations:           e.mutations.Load(),
		Learns:              e.learns.Load(),
		WalBatches:          e.walBatches.Load(),
		WalBatchedMutations: e.walBatchedMuts.Load(),
		MaintainQueueDepth:  e.maintainLag(),
	}
	e.plans.fill(&s)
	e.results.fill(&s)
	return s
}
