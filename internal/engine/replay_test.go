package engine

import (
	"math/rand"
	"testing"
	"time"
)

func TestWeightedChooserZeroNeverFires(t *testing.T) {
	c, err := NewWeightedChooser([]float64{3, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 4)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[c.Choose(rng.Float64())]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight indices drawn: %v", counts)
	}
	// Skew ≈ requested: 3:1 within 5% relative tolerance at 200k draws.
	ratio := float64(counts[0]) / float64(counts[2])
	if ratio < 2.85 || ratio > 3.15 {
		t.Fatalf("weight ratio %.3f, want ≈ 3 (counts %v)", ratio, counts)
	}
	// Boundary draws stay in range.
	if got := c.Choose(0); got != 0 {
		t.Fatalf("choose(0) = %d, want 0", got)
	}
	if got := c.Choose(0.999999999); got != 2 {
		t.Fatalf("choose(→1) = %d, want 2", got)
	}
}

func TestWeightedChooserRejectsDegenerate(t *testing.T) {
	if _, err := NewWeightedChooser([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewWeightedChooser([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestRunLoadWeightedQueries(t *testing.T) {
	e := New(buildFixture(), Options{})
	report, err := RunLoad(e, LoadConfig{
		Clients:           2,
		RequestsPerClient: 50,
		Queries:           []string{"tram·cinema", "bus·cinema"},
		Weights:           []float64{1, 0},
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Selects != 100 {
		t.Fatalf("selects %d, want 100", report.Selects)
	}
	// The zero-weight query must never have executed: its first Select
	// after the run is a result-cache miss, while the weighted query is
	// already cached from the run itself.
	if r, err := e.Select("bus·cinema"); err != nil || r.Cached {
		t.Fatalf("zero-weight query was executed during the run (cached=%v, err=%v)", r.Cached, err)
	}
	if r, err := e.Select("tram·cinema"); err != nil || !r.Cached {
		t.Fatalf("weighted query not served from the run's cache (cached=%v, err=%v)", r.Cached, err)
	}
	if _, err := RunLoad(e, LoadConfig{
		Clients: 1, RequestsPerClient: 1,
		Queries: []string{"tram·cinema"}, Weights: []float64{1, 2},
	}); err == nil {
		t.Fatal("mismatched weights length accepted")
	}
	if _, err := RunLoad(e, LoadConfig{
		Clients: 1, RequestsPerClient: 1,
		Queries: []string{"tram·cinema"}, Weights: []float64{0},
	}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func replayFixtureSpec() *ReplaySpec {
	return &ReplaySpec{Entries: []ReplayEntry{
		{Class: "AQ1", Expr: "tram·cinema", Semantics: "nodes"},
		{Class: "AQ7", Expr: "tram+bus", Semantics: "nodes"},
		{Class: "AQ7", Expr: "bus+cinema", Semantics: "nodes"},
		{Class: "AQ27", Expr: "bus·bus*", Semantics: "pairsFrom", From: "N5"},
	}}
}

func TestRunLoadReplayDeterministicPerClassCounts(t *testing.T) {
	run := func() map[string]uint64 {
		e := New(buildFixture(), Options{})
		report, err := RunLoad(e, LoadConfig{
			Clients:           4,
			RequestsPerClient: 100,
			Replay:            replayFixtureSpec(),
			MutateRate:        0.1,
			Seed:              7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(4 * 100); report.Requests != want {
			t.Fatalf("requests %d, want exactly %d", report.Requests, want)
		}
		counts := make(map[string]uint64)
		for class, snap := range report.ClassLatency {
			counts[class] = snap.Count()
		}
		return counts
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no per-class latency reported")
	}
	var total uint64
	for class, n := range first {
		if second[class] != n {
			t.Fatalf("class %s: %d vs %d issues across identical runs (first %v, second %v)",
				class, n, second[class], first, second)
		}
		total += n
	}
	if len(second) != len(first) {
		t.Fatalf("class sets differ: %v vs %v", first, second)
	}
	// Every non-mutation request lands in exactly one class histogram.
	e := New(buildFixture(), Options{})
	report, err := RunLoad(e, LoadConfig{
		Clients: 4, RequestsPerClient: 100, Replay: replayFixtureSpec(), MutateRate: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != report.Selects {
		t.Fatalf("class counts sum %d, selects %d", total, report.Selects)
	}
}

func TestRunLoadReplayClassWeights(t *testing.T) {
	e := New(buildFixture(), Options{})
	spec := replayFixtureSpec()
	spec.ClassWeights = map[string]float64{"AQ1": 1, "AQ7": 0, "AQ27": 1}
	report, err := RunLoad(e, LoadConfig{
		Clients:           2,
		RequestsPerClient: 200,
		Replay:            spec,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := report.ClassLatency["AQ7"].Count(); n != 0 {
		t.Fatalf("zero-weight class AQ7 issued %d requests", n)
	}
	a, b := report.ClassLatency["AQ1"].Count(), report.ClassLatency["AQ27"].Count()
	if a == 0 || b == 0 {
		t.Fatalf("weighted classes missing: AQ1=%d AQ27=%d", a, b)
	}
	// Equal class weights ⇒ ≈ equal class counts even though AQ1 has one
	// entry: class weight is split across a class's entries.
	ratio := float64(a) / float64(b)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("class skew %.2f for equal weights (AQ1=%d AQ27=%d)", ratio, a, b)
	}
}

func TestBuildReplayMixValidation(t *testing.T) {
	e := New(buildFixture(), Options{})
	if _, err := buildReplayMix(e, &ReplaySpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := buildReplayMix(e, &ReplaySpec{Entries: []ReplayEntry{
		{Class: "AQ1", Expr: "tram·(", Semantics: "nodes"},
	}}); err == nil {
		t.Fatal("unparseable expr accepted")
	}
	if _, err := buildReplayMix(e, &ReplaySpec{Entries: []ReplayEntry{
		{Class: "AQ1", Expr: "tram", Semantics: "lies"},
	}}); err == nil {
		t.Fatal("unknown semantics accepted")
	}
	if _, err := buildReplayMix(e, &ReplaySpec{Entries: []ReplayEntry{
		{Class: "AQ1", Expr: "tram", Semantics: "pairsFrom", From: "ghost"},
	}}); err == nil {
		t.Fatal("unknown anchor accepted")
	}
	// Filtering everything out must error, not divide by zero.
	if _, err := buildReplayMix(e, &ReplaySpec{
		Entries:  []ReplayEntry{{Class: "AQ1", Expr: "tram", Semantics: "nodes"}},
		Anchored: AnchoredOnly,
	}); err == nil {
		t.Fatal("fully filtered spec accepted")
	}
}

func TestRunLoadReplayAnchoring(t *testing.T) {
	for _, tc := range []struct {
		anchored Anchoring
		wantFrom bool
		classes  []string
	}{
		{AnchoredOnly, true, []string{"AQ27"}},
		{AnchoredNone, false, []string{"AQ1", "AQ7"}},
	} {
		e := New(buildFixture(), Options{})
		spec := replayFixtureSpec()
		spec.Anchored = tc.anchored
		report, err := RunLoad(e, LoadConfig{
			Clients: 2, RequestsPerClient: 50, Replay: spec, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for class, snap := range report.ClassLatency {
			ok := false
			for _, want := range tc.classes {
				if class == want {
					ok = true
				}
			}
			if !ok && snap.Count() > 0 {
				t.Fatalf("anchoring %v issued class %s", tc.anchored, class)
			}
		}
	}
}

func TestRunLoadRequestsPerClientIgnoresDuration(t *testing.T) {
	e := New(buildFixture(), Options{})
	start := time.Now()
	report, err := RunLoad(e, LoadConfig{
		Clients:           2,
		RequestsPerClient: 10,
		Duration:          10 * time.Second, // must not stretch the run
		Queries:           []string{"tram·cinema"},
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 20 {
		t.Fatalf("requests %d, want 20", report.Requests)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("fixed-count run waited out the duration")
	}
}
