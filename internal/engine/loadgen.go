package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pathquery/internal/telemetry"
)

// Closed-loop load driver: a fixed number of client goroutines issue
// requests back-to-back (each client waits for its response before
// sending the next — closed loop), drawing queries from a weighted-free
// uniform mix with an optional mutation every n-th request. Used by
// `pqbench -serve` and by BenchmarkEngineServe/closedloop, which records
// throughput and tail latency into the BENCH_<date>.json snapshots.

// LoadConfig configures one closed-loop run.
type LoadConfig struct {
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Duration is how long to drive load (default 1s).
	Duration time.Duration
	// RequestsPerClient, when > 0, replaces the Duration cutoff: every
	// client issues exactly this many requests and stops. With a fixed
	// Seed the whole run is then a pure function of the config — the
	// deterministic mode the replay determinism tests pin. (Writer lanes
	// stay time-bounded by Duration.)
	RequestsPerClient int
	// Queries is the query mix; each request draws one uniformly, or
	// proportionally to Weights when those are set.
	Queries []string
	// Weights are optional per-query draw weights parallel to Queries.
	// A zero weight means that query is never drawn.
	Weights []float64
	// Replay replaces the Queries/Weights read mix with draws from a
	// recorded workload (see ReplaySpec). Mutation knobs still apply;
	// BatchSize is ignored under replay.
	Replay *ReplaySpec
	// MutateEvery makes every n-th request of each client a mutation
	// (0: read-only load).
	MutateEvery int
	// MutateRate makes each request a mutation with this probability
	// (0..1) — the mutation-rate axis of the closed-loop maintenance
	// benchmark. Composes with MutateEvery; either may be zero.
	MutateRate float64
	// MutateEdges generates the edges of the i-th mutation; nil uses a
	// default that links fresh load-generated nodes into the graph.
	MutateEdges func(i int) []EdgeSpec
	// BatchSize > 1 issues SelectBatch requests of that many queries
	// instead of single Selects.
	BatchSize int
	// Writers adds that many dedicated mutator lanes: free-running
	// goroutines issuing back-to-back mutations for the whole run, on
	// top of the Clients mix — the group-commit saturation axis
	// (`pqbench -serve-writers`).
	Writers int
	// Seed makes the query mix deterministic per client.
	Seed int64
}

// LoadReport summarizes a closed-loop run.
type LoadReport struct {
	Clients   int
	Requests  uint64 // selects + batches + mutations completed
	Selects   uint64
	Mutations uint64
	Duration  time.Duration

	// Throughput is completed requests per second.
	Throughput float64
	// Latency percentiles over all requests, estimated from the merged
	// class histograms (within one √2 bucket of exact).
	P50, P90, P99, Max time.Duration

	// SelectLatency and MutateLatency are the per-class latency
	// distributions the percentiles above merge — pqbench reports the
	// classes separately, since a mutation (WAL fsync included) and a
	// cached select live orders of magnitude apart.
	SelectLatency, MutateLatency telemetry.HistogramSnapshot

	// ClassLatency is the per-workload-class latency split of a replay
	// run (nil outside replay mode): one distribution per AQ class drawn,
	// keyed by ReplayEntry.Class. Per-class issue counts are the
	// snapshots' Count()s — with a fixed Seed and RequestsPerClient they
	// are identical across runs.
	ClassLatency map[string]telemetry.HistogramSnapshot

	// CachedLatency and UncachedLatency split SelectLatency by whether
	// the answer came from the result cache (retained or regrown entries
	// included) or a fresh product pass — the per-outcome view of the
	// maintenance closed loop. Single-select requests only; batch
	// requests mix outcomes per member and stay in SelectLatency.
	CachedLatency, UncachedLatency telemetry.HistogramSnapshot
	// Retained, Regrown, Dropped are the engine's result-cache
	// maintenance outcome deltas over the run.
	Retained, Regrown, Dropped uint64
	// Batches and BatchedMutations are the group-commit deltas over the
	// run: BatchedMutations/Batches is the mean coalescing factor.
	Batches, BatchedMutations uint64
}

// String renders the report as a one-stanza summary.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"clients %d  requests %d (selects %d, mutations %d)  wall %v\n"+
			"throughput %.0f req/s   latency p50 %v  p90 %v  p99 %v  max %v\n"+
			"select  p50 %v  p99 %v   mutate  p50 %v  p99 %v\n"+
			"cached  p50 %v  p99 %v (%d)   uncached  p50 %v  p99 %v (%d)\n"+
			"maintenance  retained %d  regrown %d  dropped %d\n"+
			"group commit  batches %d  mutations carried %d  (mean %.1f/batch)",
		r.Clients, r.Requests, r.Selects, r.Mutations, r.Duration.Round(time.Millisecond),
		r.Throughput, r.P50, r.P90, r.P99, r.Max,
		r.SelectLatency.Quantile(0.50), r.SelectLatency.Quantile(0.99),
		r.MutateLatency.Quantile(0.50), r.MutateLatency.Quantile(0.99),
		r.CachedLatency.Quantile(0.50), r.CachedLatency.Quantile(0.99), r.CachedLatency.Count(),
		r.UncachedLatency.Quantile(0.50), r.UncachedLatency.Quantile(0.99), r.UncachedLatency.Count(),
		r.Retained, r.Regrown, r.Dropped,
		r.Batches, r.BatchedMutations, r.meanBatch())
}

func (r LoadReport) meanBatch() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.BatchedMutations) / float64(r.Batches)
}

// RunLoad drives e with a closed-loop workload and reports throughput and
// latency percentiles. It returns an error only for an unusable config
// (no queries, or a query that fails to parse — verified up front so the
// hot loop never hits parse errors).
func RunLoad(e *Engine, cfg LoadConfig) (LoadReport, error) {
	var mix *replayMix
	if cfg.Replay != nil {
		var err error
		if mix, err = buildReplayMix(e, cfg.Replay); err != nil {
			return LoadReport{}, err
		}
	} else if len(cfg.Queries) == 0 {
		return LoadReport{}, fmt.Errorf("engine: load config needs at least one query")
	}
	for _, src := range cfg.Queries {
		if _, err := e.plans.get(src); err != nil {
			return LoadReport{}, fmt.Errorf("engine: load query %q: %w", src, err)
		}
	}
	var qmix WeightedChooser
	if len(cfg.Weights) > 0 {
		if len(cfg.Weights) != len(cfg.Queries) {
			return LoadReport{}, fmt.Errorf("engine: %d weights for %d queries", len(cfg.Weights), len(cfg.Queries))
		}
		var err error
		if qmix, err = NewWeightedChooser(cfg.Weights); err != nil {
			return LoadReport{}, fmt.Errorf("engine: load weights: %w", err)
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.MutateEdges == nil {
		cfg.MutateEdges = func(i int) []EdgeSpec {
			// Attach a fresh node somewhere deterministic so every
			// mutation really changes the graph (and the epoch).
			return []EdgeSpec{{
				From:  fmt.Sprintf("loadgen-%d", i),
				Label: "loadgen",
				To:    fmt.Sprintf("loadgen-%d", i+1),
			}}
		}
	}

	type clientStats struct {
		selects   uint64
		mutations uint64
	}
	stats := make([]clientStats, cfg.Clients+cfg.Writers)
	// Latencies go into two shared lock-free histograms (one per request
	// class) instead of per-client slices: memory is a fixed few hundred
	// bytes regardless of how many million requests a long run completes,
	// where the old per-request slice grew without bound.
	var selectLat, mutateLat telemetry.Histogram
	var cachedLat, uncachedLat telemetry.Histogram
	var mutSeq sync.Mutex
	mutI := 0
	nextMutation := func() []EdgeSpec {
		mutSeq.Lock()
		i := mutI
		mutI++
		mutSeq.Unlock()
		return cfg.MutateEdges(i)
	}

	before := e.Stats()
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			st := &stats[c]
			pickQuery := func() string {
				if len(cfg.Weights) > 0 {
					return cfg.Queries[qmix.Choose(rng.Float64())]
				}
				return cfg.Queries[rng.Intn(len(cfg.Queries))]
			}
			for n := 1; ; n++ {
				if cfg.RequestsPerClient > 0 {
					if n > cfg.RequestsPerClient {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				t0 := time.Now()
				mutate := cfg.MutateEvery > 0 && n%cfg.MutateEvery == 0
				if !mutate && cfg.MutateRate > 0 && rng.Float64() < cfg.MutateRate {
					mutate = true
				}
				if mutate {
					if _, err := e.Mutate(nextMutation()); err != nil {
						panic(err) // a volatile load-driver engine cannot fail durably
					}
					st.mutations++
					mutateLat.Observe(time.Since(t0))
				} else if mix != nil {
					re := &mix.entries[mix.chooser.Choose(rng.Float64())]
					a, err := e.Evaluate(context.Background(), Request{
						Query: re.Expr, Semantics: re.Semantics, From: re.From,
					})
					if err != nil {
						panic(err) // entries were verified by buildReplayMix
					}
					st.selects++
					d := time.Since(t0)
					selectLat.Observe(d)
					mix.hists[re.Class].Observe(d)
					if a.Cached {
						cachedLat.Observe(d)
					} else {
						uncachedLat.Observe(d)
					}
				} else if cfg.BatchSize > 1 {
					batch := make([]string, cfg.BatchSize)
					for i := range batch {
						batch[i] = pickQuery()
					}
					if _, err := e.SelectBatch(batch); err != nil {
						panic(err) // queries were verified above
					}
					st.selects++
					selectLat.Observe(time.Since(t0))
				} else {
					r, err := e.Select(pickQuery())
					if err != nil {
						panic(err)
					}
					st.selects++
					d := time.Since(t0)
					selectLat.Observe(d)
					if r.Cached {
						cachedLat.Observe(d)
					} else {
						uncachedLat.Observe(d)
					}
				}
			}
		}(c)
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[cfg.Clients+w]
			for {
				if time.Now().After(deadline) {
					return
				}
				t0 := time.Now()
				if _, err := e.Mutate(nextMutation()); err != nil {
					panic(err) // the loadgen engine cannot fail durably
				}
				st.mutations++
				mutateLat.Observe(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	report := LoadReport{Clients: cfg.Clients, Duration: wall}
	for i := range stats {
		report.Selects += stats[i].selects
		report.Mutations += stats[i].mutations
	}
	report.SelectLatency = selectLat.Snapshot()
	report.MutateLatency = mutateLat.Snapshot()
	if mix != nil {
		report.ClassLatency = mix.snapshot()
	}
	report.CachedLatency = cachedLat.Snapshot()
	report.UncachedLatency = uncachedLat.Snapshot()
	e.FlushMaintenance() // settle async maintenance so the counter deltas are complete
	after := e.Stats()
	report.Retained = after.ResultRetained - before.ResultRetained
	report.Regrown = after.ResultRegrown - before.ResultRegrown
	report.Dropped = after.ResultDropped - before.ResultDropped
	report.Batches = after.WalBatches - before.WalBatches
	report.BatchedMutations = after.WalBatchedMutations - before.WalBatchedMutations
	all := report.SelectLatency
	all.Merge(&report.MutateLatency)
	report.Requests = all.Count()
	if wall > 0 {
		report.Throughput = float64(report.Requests) / wall.Seconds()
	}
	report.P50 = all.Quantile(0.50)
	report.P90 = all.Quantile(0.90)
	report.P99 = all.Quantile(0.99)
	report.Max = time.Duration(all.Max)
	return report, nil
}
