package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pathquery/internal/telemetry"
)

// Closed-loop load driver: a fixed number of client goroutines issue
// requests back-to-back (each client waits for its response before
// sending the next — closed loop), drawing queries from a weighted-free
// uniform mix with an optional mutation every n-th request. Used by
// `pqbench -serve` and by BenchmarkEngineServe/closedloop, which records
// throughput and tail latency into the BENCH_<date>.json snapshots.

// LoadConfig configures one closed-loop run.
type LoadConfig struct {
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Duration is how long to drive load (default 1s).
	Duration time.Duration
	// Queries is the query mix; each request draws one uniformly.
	Queries []string
	// MutateEvery makes every n-th request of each client a mutation
	// (0: read-only load).
	MutateEvery int
	// MutateEdges generates the edges of the i-th mutation; nil uses a
	// default that links fresh load-generated nodes into the graph.
	MutateEdges func(i int) []EdgeSpec
	// BatchSize > 1 issues SelectBatch requests of that many queries
	// instead of single Selects.
	BatchSize int
	// Seed makes the query mix deterministic per client.
	Seed int64
}

// LoadReport summarizes a closed-loop run.
type LoadReport struct {
	Clients   int
	Requests  uint64 // selects + batches + mutations completed
	Selects   uint64
	Mutations uint64
	Duration  time.Duration

	// Throughput is completed requests per second.
	Throughput float64
	// Latency percentiles over all requests, estimated from the merged
	// class histograms (within one √2 bucket of exact).
	P50, P90, P99, Max time.Duration

	// SelectLatency and MutateLatency are the per-class latency
	// distributions the percentiles above merge — pqbench reports the
	// classes separately, since a mutation (WAL fsync included) and a
	// cached select live orders of magnitude apart.
	SelectLatency, MutateLatency telemetry.HistogramSnapshot
}

// String renders the report as a one-stanza summary.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"clients %d  requests %d (selects %d, mutations %d)  wall %v\n"+
			"throughput %.0f req/s   latency p50 %v  p90 %v  p99 %v  max %v\n"+
			"select  p50 %v  p99 %v   mutate  p50 %v  p99 %v",
		r.Clients, r.Requests, r.Selects, r.Mutations, r.Duration.Round(time.Millisecond),
		r.Throughput, r.P50, r.P90, r.P99, r.Max,
		r.SelectLatency.Quantile(0.50), r.SelectLatency.Quantile(0.99),
		r.MutateLatency.Quantile(0.50), r.MutateLatency.Quantile(0.99))
}

// RunLoad drives e with a closed-loop workload and reports throughput and
// latency percentiles. It returns an error only for an unusable config
// (no queries, or a query that fails to parse — verified up front so the
// hot loop never hits parse errors).
func RunLoad(e *Engine, cfg LoadConfig) (LoadReport, error) {
	if len(cfg.Queries) == 0 {
		return LoadReport{}, fmt.Errorf("engine: load config needs at least one query")
	}
	for _, src := range cfg.Queries {
		if _, err := e.plans.get(src); err != nil {
			return LoadReport{}, fmt.Errorf("engine: load query %q: %w", src, err)
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.MutateEdges == nil {
		cfg.MutateEdges = func(i int) []EdgeSpec {
			// Attach a fresh node somewhere deterministic so every
			// mutation really changes the graph (and the epoch).
			return []EdgeSpec{{
				From:  fmt.Sprintf("loadgen-%d", i),
				Label: "loadgen",
				To:    fmt.Sprintf("loadgen-%d", i+1),
			}}
		}
	}

	type clientStats struct {
		selects   uint64
		mutations uint64
	}
	stats := make([]clientStats, cfg.Clients)
	// Latencies go into two shared lock-free histograms (one per request
	// class) instead of per-client slices: memory is a fixed few hundred
	// bytes regardless of how many million requests a long run completes,
	// where the old per-request slice grew without bound.
	var selectLat, mutateLat telemetry.Histogram
	var mutSeq sync.Mutex
	mutI := 0
	nextMutation := func() []EdgeSpec {
		mutSeq.Lock()
		i := mutI
		mutI++
		mutSeq.Unlock()
		return cfg.MutateEdges(i)
	}

	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			st := &stats[c]
			for n := 1; ; n++ {
				if time.Now().After(deadline) {
					return
				}
				t0 := time.Now()
				if cfg.MutateEvery > 0 && n%cfg.MutateEvery == 0 {
					if _, err := e.Mutate(nextMutation()); err != nil {
						panic(err) // a volatile load-driver engine cannot fail durably
					}
					st.mutations++
					mutateLat.Observe(time.Since(t0))
				} else if cfg.BatchSize > 1 {
					batch := make([]string, cfg.BatchSize)
					for i := range batch {
						batch[i] = cfg.Queries[rng.Intn(len(cfg.Queries))]
					}
					if _, err := e.SelectBatch(batch); err != nil {
						panic(err) // queries were verified above
					}
					st.selects++
					selectLat.Observe(time.Since(t0))
				} else {
					if _, err := e.Select(cfg.Queries[rng.Intn(len(cfg.Queries))]); err != nil {
						panic(err)
					}
					st.selects++
					selectLat.Observe(time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	report := LoadReport{Clients: cfg.Clients, Duration: wall}
	for i := range stats {
		report.Selects += stats[i].selects
		report.Mutations += stats[i].mutations
	}
	report.SelectLatency = selectLat.Snapshot()
	report.MutateLatency = mutateLat.Snapshot()
	all := report.SelectLatency
	all.Merge(&report.MutateLatency)
	report.Requests = all.Count()
	if wall > 0 {
		report.Throughput = float64(report.Requests) / wall.Seconds()
	}
	report.P50 = all.Quantile(0.50)
	report.P90 = all.Quantile(0.90)
	report.P99 = all.Quantile(0.99)
	report.Max = time.Duration(all.Max)
	return report, nil
}
