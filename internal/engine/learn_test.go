package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathquery/internal/core"
	"pathquery/internal/graph"
)

// sampleFor resolves names on the engine's served epoch.
func sampleFor(t *testing.T, e *Engine, pos, neg []string) core.Sample {
	t.Helper()
	var s core.Sample
	for _, name := range pos {
		id, ok := e.Graph().NodeByName(name)
		if !ok {
			t.Fatalf("no node %q", name)
		}
		s.Pos = append(s.Pos, id)
	}
	for _, name := range neg {
		id, ok := e.Graph().NodeByName(name)
		if !ok {
			t.Fatalf("no node %q", name)
		}
		s.Neg = append(s.Neg, id)
	}
	return s
}

func TestEngineLearnInstallsAndServes(t *testing.T) {
	e := New(buildFixture(), Options{})
	// N1 has tram·cinema; N3 has tram·bus* — learn "what distinguishes N1
	// from N3/N5".
	lr, err := e.Learn(sampleFor(t, e, []string{"N1"}, []string{"N3", "N5"}), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Query == nil || lr.Source == "" || lr.Key == "" {
		t.Fatalf("incomplete result %+v", lr)
	}
	if lr.Epoch != e.Epoch() {
		t.Fatalf("learned on epoch %d, serving %d", lr.Epoch, e.Epoch())
	}
	sel := names(t, lr.Selection)
	found := false
	for _, n := range sel {
		if n == "N1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("learned query does not select positive N1: %v", sel)
	}
	// Learn→serve: the rendered source must parse back onto the installed
	// plan and hit the warmed result cache at the same epoch.
	res, err := e.Select(lr.Source)
	if err != nil {
		t.Fatalf("re-issuing learned query %q: %v", lr.Source, err)
	}
	if !res.Cached {
		t.Fatalf("select of learned query %q missed the warmed cache", lr.Source)
	}
	if res.Epoch != lr.Epoch || fmt.Sprint(names(t, res)) != fmt.Sprint(sel) {
		t.Fatalf("served %v@%d, learned %v@%d", names(t, res), res.Epoch, sel, lr.Epoch)
	}
	st := e.Stats()
	if st.Learns != 1 {
		t.Fatalf("Learns = %d", st.Learns)
	}
}

func TestEngineLearnAbstainAndErrors(t *testing.T) {
	e := New(buildFixture(), Options{})
	if _, err := e.Learn(core.Sample{}, core.Options{}); !errors.Is(err, core.ErrAbstain) {
		t.Fatalf("empty sample: %v", err)
	}
	if _, err := e.LearnNamed([]string{"nope"}, nil, core.Options{}); err == nil {
		t.Fatal("unknown node accepted")
	}
	// Out-of-range ids are an error from sample validation, not a panic in
	// the CSR scans.
	if _, err := e.Learn(core.Sample{Pos: []graph.NodeID{9999}}, core.Options{}); err == nil {
		t.Fatal("out-of-range positive accepted")
	}
	if _, err := e.Learn(core.Sample{
		Pos: []graph.NodeID{0},
		Neg: []graph.NodeID{-1},
	}, core.Options{}); err == nil {
		t.Fatal("negative id accepted")
	}
}

// TestEngineLearnConcurrentWithMutate is the Learn/Mutate race regression
// test: before the learner ran on pinned snapshots it read the mutable
// build-side adjacency, so running it against concurrent Mutate/Snapshot
// publications was a data race (caught by -race). Now each Learn pins one
// epoch; the mutations here add disconnected edges, so every epoch's
// learned query must stay equivalent to a single-threaded reference run.
func TestEngineLearnConcurrentWithMutate(t *testing.T) {
	e := New(buildFixture(), Options{})
	sample := sampleFor(t, e, []string{"N1"}, []string{"N3", "N5"})
	ref, err := core.LearnDetailedOn(e.Graph().Current(), sample, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() { // writer: keeps publishing fresh epochs until told to stop
		defer writerWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Mutate([]EdgeSpec{{
				From:  fmt.Sprintf("m%d", i),
				Label: "offside",
				To:    fmt.Sprintf("m%d'", i),
			}})
		}
	}()
	var workWg sync.WaitGroup
	errs := make(chan error, 3)
	for w := 0; w < 2; w++ { // learners racing the writer
		workWg.Add(1)
		go func() {
			defer workWg.Done()
			for i := 0; i < rounds; i++ {
				lr, err := e.Learn(sample, core.Options{})
				if err != nil {
					errs <- fmt.Errorf("learn: %w", err)
					return
				}
				if !lr.Query.EquivalentTo(ref.Query) {
					errs <- fmt.Errorf("epoch %d learned %v, reference %v",
						lr.Epoch, lr.Query, ref.Query)
					return
				}
			}
		}()
	}
	workWg.Add(1)
	go func() { // reader sharing the caches with the learners
		defer workWg.Done()
		for i := 0; i < 4*rounds; i++ {
			if _, err := e.Select("tram·cinema"); err != nil {
				errs <- err
				return
			}
		}
	}()
	workWg.Wait()
	close(stop)
	writerWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Quiesced cross-check on the final epoch.
	final, err := e.Learn(sample, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Query.EquivalentTo(ref.Query) {
		t.Fatalf("final learned %v, reference %v", final.Query, ref.Query)
	}
}

func TestHTTPLearnThenSelect(t *testing.T) {
	e := New(buildFixture(), Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	code, out := post("/learn", `{"pos":["N1"],"neg":["N3","N5"]}`)
	if code != http.StatusOK {
		t.Fatalf("/learn: status %d (%v)", code, out)
	}
	learned := out["query"].(string)
	if learned == "" || len(out["scps"].([]any)) == 0 {
		t.Fatalf("/learn: %v", out)
	}
	selection := out["selection"].(map[string]any)
	if selection["count"].(float64) < 1 {
		t.Fatalf("/learn selection empty: %v", out)
	}

	// The printed query serves immediately — and from the warmed cache.
	body, _ := json.Marshal(map[string]any{"query": learned})
	code, out = post("/select", string(body))
	if code != http.StatusOK {
		t.Fatalf("/select learned: status %d (%v)", code, out)
	}
	if out["cached"] != true {
		t.Fatalf("/select learned missed the cache: %v", out)
	}

	if code, out = post("/learn", `{"pos":[],"neg":["N1"]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("/learn abstain: status %d (%v)", code, out)
	}
	if code, out = post("/learn", `{"pos":["ghost"]}`); code != http.StatusBadRequest {
		t.Fatalf("/learn unknown node: status %d (%v)", code, out)
	}
}
