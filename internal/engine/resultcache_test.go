package engine

import (
	"sync"
	"testing"

	"pathquery/internal/graph"
)

// TestResultCacheBoundedUnderInFlightStorm is the regression test for the
// unbounded-growth bug: when every resident entry was in flight,
// evictLocked freed nothing and do inserted anyway, so a storm of distinct
// slow queries grew the map past cap without limit. The fix computes such
// requests uncached, keeping residency hard-bounded at cap.
func TestResultCacheBoundedUnderInFlightStorm(t *testing.T) {
	const cap, storm = 4, 24
	c := newResultCache(cap)
	release := make(chan struct{})
	started := make(chan struct{}, storm)
	results := make([][]graph.NodeID, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := resultKey{epoch: 1, from: graph.NodeID(i), plan: "p"}
			results[i], _ = c.do(key, func() []graph.NodeID {
				started <- struct{}{}
				<-release
				return []graph.NodeID{graph.NodeID(i)}
			})
		}(i)
	}
	// Every compute is running: all storm keys are distinct, so resident
	// in-flight entries plus refused (uncached) computes total storm.
	for i := 0; i < storm; i++ {
		<-started
	}
	c.mu.Lock()
	resident := len(c.entries)
	c.mu.Unlock()
	if resident > cap {
		t.Fatalf("cache grew to %d in-flight entries, cap %d", resident, cap)
	}
	close(release)
	wg.Wait()
	for i, nodes := range results {
		if len(nodes) != 1 || int(nodes[0]) != i {
			t.Fatalf("request %d got %v", i, nodes)
		}
	}
	// Bound holds after completion too.
	c.mu.Lock()
	resident = len(c.entries)
	c.mu.Unlock()
	if resident > cap {
		t.Fatalf("%d completed entries resident, cap %d", resident, cap)
	}
}
