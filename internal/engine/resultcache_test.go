package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// TestResultCacheBoundedUnderInFlightStorm is the regression test for the
// unbounded-growth bug: when every resident entry was in flight,
// evictLocked freed nothing and do inserted anyway, so a storm of distinct
// slow queries grew the map past cap without limit. The fix computes such
// requests uncached, keeping residency hard-bounded at cap.
func TestResultCacheBoundedUnderInFlightStorm(t *testing.T) {
	const cap, storm = 4, 24
	c := newResultCache(cap)
	release := make(chan struct{})
	started := make(chan struct{}, storm)
	results := make([][]graph.NodeID, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := resultKey{epoch: 1, from: graph.NodeID(i), plan: "p"}
			ans, _, _ := c.do(context.Background(), key, nil, func() (query.Answer, []uint64, error) {
				started <- struct{}{}
				<-release
				return query.Answer{Nodes: []graph.NodeID{graph.NodeID(i)}}, nil, nil
			})
			results[i] = ans.Nodes
		}(i)
	}
	// Every compute is running: all storm keys are distinct, so resident
	// in-flight entries plus refused (uncached) computes total storm.
	for i := 0; i < storm; i++ {
		<-started
	}
	c.mu.Lock()
	resident := len(c.entries)
	c.mu.Unlock()
	if resident > cap {
		t.Fatalf("cache grew to %d in-flight entries, cap %d", resident, cap)
	}
	close(release)
	wg.Wait()
	for i, nodes := range results {
		if len(nodes) != 1 || int(nodes[0]) != i {
			t.Fatalf("request %d got %v", i, nodes)
		}
	}
	// Bound holds after completion too.
	c.mu.Lock()
	resident = len(c.entries)
	c.mu.Unlock()
	if resident > cap {
		t.Fatalf("%d completed entries resident, cap %d", resident, cap)
	}
}

// TestResultCacheWaiterHonorsContext regresses the context-blind
// single-flight wait: a waiter with an expiring deadline sharing someone
// else's slow flight must return ctx.Err() promptly instead of inheriting
// the flight's runtime.
func TestResultCacheWaiterHonorsContext(t *testing.T) {
	c := newResultCache(8)
	key := resultKey{epoch: 1, plan: "slow"}
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.do(context.Background(), key, nil, func() (query.Answer, []uint64, error) {
			close(started)
			<-release
			return query.Answer{Count: 1}, nil, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.do(ctx, key, nil, func() (query.Answer, []uint64, error) {
		t.Error("waiter must share the in-flight computation, not start one")
		return query.Answer{}, nil, nil
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("waiter err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired waiter blocked for %v", elapsed)
	}

	close(release)
	// The original flight completes and serves later requests normally.
	ans, cached, err := c.do(context.Background(), key, nil, func() (query.Answer, []uint64, error) {
		return query.Answer{}, nil, nil
	})
	if err != nil || !cached || ans.Count != 1 {
		t.Fatalf("post-release hit: ans %+v cached %v err %v", ans, cached, err)
	}
}
