package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/alphabet"
	"pathquery/internal/query"
)

// cachedPlan is a compiled, interned query: the canonical DFA with its
// evaluation plan (query.Query.Plan — transition tables, reverse DFA,
// reachability sets, symbol filters) plus its language-level cache key and
// serving counters. Plans are immutable and shared by every request with
// an equivalent query; compilation happens once at intern time, so no
// request ever pays table construction.
type cachedPlan struct {
	q   *query.Query
	key string // canonical language key (query.CacheKey)
	// compileTime covers parse → determinize → minimize → plan tables for
	// parsed queries, and plan tables for learner-installed ones.
	compileTime time.Duration
	// hits counts requests served with this plan (across all its source
	// spellings).
	hits atomic.Uint64
}

// planEntry is one (possibly in-flight) compilation of a source string.
// done is closed when p/err are set; waiters on an open channel share the
// single compile instead of duplicating it.
type planEntry struct {
	done chan struct{}
	p    *cachedPlan
	err  error
}

// planCache interns query sources to compiled plans. Two maps give two
// levels of sharing: bySrc short-circuits repeated identical strings
// before any parsing, and byKey deduplicates syntactic variants ("a·b" vs
// "a.b", or any equivalent expression) onto one plan after the canonical
// DFA is built — so the result cache sees one key per query *language*.
// Compilation (parse → determinize → minimize → plan tables) runs outside
// the lock, single-flighted per source: a slow or pathological query never
// stalls cache hits for other queries.
type planCache struct {
	alpha *alphabet.Alphabet

	mu    sync.RWMutex
	bySrc map[string]*planEntry
	byKey map[string]*cachedPlan

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache(alpha *alphabet.Alphabet) *planCache {
	return &planCache{
		alpha: alpha,
		bySrc: make(map[string]*planEntry),
		byKey: make(map[string]*cachedPlan),
	}
}

// get returns the plan for src, compiling it at most once per distinct
// source string (parse errors are deterministic and cached too).
func (c *planCache) get(src string) (*cachedPlan, error) {
	c.mu.RLock()
	e := c.bySrc[src]
	c.mu.RUnlock()
	if e == nil {
		c.mu.Lock()
		if e = c.bySrc[src]; e == nil {
			e = &planEntry{done: make(chan struct{})}
			c.bySrc[src] = e
			c.mu.Unlock()
			c.compile(src, e)
			c.misses.Add(1)
			if e.p != nil {
				e.p.hits.Add(1)
			}
			return e.p, e.err
		}
		c.mu.Unlock()
	}
	<-e.done
	if e.err != nil {
		return nil, e.err
	}
	c.hits.Add(1)
	e.p.hits.Add(1)
	return e.p, nil
}

// compile fills e for src and releases its waiters. Runs without holding
// the cache lock (the alphabet is itself concurrency-safe); only the
// cheap canonical-key dedup step relocks. The compiled evaluation plan is
// built here, at intern time — requests only ever read it.
func (c *planCache) compile(src string, e *planEntry) {
	completed := false
	defer func() {
		if !completed {
			// Parse/compile panicked: unregister the source so the next
			// request retries it, and fail the waiters of this flight.
			c.mu.Lock()
			delete(c.bySrc, src)
			c.mu.Unlock()
			e.err = errCompilePanicked
		}
		close(e.done)
	}()
	start := time.Now()
	q, err := query.Parse(c.alpha, src)
	if err != nil {
		e.err = err
		completed = true
		return
	}
	q.Plan() // build the evaluation plan now, not on first request
	elapsed := time.Since(start)
	key := q.CacheKey()
	c.mu.Lock()
	p := c.byKey[key]
	if p == nil {
		p = &cachedPlan{q: q, key: key, compileTime: elapsed}
		c.byKey[key] = p
	}
	c.mu.Unlock()
	e.p = p
	completed = true
}

// install interns an already-compiled query — the learner's output — into
// the cache: deduplicated by canonical language key against every plan the
// parser ever produced, and registered under the query's rendered source
// string so clients re-issuing the printed expression hit bySrc without
// re-parsing. Returns the canonical plan (an equivalent plan that already
// existed wins, so the result cache keeps one key per language).
func (c *planCache) install(q *query.Query) *cachedPlan {
	start := time.Now()
	q.Plan() // compile at install time, as the parse path does
	elapsed := time.Since(start)
	key := q.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byKey[key]
	if p == nil {
		p = &cachedPlan{q: q, key: key, compileTime: elapsed}
		c.byKey[key] = p
	}
	// Register the canonical plan's own rendering (which may differ from
	// q's when an equivalent plan already existed): it is the string
	// LearnResult.Source reports, so re-issuing it must hit bySrc.
	if src := p.q.String(); c.bySrc[src] == nil {
		e := &planEntry{done: make(chan struct{}), p: p}
		close(e.done)
		c.bySrc[src] = e
	}
	return p
}

// errCompilePanicked is served to single-flight waiters whose compiling
// goroutine panicked; the panic itself propagates on that goroutine.
var errCompilePanicked = errPlan("query compilation failed; retry")

type errPlan string

func (e errPlan) Error() string { return string(e) }

// PlanInfo describes one cached plan — the /plans endpoint's row.
type PlanInfo struct {
	// Source is the canonical rendering of the plan's query.
	Source string `json:"source"`
	// Key is the canonical language key the plan is interned under.
	Key string `json:"key"`
	// States is the canonical DFA state count (the paper's query size).
	States int `json:"states"`
	// Layout is the evaluation layout chosen at compile time ("masked"
	// for ≤ 64 states, "packed" otherwise).
	Layout string `json:"layout"`
	// CompileNs is the one-time compilation cost in nanoseconds.
	CompileNs int64 `json:"compile_ns"`
	// Hits counts requests served with this plan.
	Hits uint64 `json:"hits"`
}

// list snapshots every cached plan, most-used first (ties by source).
func (c *planCache) list() []PlanInfo {
	c.mu.RLock()
	out := make([]PlanInfo, 0, len(c.byKey))
	for _, p := range c.byKey {
		out = append(out, PlanInfo{
			Source:    p.q.String(),
			Key:       p.key,
			States:    p.q.Size(),
			Layout:    p.q.Plan().Layout.String(),
			CompileNs: p.compileTime.Nanoseconds(),
			Hits:      p.hits.Load(),
		})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Source < out[j].Source
	})
	return out
}

func (c *planCache) fill(s *Stats) {
	s.PlanHits = c.hits.Load()
	s.PlanMisses = c.misses.Load()
	c.mu.RLock()
	s.Plans = len(c.byKey)
	for _, p := range c.byKey {
		s.PlanStates += p.q.Size()
		s.PlanCompileNs += p.compileTime.Nanoseconds()
	}
	c.mu.RUnlock()
}
