package engine

import (
	"sync"
	"sync/atomic"

	"pathquery/internal/alphabet"
	"pathquery/internal/query"
)

// plan is a compiled, interned query: the canonical DFA plus its
// language-level cache key. Plans are immutable and shared by every
// request with an equivalent query.
type plan struct {
	q   *query.Query
	key string // canonical language key (query.CacheKey)
}

// planEntry is one (possibly in-flight) compilation of a source string.
// done is closed when p/err are set; waiters on an open channel share the
// single compile instead of duplicating it.
type planEntry struct {
	done chan struct{}
	p    *plan
	err  error
}

// planCache interns query sources to plans. Two maps give two levels of
// sharing: bySrc short-circuits repeated identical strings before any
// parsing, and byKey deduplicates syntactic variants ("a·b" vs "a.b", or
// any equivalent expression) onto one plan after the canonical DFA is
// built — so the result cache sees one key per query *language*.
// Compilation (parse → determinize → minimize) runs outside the lock,
// single-flighted per source: a slow or pathological query never stalls
// cache hits for other queries.
type planCache struct {
	alpha *alphabet.Alphabet

	mu    sync.RWMutex
	bySrc map[string]*planEntry
	byKey map[string]*plan

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache(alpha *alphabet.Alphabet) *planCache {
	return &planCache{
		alpha: alpha,
		bySrc: make(map[string]*planEntry),
		byKey: make(map[string]*plan),
	}
}

// get returns the plan for src, compiling it at most once per distinct
// source string (parse errors are deterministic and cached too).
func (c *planCache) get(src string) (*plan, error) {
	c.mu.RLock()
	e := c.bySrc[src]
	c.mu.RUnlock()
	if e == nil {
		c.mu.Lock()
		if e = c.bySrc[src]; e == nil {
			e = &planEntry{done: make(chan struct{})}
			c.bySrc[src] = e
			c.mu.Unlock()
			c.compile(src, e)
			c.misses.Add(1)
			return e.p, e.err
		}
		c.mu.Unlock()
	}
	<-e.done
	if e.err != nil {
		return nil, e.err
	}
	c.hits.Add(1)
	return e.p, nil
}

// compile fills e for src and releases its waiters. Runs without holding
// the cache lock (the alphabet is itself concurrency-safe); only the
// cheap canonical-key dedup step relocks.
func (c *planCache) compile(src string, e *planEntry) {
	completed := false
	defer func() {
		if !completed {
			// Parse/compile panicked: unregister the source so the next
			// request retries it, and fail the waiters of this flight.
			c.mu.Lock()
			delete(c.bySrc, src)
			c.mu.Unlock()
			e.err = errCompilePanicked
		}
		close(e.done)
	}()
	q, err := query.Parse(c.alpha, src)
	if err != nil {
		e.err = err
		completed = true
		return
	}
	key := q.CacheKey()
	c.mu.Lock()
	p := c.byKey[key]
	if p == nil {
		p = &plan{q: q, key: key}
		c.byKey[key] = p
	}
	c.mu.Unlock()
	e.p = p
	completed = true
}

// install interns an already-compiled query — the learner's output — into
// the cache: deduplicated by canonical language key against every plan the
// parser ever produced, and registered under the query's rendered source
// string so clients re-issuing the printed expression hit bySrc without
// re-parsing. Returns the canonical plan (an equivalent plan that already
// existed wins, so the result cache keeps one key per language).
func (c *planCache) install(q *query.Query) *plan {
	key := q.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byKey[key]
	if p == nil {
		p = &plan{q: q, key: key}
		c.byKey[key] = p
	}
	// Register the canonical plan's own rendering (which may differ from
	// q's when an equivalent plan already existed): it is the string
	// LearnResult.Source reports, so re-issuing it must hit bySrc.
	if src := p.q.String(); c.bySrc[src] == nil {
		e := &planEntry{done: make(chan struct{}), p: p}
		close(e.done)
		c.bySrc[src] = e
	}
	return p
}

// errCompilePanicked is served to single-flight waiters whose compiling
// goroutine panicked; the panic itself propagates on that goroutine.
var errCompilePanicked = errPlan("query compilation failed; retry")

type errPlan string

func (e errPlan) Error() string { return string(e) }

func (c *planCache) fill(s *Stats) {
	s.PlanHits = c.hits.Load()
	s.PlanMisses = c.misses.Load()
	c.mu.RLock()
	s.Plans = len(c.byKey)
	c.mu.RUnlock()
}
