package engine

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzV1Query fuzzes the /v1/query request decoder and the evaluation
// argument validation behind it: malformed JSON, unknown fields, huge and
// negative limits, absurd maxLen values, bogus semantics and node names
// must all answer a well-formed JSON response with a sane status — never
// a panic, a hang, or a non-JSON body.
func FuzzV1Query(f *testing.F) {
	seeds := []string{
		`{"query":"tram·cinema"}`,
		`{"query":"tram·cinema","semantics":"witness","limit":2}`,
		`{"query":"(tram+bus)*·cinema","semantics":"count","maxLen":7}`,
		`{"query":"tram","semantics":"pairsFrom","from":"N1"}`,
		`{"query":"tram","semantics":"shortest","from":"N9"}`,
		`{"query":"tram","semantics":"fancy"}`,
		`{"query":"tram·("}`,
		`{"query":"tram","limit":-5}`,
		`{"query":"tram","limit":9223372036854775807}`,
		`{"query":"tram","semantics":"count","maxLen":9223372036854775807}`,
		`{"query":""}`,
		`{"quer":"tram"}`,
		`{"query":`,
		``,
		`[]`,
		`{"query":"tram","semantics":"count","maxLen":-3}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		// A fresh engine per input keeps the plan cache from accumulating
		// one compiled plan per fuzzed query string across the run.
		h := NewHandler(New(buildFixture(), Options{ResultCacheCap: 8}))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/query", strings.NewReader(body)))
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusUnprocessableEntity, http.StatusGatewayTimeout, 499:
		default:
			t.Fatalf("unexpected status %d for %q", rr.Code, body)
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("non-JSON response for %q: %s", body, rr.Body.String())
		}
		if rr.Code != http.StatusOK {
			var env errorEnvelope
			if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code == "" {
				t.Fatalf("error response for %q lacks the envelope: %s", body, rr.Body.String())
			}
		}
	})
}
