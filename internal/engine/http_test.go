package engine

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPHandler(t *testing.T) {
	e := New(buildFixture(), Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	code, out := post("/select", `{"query":"tram·cinema"}`)
	if code != http.StatusOK {
		t.Fatalf("/select: status %d (%v)", code, out)
	}
	if out["count"].(float64) != 1 || out["nodes"].([]any)[0] != "N1" {
		t.Fatalf("/select: %v", out)
	}
	epoch0 := out["epoch"].(float64)

	if code, out = post("/select", `{"query":"tram·("}`); code != http.StatusBadRequest {
		t.Fatalf("/select bad query: status %d (%v)", code, out)
	}
	if code, out = post("/select", `{"quer":"tram"}`); code != http.StatusBadRequest {
		t.Fatalf("/select unknown field: status %d (%v)", code, out)
	}

	code, out = post("/selectPairs", `{"query":"tram·cinema","from":"N1"}`)
	if code != http.StatusOK || out["nodes"].([]any)[0] != "C1" {
		t.Fatalf("/selectPairs: status %d %v", code, out)
	}

	code, out = post("/batch", `{"queries":["tram","bus"],"limit":1}`)
	if code != http.StatusOK || len(out["results"].([]any)) != 2 {
		t.Fatalf("/batch: status %d %v", code, out)
	}

	code, out = post("/mutate", `{"edges":[{"from":"N9","label":"tram","to":"N4"}]}`)
	if code != http.StatusOK {
		t.Fatalf("/mutate: status %d %v", code, out)
	}
	if got := out["epoch"].(float64); got != epoch0+1 {
		t.Fatalf("/mutate: epoch %v, want %v", got, epoch0+1)
	}
	if code, out = post("/mutate", `{"edges":[{"from":"N9","to":"N4"}]}`); code != http.StatusBadRequest {
		t.Fatalf("/mutate missing label: status %d %v", code, out)
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != uint64(epoch0)+1 || st.Mutations != 1 || st.Queries == 0 {
		t.Fatalf("/stats: %+v", st)
	}
	if st.Plans == 0 || st.PlanStates == 0 || st.PlanCompileNs <= 0 {
		t.Fatalf("/stats plan aggregates: %+v", st)
	}

	resp, err = http.Get(srv.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plans struct {
		Plans []PlanInfo `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	if len(plans.Plans) != st.Plans {
		t.Fatalf("/plans listed %d plans, /stats says %d", len(plans.Plans), st.Plans)
	}
	// "tram·cinema" was served twice (select + selectPairs) and must lead
	// the hit-ordered listing with its compile metadata filled in.
	top := plans.Plans[0]
	if top.Source != "tram·cinema" || top.Hits < 2 {
		t.Fatalf("/plans top entry: %+v", top)
	}
	if top.States == 0 || top.Key == "" || top.CompileNs <= 0 || top.Layout != "masked" {
		t.Fatalf("/plans metadata: %+v", top)
	}
}

func TestRunLoadSmoke(t *testing.T) {
	e := New(buildFixture(), Options{})
	report, err := RunLoad(e, LoadConfig{
		Clients:     4,
		Duration:    50 * 1e6, // 50ms
		Queries:     []string{"tram·cinema", "bus·cinema"},
		MutateEvery: 10,
		BatchSize:   0,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.Throughput <= 0 {
		t.Fatalf("empty load report: %+v", report)
	}
	if report.Mutations == 0 {
		t.Errorf("MutateEvery produced no mutations: %+v", report)
	}
	if _, err := RunLoad(e, LoadConfig{Queries: []string{"("}}); err == nil {
		t.Error("bad load query not rejected")
	}
}
