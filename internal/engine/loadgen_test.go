package engine

import (
	"testing"
	"time"

	"pathquery/internal/telemetry"
)

// TestRunLoadHistogramPercentiles is the RunLoad percentile regression:
// the report's percentiles must be exactly the quantiles of the merged
// per-class histograms it carries (the old code sorted an unbounded
// per-request slice; the histograms guarantee the estimate is within
// one √2 bucket of that exact value), and the class snapshots must
// account for every request.
func TestRunLoadHistogramPercentiles(t *testing.T) {
	e := New(buildFixture(), Options{})
	report, err := RunLoad(e, LoadConfig{
		Clients:     4,
		Duration:    100 * time.Millisecond,
		Queries:     []string{"tram·cinema", "bus·cinema"},
		MutateEvery: 10,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.Selects == 0 || report.Mutations == 0 {
		t.Fatalf("degenerate run: %+v", report)
	}
	if got := report.SelectLatency.Count(); got != report.Selects {
		t.Errorf("select histogram count %d, want %d", got, report.Selects)
	}
	if got := report.MutateLatency.Count(); got != report.Mutations {
		t.Errorf("mutate histogram count %d, want %d", got, report.Mutations)
	}
	if report.Requests != report.Selects+report.Mutations {
		t.Errorf("requests %d != selects %d + mutations %d",
			report.Requests, report.Selects, report.Mutations)
	}

	merged := report.SelectLatency
	merged.Merge(&report.MutateLatency)
	for _, c := range []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"p50", report.P50, merged.Quantile(0.50)},
		{"p90", report.P90, merged.Quantile(0.90)},
		{"p99", report.P99, merged.Quantile(0.99)},
		{"max", report.Max, time.Duration(merged.Max)},
	} {
		if c.got != c.want {
			t.Errorf("%s: report %v, merged histogram %v", c.name, c.got, c.want)
		}
	}
	if report.P50 > report.P90 || report.P90 > report.P99 || report.P99 > report.Max {
		t.Errorf("non-monotone percentiles: %v %v %v %v",
			report.P50, report.P90, report.P99, report.Max)
	}
	// The within-one-bucket accuracy contract, spot-checked end to end:
	// a percentile estimate can never land more than one bucket from an
	// actual observation's bucket range.
	if telemetry.BucketOf(report.Max) > telemetry.NumBuckets {
		t.Errorf("max %v outside histogram range", report.Max)
	}
}
