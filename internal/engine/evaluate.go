package engine

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/telemetry"
	"pathquery/internal/words"
)

// maxCountLen caps the count-semantics length bound: each length costs one
// backward relaxation over the product space, so an uncapped wire value
// would let a single request buy unbounded work.
const maxCountLen = 4096

// maxWitnessPaths caps (and defaults) the witness paths computed per
// request: each path costs a parent-chain BFS over the product space, so
// "no limit" on a selective query over a large graph would likewise buy
// unbounded work. The normalized limit is part of the cache key, and
// normalizing before the int32 narrowing there keeps distinct huge wire
// values from aliasing one entry.
const maxWitnessPaths = 4096

// Request is one evaluation request on the unified API — the body of
// POST /v1/query and the argument of Engine.Evaluate. Query is the only
// required field; Semantics defaults to "nodes".
type Request struct {
	// Query is the regular expression to evaluate.
	Query string `json:"query"`
	// Semantics selects the result shape: "nodes" (default), "pairsFrom",
	// "witness", "count" or "shortest".
	Semantics string `json:"semantics,omitempty"`
	// From names the anchor node of binary semantics: required for
	// pairsFrom, optional for shortest (which is per-node without it),
	// rejected elsewhere.
	From string `json:"from,omitempty"`
	// Limit bounds the result rows: for witness/shortest it bounds the
	// paths computed (and therefore the work; omitted, non-positive, or
	// over-cap values are normalized to the per-request cap of 4096
	// paths); for nodes/pairsFrom/count it truncates the rendered rows,
	// never Count.
	Limit int `json:"limit,omitempty"`
	// MaxLen bounds the accepting path lengths counted under count
	// semantics (default 2·|Q|+1, capped at 4096).
	MaxLen int `json:"maxLen,omitempty"`
}

// Answer is the result of one evaluation, pinned to the epoch it was
// evaluated (or cached) on. Exactly one of Nodes, Paths, Counts is
// populated, per the request's semantics; Count is always the total
// number of matches even when Limit truncated the rows. Slices are shared
// with the result cache and must not be modified.
type Answer struct {
	// Epoch is the snapshot the answer is valid for.
	Epoch uint64
	// Semantics is the result shape served.
	Semantics query.Semantics
	// Count is the total number of matches (selected nodes, selected
	// pairs, or nodes with a nonzero count).
	Count int
	// Cached reports whether the answer came from the result cache (or an
	// in-flight computation shared via single-flight) rather than a fresh
	// evaluation pass.
	Cached bool
	// Nodes holds the selection under nodes/pairsFrom semantics.
	Nodes []graph.NodeID
	// Paths holds the reconstructed paths under witness/shortest
	// semantics, one per selected node (or pair target), up to Limit.
	Paths []graph.PathWitness
	// Counts holds the per-node accepting-length counts (count semantics;
	// nodes with a zero count are omitted).
	Counts []query.NodeCount

	snap *graph.Snapshot
}

// Names resolves Nodes to names, as of the answer's epoch.
func (a Answer) Names() []string {
	out := make([]string, len(a.Nodes))
	for i, v := range a.Nodes {
		out[i] = a.snap.NodeName(v)
	}
	return out
}

// NodeName resolves one node id against the answer's epoch.
func (a Answer) NodeName(v graph.NodeID) string { return a.snap.NodeName(v) }

// WordString renders w over the engine's alphabet.
func (a Answer) WordString(w words.Word) string {
	return words.String(w, a.snap.Alphabet())
}

// APIError is a request error with a stable machine-readable code — the
// "error.code" of the /v1/query wire protocol — and the HTTP status the
// wire layer maps it to.
type APIError struct {
	Code    string // stable identifier: "parse_error", "unknown_node", ...
	Status  int    // HTTP status for the wire layer
	Message string
}

func (e *APIError) Error() string { return e.Message }

func badRequest(code, format string, args ...any) *APIError {
	return &APIError{Code: code, Status: http.StatusBadRequest, Message: fmt.Sprintf(format, args...)}
}

// Evaluate runs one evaluation against the currently served epoch: the
// snapshot is pinned with one atomic load, the query is interned through
// the plan cache, and the answer flows through the single-flight result
// cache keyed by (epoch, semantics, args, plan). ctx cancels the
// underlying product traversal — a canceled or deadline-exceeded request
// returns ctx.Err() promptly and caches nothing. This is the single
// evaluation entry point; Select, SelectPairsFrom and SelectBatch are
// deprecated shims over it.
func (e *Engine) Evaluate(ctx context.Context, req Request) (Answer, error) {
	start := time.Now()
	sem, err := query.ParseSemantics(req.Semantics)
	if err != nil {
		return Answer{}, badRequest("unknown_semantics", "%v", err)
	}
	tr := telemetry.TraceFrom(ctx)
	endCompile := tr.StartSpan("compile")
	plan, err := e.plans.get(req.Query)
	endCompile()
	if err != nil {
		return Answer{}, badRequest("parse_error", "%v", err)
	}
	snap := e.g.Current()
	qreq, err := e.buildReq(snap, plan, sem, req)
	if err != nil {
		return Answer{}, err
	}
	e.queries.Add(1)
	ans, err := e.evaluateOn(ctx, snap, plan, qreq)
	// Evaluation latency is observed per requested semantics, evaluation
	// errors (cancellations, deadlines) included — a timing-out class
	// should show in its histogram, not vanish from it. Wire-level
	// rejects above never reach the evaluator and are not observed.
	e.evalHist[sem].Observe(time.Since(start))
	if err != nil {
		return Answer{}, err
	}
	// The answer reports the semantics the client asked for, even where
	// buildReq normalized it onto a shared computation (shortest→witness).
	ans.Semantics = sem
	return ans, nil
}

// buildReq validates the wire-level arguments against the pinned snapshot
// and normalizes them into the canonical snapshot-level request the result
// cache is keyed by.
func (e *Engine) buildReq(snap *graph.Snapshot, p *cachedPlan, sem query.Semantics, req Request) (query.Req, error) {
	qreq := query.Req{Semantics: sem}
	switch sem {
	case query.SemanticsPairsFrom, query.SemanticsShortest:
		if req.From == "" {
			if sem == query.SemanticsPairsFrom {
				return query.Req{}, badRequest("missing_from", "engine: pairsFrom semantics requires a from node")
			}
		} else {
			e.mu.RLock()
			u, ok := e.g.NodeByName(req.From)
			e.mu.RUnlock()
			if !ok || int(u) >= snap.NumNodes() {
				return query.Req{}, &APIError{
					Code:    "unknown_node",
					Status:  http.StatusNotFound,
					Message: fmt.Sprintf("engine: no node %q in epoch %d", req.From, snap.Epoch()),
				}
			}
			qreq.From, qreq.HasFrom = u, true
		}
	default:
		if req.From != "" {
			return query.Req{}, badRequest("unexpected_from", "engine: %v semantics takes no from node", sem)
		}
	}
	switch sem {
	case query.SemanticsWitness, query.SemanticsShortest:
		// Limit bounds the work here, so it is part of the cache key.
		// Absent, non-positive and over-cap values all normalize to the
		// cap: the engine never computes more than maxWitnessPaths paths
		// per request, and the key narrowing to int32 cannot alias.
		qreq.Limit = req.Limit
		if qreq.Limit <= 0 || qreq.Limit > maxWitnessPaths {
			qreq.Limit = maxWitnessPaths
		}
	case query.SemanticsCount:
		maxLen := req.MaxLen
		if maxLen <= 0 {
			// The server-chosen default is clamped, never rejected: only a
			// client-supplied over-cap value is the client's error.
			maxLen = min(p.q.DefaultMaxLen(), maxCountLen)
		} else if maxLen > maxCountLen {
			return query.Req{}, badRequest("max_len_too_large", "engine: maxLen %d exceeds the cap %d", maxLen, maxCountLen)
		}
		qreq.MaxLen = maxLen
	}
	if qreq.Semantics == query.SemanticsShortest && !qreq.HasFrom {
		// Shortest without an anchor is witness by definition (the witness
		// BFS returns the canonical-minimal, i.e. shortest, path), so the
		// two share one computation and one cache entry; Evaluate restores
		// the requested semantics on the answer.
		qreq.Semantics = query.SemanticsWitness
	}
	return qreq, nil
}

// evaluateRaw answers one evaluation against a pinned snapshot through
// the single-flight result cache, returning the cache's answer without
// re-wrapping it — the shared core under evaluateOn and the legacy-shape
// shims. The returned answer is cache-owned and immutable.
func (e *Engine) evaluateRaw(ctx context.Context, snap *graph.Snapshot, p *cachedPlan, qreq query.Req) (*query.Answer, bool, error) {
	key := resultKey{
		epoch:  snap.Epoch(),
		sem:    qreq.Semantics,
		from:   qreq.From,
		limit:  int32(qreq.Limit),
		maxLen: int32(qreq.MaxLen),
		plan:   p.key,
	}
	if !qreq.HasFrom {
		key.from = -1
	}
	// TraceFrom on an untraced context is one nil map-free Value lookup
	// and the nil-trace span ends are no-ops, so the cached-hit hot path
	// (Select → selectNodesOn, context.Background()) pays no timing.
	tr := telemetry.TraceFrom(ctx)
	endLookup := tr.StartSpan("cache_lookup")
	if ans, ok := e.results.lookup(key); ok {
		endLookup()
		return ans, true, nil
	}
	endLookup()
	defer tr.StartSpan("traverse")()
	return e.results.do(ctx, key, p.q, func() (query.Answer, []uint64, error) {
		// The state-capturing variant: for maintainable (semantics,
		// layout) pairs it also returns the product fixpoint, which the
		// cache keeps so a later publish can retain or regrow this entry
		// instead of dropping it (maintain.go).
		return p.q.EvaluateReqState(ctx, snap, qreq)
	})
}

// evaluateOn answers one evaluation against a pinned snapshot, through the
// single-flight result cache.
func (e *Engine) evaluateOn(ctx context.Context, snap *graph.Snapshot, p *cachedPlan, qreq query.Req) (Answer, error) {
	ans, cached, err := e.evaluateRaw(ctx, snap, p, qreq)
	if err != nil {
		return Answer{}, err
	}
	return Answer{
		Epoch:     snap.Epoch(),
		Semantics: ans.Semantics,
		Count:     ans.Count,
		Cached:    cached,
		Nodes:     ans.Nodes,
		Paths:     ans.Paths,
		Counts:    ans.Counts,
		snap:      snap,
	}, nil
}

// selectNodesOn is the hot serving path for the default semantics in the
// legacy Result shape: the canonical zero-argument query.Req needs no
// validation, and the answer converts straight to a Result without the
// intermediate Answer.
func (e *Engine) selectNodesOn(snap *graph.Snapshot, p *cachedPlan) (Result, error) {
	ans, cached, err := e.evaluateRaw(context.Background(), snap, p, query.Req{Semantics: query.SemanticsNodes})
	if err != nil {
		return Result{}, err
	}
	return Result{Epoch: snap.Epoch(), Nodes: ans.Nodes, Cached: cached, snap: snap}, nil
}

// EvaluateBatch evaluates every request against one pinned snapshot, so
// all answers share an epoch (returned alongside them, fixing the
// per-result epoch churn of the old /batch assembly). Plans are compiled
// and arguments validated up front — the whole batch fails on the first
// bad request — then cache misses fan out over workers bounded by
// GOMAXPROCS, with duplicate requests inside the batch collapsing into one
// evaluation via the single-flight result cache.
func (e *Engine) EvaluateBatch(ctx context.Context, reqs []Request) (uint64, []Answer, error) {
	plans := make([]*cachedPlan, len(reqs))
	qreqs := make([]query.Req, len(reqs))
	sems := make([]query.Semantics, len(reqs))
	snap := e.g.Current()
	for i, req := range reqs {
		sem, err := query.ParseSemantics(req.Semantics)
		if err != nil {
			return 0, nil, badRequest("unknown_semantics", "engine: batch request %d: %v", i, err)
		}
		p, err := e.plans.get(req.Query)
		if err != nil {
			return 0, nil, badRequest("parse_error", "engine: batch request %d: %v", i, err)
		}
		qr, err := e.buildReq(snap, p, sem, req)
		if err != nil {
			return 0, nil, prefixBatchIndex(err, i)
		}
		plans[i], qreqs[i], sems[i] = p, qr, sem
	}
	e.batches.Add(1)
	e.queries.Add(uint64(len(reqs)))

	answers := make([]Answer, len(reqs))
	errs := make([]error, len(reqs))
	evalOne := func(i int) {
		start := time.Now()
		answers[i], errs[i] = e.evaluateOn(ctx, snap, plans[i], qreqs[i])
		e.evalHist[sems[i]].Observe(time.Since(start))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			evalOne(i)
		}
	} else {
		// A fixed worker pool pulling indexes off an atomic counter: the
		// goroutine count is bounded by GOMAXPROCS no matter how large the
		// batch is, so one huge /v1/batch body cannot buy a goroutine (and
		// stack) per request.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(reqs) {
						return
					}
					evalOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	for i := range answers {
		answers[i].Semantics = sems[i]
	}
	return snap.Epoch(), answers, nil
}

// prefixBatchIndex stamps the failing request's index into an APIError's
// message so a batch client can tell which member was rejected.
func prefixBatchIndex(err error, i int) error {
	if ae, ok := err.(*APIError); ok {
		return &APIError{
			Code:    ae.Code,
			Status:  ae.Status,
			Message: fmt.Sprintf("engine: batch request %d: %s", i, ae.Message),
		}
	}
	return fmt.Errorf("engine: batch request %d: %w", i, err)
}
