package engine

import (
	"sync"
	"time"

	"pathquery/internal/graph"
	"pathquery/internal/query"
	"pathquery/internal/telemetry"
)

// Publish-time result-cache maintenance: instead of pruning every cached
// answer when a mutation publishes a new epoch, each completed entry is
// classified against the epoch delta (graph.DeltaSince) into one of three
// outcomes:
//
//   - retain — the delta's symbol mask does not intersect the plan's
//     alphabet mask (one AND), so no added edge can lie on any accepting
//     run: the entry is re-keyed to the new epoch untouched and the
//     ~150ns cached-hit path survives the write. The ε caveat: a plan
//     accepting ε selects every node under monadic semantics, so node
//     growth alone grows the answer — such entries are not retained
//     unless anchored (from ≥ 0, where new nodes cannot equal the
//     anchor... they can only be selected through new edges, which the
//     disjointness test already covers).
//   - regrow — nodes or anchored pairsFrom semantics whose entry carries
//     the product fixpoint masks: the worklist propagation is re-entered
//     from the delta edges alone against the cached fixpoint, under a
//     per-publish budget of edge relaxations shared by all regrown
//     entries. The result is bit-for-bit the from-scratch fixpoint.
//   - drop — everything else: witness/count/shortest (minimality and
//     counts are not monotone under edge inserts), packed-layout plans,
//     entries staler than the delta chain reaches, and regrows whose
//     cost would exceed the remaining budget. This is exactly the old
//     prune behavior.
//
// Maintenance runs asynchronously: every publication hands its snapshot
// to a background maintainer goroutine through a one-slot, max-epoch
// coalescing mailbox (maintState), so classification and regrowth are
// off the publish path entirely — the mutator returns as soon as the
// epoch is swapped in. Correctness does not depend on the maintainer
// keeping up: an entry the maintainer has not reached yet simply misses
// at the new epoch and is computed from scratch. Coalescing is sound
// because maintain classifies every entry against DeltaSince(entry
// epoch → newest epoch), so maintaining only the newest pending
// snapshot subsumes the skipped intermediates. Engine.maintMu still
// serializes the maintainer against post-Close synchronous maintenance,
// so two classification passes never interleave.

// defaultRegrowBudget is the per-publish edge-relaxation budget when
// Options.RegrowBudget is zero. A relaxation is a few nanoseconds, so
// the worst-case maintenance cost per publish stays in the low
// milliseconds.
const defaultRegrowBudget = 1 << 20

// closedDone is the pre-closed completion channel regrown entries are
// born with: they are complete by construction and must never be
// mistaken for in-flight.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// maintState is the maintainer goroutine's mailbox and progress ledger.
// pending is a one-slot queue holding the newest unmaintained snapshot
// (publishers overwrite it with any later epoch — see the coalescing
// argument above); doneEpoch is the highest epoch whose maintenance has
// completed. All fields are guarded by mu.
type maintState struct {
	mu       sync.Mutex
	workCond *sync.Cond // pending set, or closed
	doneCond *sync.Cond // doneEpoch advanced, or maintainer stopped
	pending  *graph.Snapshot
	// doneEpoch starts at the engine's first published epoch (which has
	// no delta to maintain against) so FlushMaintenance on an unmutated
	// engine returns immediately.
	doneEpoch uint64
	closed    bool // Close called: drain pending, then stop
	stopped   bool // maintainer has drained and exited its loop
	exited    chan struct{}
}

// maxMaintainLag bounds how many epochs the maintainer may trail the
// published graph before the publisher pitches in and maintains the
// pending snapshot on its own goroutine. Unbounded lag is correct
// (unmaintained entries just miss) but lets a starved maintainer — on a
// loaded single-P runtime, free-spinning readers can keep it off the
// scheduler for tens of milliseconds — leave the whole working set
// stale across many publishes, turning every cached hit back into a
// product pass. The bound keeps staleness proportional to one
// classification pass; below it the mailbox coalesces as usual.
const maxMaintainLag = 8

// scheduleMaintain hands a just-published snapshot to the maintainer.
// After Close the maintainer is gone, so maintenance degrades to the old
// synchronous behavior — late publishers still keep the cache coherent.
func (e *Engine) scheduleMaintain(snap *graph.Snapshot) {
	m := &e.maint
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		e.maintainResults(snap)
		m.mu.Lock()
		if ep := snap.Epoch(); ep > m.doneEpoch {
			m.doneEpoch = ep
		}
		m.doneCond.Broadcast()
		m.mu.Unlock()
		return
	}
	if m.pending == nil || snap.Epoch() > m.pending.Epoch() {
		m.pending = snap
	}
	if m.pending != nil && snap.Epoch() > m.doneEpoch+maxMaintainLag {
		// Bounded staleness: claim the pending snapshot ourselves rather
		// than signal a maintainer that evidently is not getting CPU.
		p := m.pending
		m.pending = nil
		m.mu.Unlock()
		e.maintainResults(p)
		m.mu.Lock()
		if ep := p.Epoch(); ep > m.doneEpoch {
			m.doneEpoch = ep
		}
		m.doneCond.Broadcast()
		m.mu.Unlock()
		return
	}
	m.workCond.Signal()
	m.mu.Unlock()
}

// maintainLoop is the maintainer goroutine: take the newest pending
// snapshot, maintain against it, record progress, repeat. On Close it
// drains the slot before exiting, so FlushMaintenance-then-Close never
// strands work.
func (e *Engine) maintainLoop() {
	m := &e.maint
	m.mu.Lock()
	for {
		for m.pending == nil && !m.closed {
			m.workCond.Wait()
		}
		if m.pending == nil {
			break // closed and drained
		}
		snap := m.pending
		m.pending = nil
		m.mu.Unlock()
		e.maintainResults(snap)
		m.mu.Lock()
		if ep := snap.Epoch(); ep > m.doneEpoch {
			m.doneEpoch = ep
		}
		m.doneCond.Broadcast()
	}
	m.stopped = true
	m.doneCond.Broadcast()
	m.mu.Unlock()
	close(m.exited)
}

// FlushMaintenance blocks until the maintainer has processed every epoch
// published before the call — after it returns, Stats' retained/regrown/
// dropped counters account for all those publications. It is the
// test-and-benchmark barrier; serving code never needs it (an
// unmaintained entry just misses).
func (e *Engine) FlushMaintenance() {
	target := e.g.Current().Epoch()
	m := &e.maint
	m.mu.Lock()
	for m.doneEpoch < target && !m.stopped {
		m.doneCond.Wait()
	}
	m.mu.Unlock()
}

// Close stops the maintainer after it drains any pending work. Close is
// idempotent and safe to call concurrently; it returns once the
// maintainer has exited. The engine still serves reads and mutations
// after Close — only maintenance reverts to running synchronously on the
// publishing goroutine.
func (e *Engine) Close() {
	m := &e.maint
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.workCond.Signal()
	}
	m.mu.Unlock()
	<-m.exited
}

// maintainLag is the maintain_queue_depth gauge: how many published
// epochs the maintainer has not yet processed. Zero when idle; under a
// saturating writer it hovers near the coalescing depth.
func (e *Engine) maintainLag() uint64 {
	cur := e.g.Current().Epoch()
	m := &e.maint
	m.mu.Lock()
	done := m.doneEpoch
	m.mu.Unlock()
	if cur > done {
		return cur - done
	}
	return 0
}

// maintainResults classifies the result cache against the just-published
// snapshot. A negative budget disables maintenance entirely — the
// prune-everything baseline.
func (e *Engine) maintainResults(snap *graph.Snapshot) {
	if e.regrowBudget < 0 {
		e.results.prune(snap.Epoch())
		return
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.results.maintain(snap, e.regrowBudget, &e.regrowHist)
}

// regrowCand is one entry pulled out of the locked classification pass
// for regrowth outside the cache lock.
type regrowCand struct {
	key  resultKey
	ent  *resultEntry
	span graph.DeltaSpan
}

// maintain applies the retain/regrow/drop taxonomy to every completed
// entry older than snap's epoch. Classification and retain re-keying run
// under the cache lock; regrows (the only traversal work) run outside it
// so concurrent lookups at the new epoch are never blocked behind a
// traversal.
func (c *resultCache) maintain(snap *graph.Snapshot, budget int, hist *telemetry.Histogram) {
	cur := snap.Epoch()
	var cands []regrowCand
	c.mu.Lock()
	if cur > c.latest {
		c.latest = cur
	}
	for k, en := range c.entries {
		if k.epoch >= cur {
			continue
		}
		select {
		case <-en.done:
		default:
			// In flight at an older epoch: it finishes for its own
			// pinned-epoch waiters and is reclaimed by eviction later.
			continue
		}
		if en.q == nil {
			delete(c.entries, k)
			c.dropped.Add(1)
			continue
		}
		p := en.q.Plan()
		span, ok := snap.DeltaSince(k.epoch)
		if p.Empty() {
			// The empty language selects nothing on any graph; the span
			// (even an unreachable one) is irrelevant.
			c.rekeyLocked(k, en, cur)
			continue
		}
		if !ok {
			delete(c.entries, k)
			c.dropped.Add(1)
			continue
		}
		disjoint := span.SymMask&p.AlphaMask == 0
		epsGrow := span.NewNodes > 0 && k.from < 0 && p.AcceptsEpsilon()
		if disjoint && !epsGrow {
			c.rekeyLocked(k, en, cur)
			continue
		}
		if en.masks != nil && (k.sem == query.SemanticsNodes || k.sem == query.SemanticsPairsFrom) {
			delete(c.entries, k)
			cands = append(cands, regrowCand{key: k, ent: en, span: span})
			continue
		}
		delete(c.entries, k)
		c.dropped.Add(1)
	}
	c.mu.Unlock()

	remaining := budget
	for i := range cands {
		cand := &cands[i]
		if remaining <= 0 {
			c.dropped.Add(1)
			continue
		}
		start := time.Now()
		ne, cost, ok := regrowEntry(snap, cand, remaining)
		remaining -= cost
		if !ok {
			c.dropped.Add(1)
			continue
		}
		hist.Observe(time.Since(start))
		nk := cand.key
		nk.epoch = cur
		c.mu.Lock()
		if len(c.entries) >= c.cap {
			c.evictLocked()
		}
		if _, exists := c.entries[nk]; !exists && len(c.entries) < c.cap {
			// A fresh compute raced us to the new key (or the cache is
			// full of in-flight entries): their answer is identical —
			// keep whichever landed first.
			c.entries[nk] = ne
		}
		c.mu.Unlock()
		c.regrown.Add(1)
	}
}

// rekeyLocked retains en at the new epoch: same entry pointer, new key.
// If a fresh compute already produced the new-epoch entry (it raced the
// maintenance pass), the computed one wins — the answers are identical.
func (c *resultCache) rekeyLocked(k resultKey, en *resultEntry, cur uint64) {
	nk := k
	nk.epoch = cur
	if _, exists := c.entries[nk]; !exists {
		c.entries[nk] = en
	}
	delete(c.entries, k)
	c.retained.Add(1)
}

// regrowEntry folds cand's delta span into its cached fixpoint and
// builds the new-epoch entry. cost counts edge relaxations regardless of
// success; ok is false when the budget was exceeded (the caller drops).
func regrowEntry(snap *graph.Snapshot, cand *regrowCand, budget int) (*resultEntry, int, bool) {
	p := cand.ent.q.Plan()
	old := cand.ent.masks
	nv := snap.NumNodes()
	masks := make([]uint64, nv)
	copy(masks, old)
	var newly, extra []graph.NodeID
	var cost int
	var ok bool
	switch cand.key.sem {
	case query.SemanticsNodes:
		// New nodes start at the trivial backward fixpoint: every (v,
		// final) pair is good. Under ε every new node is immediately
		// selected (ε ∈ paths_G(v)) without any traversal.
		for v := len(old); v < nv; v++ {
			masks[v] = p.FinalMask
		}
		if p.AcceptsEpsilon() {
			for v := len(old); v < nv; v++ {
				extra = append(extra, graph.NodeID(v))
			}
		}
		newly, cost, ok = snap.RegrowMonadicMasked(p, masks, &cand.span, budget)
	case query.SemanticsPairsFrom:
		// New nodes start unreached (zero mask) in the forward fixpoint.
		newly, cost, ok = snap.RegrowBinaryFromMasked(p, masks, &cand.span, budget)
	default:
		return nil, 0, false
	}
	if !ok {
		return nil, cost, false
	}
	nodes := mergeNodes(cand.ent.ans.Nodes, newly, extra)
	ans := query.Answer{Semantics: cand.ent.ans.Semantics, Count: len(nodes), Nodes: nodes}
	return &resultEntry{done: closedDone, ans: ans, q: cand.ent.q, masks: masks}, cost, true
}

// mergeNodes merges up to three sorted id lists into one sorted
// duplicate-free list. When nothing was added the cached slice is
// returned as-is (it is immutable and shared).
func mergeNodes(a, b, c []graph.NodeID) []graph.NodeID {
	if len(b) == 0 && len(c) == 0 {
		return a
	}
	out := make([]graph.NodeID, 0, len(a)+len(b)+len(c))
	i, j, k := 0, 0, 0
	for i < len(a) || j < len(b) || k < len(c) {
		m := graph.NodeID(1<<31 - 1)
		if i < len(a) && a[i] < m {
			m = a[i]
		}
		if j < len(b) && b[j] < m {
			m = b[j]
		}
		if k < len(c) && c[k] < m {
			m = c[k]
		}
		out = append(out, m)
		for i < len(a) && a[i] == m {
			i++
		}
		for j < len(b) && b[j] == m {
			j++
		}
		for k < len(c) && c[k] == m {
			k++
		}
	}
	return out
}
