package engine

// Tests for publish-time result-cache maintenance (maintain.go): a
// randomized mutate/query interleaving property — every answer the
// engine serves across retained and regrown entries must equal a
// from-scratch evaluation on the same snapshot — plus a concurrent
// stress mixing readers with mutating publishers, meant to run under
// -race (readers hit retained entries while the maintenance pass
// re-keys and regrows them).

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/query"
)

// maintainQueries is the fixed workload over labels a–d. The label "x"
// exists in no query, so mutations on it are alphabet-disjoint from
// every plan and must retain cached entries.
var maintainQueries = []struct {
	src  string
	sem  query.Semantics
	from bool
}{
	{"a·b", query.SemanticsNodes, false},
	{"a*", query.SemanticsNodes, false},
	{"(a+b)·c*", query.SemanticsNodes, false},
	{"b·c·d", query.SemanticsNodes, false},
	{"a·b*·c", query.SemanticsPairsFrom, true},
	{"(c+d)*·a", query.SemanticsPairsFrom, true},
}

// seedMaintainGraph builds a small random graph over labels a–d (the
// alphabet pre-interns x so disjoint mutations share symbol indices with
// the reference queries) and returns it with its node count.
func seedMaintainGraph(rng *rand.Rand) (*graph.Graph, int) {
	g := graph.New(alphabet.NewSorted("a", "b", "c", "d", "x"))
	n := 8 + rng.Intn(8)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < 3*n; i++ {
		g.AddEdgeByName(
			fmt.Sprintf("n%d", rng.Intn(n)),
			labels[rng.Intn(len(labels))],
			fmt.Sprintf("n%d", rng.Intn(n)))
	}
	return g, n
}

func TestMaintainIncrementalMatchesFromScratch(t *testing.T) {
	alpha := alphabet.NewSorted("a", "b", "c", "d", "x")
	refs := make([]*query.Query, len(maintainQueries))
	for i, mq := range maintainQueries {
		refs[i] = query.MustParse(alpha, mq.src)
	}
	ctx := context.Background()

	const runs, steps = 10, 120 // 1200 interleaving steps total
	var retained, regrown uint64
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(1000 + run)))
		g, n := seedMaintainGraph(rng)
		e := New(g, Options{})
		// A small budget on some runs exercises the budget-exceeded →
		// drop path without breaking correctness.
		if run%3 == 2 {
			e.regrowBudget = 8
		}

		for step := 0; step < steps; step++ {
			if rng.Intn(3) == 0 { // mutate: 1–3 edges, sometimes disjoint, sometimes a new node
				labels := []string{"a", "b", "c", "d", "x", "x"}
				var edges []EdgeSpec
				for i := 1 + rng.Intn(3); i > 0; i-- {
					to := rng.Intn(n + 1)
					if to == n {
						n++
					}
					edges = append(edges, EdgeSpec{
						From:  fmt.Sprintf("n%d", rng.Intn(n)),
						Label: labels[rng.Intn(len(labels))],
						To:    fmt.Sprintf("n%d", to),
					})
				}
				if _, err := e.Mutate(edges); err != nil {
					t.Fatal(err)
				}
				// Force the async maintainer to classify this publish so
				// the retain/regrow paths (not just cache misses) are what
				// the equality assertions below exercise.
				e.FlushMaintenance()
				continue
			}
			qi := rng.Intn(len(maintainQueries))
			mq := maintainQueries[qi]
			req := Request{Query: mq.src, Semantics: mq.sem.String()}
			if mq.from {
				req.From = fmt.Sprintf("n%d", rng.Intn(n))
			}
			got, err := e.Evaluate(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			snap := e.Graph().Current()
			if got.Epoch != snap.Epoch() {
				t.Fatalf("run %d step %d: answer epoch %d, current %d", run, step, got.Epoch, snap.Epoch())
			}
			qreq := query.Req{Semantics: mq.sem}
			if mq.from {
				id, ok := e.Graph().NodeByName(req.From)
				if !ok {
					t.Fatalf("run %d step %d: anchor %q vanished", run, step, req.From)
				}
				qreq.From, qreq.HasFrom = id, true
			}
			want, err := refs[qi].EvaluateReq(ctx, snap, qreq)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count || len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("run %d step %d (%s %s): engine %d nodes, from-scratch %d",
					run, step, mq.src, mq.sem, len(got.Nodes), len(want.Nodes))
			}
			for i := range want.Nodes {
				if got.Nodes[i] != want.Nodes[i] {
					t.Fatalf("run %d step %d (%s %s): node[%d] = %d, from-scratch %d",
						run, step, mq.src, mq.sem, i, got.Nodes[i], want.Nodes[i])
				}
			}
		}
		st := e.Stats()
		retained += st.ResultRetained
		regrown += st.ResultRegrown
	}
	// The interleavings must actually exercise the incremental paths,
	// not fall through to drop-everything.
	if retained == 0 || regrown == 0 {
		t.Fatalf("maintenance outcomes never exercised: retained %d, regrown %d", retained, regrown)
	}
}

// TestMaintainConcurrentStress runs readers against mutating publishers:
// retained entries move between keys and regrown entries are inserted
// while lookups race them. Run with -race; answer correctness is the
// property test's job — here we assert error-freedom under contention
// and that the incremental outcomes actually fire.
func TestMaintainConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, n := seedMaintainGraph(rng)
	e := New(g, Options{})
	queries := []string{"a·b", "a*", "(a+b)·c*", "b·c·d"}
	for _, src := range queries {
		if _, err := e.Select(src); err != nil {
			t.Fatal(err)
		}
	}

	const readers, mutators, iters = 4, 2, 400
	var wg sync.WaitGroup
	errs := make(chan error, readers+mutators)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if _, err := e.Select(queries[rng.Intn(len(queries))]); err != nil {
					errs <- err
					return
				}
			}
		}(int64(r))
	}
	labels := []string{"a", "b", "x", "x"} // half the publishes are alphabet-disjoint
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < iters/4; i++ {
				_, err := e.Mutate([]EdgeSpec{{
					From:  fmt.Sprintf("n%d", rng.Intn(n)),
					Label: labels[rng.Intn(len(labels))],
					To:    fmt.Sprintf("n%d", rng.Intn(n)),
				}})
				if err != nil {
					errs <- err
					return
				}
				// Pace the writer to maintenance completion: without this
				// the (now-async) publishes coalesce into one terminal
				// classification pass and readers never race a re-key.
				e.FlushMaintenance()
			}
		}(int64(m))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	e.FlushMaintenance()
	st := e.Stats()
	if st.ResultRetained+st.ResultRegrown == 0 {
		t.Fatalf("stress run never retained or regrew: %+v", st)
	}
}
