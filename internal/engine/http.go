package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pathquery/internal/core"
	"pathquery/internal/words"
)

// NewHandler exposes e as a JSON-over-HTTP API — the wire surface of
// cmd/pqserve:
//
//	POST /select      {"query": "a·b*", "limit": 10}   -> selection
//	POST /selectPairs {"query": "...", "from": "N1"}   -> selection
//	POST /batch       {"queries": ["...", ...]}        -> {"epoch", "results": [...]}
//	POST /mutate      {"edges": [{"from","label","to"}]} -> {"epoch", "nodes", "edges"}
//	POST /learn       {"pos": [names...], "neg": [...]}  -> learned query + selection
//	GET  /stats                                         -> engine counters
//	GET  /plans                                         -> cached compiled plans
//	GET  /healthz                                       -> ok
//
// A selection is {"epoch", "count", "cached", "nodes": [names...]};
// "limit" (optional, select/selectPairs/batch/learn) truncates nodes,
// never count.
//
// /learn runs Algorithm 1 on the served epoch and installs the learned
// query as a serving plan; the response's "query" string immediately
// serves from the caches via /select. Insufficient examples (the paper's
// abstain) answer 422; "k" fixes the SCP bound (0 = dynamic schedule up to
// "maxk").
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if !decode(w, r, &req) {
			return
		}
		res, err := e.Select(req.Query)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, newSelectionResponse(res, req.Limit))
	})
	mux.HandleFunc("POST /selectPairs", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if !decode(w, r, &req) {
			return
		}
		res, err := e.SelectPairsFrom(req.Query, req.From)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, newSelectionResponse(res, req.Limit))
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Queries []string `json:"queries"`
			Limit   int      `json:"limit"`
		}
		if !decode(w, r, &req) {
			return
		}
		results, err := e.SelectBatch(req.Queries)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out := struct {
			Epoch   uint64              `json:"epoch"`
			Results []selectionResponse `json:"results"`
		}{Epoch: e.Epoch(), Results: make([]selectionResponse, len(results))}
		for i, res := range results {
			out.Epoch = res.Epoch
			out.Results[i] = newSelectionResponse(res, req.Limit)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Edges []EdgeSpec `json:"edges"`
		}
		if !decode(w, r, &req) {
			return
		}
		for i, ed := range req.Edges {
			if ed.From == "" || ed.Label == "" || ed.To == "" {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("edge %d: from, label and to are all required", i))
				return
			}
		}
		m := e.Mutate(req.Edges)
		writeJSON(w, struct {
			Epoch uint64 `json:"epoch"`
			Nodes int    `json:"nodes"`
			Edges int    `json:"edges"`
		}{m.Epoch, m.Nodes, m.Edges})
	})
	mux.HandleFunc("POST /learn", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Pos   []string `json:"pos"`
			Neg   []string `json:"neg"`
			K     int      `json:"k"`
			MaxK  int      `json:"maxk"`
			Limit int      `json:"limit"`
		}
		if !decode(w, r, &req) {
			return
		}
		lr, err := e.LearnNamed(req.Pos, req.Neg, core.Options{K: req.K, MaxK: req.MaxK})
		if errors.Is(err, core.ErrAbstain) {
			httpError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("abstain: not enough examples to learn a consistent query"))
			return
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		alpha := e.Graph().Alphabet()
		scps := make([]string, len(lr.SCPs))
		for i, p := range lr.SCPs {
			scps[i] = words.String(p, alpha)
		}
		writeJSON(w, struct {
			Epoch     uint64            `json:"epoch"`
			Query     string            `json:"query"`
			Key       string            `json:"key"`
			K         int               `json:"k"`
			SCPs      []string          `json:"scps"`
			Selection selectionResponse `json:"selection"`
		}{lr.Epoch, lr.Source, lr.Key, lr.K, scps, newSelectionResponse(lr.Selection, req.Limit)})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Stats())
	})
	mux.HandleFunc("GET /plans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Plans []PlanInfo `json:"plans"`
		}{e.Plans()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type selectRequest struct {
	Query string `json:"query"`
	From  string `json:"from"`
	Limit int    `json:"limit"`
}

type selectionResponse struct {
	Epoch  uint64   `json:"epoch"`
	Count  int      `json:"count"`
	Cached bool     `json:"cached"`
	Nodes  []string `json:"nodes"`
}

func newSelectionResponse(res Result, limit int) selectionResponse {
	r := res
	if limit > 0 && len(r.Nodes) > limit {
		r.Nodes = r.Nodes[:limit]
	}
	return selectionResponse{
		Epoch:  res.Epoch,
		Count:  res.Count(),
		Cached: res.Cached,
		Nodes:  r.Names(),
	}
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}
