package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"pathquery/internal/core"
	"pathquery/internal/query"
	"pathquery/internal/telemetry"
	"pathquery/internal/words"
)

// HandlerOptions tunes the diagnostics of a handler built by
// NewHandlerWith.
type HandlerOptions struct {
	// Tenant names the graph this handler serves, for the slow-query
	// log's tenant field. Empty for a single-tenant deployment.
	Tenant string
	// SlowQuery, when positive, logs every /v1/query whose total time
	// reaches it as one structured JSON line via SlowLogf.
	SlowQuery time.Duration
	// SlowLogf receives slow-query lines (log.Printf when nil).
	SlowLogf func(format string, args ...any)
}

// NewHandler exposes e as a JSON-over-HTTP API — the wire surface of
// cmd/pqserve. The evaluation surface is the versioned unified protocol:
//
//	POST /v1/query {"query", "semantics", "from", "limit", "maxLen"}
//	POST /v1/batch {"requests": [<request>, ...]}
//
// One endpoint serves every result shape; "semantics" picks it:
//
//	nodes     (default) monadic selection     -> "nodes": [names...]
//	pairsFrom binary selection from "from"    -> "nodes": [names...]
//	witness   monadic selection + one proof   -> "paths": [{"nodes", "word"}]
//	count     distinct accepting lengths      -> "counts": [{"node", "count"}]
//	          per node, up to "maxLen"
//	shortest  shortest witness per node, or   -> "paths": [{"nodes", "word"}]
//	          per pair when "from" is set
//
// Every answer carries {"epoch", "semantics", "count", "cached"}; "limit"
// truncates the rows (for witness/shortest it also bounds the paths
// computed), never "count". The request context cancels the evaluation:
// a client disconnect or server deadline aborts the product traversal.
// Errors answer with a structured envelope
//
//	{"error": {"code": "parse_error", "message": "..."}}
//
// whose stable codes include bad_body, parse_error, unknown_semantics,
// unknown_node, missing_from, unexpected_from, max_len_too_large,
// abstain, canceled and deadline_exceeded.
//
// The pre-v1 endpoints remain as thin shims over the same Evaluate path
// and answer their historical success shapes; their error responses now
// use the v1 envelope above (previously a flat {"error": "msg"} string),
// and an unknown "from" node on /selectPairs answers 404 instead of 400:
//
//	deprecated             replacement
//	---------------------  -------------------------------------------
//	POST /select           POST /v1/query (semantics omitted or "nodes")
//	POST /selectPairs      POST /v1/query {"semantics": "pairsFrom"}
//	POST /batch            POST /v1/batch
//
// Mutation, learning and introspection are unversioned:
//
//	POST /mutate {"edges": [{"from","label","to"}]} -> {"epoch", "nodes", "edges"}
//	POST /learn  {"pos": [names...], "neg": [...]}  -> learned query + selection
//	GET  /stats                                     -> engine counters
//	GET  /plans                                     -> cached compiled plans
//	GET  /healthz                                   -> ok
//
// /learn runs Algorithm 1 on the served epoch and installs the learned
// query as a serving plan; the response's "query" string immediately
// serves from the caches via /v1/query. Insufficient examples (the
// paper's abstain) answer 422 with code "abstain"; "k" fixes the SCP
// bound (0 = dynamic schedule up to "maxk").
//
// Diagnostics: POST /v1/query?trace=1 adds a "trace" field to the
// answer — {"total_ns", "spans": [{"name", "ns"}]} — breaking the
// request into its stages (admission when fronted by the multi-tenant
// server, compile, cache_lookup, traverse); the spans are sequential,
// so their sum never exceeds total_ns. Error envelopes echo the
// request id stamped by telemetry.WithRequestID (when installed) as
// "error.request_id".
func NewHandler(e *Engine) http.Handler {
	return NewHandlerWith(e, HandlerOptions{})
}

// NewHandlerWith is NewHandler with diagnostics options: a tenant name
// for log attribution and a slow-query threshold.
func NewHandlerWith(e *Engine, opt HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decode(w, r, &req) {
			return
		}
		ctx := r.Context()
		wantTrace := r.URL.Query().Get("trace") == "1"
		// The multi-tenant server creates the trace up in dispatch (its
		// admission span precedes this handler); standalone, create one
		// here when the client asked or the slow-query log may need it.
		tr := telemetry.TraceFrom(ctx)
		if tr == nil && (wantTrace || opt.SlowQuery > 0) {
			tr = telemetry.NewTrace()
			ctx = telemetry.WithTrace(ctx, tr)
		}
		ans, err := e.Evaluate(ctx, req)
		if err != nil {
			opt.logSlow(w, req, tr, Answer{}, err)
			writeError(w, err)
			return
		}
		resp := tracedAnswerResponse{answerResponse: newAnswerResponse(ans, req.Limit)}
		if wantTrace && tr != nil {
			resp.Trace = newTraceResponse(tr)
		}
		writeJSON(w, resp)
		opt.logSlow(w, req, tr, ans, nil)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Requests []Request `json:"requests"`
		}
		if !decode(w, r, &req) {
			return
		}
		epoch, answers, err := e.EvaluateBatch(r.Context(), req.Requests)
		if err != nil {
			writeError(w, err)
			return
		}
		out := struct {
			Epoch   uint64           `json:"epoch"`
			Answers []answerResponse `json:"answers"`
		}{Epoch: epoch, Answers: make([]answerResponse, len(answers))}
		for i, ans := range answers {
			out.Answers[i] = newAnswerResponse(ans, req.Requests[i].Limit)
		}
		writeJSON(w, out)
	})

	// Deprecated shims (see the migration table above): the old verbs,
	// answered through Evaluate in their historical response shapes.
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if !decode(w, r, &req) {
			return
		}
		ans, err := e.Evaluate(r.Context(), Request{Query: req.Query})
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, newSelectionResponse(ans, req.Limit))
	})
	mux.HandleFunc("POST /selectPairs", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if !decode(w, r, &req) {
			return
		}
		ans, err := e.Evaluate(r.Context(), Request{
			Query:     req.Query,
			Semantics: query.SemanticsPairsFrom.String(),
			From:      req.From,
		})
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, newSelectionResponse(ans, req.Limit))
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Queries []string `json:"queries"`
			Limit   int      `json:"limit"`
		}
		if !decode(w, r, &req) {
			return
		}
		reqs := make([]Request, len(req.Queries))
		for i, src := range req.Queries {
			reqs[i] = Request{Query: src}
		}
		epoch, answers, err := e.EvaluateBatch(r.Context(), reqs)
		if err != nil {
			writeError(w, err)
			return
		}
		// The epoch is set once from the snapshot the whole batch pinned —
		// every answer shares it by construction.
		out := struct {
			Epoch   uint64              `json:"epoch"`
			Results []selectionResponse `json:"results"`
		}{Epoch: epoch, Results: make([]selectionResponse, len(answers))}
		for i, ans := range answers {
			out.Results[i] = newSelectionResponse(ans, req.Limit)
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Edges []EdgeSpec `json:"edges"`
		}
		if !decode(w, r, &req) {
			return
		}
		for i, ed := range req.Edges {
			if ed.From == "" || ed.Label == "" || ed.To == "" {
				writeError(w, badRequest("bad_edge",
					"edge %d: from, label and to are all required", i))
				return
			}
		}
		m, err := e.Mutate(req.Edges)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, struct {
			Epoch uint64 `json:"epoch"`
			Nodes int    `json:"nodes"`
			Edges int    `json:"edges"`
		}{m.Epoch, m.Nodes, m.Edges})
	})
	mux.HandleFunc("POST /learn", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Pos   []string `json:"pos"`
			Neg   []string `json:"neg"`
			K     int      `json:"k"`
			MaxK  int      `json:"maxk"`
			Limit int      `json:"limit"`
		}
		if !decode(w, r, &req) {
			return
		}
		lr, err := e.LearnNamed(req.Pos, req.Neg, core.Options{K: req.K, MaxK: req.MaxK})
		if err != nil {
			writeError(w, err)
			return
		}
		alpha := e.Graph().Alphabet()
		scps := make([]string, len(lr.SCPs))
		for i, p := range lr.SCPs {
			scps[i] = words.String(p, alpha)
		}
		writeJSON(w, struct {
			Epoch     uint64            `json:"epoch"`
			Query     string            `json:"query"`
			Key       string            `json:"key"`
			K         int               `json:"k"`
			SCPs      []string          `json:"scps"`
			Selection selectionResponse `json:"selection"`
		}{lr.Epoch, lr.Source, lr.Key, lr.K, scps,
			newSelectionResponse(answerOfResult(lr.Selection), req.Limit)})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, e.Stats())
	})
	mux.HandleFunc("GET /plans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Plans []PlanInfo `json:"plans"`
		}{e.Plans()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type selectRequest struct {
	Query string `json:"query"`
	From  string `json:"from"`
	Limit int    `json:"limit"`
}

// tracedAnswerResponse is the /v1/query answer plus the optional
// ?trace=1 stage breakdown.
type tracedAnswerResponse struct {
	answerResponse
	Trace *traceResponse `json:"trace,omitempty"`
}

// traceResponse is the wire form of one request trace.
type traceResponse struct {
	TotalNs int64          `json:"total_ns"`
	Spans   []spanResponse `json:"spans"`
}

// spanResponse is one traced stage.
type spanResponse struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

func newTraceResponse(tr *telemetry.Trace) *traceResponse {
	spans := tr.Spans()
	out := &traceResponse{
		// Total is read after the last span ended, so the spans — which
		// are sequential stages — always sum to at most TotalNs.
		TotalNs: int64(tr.Total()),
		Spans:   make([]spanResponse, len(spans)),
	}
	for i, s := range spans {
		out.Spans[i] = spanResponse{Name: s.Name, Ns: int64(s.Duration)}
	}
	return out
}

// slowQueryEntry is one structured slow-query log line.
type slowQueryEntry struct {
	RequestID string         `json:"request_id,omitempty"`
	Tenant    string         `json:"tenant,omitempty"`
	Query     string         `json:"query"`
	Semantics string         `json:"semantics"`
	Epoch     uint64         `json:"epoch"`
	TotalNs   int64          `json:"total_ns"`
	Spans     []spanResponse `json:"spans"`
	Cached    bool           `json:"cached"`
	Error     string         `json:"error,omitempty"`
}

// logSlow emits one JSON slow-query line when tracing is on and the
// request's total time reached the threshold. Failed evaluations log
// too (with the error message): a query slow enough to hit its
// deadline is exactly the one to diagnose.
func (o HandlerOptions) logSlow(w http.ResponseWriter, req Request, tr *telemetry.Trace, ans Answer, evalErr error) {
	if o.SlowQuery <= 0 || tr == nil {
		return
	}
	total := tr.Total()
	if total < o.SlowQuery {
		return
	}
	entry := slowQueryEntry{
		RequestID: telemetry.RequestID(w),
		Tenant:    o.Tenant,
		Query:     req.Query,
		Semantics: req.Semantics,
		Epoch:     ans.Epoch,
		TotalNs:   int64(total),
		Spans:     newTraceResponse(tr).Spans,
		Cached:    ans.Cached,
	}
	if entry.Semantics == "" {
		entry.Semantics = query.SemanticsNodes.String()
	}
	if evalErr != nil {
		entry.Error = evalErr.Error()
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return
	}
	logf := o.SlowLogf
	if logf == nil {
		logf = log.Printf
	}
	logf("slow-query %s", line)
}

// answerResponse is the /v1/query wire answer. Exactly one of Nodes,
// Paths, Counts is present, matching the semantics.
type answerResponse struct {
	Epoch     uint64          `json:"epoch"`
	Semantics string          `json:"semantics"`
	Count     int             `json:"count"`
	Cached    bool            `json:"cached"`
	Nodes     []string        `json:"nodes,omitempty"`
	Paths     []pathResponse  `json:"paths,omitempty"`
	Counts    []countResponse `json:"counts,omitempty"`
}

// pathResponse is one witness path: the node names along it and the word
// it spells.
type pathResponse struct {
	Nodes []string `json:"nodes"`
	Word  string   `json:"word"`
}

// countResponse is one count-semantics row.
type countResponse struct {
	Node  string `json:"node"`
	Count int    `json:"count"`
}

func newAnswerResponse(ans Answer, limit int) answerResponse {
	out := answerResponse{
		Epoch:     ans.Epoch,
		Semantics: ans.Semantics.String(),
		Count:     ans.Count,
		Cached:    ans.Cached,
	}
	nodes := ans.Nodes
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	if len(nodes) > 0 {
		out.Nodes = make([]string, len(nodes))
		for i, v := range nodes {
			out.Nodes[i] = ans.NodeName(v)
		}
	}
	if len(ans.Paths) > 0 {
		out.Paths = make([]pathResponse, len(ans.Paths))
		for i, pw := range ans.Paths {
			names := make([]string, len(pw.Nodes))
			for j, v := range pw.Nodes {
				names[j] = ans.NodeName(v)
			}
			out.Paths[i] = pathResponse{Nodes: names, Word: ans.WordString(pw.Word)}
		}
	}
	counts := ans.Counts
	if limit > 0 && len(counts) > limit {
		counts = counts[:limit]
	}
	if len(counts) > 0 {
		out.Counts = make([]countResponse, len(counts))
		for i, nc := range counts {
			out.Counts[i] = countResponse{Node: ans.NodeName(nc.Node), Count: nc.Count}
		}
	}
	return out
}

// selectionResponse is the historical selection shape the deprecated
// endpoints answer.
type selectionResponse struct {
	Epoch  uint64   `json:"epoch"`
	Count  int      `json:"count"`
	Cached bool     `json:"cached"`
	Nodes  []string `json:"nodes"`
}

// answerOfResult lifts a legacy Result into an Answer for rendering.
func answerOfResult(r Result) Answer {
	return Answer{Epoch: r.Epoch, Count: len(r.Nodes), Cached: r.Cached, Nodes: r.Nodes, snap: r.snap}
}

func newSelectionResponse(ans Answer, limit int) selectionResponse {
	nodes := ans.Nodes
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	names := make([]string, len(nodes))
	for i, v := range nodes {
		names[i] = ans.NodeName(v)
	}
	return selectionResponse{
		Epoch:  ans.Epoch,
		Count:  ans.Count,
		Cached: ans.Cached,
		Nodes:  names,
	}
}

// MaxBodyBytes bounds every request body the handler reads (8 MiB). A
// mutation body this size encodes to a WAL record comfortably under
// store.MaxRecordLen (the binary framing is tighter than the JSON it
// came from), so the durability layer never sees an HTTP mutation it
// would have to reject after the fact.
const MaxBodyBytes = 8 << 20

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, &APIError{
				Code:    "body_too_large",
				Status:  http.StatusRequestEntityTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
			})
			return false
		}
		writeError(w, badRequest("bad_body", "bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError answers err as the structured envelope
// {"error": {"code", "message"}}, mapping APIError codes, context
// cancellation and the learner's abstain onto statuses.
func writeError(w http.ResponseWriter, err error) {
	code, status := "bad_request", http.StatusBadRequest
	var ae *APIError
	switch {
	case errors.As(err, &ae):
		code, status = ae.Code, ae.Status
	case errors.Is(err, context.DeadlineExceeded):
		code, status = "deadline_exceeded", http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code, status = "canceled", 499 // client closed request
	case errors.Is(err, core.ErrAbstain):
		code, status = "abstain", http.StatusUnprocessableEntity
		err = fmt.Errorf("abstain: not enough examples to learn a consistent query")
	}
	var env errorEnvelope
	env.Error.Code, env.Error.Message = code, err.Error()
	// The request id was stamped on the response header by
	// telemetry.WithRequestID (when installed) before the handler ran,
	// so even error envelopes correlate with the access logs.
	env.Error.RequestID = telemetry.RequestID(w)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// errorEnvelope is the structured wire error of the v1 protocol.
type errorEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	} `json:"error"`
}
