package engine

// Group-commit tests: concurrent Mutate callers must coalesce into
// multi-mutation WAL batches — one Append, one published epoch, every
// waiter acked with that epoch — without changing what the engine
// serves. The slowLog stands in for a real fsyncing WAL so the leader
// predictably accumulates followers; the concurrent-writers test is the
// -race stress for the combining lock plus the async maintainer running
// underneath saturated writers.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathquery/internal/graph"
)

// slowLog is a MutationLog whose Append takes ~1ms — the latency shape
// of a real fsync — and records every batch it sees.
type slowLog struct {
	mu      sync.Mutex
	appends int
	epochs  []uint64
	sizes   []int
	fail    atomic.Bool
}

func (l *slowLog) Append(epoch uint64, edges []EdgeSpec) error {
	time.Sleep(time.Millisecond)
	if l.fail.Load() {
		return fmt.Errorf("slowLog: injected append failure")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appends++
	l.epochs = append(l.epochs, epoch)
	l.sizes = append(l.sizes, len(edges))
	return nil
}

func (l *slowLog) Committed(*graph.Snapshot) {}

// TestGroupCommitConcurrentWriters drives 8 writer goroutines and 4
// readers against one durable engine. Asserts: every mutation is acked
// with the epoch of the batch that carried it; batches coalesce (fewer
// WAL appends than mutations); epochs advance by exactly one per batch;
// and the final answers are identical to a from-scratch engine given the
// same edge multiset. Run under -race: the readers exercise the result
// cache while the async maintainer chases the writer lanes.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	const writers, perWriter, readers = 8, 25, 4
	log := &slowLog{}
	e := New(buildFixture(), Options{Log: log})
	base := e.Epoch()

	queries := []string{"tram·cinema", "bus*", "(tram+bus)·cinema"}
	for _, q := range queries {
		if _, err := e.Select(q); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Select(queries[rng.Intn(len(queries))]); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}

	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				res, err := e.Mutate([]EdgeSpec{{
					From:  fmt.Sprintf("g%d_%d", w, i),
					Label: "tram",
					To:    fmt.Sprintf("g%d_%d", w, i+1),
				}})
				if err != nil {
					t.Errorf("writer %d mutation %d: %v", w, i, err)
					return
				}
				if res.Epoch <= base {
					t.Errorf("writer %d mutation %d: acked epoch %d not after base %d", w, i, res.Epoch, base)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	e.FlushMaintenance()
	st := e.Stats()
	const total = writers * perWriter
	if st.WalBatchedMutations != total {
		t.Fatalf("WalBatchedMutations = %d, want %d", st.WalBatchedMutations, total)
	}
	if st.WalBatches >= total {
		t.Fatalf("WalBatches = %d out of %d mutations: no coalescing happened", st.WalBatches, total)
	}
	if uint64(log.appends) != st.WalBatches {
		t.Fatalf("log saw %d appends, engine counted %d batches", log.appends, st.WalBatches)
	}
	if got, want := e.Epoch(), base+st.WalBatches; got != want {
		t.Fatalf("epoch %d after %d batches from base %d, want %d", got, st.WalBatches, base, want)
	}
	// The log's epochs must be consecutive and its record sizes must sum
	// to the mutation count — the recovery-equivalence invariant the
	// store's batch crash sweep relies on.
	edgeSum := 0
	for i, ep := range log.epochs {
		if ep != base+1+uint64(i) {
			t.Fatalf("append %d logged epoch %d, want %d", i, ep, base+1+uint64(i))
		}
		edgeSum += log.sizes[i]
	}
	if edgeSum != total {
		t.Fatalf("logged records carry %d edges, want %d", edgeSum, total)
	}

	// Answer equivalence against a from-scratch engine fed the same
	// edges (order within the multiset is irrelevant to the graph).
	ref := New(buildFixture(), Options{})
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, err := ref.Mutate([]EdgeSpec{{
				From:  fmt.Sprintf("g%d_%d", w, i),
				Label: "tram",
				To:    fmt.Sprintf("g%d_%d", w, i+1),
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, q := range queries {
		got, err := e.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		// Node ids are assigned in arrival order, which differs between
		// the racing engine and the sequential reference — compare the
		// selections as name sets.
		g, r := got.Names(), want.Names()
		sort.Strings(g)
		sort.Strings(r)
		if len(g) != len(r) {
			t.Fatalf("%q: %d nodes, from-scratch %d", q, len(g), len(r))
		}
		for i := range r {
			if g[i] != r[i] {
				t.Fatalf("%q: name[%d] = %s, from-scratch %s", q, i, g[i], r[i])
			}
		}
	}
	e.Close()
	ref.Close()
}

// TestGroupCommitAppendFailureFailsWholeBatch: when the WAL append for a
// batch fails, every batched caller gets the durability error and the
// graph is untouched — no half-applied batch, no epoch advance.
func TestGroupCommitAppendFailureFailsWholeBatch(t *testing.T) {
	log := &slowLog{}
	log.fail.Store(true)
	e := New(buildFixture(), Options{Log: log})
	before := e.Epoch()

	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = e.Mutate([]EdgeSpec{{From: "fx", Label: "tram", To: fmt.Sprintf("fy%d", w)}})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Fatalf("writer %d: append failure not surfaced", w)
		}
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Code != "durability_error" {
			t.Fatalf("writer %d: error %v, want durability_error", w, err)
		}
	}
	if got := e.Epoch(); got != before {
		t.Fatalf("epoch advanced to %d across a failed batch (was %d)", got, before)
	}
	if st := e.Stats(); st.Mutations != 0 || st.WalBatches != 0 {
		t.Fatalf("failed batch counted: %+v", st)
	}
	// The engine stays serviceable: a later successful batch commits.
	log.fail.Store(false)
	res, err := e.Mutate([]EdgeSpec{{From: "fx", Label: "tram", To: "fz"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != before+1 {
		t.Fatalf("recovered mutation published epoch %d, want %d", res.Epoch, before+1)
	}
	e.Close()
}
