package alphabet

import (
	"testing"
)

func TestInternAssignsDenseSymbols(t *testing.T) {
	a := New()
	s0 := a.Intern("tram")
	s1 := a.Intern("bus")
	s2 := a.Intern("cinema")
	if s0 != 0 || s1 != 1 || s2 != 2 {
		t.Fatalf("expected dense symbols 0,1,2; got %d,%d,%d", s0, s1, s2)
	}
	if a.Size() != 3 {
		t.Fatalf("size = %d, want 3", a.Size())
	}
}

func TestInternIsIdempotent(t *testing.T) {
	a := New()
	s := a.Intern("x")
	if again := a.Intern("x"); again != s {
		t.Fatalf("re-interning changed symbol: %d vs %d", again, s)
	}
	if a.Size() != 1 {
		t.Fatalf("size = %d, want 1", a.Size())
	}
}

func TestLookup(t *testing.T) {
	a := New()
	a.Intern("a")
	if _, ok := a.Lookup("b"); ok {
		t.Fatal("lookup of uninterned label succeeded")
	}
	s, ok := a.Lookup("a")
	if !ok || s != 0 {
		t.Fatalf("lookup(a) = %d,%v; want 0,true", s, ok)
	}
}

func TestNameRoundTrip(t *testing.T) {
	a := New()
	labels := []string{"tram", "bus", "cinema", "restaurant"}
	for _, l := range labels {
		if got := a.Name(a.Intern(l)); got != l {
			t.Fatalf("Name(Intern(%q)) = %q", l, got)
		}
	}
}

func TestNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown symbol")
		}
	}()
	New().Name(7)
}

func TestNewSortedOrdersSymbolsLexicographically(t *testing.T) {
	a := NewSorted("c", "a", "b")
	for i, want := range []string{"a", "b", "c"} {
		if got := a.Name(Symbol(i)); got != want {
			t.Fatalf("symbol %d = %q, want %q", i, got, want)
		}
	}
}

func TestZeroValueAlphabetUsable(t *testing.T) {
	var a Alphabet
	if s := a.Intern("x"); s != 0 {
		t.Fatalf("zero-value intern = %d, want 0", s)
	}
}

func TestSymbolsAndNames(t *testing.T) {
	a := NewSorted("a", "b")
	syms := a.Symbols()
	if len(syms) != 2 || syms[0] != 0 || syms[1] != 1 {
		t.Fatalf("Symbols() = %v", syms)
	}
	names := a.Names()
	names[0] = "mutated"
	if a.Name(0) == "mutated" {
		t.Fatal("Names() must return a copy")
	}
}

func TestClassDeduplicatesAndSorts(t *testing.T) {
	a := New()
	a.Intern("z")
	c := NewClass(a, "A", "b", "a", "b")
	if len(c.Members) != 2 {
		t.Fatalf("members = %v, want 2 entries", c.Members)
	}
	if c.Members[0] > c.Members[1] {
		t.Fatalf("members not sorted: %v", c.Members)
	}
}

func TestClassContains(t *testing.T) {
	a := New()
	c := NewClass(a, "A", "x", "y")
	x, _ := a.Lookup("x")
	if !c.Contains(x) {
		t.Fatal("class should contain x")
	}
	z := a.Intern("z")
	if c.Contains(z) {
		t.Fatal("class should not contain z")
	}
}

func TestClassExpr(t *testing.T) {
	a := New()
	single := NewClass(a, "S", "only")
	if got := single.Expr(a); got != "only" {
		t.Fatalf("singleton expr = %q", got)
	}
	multi := NewClass(a, "M", "a", "b")
	if got := multi.Expr(a); got != "(a+b)" {
		t.Fatalf("multi expr = %q", got)
	}
}
