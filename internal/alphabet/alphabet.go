// Package alphabet provides interned symbol tables for edge labels.
//
// Every component of the system — graphs, automata, regular expressions,
// words — speaks Symbol, a dense small integer assigned by an Alphabet.
// Interning makes multi-character labels (e.g. "ProteinPurification") as
// cheap as single letters and gives all packages a common, ordered symbol
// universe, which Section 2 of the paper requires for the canonical order
// on words.
package alphabet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Symbol is an interned edge label. Symbols are dense: an Alphabet with n
// labels uses symbols 0..n-1. The zero Symbol is the first interned label.
type Symbol uint16

// MaxSymbols is the maximum number of distinct labels an Alphabet can hold.
const MaxSymbols = 1 << 16

// Alphabet is a finite, ordered set of labels (Section 2 of the paper).
// The order of symbols is the interning order; use Sorted or NewSorted when
// a lexicographic symbol order is wanted (the canonical order on words is
// derived from the symbol order).
//
// The zero value is an empty alphabet ready to use.
//
// Alphabets are safe for concurrent use: interning takes a write lock,
// lookups a read lock. Symbols are assigned append-only, so a Symbol
// obtained from any method stays valid forever — the serving engine relies
// on this to parse queries (which may intern new labels) while readers
// resolve names against pinned graph snapshots.
type Alphabet struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Symbol
}

// New returns an empty alphabet.
func New() *Alphabet {
	return &Alphabet{ids: make(map[string]Symbol)}
}

// NewSorted builds an alphabet from labels interned in sorted order, so that
// Symbol order coincides with lexicographic label order.
func NewSorted(labels ...string) *Alphabet {
	sorted := make([]string, len(labels))
	copy(sorted, labels)
	sort.Strings(sorted)
	a := New()
	for _, l := range sorted {
		a.Intern(l)
	}
	return a
}

// Intern returns the symbol for label, assigning a fresh one if needed.
func (a *Alphabet) Intern(label string) Symbol {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ids == nil {
		a.ids = make(map[string]Symbol)
	}
	if s, ok := a.ids[label]; ok {
		return s
	}
	if len(a.names) >= MaxSymbols {
		panic(fmt.Sprintf("alphabet: too many symbols (max %d)", MaxSymbols))
	}
	s := Symbol(len(a.names))
	a.names = append(a.names, label)
	a.ids[label] = s
	return s
}

// Lookup returns the symbol for label and whether it is interned.
func (a *Alphabet) Lookup(label string) (Symbol, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.ids[label]
	return s, ok
}

// Name returns the label of s. It panics if s was not interned.
func (a *Alphabet) Name(s Symbol) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if int(s) >= len(a.names) {
		panic(fmt.Sprintf("alphabet: unknown symbol %d", s))
	}
	return a.names[s]
}

// Size returns the number of interned labels.
func (a *Alphabet) Size() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.names)
}

// Symbols returns all symbols in interning order.
func (a *Alphabet) Symbols() []Symbol {
	out := make([]Symbol, a.Size())
	for i := range out {
		out[i] = Symbol(i)
	}
	return out
}

// Names returns all labels in interning order. The returned slice is a copy.
func (a *Alphabet) Names() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Class is a named set of symbols, used for the disjunction classes of the
// paper's experiments (A, C, E, I in Table 1 are disjunctions of up to 10
// symbols). A Class prints as a1+a2+...+an.
type Class struct {
	Label   string
	Members []Symbol
}

// NewClass builds a class over a from the given labels, interning them.
// Members are stored in symbol order and deduplicated.
func NewClass(a *Alphabet, label string, labels ...string) Class {
	seen := make(map[Symbol]bool, len(labels))
	var members []Symbol
	for _, l := range labels {
		s := a.Intern(l)
		if !seen[s] {
			seen[s] = true
			members = append(members, s)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return Class{Label: label, Members: members}
}

// Contains reports whether s is a member of the class.
func (c Class) Contains(s Symbol) bool {
	for _, m := range c.Members {
		if m == s {
			return true
		}
	}
	return false
}

// Expr renders the class as a regular-expression disjunction over a,
// e.g. "(a+b+c)". A singleton class renders as its bare label.
func (c Class) Expr(a *Alphabet) string {
	if len(c.Members) == 1 {
		return a.Name(c.Members[0])
	}
	parts := make([]string, len(c.Members))
	for i, s := range c.Members {
		parts[i] = a.Name(s)
	}
	return "(" + strings.Join(parts, "+") + ")"
}
