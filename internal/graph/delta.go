package graph

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/plan"
)

// This file implements epoch deltas: the structured record of what changed
// between two published snapshots. The build side accumulates the edges
// added since the last publication; publish() freezes them into an
// immutable Delta attached to the new Snapshot and chains it to the
// previous snapshot's delta. The serving engine folds the chain between a
// cached result's epoch and the current one (DeltaSince) to decide whether
// the cached answer can be retained untouched, regrown incrementally from
// the new edges' endpoints, or must be dropped.
//
// The chain is deliberately bounded: every maxDeltaChain publications the
// link to the previous delta is cut (a "fence"), so the memory reachable
// from the current snapshot is at most the last maxDeltaChain deltas.
// Spans that would cross a fence — cached entries more than maxDeltaChain
// epochs stale — report !ok and the caller falls back to dropping, which
// is exactly the pre-delta behavior.

const (
	// maxDeltaChain bounds how many epochs back DeltaSince can fold.
	maxDeltaChain = 64
	// maxDeltaEdges bounds the build-side accumulator. A single publish
	// that adds more edges than this (bulk loading through a live graph)
	// overflows the delta: the publication carries no delta and cached
	// results are dropped — correct, and cheaper than regrowing from a
	// seed set that large anyway.
	maxDeltaEdges = 1 << 20
)

// DeltaEdge is one edge added during an epoch's build window.
type DeltaEdge struct {
	From NodeID
	Sym  alphabet.Symbol
	To   NodeID
}

// Delta records what one publication added relative to the previous epoch:
// the new edges, the node-count growth, and the hashed symbol mask of the
// added edges (plan.SymBit over each edge's label). Deltas are immutable
// and chained newest-to-oldest so a span of epochs can be folded without
// copying. A publication reached through a *Snapshot with a nil Delta
// either was the first epoch, overflowed maxDeltaEdges, or sits on a
// chain fence.
type Delta struct {
	// Epoch is the publication this delta produced; it covers the build
	// window (Epoch-1, Epoch].
	Epoch uint64
	// PrevNumNodes and NumNodes are the node counts before and after:
	// ids [PrevNumNodes, NumNodes) are the nodes this epoch introduced.
	PrevNumNodes int
	NumNodes     int
	// Edges are the edges added this epoch, in insertion order.
	Edges []DeltaEdge
	// SymMask is the OR of plan.SymBit over the labels of Edges.
	SymMask uint64

	prev  *Delta // previous epoch's delta; nil at the chain start
	depth int    // links behind this delta, for the fence cut
}

// DeltaSpan is the fold of a consecutive run of deltas: everything added
// between epoch From (exclusive) and To (inclusive).
type DeltaSpan struct {
	From, To uint64
	// SymMask is the union of the per-epoch symbol masks.
	SymMask uint64
	// NewNodes is how many nodes were created in the span; they occupy
	// ids [nv-NewNodes, nv) of the To-epoch snapshot.
	NewNodes int
	// Batches are the per-epoch edge slices (borrowed from the deltas,
	// not copied); NumEdges is their total length.
	Batches  [][]DeltaEdge
	NumEdges int
}

// Delta returns the delta this snapshot's publication produced, or nil
// (first epoch, accumulator overflow, or a chain fence).
func (s *Snapshot) Delta() *Delta { return s.delta }

// DeltaSince folds the delta chain from this snapshot back to (but not
// including) the given epoch. ok is false when the chain does not reach
// that far — the caller must treat the cached state as unmaintainable.
// A span from the snapshot's own epoch is valid and empty.
func (s *Snapshot) DeltaSince(epoch uint64) (DeltaSpan, bool) {
	sp := DeltaSpan{From: epoch, To: s.epoch}
	if epoch > s.epoch {
		return DeltaSpan{}, false
	}
	if epoch == s.epoch {
		return sp, true
	}
	for d := s.delta; d != nil; d = d.prev {
		if d.Epoch <= epoch {
			break // chain epochs are consecutive; covered already
		}
		sp.SymMask |= d.SymMask
		if len(d.Edges) > 0 {
			sp.Batches = append(sp.Batches, d.Edges)
			sp.NumEdges += len(d.Edges)
		}
		if d.Epoch == epoch+1 {
			sp.NewNodes = s.nv - d.PrevNumNodes
			return sp, true
		}
	}
	return DeltaSpan{}, false
}

// recordDeltaEdge accumulates an edge into the build-side delta. Only
// meaningful once a first epoch exists — before that there is no previous
// epoch to maintain anything against, and bulk construction stays free.
func (g *Graph) recordDeltaEdge(from NodeID, sym alphabet.Symbol, to NodeID) {
	if g.cur.Load() == nil || g.deltaOverflow {
		return
	}
	if len(g.deltaEdges) >= maxDeltaEdges {
		g.deltaOverflow = true
		g.deltaEdges = nil
		g.deltaSyms = 0
		return
	}
	g.deltaEdges = append(g.deltaEdges, DeltaEdge{from, sym, to})
	g.deltaSyms |= plan.SymBit(int(sym))
}

// sealDelta freezes the accumulated build-side delta into the snapshot
// being published. Called under publishMu with prev = the epoch being
// superseded (nil for the first publication).
func (g *Graph) sealDelta(s *Snapshot, prev *Snapshot) {
	if prev != nil && !g.deltaOverflow {
		d := &Delta{
			Epoch:        s.epoch,
			PrevNumNodes: prev.nv,
			NumNodes:     s.nv,
			Edges:        g.deltaEdges,
			SymMask:      g.deltaSyms,
		}
		if prev.delta != nil && prev.delta.depth < maxDeltaChain {
			d.prev = prev.delta
			d.depth = prev.delta.depth + 1
		}
		s.delta = d
	}
	g.deltaEdges = nil
	g.deltaSyms = 0
	g.deltaOverflow = false
}
