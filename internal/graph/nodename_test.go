package graph_test

import (
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
)

// TestNodeNameOutOfRange pins the soft-miss contract of the name-table
// accessors: ids outside the epoch's node range (negative, from a future
// epoch, or from another graph) resolve to "" instead of panicking —
// serving paths resolve cached results against whatever epoch they were
// computed on.
func TestNodeNameOutOfRange(t *testing.T) {
	alpha := alphabet.NewSorted("a")
	g := graph.New(alpha)
	x := g.AddNode("x")
	snap := g.Snapshot()

	if got := snap.NodeName(x); got != "x" {
		t.Fatalf("NodeName(%d) = %q, want \"x\"", x, got)
	}
	for _, id := range []graph.NodeID{-1, 1, 1 << 20} {
		if got := snap.NodeName(id); got != "" {
			t.Errorf("snapshot NodeName(%d) = %q, want \"\"", id, got)
		}
		if got := g.NodeName(id); got != "" {
			t.Errorf("graph NodeName(%d) = %q, want \"\"", id, got)
		}
	}

	// A node added after the publish is out of range for the old epoch but
	// resolves on the next one.
	y := g.AddNode("y")
	if got := snap.NodeName(y); got != "" {
		t.Errorf("stale-epoch NodeName(%d) = %q, want \"\"", y, got)
	}
	if got := g.Snapshot().NodeName(y); got != "y" {
		t.Errorf("new-epoch NodeName(%d) = %q, want \"y\"", y, got)
	}
}
