// Package graph implements the graph-database substrate of the paper
// (Section 2): a finite, directed, edge-labeled graph G = (V, E) with
// E ⊆ V × Σ × V, plus the path-language machinery every other component
// builds on. The language paths_G(ν) — all words matching a node sequence
// starting at ν — is never materialized: it is the prefix-closed language
// of the graph viewed as an NFA whose states are all accepting, and every
// operation on it (membership, query products, inclusion) is computed as a
// product construction over the adjacency lists.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// NodeID identifies a node; ids are dense 0..NumNodes-1.
type NodeID = int32

// Edge is an outgoing or incoming labeled edge.
type Edge struct {
	Sym alphabet.Symbol
	To  NodeID // neighbor: head for out-edges, tail for in-edges
}

// Graph is a finite directed edge-labeled graph over an interned alphabet.
// Adjacency lists are kept sorted by (symbol, neighbor), which makes
// canonical-order path enumeration a plain BFS taking edges in list order.
//
// Concurrency: once construction is done, any number of goroutines may
// read concurrently (the lazy adjacency sort is guarded); mutation must
// not overlap with reads.
type Graph struct {
	alpha     *alphabet.Alphabet
	nodeNames []string
	nodeIDs   map[string]NodeID
	out       [][]Edge
	in        [][]Edge
	numEdges  int
	sorted    atomic.Bool
	sortMu    sync.Mutex
}

// New returns an empty graph over alpha. If alpha is nil a fresh alphabet
// is created.
func New(alpha *alphabet.Alphabet) *Graph {
	if alpha == nil {
		alpha = alphabet.New()
	}
	g := &Graph{alpha: alpha, nodeIDs: make(map[string]NodeID)}
	g.sorted.Store(true)
	return g
}

// Alphabet returns the graph's alphabet.
func (g *Graph) Alphabet() *alphabet.Alphabet { return g.alpha }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeNames) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// AddNode adds a node named name and returns its id; adding an existing
// name returns the existing id.
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.nodeIDs[name]; ok {
		return id
	}
	id := NodeID(len(g.nodeNames))
	g.nodeNames = append(g.nodeNames, name)
	g.nodeIDs[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds the edge (from, sym, to). Duplicate edges are kept (the
// graph is a set in the paper; duplicates do not change any semantics and
// generators avoid them).
func (g *Graph) AddEdge(from NodeID, sym alphabet.Symbol, to NodeID) {
	g.out[from] = append(g.out[from], Edge{sym, to})
	g.in[to] = append(g.in[to], Edge{sym, from})
	g.numEdges++
	g.sorted.Store(false)
}

// AddEdgeByName interns label and adds an edge between named nodes,
// creating them as needed.
func (g *Graph) AddEdgeByName(from, label, to string) {
	g.AddEdge(g.AddNode(from), g.alpha.Intern(label), g.AddNode(to))
}

// NodeName returns the name of id.
func (g *Graph) NodeName(id NodeID) string { return g.nodeNames[id] }

// NodeByName returns the id of the named node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.nodeIDs[name]
	return id, ok
}

// Nodes returns all node ids.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// ensureSorted sorts adjacency lists by (symbol, neighbor); all canonical-
// order algorithms call it first. Double-checked locking keeps concurrent
// readers safe while leaving the sorted fast path lock-free.
func (g *Graph) ensureSorted() {
	if g.sorted.Load() {
		return
	}
	g.sortMu.Lock()
	defer g.sortMu.Unlock()
	if g.sorted.Load() {
		return
	}
	for v := range g.out {
		sort.Slice(g.out[v], func(i, j int) bool {
			a, b := g.out[v][i], g.out[v][j]
			if a.Sym != b.Sym {
				return a.Sym < b.Sym
			}
			return a.To < b.To
		})
		sort.Slice(g.in[v], func(i, j int) bool {
			a, b := g.in[v][i], g.in[v][j]
			if a.Sym != b.Sym {
				return a.Sym < b.Sym
			}
			return a.To < b.To
		})
	}
	g.sorted.Store(true)
}

// OutEdges returns the sorted out-edges of v. The returned slice must not
// be modified.
func (g *Graph) OutEdges(v NodeID) []Edge {
	g.ensureSorted()
	return g.out[v]
}

// InEdges returns the sorted in-edges of v (Edge.To is the tail node).
// The returned slice must not be modified.
func (g *Graph) InEdges(v NodeID) []Edge {
	g.ensureSorted()
	return g.in[v]
}

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// Step returns the sorted, deduplicated set of a-successors of the sorted
// node set set.
func (g *Graph) Step(set []NodeID, sym alphabet.Symbol) []NodeID {
	g.ensureSorted()
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, v := range set {
		for _, e := range g.out[v] {
			if e.Sym == sym && !seen[e.To] {
				seen[e.To] = true
				out = append(out, e.To)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Matches reports whether w ∈ paths_G(ν): some node sequence starting at ν
// is matched by w. The empty word matches everywhere.
func (g *Graph) Matches(nu NodeID, w words.Word) bool {
	cur := []NodeID{nu}
	for _, sym := range w {
		cur = g.Step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	return true
}

// MatchesAny reports whether w ∈ paths_G(X) for the node set X. The empty
// set covers nothing: paths_G(∅) = ∅.
func (g *Graph) MatchesAny(set []NodeID, w words.Word) bool {
	cur := append([]NodeID(nil), set...)
	for _, sym := range w {
		cur = g.Step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	return len(cur) > 0
}

// HasCycleFrom reports whether a cycle is reachable from ν, i.e. whether
// paths_G(ν) is infinite (Section 2).
func (g *Graph) HasCycleFrom(nu NodeID) bool {
	g.ensureSorted()
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, g.NumNodes())
	var dfs func(NodeID) bool
	dfs = func(v NodeID) bool {
		state[v] = inStack
		for _, e := range g.out[v] {
			switch state[e.To] {
			case inStack:
				return true
			case unvisited:
				if dfs(e.To) {
					return true
				}
			}
		}
		state[v] = done
		return false
	}
	return dfs(nu)
}

// PathsUpTo enumerates paths_G(ν) ∩ Σ^{≤maxLen} in canonical order,
// stopping after limit words (limit ≤ 0 means no limit). Distinct words
// only: several node sequences matching the same word yield one entry.
func (g *Graph) PathsUpTo(nu NodeID, maxLen, limit int) []words.Word {
	g.ensureSorted()
	type state struct {
		set  []NodeID
		word words.Word
	}
	var out []words.Word
	level := []state{{[]NodeID{nu}, words.Epsilon}}
	for l := 0; l <= maxLen; l++ {
		var next []state
		for _, cur := range level {
			out = append(out, cur.word)
			if limit > 0 && len(out) >= limit {
				return out
			}
			if l == maxLen {
				continue
			}
			for _, sym := range g.symbolsOf(cur.set) {
				ns := g.Step(cur.set, sym)
				if len(ns) > 0 {
					next = append(next, state{ns, words.Append(cur.word, sym)})
				}
			}
		}
		level = next
	}
	return out
}

// symbolsOf returns the sorted distinct symbols with an out-edge from set.
func (g *Graph) symbolsOf(set []NodeID) []alphabet.Symbol {
	seen := make(map[alphabet.Symbol]bool)
	var out []alphabet.Symbol
	for _, v := range set {
		for _, e := range g.out[v] {
			if !seen[e.Sym] {
				seen[e.Sym] = true
				out = append(out, e.Sym)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighborhood returns the set of nodes within the given undirected radius
// of ν, including ν — the "zoom out on its neighborhood" of the interactive
// scenario (step 4 of Figure 9, where the paper suggests radius k).
func (g *Graph) Neighborhood(nu NodeID, radius int) []NodeID {
	g.ensureSorted()
	dist := map[NodeID]int{nu: 0}
	queue := []NodeID{nu}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == radius {
			continue
		}
		for _, e := range g.out[v] {
			if _, ok := dist[e.To]; !ok {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
		for _, e := range g.in[v] {
			if _, ok := dist[e.To]; !ok {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	out := make([]NodeID, 0, len(dist))
	for v := range dist {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subgraph returns the induced subgraph on keep, with the same node names
// and alphabet. Node ids are renumbered.
func (g *Graph) Subgraph(keep []NodeID) *Graph {
	g.ensureSorted()
	sub := New(g.alpha)
	inKeep := make(map[NodeID]bool, len(keep))
	for _, v := range keep {
		inKeep[v] = true
		sub.AddNode(g.NodeName(v))
	}
	for _, v := range keep {
		for _, e := range g.out[v] {
			if inKeep[e.To] {
				from, _ := sub.NodeByName(g.NodeName(v))
				to, _ := sub.NodeByName(g.NodeName(e.To))
				sub.AddEdge(from, e.Sym, to)
			}
		}
	}
	return sub
}

// String renders a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{%d nodes, %d edges, %d labels}",
		g.NumNodes(), g.NumEdges(), g.alpha.Size())
}
