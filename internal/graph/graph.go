// Package graph implements the graph-database substrate of the paper
// (Section 2): a finite, directed, edge-labeled graph G = (V, E) with
// E ⊆ V × Σ × V, plus the path-language machinery every other component
// builds on. The language paths_G(ν) — all words matching a node sequence
// starting at ν — is never materialized: it is the prefix-closed language
// of the graph viewed as an NFA whose states are all accepting, and every
// operation on it (membership, query products, inclusion) is computed as a
// product construction over the adjacency.
//
// Reads run against immutable epoch Snapshots of a compressed-sparse-row
// view (see csr.go and DESIGN.md): adjacency flattened per direction into
// one flat edge array grouped by node and symbol, so the hot loops are
// contiguous range scans. Mutations go to a build-side delta and become
// visible to concurrent readers only when a new epoch is published.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pathquery/internal/alphabet"
	"pathquery/internal/bitset"
	"pathquery/internal/words"
)

// NodeID identifies a node; ids are dense 0..NumNodes-1.
type NodeID = int32

// Edge is an outgoing or incoming labeled edge.
type Edge struct {
	Sym alphabet.Symbol
	To  NodeID // neighbor: head for out-edges, tail for in-edges
}

// Graph is a finite directed edge-labeled graph over an interned alphabet.
// Construction appends to per-node adjacency lists; reads go through
// published epoch Snapshots in symbol-indexed CSR form (csr.go), which
// keeps canonical-order path enumeration a plain BFS taking edges in
// (symbol, neighbor) order.
//
// Concurrency: a single writer may mutate and publish epochs while any
// number of goroutines read — provided the readers hold Snapshots (via
// Current/Snapshot) rather than calling Graph-level read methods, which
// rebuild lazily on a dirty build side. Graph-level reads keep the legacy
// contract: any number of concurrent readers, but no overlap with
// mutation.
type Graph struct {
	alpha     *alphabet.Alphabet
	nodeNames []string
	nodeIDs   map[string]NodeID
	out       [][]Edge // build-side adjacency; reads use published snapshots
	in        [][]Edge
	numEdges  int

	// Build-side epoch-delta accumulator (delta.go): the edges added
	// since the last publication and their hashed symbol mask, frozen
	// into an immutable Delta at the next publish.
	deltaEdges    []DeltaEdge
	deltaSyms     uint64
	deltaOverflow bool

	dirty     atomic.Bool // build side differs from the published snapshot
	publishMu sync.Mutex
	cur       atomic.Pointer[Snapshot]
	epoch     atomic.Uint64

	stepPool sync.Pool // *stepScratch
	prodPool sync.Pool // *productScratch
}

// New returns an empty graph over alpha. If alpha is nil a fresh alphabet
// is created.
func New(alpha *alphabet.Alphabet) *Graph {
	if alpha == nil {
		alpha = alphabet.New()
	}
	return &Graph{alpha: alpha, nodeIDs: make(map[string]NodeID)}
}

// Alphabet returns the graph's alphabet.
func (g *Graph) Alphabet() *alphabet.Alphabet { return g.alpha }

// NumNodes returns the number of nodes on the build side.
func (g *Graph) NumNodes() int { return len(g.nodeNames) }

// NumEdges returns the number of edges on the build side.
func (g *Graph) NumEdges() int { return g.numEdges }

// Epoch returns the number of the most recently published epoch (0 before
// the first publication).
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// SetEpochBase re-anchors the epoch counter so the next publication is
// numbered base+1. Recovery-time only: internal/store rebuilds a graph
// from a checkpoint plus WAL replay and re-anchors it so the recovered
// publication carries the same epoch number the pre-crash engine last
// served. It must be called before the first publication; calling it on
// a graph that has already published would violate the contract that
// epochs only ever increase.
func (g *Graph) SetEpochBase(base uint64) {
	if g.cur.Load() != nil {
		panic("graph: SetEpochBase after an epoch was published")
	}
	g.epoch.Store(base)
}

// AddNode adds a node named name and returns its id; adding an existing
// name returns the existing id. The node joins the published read view at
// the next Snapshot().
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.nodeIDs[name]; ok {
		return id
	}
	id := NodeID(len(g.nodeNames))
	g.nodeNames = append(g.nodeNames, name)
	g.nodeIDs[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.dirty.Store(true)
	return id
}

// AddEdge adds the edge (from, sym, to) to the build side. Duplicate edges
// are kept (the graph is a set in the paper; duplicates do not change any
// semantics and generators avoid them). The edge joins the published read
// view at the next Snapshot().
func (g *Graph) AddEdge(from NodeID, sym alphabet.Symbol, to NodeID) {
	g.out[from] = append(g.out[from], Edge{sym, to})
	g.in[to] = append(g.in[to], Edge{sym, from})
	g.numEdges++
	g.recordDeltaEdge(from, sym, to)
	g.dirty.Store(true)
}

// AddEdgeByName interns label and adds an edge between named nodes,
// creating them as needed.
func (g *Graph) AddEdgeByName(from, label, to string) {
	g.AddEdge(g.AddNode(from), g.alpha.Intern(label), g.AddNode(to))
}

// NodeName returns the name of id, or "" for an id outside the build
// side's node range (same soft-miss contract as Snapshot.NodeName).
func (g *Graph) NodeName(id NodeID) string {
	if id < 0 || int(id) >= len(g.nodeNames) {
		return ""
	}
	return g.nodeNames[id]
}

// NodeByName returns the id of the named node.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.nodeIDs[name]
	return id, ok
}

// Nodes returns all node ids.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.NumNodes())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// OutEdges returns the out-edges of v sorted by (symbol, neighbor). The
// returned slice must not be modified; it stays valid for the lifetime of
// the epoch it was read from.
func (g *Graph) OutEdges(v NodeID) []Edge { return g.reader().OutEdges(v) }

// OutEdges returns the out-edges of v sorted by (symbol, neighbor). The
// returned slice must not be modified.
func (s *Snapshot) OutEdges(v NodeID) []Edge { return s.out.row(v) }

// InEdges returns the sorted in-edges of v (Edge.To is the tail node).
// The returned slice must not be modified.
func (g *Graph) InEdges(v NodeID) []Edge { return g.reader().InEdges(v) }

// InEdges returns the sorted in-edges of v (Edge.To is the tail node).
// The returned slice must not be modified.
func (s *Snapshot) InEdges(v NodeID) []Edge { return s.in.row(v) }

// OutDegree returns the number of out-edges of v on the build side.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of in-edges of v on the build side.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Step returns the sorted, deduplicated set of a-successors of the sorted
// node set set.
func (g *Graph) Step(set []NodeID, sym alphabet.Symbol) []NodeID {
	return g.reader().Step(set, sym)
}

// Step returns the sorted, deduplicated set of a-successors of the sorted
// node set set. Successor segments are contiguous in the CSR, and dedup
// uses a pooled bitset emitted in ascending order — no per-call map, no
// per-call sort.
func (s *Snapshot) Step(set []NodeID, sym alphabet.Symbol) []NodeID {
	sc := s.getStep()
	defer s.putStep(sc)
	mk := bitset.NewMarker(sc.nodes)
	for _, v := range set {
		for _, e := range s.out.succ(v, sym) {
			mk.TrySet(int(e.To))
		}
	}
	if mk.Count() == 0 {
		return nil
	}
	out := make([]NodeID, 0, mk.Count())
	mk.Drain(func(i int) { out = append(out, NodeID(i)) })
	return out
}

// Matches reports whether w ∈ paths_G(ν): some node sequence starting at ν
// is matched by w. The empty word matches everywhere.
func (g *Graph) Matches(nu NodeID, w words.Word) bool {
	return g.reader().Matches(nu, w)
}

// Matches reports whether w ∈ paths_G(ν): some node sequence starting at ν
// is matched by w. The empty word matches everywhere.
func (s *Snapshot) Matches(nu NodeID, w words.Word) bool {
	cur := []NodeID{nu}
	for _, sym := range w {
		cur = s.Step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	return true
}

// MatchesAny reports whether w ∈ paths_G(X) for the node set X. The empty
// set covers nothing: paths_G(∅) = ∅.
func (g *Graph) MatchesAny(set []NodeID, w words.Word) bool {
	return g.reader().MatchesAny(set, w)
}

// MatchesAny reports whether w ∈ paths_G(X) for the node set X.
func (s *Snapshot) MatchesAny(set []NodeID, w words.Word) bool {
	cur := append([]NodeID(nil), set...)
	for _, sym := range w {
		cur = s.Step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	return len(cur) > 0
}

// HasCycleFrom reports whether a cycle is reachable from ν, i.e. whether
// paths_G(ν) is infinite (Section 2).
func (g *Graph) HasCycleFrom(nu NodeID) bool { return g.reader().HasCycleFrom(nu) }

// HasCycleFrom reports whether a cycle is reachable from ν. The DFS keeps
// an explicit stack so deep synthetic graphs cannot overflow the goroutine
// stack.
func (s *Snapshot) HasCycleFrom(nu NodeID) bool {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, s.nv)
	type frame struct {
		v  NodeID
		ei int32 // next out-edge index within the node's CSR row
	}
	stack := []frame{{nu, 0}}
	state[nu] = inStack
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		row := s.out.row(f.v)
		if int(f.ei) < len(row) {
			to := row[f.ei].To
			f.ei++
			switch state[to] {
			case inStack:
				return true
			case unvisited:
				state[to] = inStack
				stack = append(stack, frame{to, 0})
			}
			continue
		}
		state[f.v] = done
		stack = stack[:len(stack)-1]
	}
	return false
}

// PathsUpTo enumerates paths_G(ν) ∩ Σ^{≤maxLen} in canonical order,
// stopping after limit words (limit ≤ 0 means no limit).
func (g *Graph) PathsUpTo(nu NodeID, maxLen, limit int) []words.Word {
	return g.reader().PathsUpTo(nu, maxLen, limit)
}

// PathsUpTo enumerates paths_G(ν) ∩ Σ^{≤maxLen} in canonical order,
// stopping after limit words (limit ≤ 0 means no limit). Distinct words
// only: several node sequences matching the same word yield one entry.
func (s *Snapshot) PathsUpTo(nu NodeID, maxLen, limit int) []words.Word {
	type state struct {
		set  []NodeID
		word words.Word
	}
	var out []words.Word
	level := []state{{[]NodeID{nu}, words.Epsilon}}
	for l := 0; l <= maxLen; l++ {
		var next []state
		for _, cur := range level {
			out = append(out, cur.word)
			if limit > 0 && len(out) >= limit {
				return out
			}
			if l == maxLen {
				continue
			}
			for _, sym := range s.SymbolsOf(cur.set) {
				ns := s.Step(cur.set, sym)
				if len(ns) > 0 {
					next = append(next, state{ns, words.Append(cur.word, sym)})
				}
			}
		}
		level = next
	}
	return out
}

// StepAll visits, for every symbol with at least one successor from the
// node set, the sorted deduplicated stepped set.
func (g *Graph) StepAll(set []NodeID, fn func(sym alphabet.Symbol, succ []NodeID)) {
	g.reader().StepAll(set, fn)
}

// StepAll visits, for every symbol with at least one successor from the
// node set, the sorted deduplicated stepped set — one pass over the set's
// CSR segments instead of one Step per symbol. Visit order is unspecified
// but deterministic. The succ slice is freshly allocated per symbol and
// owned by the callback. This is the bulk transition primitive behind the
// lazily-determinized Coverage index in internal/scp.
func (s *Snapshot) StepAll(set []NodeID, fn func(sym alphabet.Symbol, succ []NodeID)) {
	sc := s.getStep()
	defer s.putStep(sc)
	nsym := s.nsym
	if cap(sc.buckets) < nsym {
		sc.buckets = make([][]NodeID, nsym)
	}
	buckets := sc.buckets[:nsym]
	present := sc.present[:0]
	symMarks := sc.syms
	co := &s.out
	for _, v := range set {
		rs := co.segs(v)
		for k := range rs.syms {
			sym := rs.syms[k]
			if symMarks.TrySet(int(sym)) {
				present = append(present, sym)
				buckets[sym] = buckets[sym][:0]
			}
			b := buckets[sym]
			for _, e := range rs.edges[rs.offs[k]:rs.offs[k+1]] {
				b = append(b, e.To)
			}
			buckets[sym] = b
		}
	}
	sc.present = present
	for _, sym := range present {
		symMarks.Clear(int(sym))
		mk := bitset.NewMarker(sc.nodes)
		for _, to := range buckets[sym] {
			mk.TrySet(int(to))
		}
		out := make([]NodeID, 0, mk.Count())
		mk.Drain(func(i int) { out = append(out, NodeID(i)) })
		fn(sym, out)
	}
}

// SymbolsOf returns the sorted distinct symbols with an out-edge from set.
func (g *Graph) SymbolsOf(set []NodeID) []alphabet.Symbol {
	return g.reader().SymbolsOf(set)
}

// SymbolsOf returns the sorted distinct symbols with an out-edge from set.
// Per-node symbols are one CSR segment scan; dedup is a pooled bitset over
// the alphabet, emitted in ascending (= sorted) symbol order.
func (s *Snapshot) SymbolsOf(set []NodeID) []alphabet.Symbol {
	sc := s.getStep()
	defer s.putStep(sc)
	mk := bitset.NewMarker(sc.syms)
	for _, v := range set {
		for _, sym := range s.out.segs(v).syms {
			mk.TrySet(int(sym))
		}
	}
	if mk.Count() == 0 {
		return nil
	}
	out := make([]alphabet.Symbol, 0, mk.Count())
	mk.Drain(func(i int) { out = append(out, alphabet.Symbol(i)) })
	return out
}

// Neighborhood returns the set of nodes within the given undirected radius
// of ν, including ν.
func (g *Graph) Neighborhood(nu NodeID, radius int) []NodeID {
	return g.reader().Neighborhood(nu, radius)
}

// Neighborhood returns the set of nodes within the given undirected radius
// of ν, including ν — the "zoom out on its neighborhood" of the interactive
// scenario (step 4 of Figure 9, where the paper suggests radius k).
func (s *Snapshot) Neighborhood(nu NodeID, radius int) []NodeID {
	dist := map[NodeID]int{nu: 0}
	queue := []NodeID{nu}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == radius {
			continue
		}
		for _, e := range s.out.row(v) {
			if _, ok := dist[e.To]; !ok {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
		for _, e := range s.in.row(v) {
			if _, ok := dist[e.To]; !ok {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	out := make([]NodeID, 0, len(dist))
	for v := range dist {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subgraph returns the induced subgraph on keep, with the same node names
// and alphabet. Node ids are renumbered.
func (g *Graph) Subgraph(keep []NodeID) *Graph { return g.reader().Subgraph(keep) }

// Subgraph returns the induced subgraph on keep, with the same node names
// and alphabet. Node ids are renumbered.
func (s *Snapshot) Subgraph(keep []NodeID) *Graph {
	sub := New(s.g.alpha)
	inKeep := make(map[NodeID]bool, len(keep))
	for _, v := range keep {
		inKeep[v] = true
		sub.AddNode(s.NodeName(v))
	}
	for _, v := range keep {
		for _, e := range s.out.row(v) {
			if inKeep[e.To] {
				from, _ := sub.NodeByName(s.NodeName(v))
				to, _ := sub.NodeByName(s.NodeName(e.To))
				sub.AddEdge(from, e.Sym, to)
			}
		}
	}
	return sub
}

// String renders a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{%d nodes, %d edges, %d labels}",
		g.NumNodes(), g.NumEdges(), g.alpha.Size())
}
