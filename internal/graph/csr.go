package graph

import (
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/bitset"
)

// This file implements the frozen read-side representation of a Graph: a
// compressed sparse row (CSR) adjacency grouped by symbol, the scratch
// pools shared by the hot product searches, and the node-set interner used
// by the subset constructions (firstEscaping here, Coverage in
// internal/scp).
//
// Freeze contract: the first read operation freezes the graph — both
// adjacency directions are flattened into one []Edge array per direction,
// grouped by node and sorted by (symbol, neighbor), with a per-(node,
// symbol) segment index on top. After that, Step, symbolsOf and the
// product successor loops are contiguous range scans with no per-call map
// and no per-call sort. Mutation (AddNode/AddEdge) invalidates the frozen
// view; the next read rebuilds it. Reads may run concurrently; mutation
// must not overlap with reads — the same contract the lazy sort had.

// csr is a symbol-indexed compressed-sparse-row adjacency. Edges are
// grouped by node and sorted by (symbol, neighbor); within a node, runs of
// equal symbols form segments so the (node, symbol) successor list is one
// contiguous slice.
type csr struct {
	edges    []Edge             // all edges, grouped by node, sorted (sym, nbr)
	rowStart []int32            // len nv+1: node v's edges are edges[rowStart[v]:rowStart[v+1]]
	segStart []int32            // len nv+1: node v's segments are segStart[v]..segStart[v+1]
	segSym   []alphabet.Symbol  // per-segment symbol, ascending within a node
	segOff   []int32            // len nSegs+1: segment s covers edges[segOff[s]:segOff[s+1]]
}

func buildCSR(adj [][]Edge) csr {
	nv := len(adj)
	total := 0
	for _, es := range adj {
		total += len(es)
	}
	c := csr{
		edges:    make([]Edge, 0, total),
		rowStart: make([]int32, nv+1),
		segStart: make([]int32, nv+1),
	}
	for v, es := range adj {
		c.rowStart[v] = int32(len(c.edges))
		c.edges = append(c.edges, es...)
		row := c.edges[c.rowStart[v]:]
		sort.Slice(row, func(i, j int) bool {
			if row[i].Sym != row[j].Sym {
				return row[i].Sym < row[j].Sym
			}
			return row[i].To < row[j].To
		})
	}
	c.rowStart[nv] = int32(len(c.edges))
	for v := 0; v < nv; v++ {
		c.segStart[v] = int32(len(c.segSym))
		lo, hi := c.rowStart[v], c.rowStart[v+1]
		for i := lo; i < hi; {
			sym := c.edges[i].Sym
			c.segSym = append(c.segSym, sym)
			c.segOff = append(c.segOff, i)
			for i < hi && c.edges[i].Sym == sym {
				i++
			}
		}
	}
	c.segStart[nv] = int32(len(c.segSym))
	c.segOff = append(c.segOff, int32(len(c.edges)))
	return c
}

// row returns node v's edges, sorted by (symbol, neighbor).
func (c *csr) row(v NodeID) []Edge {
	return c.edges[c.rowStart[v]:c.rowStart[v+1]]
}

// succ returns the edges of v labeled sym (sorted by neighbor, possibly
// with duplicates), as one contiguous slice.
func (c *csr) succ(v NodeID, sym alphabet.Symbol) []Edge {
	lo, hi := c.segStart[v], c.segStart[v+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if c.segSym[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.segStart[v+1] && c.segSym[lo] == sym {
		return c.edges[c.segOff[lo]:c.segOff[lo+1]]
	}
	return nil
}

// Freeze builds the CSR read-side index now instead of on first read.
// Useful right after bulk construction, before handing the graph to
// concurrent readers or benchmarks.
func (g *Graph) Freeze() { g.freeze() }

func (g *Graph) freeze() {
	if g.frozen.Load() {
		return
	}
	g.freezeMu.Lock()
	defer g.freezeMu.Unlock()
	if g.frozen.Load() {
		return
	}
	g.csrOut = buildCSR(g.out)
	g.csrIn = buildCSR(g.in)
	g.frozen.Store(true)
}

// stepScratch is pooled per-call state for Step and symbolsOf: dedup
// bitsets over the node and symbol universes. Pool discipline: all bits
// zero while in the pool (both users clear the words they touched while
// emitting output).
type stepScratch struct {
	nodes bitset.Bits
	syms  bitset.Bits
	// StepAll per-symbol edge buckets and the symbols present, reused
	// across calls.
	buckets [][]NodeID
	present []alphabet.Symbol
}

func (g *Graph) getStep() *stepScratch {
	s, _ := g.stepPool.Get().(*stepScratch)
	if s == nil {
		s = &stepScratch{}
	}
	s.nodes = s.nodes.Grow(g.NumNodes())
	s.syms = s.syms.Grow(g.alpha.Size())
	return s
}

func (g *Graph) putStep(s *stepScratch) { g.stepPool.Put(s) }

// productScratch is pooled per-call state for the |V|·|Q| product
// searches: the visited bitset, the DFS/BFS work stack and, for the
// early-exit searches, the list of set bit indices so release clears in
// O(visited) instead of O(|V|·|Q|). Pool discipline: bits all zero while
// in the pool.
type productScratch struct {
	bits    bitset.Bits
	stack   []uint64
	next    []uint64   // second frontier for level-synchronous BFS
	touched []uint64   // set-bit indices, for sparse clearing
	shards  [][]uint64 // per-worker frontier buffers, parallel SelectMonadic
	// Per-node pending-state masks for the |Q| ≤ 64 SelectMonadic fast
	// path; all-zero between uses (each level consumes its own array).
	maskCur  bitset.Bits
	maskNext bitset.Bits
}

func (g *Graph) getProduct(bits int) *productScratch {
	s, _ := g.prodPool.Get().(*productScratch)
	if s == nil {
		s = &productScratch{}
	}
	s.bits = s.bits.Grow(bits)
	return s
}

// putProductSparse releases scratch whose set bits are all recorded in
// touched.
func (g *Graph) putProductSparse(s *productScratch) {
	for _, i := range s.touched {
		s.bits.Clear(int(i))
	}
	g.putProductClean(s)
}

// putProductDense releases scratch after a search that may have marked a
// large fraction of the product space: clear the used prefix wholesale.
func (g *Graph) putProductDense(s *productScratch, bits int) {
	clear(s.bits[:bitset.WordsFor(bits)])
	g.putProductClean(s)
}

func (g *Graph) putProductClean(s *productScratch) {
	s.stack = s.stack[:0]
	s.next = s.next[:0]
	s.touched = s.touched[:0]
	g.prodPool.Put(s)
}

// NodeSetIndex interns sorted node sets as dense int32 ids, replacing the
// string-keyed subset maps of the pre-CSR implementation. Sets are hashed
// (FNV-1a over the ids) into buckets and compared element-wise on
// collision. Intern takes ownership of the slice it is given; callers must
// not modify a set after interning it.
type NodeSetIndex struct {
	sets    [][]NodeID
	buckets map[uint64][]int32
}

// NewNodeSetIndex returns an empty index.
func NewNodeSetIndex() *NodeSetIndex {
	return &NodeSetIndex{buckets: make(map[uint64][]int32)}
}

func hashNodeSet(set []NodeID) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range set {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// Intern returns the id of set, assigning a fresh one (and taking
// ownership of the slice) if it is new. The set must be sorted and
// duplicate-free — the canonical form Step and dedupNodes produce.
func (ix *NodeSetIndex) Intern(set []NodeID) int32 {
	h := hashNodeSet(set)
	for _, id := range ix.buckets[h] {
		if nodeSetsEqual(ix.sets[id], set) {
			return id
		}
	}
	id := int32(len(ix.sets))
	ix.sets = append(ix.sets, set)
	ix.buckets[h] = append(ix.buckets[h], id)
	return id
}

// Set returns the node set with the given id. The returned slice must not
// be modified.
func (ix *NodeSetIndex) Set(id int32) []NodeID { return ix.sets[id] }

// Len returns the number of distinct sets interned.
func (ix *NodeSetIndex) Len() int { return len(ix.sets) }

func nodeSetsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
