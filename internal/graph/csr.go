package graph

import (
	"sort"
	"time"

	"pathquery/internal/alphabet"
	"pathquery/internal/bitset"
)

// This file implements the frozen read-side representation of a Graph: a
// compressed sparse row (CSR) adjacency grouped by symbol, published as
// immutable epoch Snapshots, the scratch pools shared by the hot product
// searches, and the node-set interner used by the subset constructions
// (firstEscaping here, Coverage in internal/scp).
//
// Epoch contract: mutations (AddNode/AddEdge) always go to the build-side
// adjacency and never touch a published Snapshot. Snapshot() (or any
// legacy read through the Graph) publishes a new immutable CSR epoch with
// an atomic pointer swap; Current() returns the latest published epoch
// without rebuilding. Readers holding a Snapshot never block writers and
// never observe mutations — they keep serving their epoch until they pick
// up a newer one. The single-writer rule still applies to the build side:
// at most one goroutine may mutate (or publish) at a time; the serving
// engine (internal/engine) serializes writers behind one lock.

// csr is a symbol-indexed compressed-sparse-row adjacency. Edges are
// grouped by node and sorted by (symbol, neighbor); within a node, runs of
// equal symbols form segments so the (node, symbol) successor list is one
// contiguous slice.
type csr struct {
	edges    []Edge            // all edges, grouped by node, sorted (sym, nbr)
	rowStart []int32           // len nv+1: node v's edges are edges[rowStart[v]:rowStart[v+1]]
	segStart []int32           // len nv+1: node v's segments are segStart[v]..segStart[v+1]
	segSym   []alphabet.Symbol // per-segment symbol, ascending within a node
	segOff   []int32           // len nSegs+1: segment s covers edges[segOff[s]:segOff[s+1]]
}

func buildCSR(adj [][]Edge) csr {
	nv := len(adj)
	total := 0
	for _, es := range adj {
		total += len(es)
	}
	c := csr{
		edges:    make([]Edge, 0, total),
		rowStart: make([]int32, nv+1),
		segStart: make([]int32, nv+1),
	}
	for v, es := range adj {
		c.rowStart[v] = int32(len(c.edges))
		c.edges = append(c.edges, es...)
		row := c.edges[c.rowStart[v]:]
		sort.Slice(row, func(i, j int) bool {
			if row[i].Sym != row[j].Sym {
				return row[i].Sym < row[j].Sym
			}
			return row[i].To < row[j].To
		})
	}
	c.rowStart[nv] = int32(len(c.edges))
	c.buildSegs()
	return c
}

// buildSegs derives the segment tables from the grouped, sorted edge
// array; rows must already be in place behind rowStart.
func (c *csr) buildSegs() {
	nv := len(c.rowStart) - 1
	for v := 0; v < nv; v++ {
		c.segStart[v] = int32(len(c.segSym))
		lo, hi := c.rowStart[v], c.rowStart[v+1]
		for i := lo; i < hi; {
			sym := c.edges[i].Sym
			c.segSym = append(c.segSym, sym)
			c.segOff = append(c.segOff, i)
			for i < hi && c.edges[i].Sym == sym {
				i++
			}
		}
	}
	c.segStart[nv] = int32(len(c.segSym))
	c.segOff = append(c.segOff, int32(len(c.edges)))
}

// row returns node v's edges, sorted by (symbol, neighbor).
func (c *csr) row(v NodeID) []Edge {
	return c.edges[c.rowStart[v]:c.rowStart[v+1]]
}

// succ returns the edges of v labeled sym (sorted by neighbor, possibly
// with duplicates), as one contiguous slice.
func (c *csr) succ(v NodeID, sym alphabet.Symbol) []Edge {
	lo, hi := c.segStart[v], c.segStart[v+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if c.segSym[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.segStart[v+1] && c.segSym[lo] == sym {
		return c.edges[c.segOff[lo]:c.segOff[lo+1]]
	}
	return nil
}

// Snapshot is an immutable read-side view of a Graph at one publication
// point: both CSR adjacency directions, the node-name table prefix, and
// the alphabet size as of the publish. Snapshots are safe for unlimited
// concurrent readers and stay valid (and consistent) while the owning
// Graph keeps mutating and publishing newer epochs. All read operations on
// Graph delegate here; the serving engine pins Snapshots explicitly so a
// request observes exactly one epoch.
type Snapshot struct {
	g     *Graph // scratch pools + alphabet only; never the mutable build side
	epoch uint64
	nv    int
	ne    int
	nsym  int
	names []string // immutable prefix of the name table at publish time
	out   adj
	in    adj
	delta *Delta // what this publication added; nil at chain starts (delta.go)
	// inSymCount[sym] is the number of edges labeled sym (counted on the
	// in-side CSR): the direction-optimizing evaluators estimate the cost
	// of seeding a backward pass from it without touching the edges.
	inSymCount []int32
}

// OutDegree returns the number of out-edges of v in this epoch.
func (s *Snapshot) OutDegree(v NodeID) int { return s.out.degree(v) }

// InDegree returns the number of in-edges of v in this epoch.
func (s *Snapshot) InDegree(v NodeID) int { return s.in.degree(v) }

// Epoch returns the snapshot's epoch number. Epochs start at 1 and
// increase by 1 per publication.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumNodes returns the number of nodes in this epoch.
func (s *Snapshot) NumNodes() int { return s.nv }

// NumEdges returns the number of edges in this epoch.
func (s *Snapshot) NumEdges() int { return s.ne }

// NodeName returns the name of id as of this epoch, or "" when id is not
// a node of this epoch — an id from another graph, or one created after
// the epoch was published. Serving paths resolve ids against whatever
// epoch a cached result was computed on, so an out-of-range id must be a
// soft miss here, never a panic.
func (s *Snapshot) NodeName(id NodeID) string {
	if id < 0 || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// Alphabet returns the (concurrency-safe) alphabet shared with the graph.
func (s *Snapshot) Alphabet() *alphabet.Alphabet { return s.g.alpha }

// Freeze builds and publishes the CSR read-side epoch now instead of on
// first read. Useful right after bulk construction, before handing the
// graph to concurrent readers or benchmarks.
func (g *Graph) Freeze() { g.reader() }

// Snapshot publishes a new immutable epoch reflecting every mutation so
// far and returns it; if nothing changed since the last publication the
// current epoch is returned. Like mutation, publication is a writer-side
// operation: it must not run concurrently with other mutations.
func (g *Graph) Snapshot() *Snapshot { return g.reader() }

// PublishStats describes how a publication was performed, for the write
// path's per-stage observability.
type PublishStats struct {
	// Incremental reports the overlay path was taken (vs a from-scratch
	// buildCSR rebuild: first epoch or delta-accumulator overflow).
	Incremental bool
	// Compacted reports the publication folded the overlay into a fresh
	// base CSR.
	Compacted bool
	// OverlayEdges is the total overlay size (both directions) after the
	// publication; 0 when compacted.
	OverlayEdges int
	// Build is the time spent constructing the new epoch's adjacency
	// (overlay merge or full rebuild); Swap the time sealing the delta
	// chain and installing the snapshot pointer.
	Build, Swap time.Duration
}

// SnapshotStats is Snapshot returning how the publication was performed;
// a clean build side returns the current epoch with zero stats.
func (g *Graph) SnapshotStats() (*Snapshot, PublishStats) {
	if s := g.cur.Load(); s != nil && !g.dirty.Load() {
		return s, PublishStats{}
	}
	return g.publishEx()
}

// Current returns the latest published snapshot without publishing
// pending mutations — the serving read path: loading the epoch pointer is
// the only synchronization, so readers never block writers. Before the
// first publication it publishes epoch 1.
func (g *Graph) Current() *Snapshot {
	if s := g.cur.Load(); s != nil {
		return s
	}
	return g.publish()
}

// reader returns a snapshot reflecting every mutation so far — the legacy
// read-your-writes path behind the Graph-level read methods.
func (g *Graph) reader() *Snapshot {
	if s := g.cur.Load(); s != nil && !g.dirty.Load() {
		return s
	}
	return g.publish()
}

func (g *Graph) publish() *Snapshot {
	s, _ := g.publishEx()
	return s
}

// compactOverlayDivisor triggers compaction once the larger overlay
// exceeds |E| / compactOverlayDivisor edges; the age trigger aligns with
// the delta-chain fence (maxDeltaChain).
const compactOverlayDivisor = 8

func (g *Graph) publishEx() (*Snapshot, PublishStats) {
	g.publishMu.Lock()
	defer g.publishMu.Unlock()
	if s := g.cur.Load(); s != nil && !g.dirty.Load() {
		return s, PublishStats{}
	}
	// Clear dirty before reading the build side: a mutation racing with
	// this build (only possible through engine misuse) re-marks it so the
	// next publication rebuilds.
	g.dirty.Store(false)
	prev := g.cur.Load()
	nv := len(g.nodeNames)
	s := &Snapshot{
		g:     g,
		epoch: g.epoch.Add(1),
		nv:    nv,
		ne:    g.numEdges,
		nsym:  g.alpha.Size(),
		names: g.nodeNames[:nv:nv],
	}
	var st PublishStats
	buildStart := time.Now()
	if prev == nil || g.deltaOverflow {
		// First epoch or delta overflow: the only from-scratch rebuilds.
		s.out = fullCSR(g.out)
		s.in = fullCSR(g.in)
		s.inSymCount = make([]int32, s.nsym)
		for si := range s.in.base.segSym {
			if sym := int(s.in.base.segSym[si]); sym < len(s.inSymCount) {
				s.inSymCount[sym] += s.in.base.segOff[si+1] - s.in.base.segOff[si]
			}
		}
	} else {
		st.Incremental = true
		delta := g.deltaEdges
		s.out = prev.out.apply(deltaRows(delta, true), nv)
		s.in = prev.in.apply(deltaRows(delta, false), nv)
		ovMax := s.out.overlayEdges()
		if ie := s.in.overlayEdges(); ie > ovMax {
			ovMax = ie
		}
		if s.out.ov.age >= maxDeltaChain || ovMax*compactOverlayDivisor > g.numEdges {
			s.out = s.out.compact(nv, g.numEdges)
			s.in = s.in.compact(nv, g.numEdges)
			st.Compacted = true
		}
		st.OverlayEdges = s.out.overlayEdges() + s.in.overlayEdges()
		s.inSymCount = make([]int32, s.nsym)
		copy(s.inSymCount, prev.inSymCount)
		for _, de := range delta {
			if int(de.Sym) < len(s.inSymCount) {
				s.inSymCount[de.Sym]++
			}
		}
	}
	swapStart := time.Now()
	st.Build = swapStart.Sub(buildStart)
	g.sealDelta(s, prev)
	g.cur.Store(s)
	st.Swap = time.Since(swapStart)
	return s, st
}

// stepScratch is pooled per-call state for Step and symbolsOf: dedup
// bitsets over the node and symbol universes. Pool discipline: all bits
// zero while in the pool (both users clear the words they touched while
// emitting output).
type stepScratch struct {
	nodes bitset.Bits
	syms  bitset.Bits
	// StepAll per-symbol edge buckets and the symbols present, reused
	// across calls.
	buckets [][]NodeID
	present []alphabet.Symbol
}

func (s *Snapshot) getStep() *stepScratch {
	sc, _ := s.g.stepPool.Get().(*stepScratch)
	if sc == nil {
		sc = &stepScratch{}
	}
	sc.nodes = sc.nodes.Grow(s.nv)
	sc.syms = sc.syms.Grow(s.nsym)
	return sc
}

func (s *Snapshot) putStep(sc *stepScratch) { s.g.stepPool.Put(sc) }

// productScratch is pooled per-call state for the |V|·|Q| product
// searches: the visited bitset, the DFS/BFS work stack and, for the
// early-exit searches, the list of set bit indices so release clears in
// O(visited) instead of O(|V|·|Q|). Pool discipline: bits all zero while
// in the pool.
type productScratch struct {
	bits    bitset.Bits
	stack   []uint64
	next    []uint64   // second frontier for level-synchronous BFS
	touched []uint64   // set-bit indices, for sparse clearing
	shards  [][]uint64 // per-worker frontier buffers, parallel SelectMonadic
	// Second visited set + frontiers for the direction-optimizing
	// bidirectional searches (forward side uses bits/stack/next, backward
	// side bits2/stack2/next2). Same pool discipline: bits2 all zero while
	// pooled, set bits recorded in touched2.
	bits2    bitset.Bits
	stack2   []uint64
	next2    []uint64
	touched2 []uint64
	// Per-node pending-state masks for the |Q| ≤ 64 SelectMonadic fast
	// path; all-zero between uses (each level consumes its own array).
	maskCur  bitset.Bits
	maskNext bitset.Bits
}

func (s *Snapshot) getProduct(bits int) *productScratch {
	sc, _ := s.g.prodPool.Get().(*productScratch)
	if sc == nil {
		sc = &productScratch{}
	}
	sc.bits = sc.bits.Grow(bits)
	return sc
}

// getProduct2 is getProduct with the second (backward-side) visited set
// grown too, for the bidirectional searches.
func (s *Snapshot) getProduct2(bits int) *productScratch {
	sc := s.getProduct(bits)
	sc.bits2 = sc.bits2.Grow(bits)
	return sc
}

// putProductSparse releases scratch whose set bits are all recorded in
// touched.
func (s *Snapshot) putProductSparse(sc *productScratch) {
	for _, i := range sc.touched {
		sc.bits.Clear(int(i))
	}
	s.putProductClean(sc)
}

// putProduct2Sparse releases bidirectional scratch: both visited sets are
// cleared through their touched lists.
func (s *Snapshot) putProduct2Sparse(sc *productScratch) {
	for _, i := range sc.touched2 {
		sc.bits2.Clear(int(i))
	}
	sc.touched2 = sc.touched2[:0]
	sc.stack2 = sc.stack2[:0]
	sc.next2 = sc.next2[:0]
	s.putProductSparse(sc)
}

// putProductDense releases scratch after a search that may have marked a
// large fraction of the product space: clear the used prefix wholesale.
func (s *Snapshot) putProductDense(sc *productScratch, bits int) {
	clear(sc.bits[:bitset.WordsFor(bits)])
	s.putProductClean(sc)
}

func (s *Snapshot) putProductClean(sc *productScratch) {
	sc.stack = sc.stack[:0]
	sc.next = sc.next[:0]
	sc.touched = sc.touched[:0]
	s.g.prodPool.Put(sc)
}

// NodeSetIndex interns sorted node sets as dense int32 ids, replacing the
// string-keyed subset maps of the pre-CSR implementation. Sets are hashed
// (FNV-1a over the ids) into buckets and compared element-wise on
// collision. Intern takes ownership of the slice it is given; callers must
// not modify a set after interning it.
type NodeSetIndex struct {
	sets    [][]NodeID
	buckets map[uint64][]int32
}

// NewNodeSetIndex returns an empty index.
func NewNodeSetIndex() *NodeSetIndex {
	return &NodeSetIndex{buckets: make(map[uint64][]int32)}
}

func hashNodeSet(set []NodeID) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range set {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// Intern returns the id of set, assigning a fresh one (and taking
// ownership of the slice) if it is new. The set must be sorted and
// duplicate-free — the canonical form Step and dedupNodes produce.
func (ix *NodeSetIndex) Intern(set []NodeID) int32 {
	h := hashNodeSet(set)
	for _, id := range ix.buckets[h] {
		if nodeSetsEqual(ix.sets[id], set) {
			return id
		}
	}
	id := int32(len(ix.sets))
	ix.sets = append(ix.sets, set)
	ix.buckets[h] = append(ix.buckets[h], id)
	return id
}

// Set returns the node set with the given id. The returned slice must not
// be modified.
func (ix *NodeSetIndex) Set(id int32) []NodeID { return ix.sets[id] }

// Len returns the number of distinct sets interned.
func (ix *NodeSetIndex) Len() int { return len(ix.sets) }

func nodeSetsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
