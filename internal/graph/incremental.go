package graph

import (
	"context"
	"math/bits"
	"runtime"
	"sort"

	"pathquery/internal/bitset"
	"pathquery/internal/plan"
)

// Incremental re-evaluation across epoch deltas (delta.go). The query
// language has no negation, so an edge insert can only grow a monadic or
// anchored-binary selection: the product fixpoint of the old epoch is a
// valid lower bound of the new one, and the new fixpoint is reached by
// seeding the standard worklist propagation from the delta edges alone
// instead of recomputing from scratch.
//
// Two entry points per semantics:
//
//   - Select...State: the from-scratch evaluation that additionally
//     returns the per-node state masks (one uint64 per node, |Q| ≤ 64
//     masked layout only) — the fixpoint the engine caches alongside the
//     answer.
//   - Regrow...: given the cached masks extended to the new epoch's node
//     count, fold in a DeltaSpan under a work budget, returning the nodes
//     that became selected. The caller merges them into the cached answer.
//
// Both directions follow the exact relaxation discipline of product.go
// (backward over the in-CSR with PredMask for monadic, forward over the
// out-CSR with the flat Delta table for anchored binary), so an
// incremental result is bit-for-bit the fixpoint a from-scratch pass
// computes on the new snapshot.

// SelectMonadicMaskedState evaluates the monadic semantics like
// SelectMonadicPlan and additionally returns the full product fixpoint:
// masks[v] is the set of DFA states q such that an accepting path starts
// at (v, q), always including FinalMask. The plan must be in the masked
// layout. The masks slice is freshly allocated and owned by the caller.
func (s *Snapshot) SelectMonadicMaskedState(ctx context.Context, p *plan.Plan) ([]NodeID, []uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	nv, nq := s.nv, p.NumStates
	masks := make([]uint64, nv)
	if p.FinalMask == 0 {
		return nil, masks, nil // empty language: nothing selected, fixpoint all-zero
	}
	sc := s.getProduct(0)
	sc.maskCur = sc.maskCur.Grow(nv * 64)
	sc.maskNext = sc.maskNext.Grow(nv * 64)
	good := bitset.Bits(masks)

	workers := runtime.GOMAXPROCS(0)
	if workers > selectMaxWorkers {
		workers = selectMaxWorkers
	}
	if workers > 1 && nv*nq >= selectParallelMinSpace {
		if err := s.selectMaskedParallel(ctx, p, nq, good, sc, workers); err != nil {
			s.putProductClean(sc)
			return nil, nil, err
		}
	} else {
		if err := s.selectMaskedSerial(ctx, p, nq, good, sc); err != nil {
			s.putProductClean(sc)
			return nil, nil, err
		}
		// The serial path keeps FinalMask implicit; materialize it so the
		// cached masks are the true fixpoint.
		for v := range masks {
			masks[v] |= p.FinalMask
		}
	}
	s.putProductClean(sc)

	startBit := uint64(1) << uint(p.Start)
	var nodes []NodeID
	for v := 0; v < nv; v++ {
		if masks[v]&startBit != 0 {
			nodes = append(nodes, NodeID(v))
		}
	}
	return nodes, masks, nil
}

// SelectBinaryFromMaskedState evaluates the anchored binary semantics
// like SelectBinaryFromPlanCtx and additionally returns the forward
// product fixpoint: masks[v] is the set of DFA states reachable at v from
// (u, Start) through live transitions. Unlike the bidirectional
// direction-optimizing evaluator this always runs forward — the full
// forward closure is what survives future epochs — so the uncached cost
// can be higher on graphs where the backward side is cheaper; retained
// and regrown hits amortize it. The plan must be in the masked layout.
func (s *Snapshot) SelectBinaryFromMaskedState(ctx context.Context, p *plan.Plan, u NodeID) ([]NodeID, []uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	nv := s.nv
	masks := make([]uint64, nv)
	if p.Empty() || u < 0 || int(u) >= nv {
		return nil, masks, nil
	}
	sc := s.getProduct(0)
	sc.maskCur = sc.maskCur.Grow(nv * 64)
	pending := sc.maskCur
	stack := sc.stack

	masks[u] = 1 << uint(p.Start)
	pending[u] = masks[u]
	stack = append(stack, uint64(u))

	co := &s.out
	nsym := p.NumSyms
	pops := 0
	for len(stack) > 0 {
		if pops++; pops%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				for _, vi := range stack {
					pending[vi] = 0
				}
				sc.stack = stack[:0]
				s.putProductClean(sc)
				return nil, nil, err
			}
		}
		vi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := NodeID(vi)
		m := pending[v]
		pending[v] = 0
		rs := co.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= nsym {
				continue
			}
			tm := forwardMask(p, m, sym)
			if tm == 0 {
				continue
			}
			for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
				if add := tm &^ masks[e.To]; add != 0 {
					masks[e.To] |= add
					if pending[e.To] == 0 {
						stack = append(stack, uint64(e.To))
					}
					pending[e.To] |= add
				}
			}
		}
	}
	sc.stack = stack
	s.putProductClean(sc)

	var nodes []NodeID
	for v := 0; v < nv; v++ {
		if masks[v]&p.FinalMask != 0 {
			nodes = append(nodes, NodeID(v))
		}
	}
	return nodes, masks, nil
}

// forwardMask maps a set of source DFA states (as a mask) across one
// symbol through the plan's forward table, pruning non-live targets.
func forwardMask(p *plan.Plan, m uint64, sym int) uint64 {
	var tm uint64
	nsym := p.NumSyms
	for mm := m; mm != 0; mm &= mm - 1 {
		q := bits.TrailingZeros64(mm)
		if t := p.Delta[q*nsym+sym]; t != plan.None && p.Live[t] {
			tm |= 1 << uint(t)
		}
	}
	return tm
}

// RegrowMonadicMasked folds a delta span into a cached monadic fixpoint:
// masks must be the SelectMonadicMaskedState result of the span's From
// epoch, extended to this snapshot's node count with FinalMask for the
// new nodes. The backward worklist is seeded only from the span's edges;
// propagation runs over this snapshot's full in-CSR, so chains through
// pre-existing edges are followed. Returns the nodes that newly entered
// the selection, sorted; cost counts edge relaxations. ok is false when
// cost would exceed budget — masks are then partially updated and must be
// discarded.
func (s *Snapshot) RegrowMonadicMasked(p *plan.Plan, masks []uint64, span *DeltaSpan, budget int) (newly []NodeID, cost int, ok bool) {
	nq, nsym := p.NumStates, p.NumSyms
	startBit := uint64(1) << uint(p.Start)
	predMask := p.PredMask
	pending := make([]uint64, s.nv)
	var stack []NodeID

	mark := func(u NodeID, pm uint64) {
		if add := pm &^ masks[u]; add != 0 {
			if masks[u]&startBit == 0 && add&startBit != 0 {
				newly = append(newly, u)
			}
			masks[u] |= add
			if pending[u] == 0 {
				stack = append(stack, u)
			}
			pending[u] |= add
		}
	}

	// Seed: each added edge (f, a, t) pulls the DFA predecessors of the
	// states good at its head back to its tail.
	for _, batch := range span.Batches {
		if cost += len(batch); cost > budget {
			return nil, cost, false
		}
		for _, de := range batch {
			sym := int(de.Sym)
			if sym >= nsym {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := masks[de.To]; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm != 0 {
				mark(de.From, pm)
			}
		}
	}

	ci := &s.in
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := pending[v]
		pending[v] = 0
		rs := ci.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= nsym {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := m; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm == 0 {
				continue
			}
			edges := rs.edges[rs.offs[si]:rs.offs[si+1]]
			if cost += len(edges); cost > budget {
				return nil, cost, false
			}
			for _, e := range edges {
				mark(e.To, pm)
			}
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly, cost, true
}

// RegrowBinaryFromMasked is RegrowMonadicMasked for the anchored binary
// semantics: masks must be the SelectBinaryFromMaskedState result of the
// span's From epoch, extended with zeros for new nodes. The forward
// worklist is seeded from the span's edges whose tails already carry
// states; returned nodes are those whose mask newly intersects FinalMask.
func (s *Snapshot) RegrowBinaryFromMasked(p *plan.Plan, masks []uint64, span *DeltaSpan, budget int) (newly []NodeID, cost int, ok bool) {
	nsym := p.NumSyms
	finalMask := p.FinalMask
	pending := make([]uint64, s.nv)
	var stack []NodeID

	mark := func(v NodeID, tm uint64) {
		if add := tm &^ masks[v]; add != 0 {
			if masks[v]&finalMask == 0 && add&finalMask != 0 {
				newly = append(newly, v)
			}
			masks[v] |= add
			if pending[v] == 0 {
				stack = append(stack, v)
			}
			pending[v] |= add
		}
	}

	for _, batch := range span.Batches {
		if cost += len(batch); cost > budget {
			return nil, cost, false
		}
		for _, de := range batch {
			sym := int(de.Sym)
			if sym >= nsym {
				continue
			}
			if tm := forwardMask(p, masks[de.From], sym); tm != 0 {
				mark(de.To, tm)
			}
		}
	}

	co := &s.out
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m := pending[v]
		pending[v] = 0
		rs := co.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= nsym {
				continue
			}
			tm := forwardMask(p, m, sym)
			if tm == 0 {
				continue
			}
			edges := rs.edges[rs.offs[si]:rs.offs[si+1]]
			if cost += len(edges); cost > budget {
				return nil, cost, false
			}
			for _, e := range edges {
				mark(e.To, tm)
			}
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly, cost, true
}
