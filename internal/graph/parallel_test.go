package graph

// White-box tests forcing SelectMonadic through its parallel worker-shard
// paths (masked and generic) regardless of the host's CPU count, by
// raising GOMAXPROCS and dropping the engagement thresholds.

import (
	"math/rand"
	"runtime"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
)

func forceParallel(t *testing.T) {
	t.Helper()
	prevProcs := runtime.GOMAXPROCS(4)
	prevSpace, prevFrontier := selectParallelMinSpace, selectParallelMinFrontier
	selectParallelMinSpace, selectParallelMinFrontier = 1, 1
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prevProcs)
		selectParallelMinSpace, selectParallelMinFrontier = prevSpace, prevFrontier
	})
}

func buildRandom(rng *rand.Rand, alpha *alphabet.Alphabet, nodes, edges int) *Graph {
	g := New(alpha)
	for i := 0; i < nodes; i++ {
		g.AddNode(string(rune('A'+i/26)) + string(rune('a'+i%26)))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(NodeID(rng.Intn(nodes)), alphabet.Symbol(rng.Intn(alpha.Size())), NodeID(rng.Intn(nodes)))
	}
	return g
}

// coversSerial recomputes one node's verdict with the forward search,
// which has no parallel path — an independent in-package oracle.
func coversSerial(g *Graph, d *automata.DFA, v NodeID) bool {
	return g.Covers(d, v)
}

func TestSelectMonadicParallelMasked(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(7))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 40; iter++ {
		nodes := 2 + rng.Intn(40)
		g := buildRandom(rng, alpha, nodes, rng.Intn(4*nodes))
		d := automata.RandomNonEmptyDFA(rng, 2+rng.Intn(6), alpha.Size(), 0.5)
		if d.NumStates() > 64 {
			t.Fatalf("iter %d: DFA unexpectedly large (%d states)", iter, d.NumStates())
		}
		sel := g.SelectMonadic(d)
		for v := 0; v < nodes; v++ {
			if want := coversSerial(g, d, NodeID(v)); sel[v] != want {
				t.Fatalf("iter %d: parallel masked SelectMonadic[%d] = %v, Covers = %v",
					iter, v, sel[v], want)
			}
		}
	}
}

func TestSelectMonadicParallelGeneric(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(8))
	alpha := alphabet.NewSorted("a", "b")
	for iter := 0; iter < 10; iter++ {
		nodes := 2 + rng.Intn(20)
		g := buildRandom(rng, alpha, nodes, rng.Intn(3*nodes))
		// Pad a random DFA beyond 64 states with unreachable junk so the
		// generic (non-masked) product path runs.
		d := automata.RandomNonEmptyDFA(rng, 5, alpha.Size(), 0.5)
		for d.NumStates() <= 64 {
			d.AddState()
		}
		sel := g.SelectMonadic(d)
		for v := 0; v < nodes; v++ {
			if want := coversSerial(g, d, NodeID(v)); sel[v] != want {
				t.Fatalf("iter %d: parallel generic SelectMonadic[%d] = %v, Covers = %v",
					iter, v, sel[v], want)
			}
		}
	}
}

// TestScratchPoolCleanliness runs interleaved product searches that share
// the pools and checks results stay independent — a dirty bitset returned
// to the pool would corrupt a later search.
func TestScratchPoolCleanliness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alpha := alphabet.NewSorted("a", "b", "c")
	g := buildRandom(rng, alpha, 30, 90)
	d1 := automata.RandomNonEmptyDFA(rng, 4, alpha.Size(), 0.6)
	d2 := automata.RandomNonEmptyDFA(rng, 7, alpha.Size(), 0.4)
	want1 := g.SelectMonadic(d1)
	want2 := g.SelectMonadic(d2)
	for round := 0; round < 20; round++ {
		g.CoversAny(d2, []NodeID{NodeID(rng.Intn(30))})
		got1 := g.SelectMonadic(d1)
		g.CoversPair(d1, NodeID(rng.Intn(30)), NodeID(rng.Intn(30)))
		got2 := g.SelectMonadic(d2)
		for v := range want1 {
			if got1[v] != want1[v] || got2[v] != want2[v] {
				t.Fatalf("round %d: pooled scratch leaked state at node %d", round, v)
			}
		}
	}
}
