package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pathquery/internal/alphabet"
)

// Serialization: a plain tab-separated text format.
//
//	# comment
//	v<TAB>nodeName
//	e<TAB>from<TAB>label<TAB>to
//
// Node lines are optional for nodes that appear in edges; they are required
// to represent isolated nodes and they fix node-id order, which keeps
// datasets reproducible byte-for-byte.

// WriteTSV serializes g.
func (g *Graph) WriteTSV(w io.Writer) error {
	rd := g.reader()
	bw := bufio.NewWriter(w)
	for v := 0; v < rd.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "v\t%s\n", rd.names[v]); err != nil {
			return err
		}
	}
	for v := 0; v < rd.NumNodes(); v++ {
		for _, e := range rd.out.row(NodeID(v)) {
			if _, err := fmt.Fprintf(bw, "e\t%s\t%s\t%s\n",
				rd.names[v], g.alpha.Name(e.Sym), rd.names[e.To]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses a graph in the WriteTSV format. If alpha is nil a fresh
// alphabet is created; labels are interned in file order.
func ReadTSV(r io.Reader, alpha *alphabet.Alphabet) (*Graph, error) {
	g := New(alpha)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want v<TAB>name", lineNo)
			}
			if fields[1] == "" {
				return nil, fmt.Errorf("graph: line %d: empty node name", lineNo)
			}
			g.AddNode(fields[1])
		case "e":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want e<TAB>from<TAB>label<TAB>to", lineNo)
			}
			if fields[1] == "" || fields[2] == "" || fields[3] == "" {
				return nil, fmt.Errorf("graph: line %d: empty field in edge record", lineNo)
			}
			// Intern would panic past the symbol cap; a malformed or hostile
			// file must surface as an error instead.
			if _, ok := g.alpha.Lookup(fields[2]); !ok && g.alpha.Size() >= alphabet.MaxSymbols {
				return nil, fmt.Errorf("graph: line %d: label %q exceeds the %d-symbol alphabet cap",
					lineNo, fields[2], alphabet.MaxSymbols)
			}
			g.AddEdgeByName(fields[1], fields[2], fields[3])
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
