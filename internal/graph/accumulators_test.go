package graph_test

// Property tests for the unified-API accumulators: witness paths must be
// real paths of the graph whose words the query DFA accepts, must exist
// exactly for the selected nodes (resp. selected pairs), and the
// accepting-length counts must match a brute-force forward reference.

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
)

// checkWitness asserts pw is a real path of snap starting at start whose
// word d accepts.
func checkWitness(t *testing.T, snap *graph.Snapshot, d *automata.DFA, pw graph.PathWitness, start graph.NodeID) {
	t.Helper()
	if len(pw.Nodes) != len(pw.Word)+1 {
		t.Fatalf("witness shape: %d nodes, %d symbols", len(pw.Nodes), len(pw.Word))
	}
	if pw.Nodes[0] != start {
		t.Fatalf("witness starts at %d, want %d", pw.Nodes[0], start)
	}
	for i, sym := range pw.Word {
		succ := snap.Step([]graph.NodeID{pw.Nodes[i]}, sym)
		if !slices.Contains(succ, pw.Nodes[i+1]) {
			t.Fatalf("witness step %d: no edge %d -%d-> %d", i, pw.Nodes[i], sym, pw.Nodes[i+1])
		}
	}
	if !d.Accepts(pw.Word) {
		t.Fatalf("witness word %v not accepted", pw.Word)
	}
}

func TestWitnessPathPlanMatchesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	alpha := alphabet.NewSorted("a", "b", "c")
	ctx := context.Background()
	for iter := 0; iter < 60; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		snap := g.Snapshot()
		for pi, p := range plansOf(d) {
			sel := snap.SelectMonadicPlan(p)
			for v := 0; v < nodes; v++ {
				pw, ok, err := snap.WitnessPathPlan(ctx, p, graph.NodeID(v))
				if err != nil {
					t.Fatal(err)
				}
				if ok != sel[v] {
					t.Fatalf("iter %d plan %d node %d: witness ok=%v, selected=%v",
						iter, pi, v, ok, sel[v])
				}
				if ok {
					checkWitness(t, snap, d, pw, graph.NodeID(v))
				}
			}
		}
	}
}

func TestWitnessPairPathPlanMatchesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	alpha := alphabet.NewSorted("a", "b")
	ctx := context.Background()
	for iter := 0; iter < 60; iter++ {
		nodes := 2 + rng.Intn(8)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		snap := g.Snapshot()
		p := plan.FromDFA(d)
		u := graph.NodeID(rng.Intn(nodes))
		targets := snap.SelectBinaryFromPlan(p, u)
		for v := 0; v < nodes; v++ {
			pw, ok, err := snap.WitnessPairPathPlan(ctx, p, u, graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			want := slices.Contains(targets, graph.NodeID(v))
			if ok != want {
				t.Fatalf("iter %d pair (%d,%d): witness ok=%v, selected=%v", iter, u, v, ok, want)
			}
			if ok {
				checkWitness(t, snap, d, pw, u)
				if last := pw.Nodes[len(pw.Nodes)-1]; last != graph.NodeID(v) {
					t.Fatalf("iter %d: pair witness ends at %d, want %d", iter, last, v)
				}
			}
		}
	}
}

// refCountLengths is the brute-force count reference: per node, forward
// product frontiers of exact length ℓ, counting the levels that contain an
// accepting pair.
func refCountLengths(snap *graph.Snapshot, d *automata.DFA, v graph.NodeID, maxLen int) int32 {
	type pair struct {
		v graph.NodeID
		q int32
	}
	cur := map[pair]bool{{v, d.Start}: true}
	var count int32
	for l := 0; l <= maxLen; l++ {
		accepting := false
		for pr := range cur {
			if d.Final[pr.q] {
				accepting = true
				break
			}
		}
		if accepting {
			count++
		}
		next := map[pair]bool{}
		for pr := range cur {
			for sym := 0; sym < d.NumSyms; sym++ {
				t := d.Delta[pr.q][sym]
				if t == automata.None {
					continue
				}
				for _, to := range snap.Step([]graph.NodeID{pr.v}, alphabet.Symbol(sym)) {
					next[pair{to, t}] = true
				}
			}
		}
		cur = next
	}
	return count
}

func TestCountPlanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	alpha := alphabet.NewSorted("a", "b")
	ctx := context.Background()
	for iter := 0; iter < 40; iter++ {
		nodes := 2 + rng.Intn(7)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		snap := g.Snapshot()
		maxLen := rng.Intn(7)
		for pi, p := range plansOf(d) {
			counts, err := snap.CountPlanCtx(ctx, p, maxLen)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < nodes; v++ {
				want := refCountLengths(snap, d, graph.NodeID(v), maxLen)
				if counts[v] != want {
					t.Fatalf("iter %d plan %d node %d maxLen %d: count %d, reference %d",
						iter, pi, v, maxLen, counts[v], want)
				}
			}
		}
	}
}

// TestEvaluatorsHonorCancellation: an already-expired context aborts every
// ctx-aware evaluator before (or promptly during) the traversal, and the
// pooled scratch stays clean for the next evaluation on the same snapshot.
func TestEvaluatorsHonorCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	alpha := alphabet.NewSorted("a", "b")
	g := randomGraph(rng, alpha, 60, 240)
	d := randomDFA(rng, alpha.Size())
	snap := g.Snapshot()
	p := plan.FromDFA(d)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := snap.SelectMonadicPlanCtx(canceled, p); err != context.Canceled {
		t.Errorf("SelectMonadicPlanCtx: err = %v, want context.Canceled", err)
	}
	if _, err := snap.SelectBinaryFromPlanCtx(canceled, p, 0); err != context.Canceled {
		t.Errorf("SelectBinaryFromPlanCtx: err = %v, want context.Canceled", err)
	}
	if _, err := snap.CountPlanCtx(canceled, p, 100); err != context.Canceled {
		t.Errorf("CountPlanCtx: err = %v, want context.Canceled", err)
	}

	// The same snapshot still evaluates correctly afterwards: aborted runs
	// must have returned their scratch to the pool clean.
	ctx := context.Background()
	sel, err := snap.SelectMonadicPlanCtx(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	ref := snap.SelectMonadicPlan(p)
	for v := range sel {
		if sel[v] != ref[v] {
			t.Fatalf("post-cancel selection diverged at node %d", v)
		}
	}
}
