package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := New(nil)
	g.AddEdgeByName("N1", "tram", "N2")
	g.AddEdgeByName("N2", "bus", "N3")
	g.AddEdgeByName("N3", "tram", "N1")
	g.AddEdgeByName("N1", "cinema", "C1")
	g.AddNode("isolated")
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph(t)
	snap := g.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got %d nodes %d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Node ids, symbol ids and adjacency must match exactly.
	for v := 0; v < g.NumNodes(); v++ {
		if got.NodeName(NodeID(v)) != g.NodeName(NodeID(v)) {
			t.Fatalf("node %d: name %q != %q", v, got.NodeName(NodeID(v)), g.NodeName(NodeID(v)))
		}
	}
	gs, hs := g.Snapshot(), got.Snapshot()
	for v := 0; v < g.NumNodes(); v++ {
		a, b := gs.OutEdges(NodeID(v)), hs.OutEdges(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d: %d out-edges != %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d: %v != %v", v, i, b[i], a[i])
			}
		}
	}
	if gs.Alphabet().Size() < hs.Alphabet().Size() {
		t.Fatalf("alphabet grew on round trip: %d -> %d", gs.Alphabet().Size(), hs.Alphabet().Size())
	}
}

// encodeBinary returns the serialized test graph for corruption tests.
func encodeBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := testGraph(t).Snapshot().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBinaryCorrupt feeds the decoder malformed inputs: every case
// must return a descriptive error, never panic, never succeed.
func TestReadBinaryCorrupt(t *testing.T) {
	valid := encodeBinary(t)
	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return b[:]
	}
	mutate := func(off int, b []byte) []byte {
		out := append([]byte(nil), valid...)
		copy(out[off:], b)
		return out
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "magic"},
		{"short magic", valid[:4], "magic"},
		{"bad magic", mutate(0, []byte("XXXXXXXX")), "bad magic"},
		{"truncated after magic", valid[:8], "symbol count"},
		{"symbol count over cap", mutate(8, u32(1<<20)), "exceeds max"},
		{"huge string length", mutate(12, u32(1<<30)), "exceeds max"},
		{"truncated mid names", valid[:len(valid)/2], "reading"},
		{"truncated mid edges", valid[:len(valid)-3], "reading"},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAB), "trailing data"},
	}
	// Out-of-range ids: patch the last edge's head node id to 99. The edge
	// section is the last 12·ne bytes; field layout is (from, sym, to).
	lastTo := mutate(len(valid)-4, u32(99))
	cases = append(cases, struct {
		name string
		data []byte
		want string
	}{"edge node id out of range", lastTo, "out of range"})
	lastSym := mutate(len(valid)-8, u32(7777))
	cases = append(cases, struct {
		name string
		data []byte
		want string
	}{"edge symbol id out of range", lastSym, "out of range"})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("decoded corrupt input into %v", g)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadBinaryTruncatedEverywhere truncates the serialized form at
// every offset: every prefix must fail cleanly (no panic, no success).
func TestReadBinaryTruncatedEverywhere(t *testing.T) {
	valid := encodeBinary(t)
	for off := 0; off < len(valid); off++ {
		if _, err := ReadBinary(bytes.NewReader(valid[:off])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", off, len(valid))
		}
	}
}

// TestReadTSVCorrupt drives the text loader through malformed inputs.
func TestReadTSVCorrupt(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"unknown record", "x\tfoo", "unknown record"},
		{"short v", "v", "want v"},
		{"long v", "v\ta\tb", "want v"},
		{"empty node name", "v\t", "empty node name"},
		{"short e", "e\ta\tb", "want e"},
		{"empty edge field", "e\ta\t\tb", "empty field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadTSV(strings.NewReader(tc.input), nil)
			if err == nil {
				t.Fatalf("parsed corrupt input into %v", g)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSetEpochBase(t *testing.T) {
	g := testGraph(t)
	g.SetEpochBase(41)
	if e := g.Snapshot().Epoch(); e != 42 {
		t.Fatalf("first publication after SetEpochBase(41) = epoch %d, want 42", e)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetEpochBase after publication did not panic")
		}
	}()
	g.SetEpochBase(7)
}
